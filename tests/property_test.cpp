// Cross-cutting randomized invariants of the whole pipeline. Each property
// is something the paper's methodology quietly relies on; violations would
// invalidate the census semantics rather than just a number.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/record.hpp"
#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_data.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<core::Measurement> random_anycast_measurements(
    rng::Xoshiro256& gen, std::size_t vp_count, int replica_count) {
  const auto cities = geo::world_cities();
  std::vector<geodesy::GeoPoint> replicas;
  for (int i = 0; i < replica_count; ++i) {
    replicas.push_back(
        cities[rng::uniform_index(gen, 150)].location());
  }
  std::vector<core::Measurement> out;
  for (std::uint32_t v = 0; v < vp_count; ++v) {
    const geodesy::GeoPoint vp =
        cities[rng::uniform_index(gen, 400)].location();
    double best = 1e18;
    for (const geodesy::GeoPoint& replica : replicas) {
      const double rtt =
          geodesy::distance_to_min_rtt_ms(geodesy::distance_km(vp, replica)) *
              rng::uniform(gen, 1.0, 1.6) +
          rng::exponential(gen, 1.0);
      best = std::min(best, rtt);
    }
    out.push_back(core::Measurement{v, vp, best});
  }
  return out;
}

TEST_P(PipelineProperty, DetectionIsMonotoneInMeasurementSubsets) {
  // Removing measurements can only lose speed-of-light violations: if a
  // subset detects anycast, every superset must too.
  rng::Xoshiro256 gen(GetParam());
  const auto full = random_anycast_measurements(gen, 24, 4);
  std::vector<core::Measurement> subset(full.begin(),
                                        full.begin() + full.size() / 2);
  if (core::IGreedy::detect(subset)) {
    EXPECT_TRUE(core::IGreedy::detect(full));
  }
}

TEST_P(PipelineProperty, ClassifiedReplicasLieInsideTheirDisks) {
  // The geolocated city is evidence for the replica only if it is a
  // feasible location, i.e. inside the latency disk that isolated it.
  rng::Xoshiro256 gen(GetParam() ^ 0xABCD);
  const auto measurements = random_anycast_measurements(gen, 30, 5);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result result = igreedy.analyze(measurements);
  for (const core::Replica& replica : result.replicas) {
    if (replica.city != nullptr) {
      EXPECT_TRUE(replica.disk.contains(replica.location))
          << replica.city->display();
    } else {
      EXPECT_EQ(replica.location, replica.disk.center());
    }
  }
}

TEST_P(PipelineProperty, FirstRoundNeverExceedsFinalCount) {
  rng::Xoshiro256 gen(GetParam() ^ 0x1234);
  const auto measurements = random_anycast_measurements(gen, 28, 6);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result result = igreedy.analyze(measurements);
  EXPECT_LE(result.first_round_replicas, result.replicas.size());
}

TEST_P(PipelineProperty, AnalysisIsDeterministic) {
  rng::Xoshiro256 gen(GetParam() ^ 0x5678);
  const auto measurements = random_anycast_measurements(gen, 20, 4);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result a = igreedy.analyze(measurements);
  const core::Result b = igreedy.analyze(measurements);
  EXPECT_EQ(a.anycast, b.anycast);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].city, b.replicas[i].city);
    EXPECT_EQ(a.replicas[i].vp_id, b.replicas[i].vp_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(CombineProperty, OrderOfCombinationIsIrrelevant) {
  // combine_min must be commutative and associative over censuses — the
  // paper combines four censuses without caring about order.
  net::WorldConfig config;
  config.seed = 71;
  config.unicast_alive_slash24 = 200;
  config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(config);
  const auto vps = net::make_planetlab({.node_count = 15, .seed = 72});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  std::vector<census::CensusMatrix> runs;
  for (int c = 0; c < 3; ++c) {
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = 300 + static_cast<std::uint64_t>(c);
    runs.push_back(
        run_census(internet, vps, hitlist, blacklist, fastping).data);
  }

  census::CensusMatrix forward(hitlist.size());
  for (const auto& run : runs) forward.combine_min(run);
  census::CensusMatrix backward(hitlist.size());
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    backward.combine_min(*it);
  }
  for (std::uint32_t t = 0; t < hitlist.size(); ++t) {
    const auto a = forward.measurements(t);
    const auto b = backward.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp);
      EXPECT_FLOAT_EQ(a[i].rtt_ms, b[i].rtt_ms);
    }
  }
}

// --- Salvage decoder robustness ----------------------------------------------

std::vector<census::Observation> random_observations(rng::Xoshiro256& gen,
                                                     std::size_t count) {
  std::vector<census::Observation> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    census::Observation obs;
    obs.target_index =
        static_cast<std::uint32_t>(rng::uniform_index(gen, 0xFFFFFF));
    obs.time_s = rng::uniform(gen, 0.0, 20000.0);
    const std::size_t kind = rng::uniform_index(gen, 5);
    switch (kind) {
      case 0: obs.kind = net::ReplyKind::kTimeout; break;
      case 1: obs.kind = net::ReplyKind::kNetProhibited; break;
      case 2: obs.kind = net::ReplyKind::kHostProhibited; break;
      case 3: obs.kind = net::ReplyKind::kAdminProhibited; break;
      default:
        obs.kind = net::ReplyKind::kEchoReply;
        obs.rtt_ms = rng::uniform(gen, 0.1, 700.0);
        break;
    }
    out.push_back(obs);
  }
  return out;
}

void expect_observation_prefix(const std::vector<census::Observation>& got,
                               const std::vector<census::Observation>& full) {
  ASSERT_LE(got.size(), full.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].target_index, full[i].target_index) << i;
    EXPECT_EQ(got[i].kind, full[i].kind) << i;
  }
}

TEST_P(PipelineProperty, SalvageDecoderSurvivesRandomTruncation) {
  // Chop an encoded stream anywhere: decode_binary_prefix must never
  // crash, never exceed the declared count, and always return an exact
  // record-for-record prefix of the intact decode.
  rng::Xoshiro256 gen(GetParam() ^ 0x9A17);
  const auto stream =
      random_observations(gen, 50 + rng::uniform_index(gen, 200));
  const auto bytes = census::encode_binary(stream);
  const auto intact = census::decode_binary(bytes);
  ASSERT_TRUE(intact.has_value());
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t keep = rng::uniform_index(gen, bytes.size() + 1);
    std::size_t declared = 0;
    const auto salvaged = census::decode_binary_prefix(
        std::span<const std::uint8_t>(bytes.data(), keep), &declared);
    if (keep < 8) {
      // Not even a payload header left.
      EXPECT_FALSE(salvaged.has_value());
      continue;
    }
    ASSERT_TRUE(salvaged.has_value());
    EXPECT_EQ(declared, stream.size());
    EXPECT_LE(salvaged->size(), declared);
    EXPECT_EQ(salvaged->size(), (keep - 8) / 6);  // every whole record
    expect_observation_prefix(*salvaged, *intact);
  }
}

TEST_P(PipelineProperty, SalvageDecoderSurvivesRandomBitFlips) {
  // Flip random payload bits: never a crash, never more than the declared
  // count, and records before the first damaged byte still decode
  // verbatim (record damage is local — 6-byte records, no framing).
  rng::Xoshiro256 gen(GetParam() ^ 0x77E2);
  const auto stream =
      random_observations(gen, 50 + rng::uniform_index(gen, 200));
  const auto pristine = census::encode_binary(stream);
  const auto intact = census::decode_binary(pristine);
  ASSERT_TRUE(intact.has_value());
  for (int trial = 0; trial < 20; ++trial) {
    auto bytes = pristine;
    // 1-4 flips, anywhere past the magic (a wrong magic is the one case
    // salvage rejects outright, covered separately below).
    const std::size_t flips = 1 + rng::uniform_index(gen, 4);
    std::size_t first_damaged = bytes.size();
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t at = 4 + rng::uniform_index(gen, bytes.size() - 4);
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng::uniform_index(gen, 8));
      first_damaged = std::min(first_damaged, at);
    }
    std::size_t declared = 0;
    const auto salvaged = census::decode_binary_prefix(bytes, &declared);
    ASSERT_TRUE(salvaged.has_value());
    EXPECT_LE(salvaged->size(), declared);
    const std::size_t undamaged_records =
        first_damaged < 8 ? 0 : (first_damaged - 8) / 6;
    const std::size_t trustworthy =
        std::min(undamaged_records, salvaged->size());
    expect_observation_prefix(
        {salvaged->begin(),
         salvaged->begin() + static_cast<std::ptrdiff_t>(trustworthy)},
        *intact);
  }
  // A damaged magic is unrecoverable by design.
  auto bad_magic = pristine;
  bad_magic[0] ^= 0x01;
  EXPECT_FALSE(census::decode_binary_prefix(bad_magic).has_value());
}

TEST(AnalyzerProperty, HugeRttsNeverCauseDetection) {
  // Disks above the max-RTT cutoff constrain nothing and must be ignored:
  // a target answering with garbage latencies is not thereby anycast.
  const auto vps = net::make_planetlab({.node_count = 40, .seed = 73});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  std::vector<census::VpRtt> row;
  for (std::uint16_t v = 0; v < 40; ++v) {
    row.push_back(census::VpRtt{v, 100000.0F});
  }
  EXPECT_FALSE(analyzer.detect(row));
  const core::Result result = analyzer.analyze_row(row);
  EXPECT_FALSE(result.anycast);
  EXPECT_EQ(result.usable_measurements, 0u);
}

TEST(AnalyzerProperty, DetectNeedsTwoMeasurements) {
  const auto vps = net::make_planetlab({.node_count = 5, .seed = 74});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const std::vector<census::VpRtt> one{{0, 5.0F}};
  EXPECT_FALSE(analyzer.detect(one));
  const std::vector<census::VpRtt> none{};
  EXPECT_FALSE(analyzer.detect(none));
}

}  // namespace
}  // namespace anycast
