// Cross-cutting randomized invariants of the whole pipeline. Each property
// is something the paper's methodology quietly relies on; violations would
// invalidate the census semantics rather than just a number.
#include <gtest/gtest.h>

#include <algorithm>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_data.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<core::Measurement> random_anycast_measurements(
    rng::Xoshiro256& gen, std::size_t vp_count, int replica_count) {
  const auto cities = geo::world_cities();
  std::vector<geodesy::GeoPoint> replicas;
  for (int i = 0; i < replica_count; ++i) {
    replicas.push_back(
        cities[rng::uniform_index(gen, 150)].location());
  }
  std::vector<core::Measurement> out;
  for (std::uint32_t v = 0; v < vp_count; ++v) {
    const geodesy::GeoPoint vp =
        cities[rng::uniform_index(gen, 400)].location();
    double best = 1e18;
    for (const geodesy::GeoPoint& replica : replicas) {
      const double rtt =
          geodesy::distance_to_min_rtt_ms(geodesy::distance_km(vp, replica)) *
              rng::uniform(gen, 1.0, 1.6) +
          rng::exponential(gen, 1.0);
      best = std::min(best, rtt);
    }
    out.push_back(core::Measurement{v, vp, best});
  }
  return out;
}

TEST_P(PipelineProperty, DetectionIsMonotoneInMeasurementSubsets) {
  // Removing measurements can only lose speed-of-light violations: if a
  // subset detects anycast, every superset must too.
  rng::Xoshiro256 gen(GetParam());
  const auto full = random_anycast_measurements(gen, 24, 4);
  std::vector<core::Measurement> subset(full.begin(),
                                        full.begin() + full.size() / 2);
  if (core::IGreedy::detect(subset)) {
    EXPECT_TRUE(core::IGreedy::detect(full));
  }
}

TEST_P(PipelineProperty, ClassifiedReplicasLieInsideTheirDisks) {
  // The geolocated city is evidence for the replica only if it is a
  // feasible location, i.e. inside the latency disk that isolated it.
  rng::Xoshiro256 gen(GetParam() ^ 0xABCD);
  const auto measurements = random_anycast_measurements(gen, 30, 5);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result result = igreedy.analyze(measurements);
  for (const core::Replica& replica : result.replicas) {
    if (replica.city != nullptr) {
      EXPECT_TRUE(replica.disk.contains(replica.location))
          << replica.city->display();
    } else {
      EXPECT_EQ(replica.location, replica.disk.center());
    }
  }
}

TEST_P(PipelineProperty, FirstRoundNeverExceedsFinalCount) {
  rng::Xoshiro256 gen(GetParam() ^ 0x1234);
  const auto measurements = random_anycast_measurements(gen, 28, 6);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result result = igreedy.analyze(measurements);
  EXPECT_LE(result.first_round_replicas, result.replicas.size());
}

TEST_P(PipelineProperty, AnalysisIsDeterministic) {
  rng::Xoshiro256 gen(GetParam() ^ 0x5678);
  const auto measurements = random_anycast_measurements(gen, 20, 4);
  const core::IGreedy igreedy(geo::world_index());
  const core::Result a = igreedy.analyze(measurements);
  const core::Result b = igreedy.analyze(measurements);
  EXPECT_EQ(a.anycast, b.anycast);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    EXPECT_EQ(a.replicas[i].city, b.replicas[i].city);
    EXPECT_EQ(a.replicas[i].vp_id, b.replicas[i].vp_id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(CombineProperty, OrderOfCombinationIsIrrelevant) {
  // combine_min must be commutative and associative over censuses — the
  // paper combines four censuses without caring about order.
  net::WorldConfig config;
  config.seed = 71;
  config.unicast_alive_slash24 = 200;
  config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(config);
  const auto vps = net::make_planetlab({.node_count = 15, .seed = 72});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  std::vector<census::CensusData> runs;
  for (int c = 0; c < 3; ++c) {
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = 300 + static_cast<std::uint64_t>(c);
    runs.push_back(
        run_census(internet, vps, hitlist, blacklist, fastping).data);
  }

  census::CensusData forward(hitlist.size());
  for (const auto& run : runs) forward.combine_min(run);
  census::CensusData backward(hitlist.size());
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    backward.combine_min(*it);
  }
  for (std::uint32_t t = 0; t < hitlist.size(); ++t) {
    const auto a = forward.measurements(t);
    const auto b = backward.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp);
      EXPECT_FLOAT_EQ(a[i].rtt_ms, b[i].rtt_ms);
    }
  }
}

TEST(AnalyzerProperty, HugeRttsNeverCauseDetection) {
  // Disks above the max-RTT cutoff constrain nothing and must be ignored:
  // a target answering with garbage latencies is not thereby anycast.
  const auto vps = net::make_planetlab({.node_count = 40, .seed = 73});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  std::vector<census::VpRtt> row;
  for (std::uint16_t v = 0; v < 40; ++v) {
    row.push_back(census::VpRtt{v, 100000.0F});
  }
  EXPECT_FALSE(analyzer.detect(row));
  const core::Result result = analyzer.analyze_row(row);
  EXPECT_FALSE(result.anycast);
  EXPECT_EQ(result.usable_measurements, 0u);
}

TEST(AnalyzerProperty, DetectNeedsTwoMeasurements) {
  const auto vps = net::make_planetlab({.node_count = 5, .seed = 74});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const std::vector<census::VpRtt> one{{0, 5.0F}};
  EXPECT_FALSE(analyzer.detect(one));
  const std::vector<census::VpRtt> none{};
  EXPECT_FALSE(analyzer.detect(none));
}

}  // namespace
}  // namespace anycast
