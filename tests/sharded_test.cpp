// Property tests for the sharded census data plane (DESIGN.md §15).
//
// The contract under test: for ANY shard size (1, odd, huge, default),
// ANY flush schedule, and ANY spill state, the sharded matrix is
// element-identical to the monolithic CensusMatrixBuilder fed the same
// input — and the spill tier's durability boundary (atomic publish,
// checksummed payload, whole-record-prefix salvage) holds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/incremental.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::census {
namespace {

namespace fs = std::filesystem;

class ShardedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_sharded_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

/// Deterministic scrambled observation set: duplicate (vp, target) pairs
/// (so canonicalisation matters), out-of-order inserts, ragged rows.
std::vector<std::tuple<std::uint32_t, std::uint16_t, float>> sample_adds(
    std::size_t targets, std::size_t vps, std::size_t count) {
  std::vector<std::tuple<std::uint32_t, std::uint16_t, float>> adds;
  adds.reserve(count);
  std::uint64_t x = 88172645463325252ULL;
  for (std::size_t i = 0; i < count; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    adds.emplace_back(static_cast<std::uint32_t>(x % targets),
                      static_cast<std::uint16_t>((x >> 32) % vps),
                      1.0F + static_cast<float>((x >> 48) % 500) * 0.25F);
  }
  return adds;
}

template <typename MatrixT>
void expect_rows_equal(const MatrixT& sharded, const CensusMatrix& mono) {
  ASSERT_EQ(sharded.target_count(), mono.target_count());
  for (std::uint32_t t = 0; t < mono.target_count(); ++t) {
    const auto a = sharded.measurements(t);
    const auto b = mono.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << "target " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp) << "target " << t;
      EXPECT_EQ(a[i].rtt_ms, b[i].rtt_ms) << "target " << t;
    }
  }
}

TEST_F(ShardedTest, ElementIdenticalForAnyShardSize) {
  constexpr std::size_t kTargets = 509;
  const auto adds = sample_adds(kTargets, 40, 6000);
  CensusMatrixBuilder mono_builder(kTargets);
  for (const auto& [t, vp, rtt] : adds) mono_builder.add(t, vp, rtt);
  const CensusMatrix mono = mono_builder.build();

  // 1, odd, power-of-two, equal, huge (> target count), and default (0).
  for (const std::size_t shard_targets : {1UL, 7UL, 64UL, 509UL, 4096UL, 0UL}) {
    DataPlaneConfig plane;
    plane.shard_targets = shard_targets;
    ShardedCensusMatrixBuilder builder(kTargets, plane);
    for (const auto& [t, vp, rtt] : adds) builder.add(t, vp, rtt);
    const ShardedCensusMatrix sharded = builder.build();
    SCOPED_TRACE("shard_targets " + std::to_string(shard_targets));
    expect_rows_equal(sharded, mono);
    EXPECT_EQ(sharded.observation_count(), mono.observation_count());
    EXPECT_EQ(sharded.responsive_targets(2), mono.responsive_targets(2));
  }
}

TEST_F(ShardedTest, FragmentsSplitAcrossShardsInAnyOrder) {
  constexpr std::size_t kTargets = 300;
  // One fragment per VP, deliberately unsorted, with out-of-range tails
  // (damaged-checkpoint records) both paths must drop.
  std::vector<std::vector<TargetRtt>> fragments;
  for (std::uint16_t vp = 0; vp < 9; ++vp) {
    std::vector<TargetRtt> fragment;
    for (std::uint32_t i = 0; i < 120; ++i) {
      const std::uint32_t t = (i * 37 + vp * 11) % 310;  // some >= kTargets
      fragment.push_back({t, 2.0F + static_cast<float>((t * 7 + vp) % 97)});
    }
    fragments.push_back(std::move(fragment));
  }
  CensusMatrixBuilder mono_builder(kTargets);
  for (std::uint16_t vp = 0; vp < fragments.size(); ++vp) {
    mono_builder.add_fragment(vp, fragments[vp]);
  }
  const CensusMatrix mono = mono_builder.build();

  DataPlaneConfig plane;
  plane.shard_targets = 31;
  ShardedCensusMatrixBuilder builder(kTargets, plane);
  for (std::uint16_t vp = 0; vp < fragments.size(); ++vp) {
    builder.add_fragment(vp, fragments[vp]);
  }
  const ShardedCensusMatrix sharded = builder.build();
  expect_rows_equal(sharded, mono);
}

TEST_F(ShardedTest, StageFlushScheduleCannotChangeTheResult) {
  // A 1 MiB stage budget forces mid-stream freezes + combine_min folds;
  // the unbounded builder freezes everything at build(). Same elements
  // either way — the flush schedule is unobservable in the output.
  constexpr std::size_t kTargets = 2000;
  const auto adds = sample_adds(kTargets, 60, 200'000);

  DataPlaneConfig bounded;
  bounded.shard_targets = 256;
  bounded.stage_budget_mb = 1;
  ShardedCensusMatrixBuilder bounded_builder(kTargets, bounded);
  DataPlaneConfig unbounded;
  unbounded.shard_targets = 256;
  unbounded.stage_budget_mb = 0;  // stage everything, single freeze
  ShardedCensusMatrixBuilder unbounded_builder(kTargets, unbounded);
  CensusMatrixBuilder mono_builder(kTargets);

  std::vector<TargetRtt> fragment;
  std::uint16_t vp = 0;
  for (std::size_t i = 0; i < adds.size(); ++i) {
    const auto& [t, add_vp, rtt] = adds[i];
    (void)add_vp;
    fragment.push_back({t, rtt});
    if (fragment.size() == 4096 || i + 1 == adds.size()) {
      bounded_builder.add_fragment(vp, fragment);
      unbounded_builder.add_fragment(vp, fragment);
      mono_builder.add_fragment(vp, fragment);
      fragment.clear();
      vp = static_cast<std::uint16_t>((vp + 1) % 60);
    }
  }
  const CensusMatrix mono = mono_builder.build();
  const ShardedCensusMatrix a = bounded_builder.build();
  const ShardedCensusMatrix b = unbounded_builder.build();
  expect_rows_equal(a, mono);
  expect_rows_equal(b, mono);
}

TEST_F(ShardedTest, SpillDropRestoreRoundTrip) {
  constexpr std::size_t kTargets = 400;
  const auto adds = sample_adds(kTargets, 30, 20'000);
  CensusMatrixBuilder mono_builder(kTargets);
  DataPlaneConfig plane;
  plane.shard_targets = 100;
  plane.spill_dir = (dir_ / "spill").string();
  ShardedCensusMatrixBuilder builder(kTargets, plane);
  for (const auto& [t, vp, rtt] : adds) {
    mono_builder.add(t, vp, rtt);
    builder.add(t, vp, rtt);
  }
  const CensusMatrix mono = mono_builder.build();
  ShardedCensusMatrix sharded = builder.build();

  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    EXPECT_GT(sharded.spill_shard(s), 0u) << "shard " << s;
    EXPECT_TRUE(sharded.shard_spilled(s));
    EXPECT_TRUE(fs::exists(dir_ / "spill" / ("shard" + std::to_string(s) +
                                             ".ancs")));
  }
  EXPECT_EQ(sharded.resident_value_bytes(), 0u);
  // Reads on a spilled shard fault pages straight from the spill file.
  expect_rows_equal(sharded, mono);

  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    sharded.restore_shard(s);
    EXPECT_FALSE(sharded.shard_spilled(s));
  }
  EXPECT_EQ(sharded.resident_value_bytes(), sharded.total_value_bytes());
  expect_rows_equal(sharded, mono);
}

TEST_F(ShardedTest, EnforceRssBudgetSpillsUntilUnderBudget) {
  constexpr std::size_t kTargets = 4096;
  const auto adds = sample_adds(kTargets, 50, 400'000);  // ~3 MB of values
  DataPlaneConfig plane;
  plane.shard_targets = 512;
  plane.rss_budget_mb = 1;
  plane.spill_dir = (dir_ / "spill").string();
  ShardedCensusMatrixBuilder builder(kTargets, plane);
  CensusMatrixBuilder mono_builder(kTargets);
  for (const auto& [t, vp, rtt] : adds) {
    builder.add(t, vp, rtt);
    mono_builder.add(t, vp, rtt);
  }
  ShardedCensusMatrix sharded = builder.build();
  EXPECT_GT(sharded.total_value_bytes(), std::size_t{1} << 20);
  EXPECT_LE(sharded.resident_value_bytes(), std::size_t{1} << 20);
  std::size_t spilled = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    if (sharded.shard_spilled(s)) ++spilled;
  }
  EXPECT_GT(spilled, 0u);
  expect_rows_equal(sharded, mono_builder.build());

  // A zero budget never spills.
  DataPlaneConfig no_budget = plane;
  no_budget.rss_budget_mb = 0;
  ShardedCensusMatrixBuilder resident_builder(kTargets, no_budget);
  for (const auto& [t, vp, rtt] : adds) resident_builder.add(t, vp, rtt);
  const ShardedCensusMatrix resident = resident_builder.build();
  EXPECT_EQ(resident.resident_value_bytes(), resident.total_value_bytes());
}

TEST_F(ShardedTest, SpillFileStrictReadAndTruncatedSalvage) {
  constexpr std::size_t kTargets = 128;
  const auto adds = sample_adds(kTargets, 20, 5'000);
  DataPlaneConfig plane;
  plane.shard_targets = 0;  // single shard -> single spill file
  plane.spill_dir = (dir_ / "spill").string();
  ShardedCensusMatrixBuilder builder(kTargets, plane);
  for (const auto& [t, vp, rtt] : adds) builder.add(t, vp, rtt);
  ShardedCensusMatrix sharded = builder.build();
  const std::size_t count = sharded.observation_count();
  ASSERT_GT(sharded.spill_shard(0), 0u);
  const std::string path = (dir_ / "spill" / "shard0.ancs").string();

  // Strict read of the intact file: every record, not salvaged.
  const auto intact = read_spill_file(path);
  ASSERT_TRUE(intact.has_value());
  EXPECT_FALSE(intact->salvaged);
  ASSERT_EQ(intact->values.size(), count);
  const auto row0 = sharded.measurements(0);
  for (std::size_t i = 0; i < row0.size(); ++i) {
    EXPECT_EQ(intact->values[i].vp, row0[i].vp);
    EXPECT_EQ(intact->values[i].rtt_ms, row0[i].rtt_ms);
  }

  // Truncate mid-record: strict read refuses, salvage recovers the
  // whole-record prefix and flags it.
  sharded.restore_shard(0);  // release the file mapping before editing
  const std::size_t full_bytes = fs::file_size(path);
  fs::resize_file(path, full_bytes - sizeof(VpRtt) - 3);
  EXPECT_FALSE(read_spill_file(path).has_value());
  const auto salvaged = read_spill_file(path, /*salvage=*/true);
  ASSERT_TRUE(salvaged.has_value());
  EXPECT_TRUE(salvaged->salvaged);
  EXPECT_EQ(salvaged->values.size(), count - 2);
  for (std::size_t i = 0; i < salvaged->values.size(); ++i) {
    EXPECT_EQ(salvaged->values[i].vp, intact->values[i].vp);
    EXPECT_EQ(salvaged->values[i].rtt_ms, intact->values[i].rtt_ms);
  }

  // Garbage header: nothing recoverable, even with salvage.
  std::ofstream garbage(path, std::ios::binary | std::ios::trunc);
  garbage << "not a spill file";
  garbage.close();
  EXPECT_FALSE(read_spill_file(path, /*salvage=*/true).has_value());
}

// --- Whole-pipeline identity -------------------------------------------------

net::WorldConfig tiny_world_config() {
  net::WorldConfig config;
  config.seed = 33;
  config.unicast_alive_slash24 = 300;
  config.unicast_dead_slash24 = 200;
  return config;
}

const net::SimulatedInternet& tiny_world() {
  static const net::SimulatedInternet world(tiny_world_config());
  return world;
}

const Hitlist& tiny_hitlist() {
  static const Hitlist hitlist =
      Hitlist::from_world(tiny_world()).without_dead();
  return hitlist;
}

FastPingConfig tiny_config() {
  FastPingConfig config;
  config.seed = 77;
  return config;
}

TEST_F(ShardedTest, RunCensusShardedMatchesMonolithic) {
  const auto vps = net::make_planetlab({.node_count = 10, .seed = 55});
  Greylist blacklist_mono;
  const CensusOutput mono = run_census(tiny_world(), vps, tiny_hitlist(),
                                       blacklist_mono, tiny_config());
  DataPlaneConfig plane;
  plane.shard_targets = 37;
  plane.rss_budget_mb = 1;
  plane.spill_dir = (dir_ / "spill").string();
  Greylist blacklist_sharded;
  const ShardedCensusOutput sharded =
      run_census_sharded(tiny_world(), vps, tiny_hitlist(), blacklist_sharded,
                         tiny_config(), plane);
  expect_rows_equal(sharded.data, mono.data);
  EXPECT_EQ(sharded.summary.probes_sent, mono.summary.probes_sent);
  EXPECT_EQ(sharded.summary.echo_replies, mono.summary.echo_replies);
  EXPECT_EQ(sharded.summary.greylist_new, mono.summary.greylist_new);
  EXPECT_EQ(blacklist_sharded.size(), blacklist_mono.size());
}

TEST_F(ShardedTest, CrashResumeSalvageMatchesMonolithic) {
  // A census dies mid-campaign: checkpoints exist, one is truncated. Both
  // planes must salvage the same prefix, re-run the same VPs, and land on
  // element-identical matrices.
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 56});
  const fs::path mono_dir = dir_ / "mono";
  const fs::path sharded_dir = dir_ / "sharded";

  const auto seed_checkpoints = [&](const fs::path& out) {
    Greylist blacklist;
    (void)resume_census(tiny_world(), vps, tiny_hitlist(), blacklist,
                        tiny_config(), out, /*census_id=*/1);
    // Fault injection: truncate one complete checkpoint mid-record and
    // delete another, forcing one salvage + one full re-walk.
    const auto victim = census_checkpoint_path(out, 1, vps[2].id);
    ASSERT_TRUE(fs::exists(victim));
    fs::resize_file(victim, fs::file_size(victim) / 2 + 1);
    fs::remove(census_checkpoint_path(out, 1, vps[5].id));
  };
  seed_checkpoints(mono_dir);
  seed_checkpoints(sharded_dir);

  Greylist blacklist_mono;
  const ResumeReport mono =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_mono,
                    tiny_config(), mono_dir, 1);
  DataPlaneConfig plane;
  plane.shard_targets = 53;
  plane.rss_budget_mb = 1;
  plane.spill_dir = (sharded_dir / "spill").string();
  Greylist blacklist_sharded;
  const ShardedResumeReport sharded = resume_census_sharded(
      tiny_world(), vps, tiny_hitlist(), blacklist_sharded, tiny_config(),
      sharded_dir, 1, plane);

  EXPECT_EQ(sharded.files_salvaged, mono.files_salvaged);
  EXPECT_GE(sharded.files_salvaged, 1u);
  EXPECT_EQ(sharded.vps_rerun, mono.vps_rerun);
  EXPECT_EQ(sharded.vps_reused, mono.vps_reused);
  expect_rows_equal(sharded.output.data, mono.output.data);
}

TEST_F(ShardedTest, CollateShardedMatchesMonolithic) {
  const auto vps = net::make_planetlab({.node_count = 6, .seed = 57});
  Greylist blacklist;
  (void)resume_census(tiny_world(), vps, tiny_hitlist(), blacklist,
                      tiny_config(), dir_, /*census_id=*/2);
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".anc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_FALSE(files.empty());
  const CensusMatrix mono = collate_census_files(
      files, tiny_hitlist().size(), static_cast<CollateStats*>(nullptr));
  DataPlaneConfig plane;
  plane.shard_targets = 41;
  const ShardedCensusMatrix sharded = collate_census_files_sharded(
      files, tiny_hitlist().size(), plane, nullptr);
  expect_rows_equal(sharded, mono);
}

TEST_F(ShardedTest, CombineMinMatchesMonolithic) {
  constexpr std::size_t kTargets = 600;
  const auto epoch1 = sample_adds(kTargets, 25, 9'000);
  auto epoch2 = sample_adds(kTargets, 25, 9'000);
  for (auto& [t, vp, rtt] : epoch2) rtt *= 0.75F;  // some minima move

  const auto build_mono = [&](const auto& adds) {
    CensusMatrixBuilder b(kTargets);
    for (const auto& [t, vp, rtt] : adds) b.add(t, vp, rtt);
    return b.build();
  };
  const auto build_sharded = [&](const auto& adds) {
    DataPlaneConfig plane;
    plane.shard_targets = 89;
    ShardedCensusMatrixBuilder b(kTargets, plane);
    for (const auto& [t, vp, rtt] : adds) b.add(t, vp, rtt);
    return b.build();
  };
  CensusMatrix mono = build_mono(epoch1);
  mono.combine_min(build_mono(epoch2));
  ShardedCensusMatrix sharded = build_sharded(epoch1);
  sharded.combine_min(build_sharded(epoch2));
  expect_rows_equal(sharded, mono);

  // Mismatched shard sizes are incomparable layouts, not silent damage.
  DataPlaneConfig other_plane;
  other_plane.shard_targets = 64;
  ShardedCensusMatrixBuilder other_builder(kTargets, other_plane);
  const ShardedCensusMatrix other = other_builder.build();
  EXPECT_THROW(sharded.combine_min(other), std::invalid_argument);
}

TEST_F(ShardedTest, AnalysisAndDirtyRowsMatchMonolithic) {
  const auto vps = net::make_planetlab({.node_count = 10, .seed = 58});
  Greylist blacklist;
  const CensusOutput mono = run_census(tiny_world(), vps, tiny_hitlist(),
                                       blacklist, tiny_config());
  DataPlaneConfig plane;
  plane.shard_targets = 29;
  Greylist blacklist2;
  const ShardedCensusOutput sharded = run_census_sharded(
      tiny_world(), vps, tiny_hitlist(), blacklist2, tiny_config(), plane);

  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const auto mono_outcomes =
      analyzer.analyze(mono.data, tiny_hitlist(), /*min_vps=*/2);
  const auto sharded_outcomes =
      analyzer.analyze(sharded.data, tiny_hitlist(), /*min_vps=*/2);
  ASSERT_EQ(sharded_outcomes.size(), mono_outcomes.size());
  for (std::size_t i = 0; i < mono_outcomes.size(); ++i) {
    EXPECT_EQ(sharded_outcomes[i].target_index, mono_outcomes[i].target_index);
    EXPECT_EQ(sharded_outcomes[i].result.replicas.size(),
              mono_outcomes[i].result.replicas.size());
  }

  // A second epoch with a different seed: the sharded diff finds exactly
  // the rows the monolithic diff finds, at the same global indices.
  FastPingConfig epoch2 = tiny_config();
  epoch2.seed = 78;
  Greylist b3, b4;
  const CensusOutput mono2 =
      run_census(tiny_world(), vps, tiny_hitlist(), b3, epoch2);
  const ShardedCensusOutput sharded2 = run_census_sharded(
      tiny_world(), vps, tiny_hitlist(), b4, epoch2, plane);
  const auto mono_dirty = analysis::dirty_rows(mono.data, mono2.data);
  const auto sharded_dirty =
      analysis::dirty_rows(sharded.data, sharded2.data);
  EXPECT_EQ(sharded_dirty, mono_dirty);

  // Different layouts are incomparable: every row dirty.
  DataPlaneConfig other_plane;
  other_plane.shard_targets = 64;
  Greylist b5;
  const ShardedCensusOutput other = run_census_sharded(
      tiny_world(), vps, tiny_hitlist(), b5, epoch2, other_plane);
  EXPECT_EQ(
      analysis::dirty_rows(sharded.data, other.data).size(),
      other.data.target_count());
}

}  // namespace
}  // namespace anycast::census
