#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anycast/net/internet.hpp"
#include "anycast/portscan/scanner.hpp"

namespace anycast::portscan {
namespace {

const net::SimulatedInternet& world() {
  static const net::SimulatedInternet instance([] {
    net::WorldConfig config;
    config.seed = 41;
    config.unicast_alive_slash24 = 100;
    config.unicast_dead_slash24 = 100;
    return config;
  }());
  return instance;
}

/// The top-100 deployments are the first 100 in catalog order.
std::span<const net::Deployment> top100() {
  return world().deployments().subspan(0, 100);
}

TEST(PortScanner, OpenPortsAreSubsetOfDeploymentServices) {
  const PortScanner scanner(world());
  for (const net::Deployment& deployment : top100().subspan(0, 20)) {
    const DeploymentScan scan = scanner.scan(deployment);
    EXPECT_EQ(scan.ips_scanned, deployment.prefixes.size());
    std::set<std::uint16_t> allowed;
    for (const net::ServicePort& service : deployment.tcp_services) {
      allowed.insert(service.port);
    }
    for (const PortHit& hit : scan.open_ports) {
      EXPECT_TRUE(allowed.contains(hit.port))
          << deployment.whois_name << " port " << hit.port;
    }
    for (const auto& per_prefix : scan.per_prefix_ports) {
      for (const std::uint16_t port : per_prefix) {
        EXPECT_TRUE(allowed.contains(port));
      }
    }
  }
}

TEST(PortScanner, ResultsAreDeterministic) {
  const PortScanner scanner(world());
  const net::Deployment& cloudflare = *world().deployment_by_name(
      "CLOUDFLARENET,US");
  const DeploymentScan a = scanner.scan(cloudflare);
  const DeploymentScan b = scanner.scan(cloudflare);
  ASSERT_EQ(a.open_ports.size(), b.open_ports.size());
  EXPECT_EQ(a.per_prefix_ports, b.per_prefix_ports);
}

TEST(PortScanner, VisibilityBelowOneHidesSomePerPrefixPorts) {
  const PortScanner scanner(world(), {.per_prefix_visibility = 0.5,
                                      .seed = 3});
  const net::Deployment& cloudflare = *world().deployment_by_name(
      "CLOUDFLARENET,US");
  const DeploymentScan scan = scanner.scan(cloudflare);
  // With 328 prefixes at 50% visibility, per-prefix sets differ.
  std::set<std::vector<std::uint16_t>> distinct(
      scan.per_prefix_ports.begin(), scan.per_prefix_ports.end());
  EXPECT_GT(distinct.size(), 10u);
}

TEST(PortScanner, FullVisibilitySeesEverything) {
  const PortScanner scanner(world(), {.per_prefix_visibility = 1.0,
                                      .seed = 3});
  const net::Deployment& google = *world().deployment_by_name("GOOGLE,US");
  const DeploymentScan scan = scanner.scan(google);
  EXPECT_EQ(scan.open_ports.size(), google.tcp_services.size());
  EXPECT_EQ(scan.ips_responsive, scan.ips_scanned);
}

TEST(PortScanner, ServiceClassificationAttached) {
  const PortScanner scanner(world());
  const net::Deployment& google = *world().deployment_by_name("GOOGLE,US");
  const DeploymentScan scan = scanner.scan(google);
  for (const PortHit& hit : scan.open_ports) {
    if (hit.port == 53) EXPECT_EQ(hit.service, "domain");
    if (hit.port == 80) {
      EXPECT_EQ(hit.service, "http");
      EXPECT_EQ(hit.software, "Google httpd");
    }
    if (hit.port == 443) EXPECT_TRUE(hit.ssl);
  }
}

TEST(PortScanner, NoOpenPortDeploymentsScanEmpty) {
  const PortScanner scanner(world());
  const net::Deployment* filtered = world().deployment_by_name("MASERGY,US");
  ASSERT_NE(filtered, nullptr);
  const DeploymentScan scan = scanner.scan(*filtered);
  EXPECT_TRUE(scan.open_ports.empty());
  EXPECT_EQ(scan.ips_responsive, 0u);
}

TEST(Summarize, HeaderNumbersInPaperBallpark) {
  // Fig. 14 header: 812 IPs, 81 ASes, ~10.5k ports, hundreds of well-known
  // services (bounded here by the embedded registry), ~30 software.
  const PortScanner scanner(world());
  const auto scans = scanner.scan_all(top100());
  const ScanStatistics stats = summarize(scans);
  EXPECT_NEAR(static_cast<double>(stats.ases_with_open_port), 81.0, 3.0);
  EXPECT_NEAR(static_cast<double>(stats.ips_responsive), 812.0, 40.0);
  EXPECT_GT(stats.distinct_open_ports, 10000u);
  EXPECT_LT(stats.distinct_open_ports, 11000u);
  EXPECT_GT(stats.well_known, 100u);
  EXPECT_NEAR(static_cast<double>(stats.software_packages), 30.0, 3.0);
  EXPECT_GT(stats.ssl_ports, 5u);
}

TEST(RankPorts, ByAsTopIncludesDnsWebBgp) {
  const PortScanner scanner(world());
  const auto scans = scanner.scan_all(top100());
  const auto ranking = rank_ports_by_as(scans);
  ASSERT_GE(ranking.size(), 10u);
  std::set<std::uint16_t> top10;
  for (std::size_t i = 0; i < 10; ++i) top10.insert(ranking[i].first);
  // Fig. 14 top plot: 53, 80, 443 dominate; 179 and 22 appear.
  EXPECT_TRUE(top10.contains(53));
  EXPECT_TRUE(top10.contains(80));
  EXPECT_TRUE(top10.contains(443));
  EXPECT_TRUE(top10.contains(22));
  // Descending counts.
  for (std::size_t i = 1; i < ranking.size(); ++i) {
    EXPECT_GE(ranking[i - 1].second, ranking[i].second);
  }
}

TEST(RankPorts, ClassImbalanceCloudflareDominatesPerPrefix) {
  // Fig. 14 bottom plot: per-/24 counts are dominated by CloudFlare's 328
  // /24s, pulling its alternate HTTP ports (2052..2096) into the top-10 —
  // the class-imbalance argument for per-AS statistics.
  const PortScanner scanner(world());
  const auto scans = scanner.scan_all(top100());
  const auto by_prefix = rank_ports_by_prefix(scans);
  ASSERT_GE(by_prefix.size(), 10u);
  std::set<std::uint16_t> top10;
  for (std::size_t i = 0; i < 10; ++i) top10.insert(by_prefix[i].first);
  int cloudflare_specials = 0;
  for (const std::uint16_t port : {2052, 2053, 2082, 2083, 2086, 2087, 2095,
                                   2096, 8443, 8880}) {
    if (top10.contains(port)) ++cloudflare_specials;
  }
  EXPECT_GE(cloudflare_specials, 4);
  // Whereas per-AS, none of those enters the top-10.
  const auto by_as = rank_ports_by_as(scans);
  std::set<std::uint16_t> as_top10;
  for (std::size_t i = 0; i < 10; ++i) as_top10.insert(by_as[i].first);
  int specials_in_as_top = 0;
  for (const std::uint16_t port : {2052, 2053, 2082, 2083, 2086, 2087}) {
    if (as_top10.contains(port)) ++specials_in_as_top;
  }
  EXPECT_LE(specials_in_as_top, 1);
}

TEST(Summarize, OvhAndIncapsulaAreTheServiceFootprintGiants) {
  const PortScanner scanner(world());
  const auto ovh = scanner.scan(*world().deployment_by_name("OVH,FR"));
  const auto incapsula =
      scanner.scan(*world().deployment_by_name("INCAPSULA,US"));
  EXPECT_GT(ovh.open_ports.size(), 9500u);     // ~10,148 in the paper
  EXPECT_GT(incapsula.open_ports.size(), 250u);  // ~313 in the paper
  EXPECT_LT(incapsula.open_ports.size(), 330u);
}

}  // namespace
}  // namespace anycast::portscan
