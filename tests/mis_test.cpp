#include <gtest/gtest.h>

#include <vector>

#include "anycast/core/mis.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::core {
namespace {

using geodesy::Disk;
using geodesy::GeoPoint;

std::vector<Disk> chain(int count, double spacing_km, double radius_km) {
  // Disks along the equator at fixed longitude spacing.
  std::vector<Disk> disks;
  for (int i = 0; i < count; ++i) {
    disks.emplace_back(GeoPoint(0.0, i * spacing_km / 111.19), radius_km);
  }
  return disks;
}

bool is_independent(const std::vector<Disk>& disks,
                    const std::vector<std::size_t>& picked) {
  for (std::size_t i = 0; i < picked.size(); ++i) {
    for (std::size_t j = i + 1; j < picked.size(); ++j) {
      if (disks[picked[i]].intersects(disks[picked[j]])) return false;
    }
  }
  return true;
}

TEST(GreedyMis, EmptyAndSingle) {
  EXPECT_TRUE(greedy_mis({}).empty());
  const std::vector<Disk> one{Disk(GeoPoint(0, 0), 10.0)};
  EXPECT_EQ(greedy_mis(one).size(), 1u);
}

TEST(GreedyMis, AllDisjointKeepsEverything) {
  const auto disks = chain(8, 1000.0, 100.0);
  EXPECT_EQ(greedy_mis(disks).size(), 8u);
}

TEST(GreedyMis, AllOverlappingKeepsOne) {
  const auto disks = chain(8, 10.0, 500.0);
  EXPECT_EQ(greedy_mis(disks).size(), 1u);
}

TEST(GreedyMis, PrefersSmallDisks) {
  // A huge disk covering two small disjoint ones: greedy must pick the two
  // small disks (better recall), not the big one.
  std::vector<Disk> disks{
      Disk(GeoPoint(0.0, 5.0), 2000.0),
      Disk(GeoPoint(0.0, 0.0), 50.0),
      Disk(GeoPoint(0.0, 10.0), 50.0),
  };
  const auto picked = greedy_mis(disks);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_TRUE(is_independent(disks, picked));
  for (const std::size_t idx : picked) EXPECT_NE(idx, 0u);
}

TEST(GreedyMis, OutputIsIndependentSet) {
  rng::Xoshiro256 gen(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Disk> disks;
    const int n = 3 + static_cast<int>(rng::uniform_index(gen, 30));
    for (int i = 0; i < n; ++i) {
      disks.emplace_back(GeoPoint(rng::uniform(gen, -60.0, 60.0),
                                  rng::uniform(gen, -180.0, 180.0)),
                         rng::uniform(gen, 50.0, 3000.0));
    }
    EXPECT_TRUE(is_independent(disks, greedy_mis(disks)));
  }
}

TEST(GreedyMis, MaximalNoDiskCanBeAdded) {
  rng::Xoshiro256 gen(43);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Disk> disks;
    for (int i = 0; i < 20; ++i) {
      disks.emplace_back(GeoPoint(rng::uniform(gen, -60.0, 60.0),
                                  rng::uniform(gen, -180.0, 180.0)),
                         rng::uniform(gen, 100.0, 2000.0));
    }
    const auto picked = greedy_mis(disks);
    for (std::size_t candidate = 0; candidate < disks.size(); ++candidate) {
      if (std::find(picked.begin(), picked.end(), candidate) != picked.end()) {
        continue;
      }
      const bool conflicts = std::any_of(
          picked.begin(), picked.end(), [&](std::size_t held) {
            return disks[candidate].intersects(disks[held]);
          });
      EXPECT_TRUE(conflicts) << "greedy output not maximal";
    }
  }
}

TEST(ExactMis, MatchesHandComputedOptimum) {
  // Pentagon-ish case where greedy can be suboptimal: a small bridge disk
  // plus two disjoint larger disks on either side.
  std::vector<Disk> disks{
      Disk(GeoPoint(0.0, 5.0), 100.0),    // small bridge
      Disk(GeoPoint(0.0, 0.0), 500.0),    // left, overlaps bridge only
      Disk(GeoPoint(0.0, 10.0), 500.0),   // right, overlaps bridge only
  };
  ASSERT_TRUE(disks[0].intersects(disks[1]));
  ASSERT_TRUE(disks[0].intersects(disks[2]));
  ASSERT_FALSE(disks[1].intersects(disks[2]));
  const auto exact = exact_mis(disks);
  EXPECT_EQ(exact.size(), 2u);  // {left, right} beats {bridge}
  EXPECT_TRUE(is_independent(disks, exact));
}

// Property sweep: exact >= greedy >= exact/5 (the 5-approximation bound),
// and both outputs are independent sets.
class MisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MisProperty, GreedyWithinApproximationBound) {
  rng::Xoshiro256 gen(GetParam());
  std::vector<Disk> disks;
  const int n = 5 + static_cast<int>(rng::uniform_index(gen, 18));
  for (int i = 0; i < n; ++i) {
    disks.emplace_back(GeoPoint(rng::uniform(gen, -60.0, 60.0),
                                rng::uniform(gen, -180.0, 180.0)),
                       rng::uniform(gen, 100.0, 4000.0));
  }
  const auto greedy = greedy_mis(disks);
  const auto exact = exact_mis(disks);
  EXPECT_TRUE(is_independent(disks, greedy));
  EXPECT_TRUE(is_independent(disks, exact));
  EXPECT_LE(greedy.size(), exact.size());
  EXPECT_GE(greedy.size() * 5, exact.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MisProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(HasDisjointPair, MatchesDefinition) {
  EXPECT_FALSE(has_disjoint_pair({}));
  const auto overlapping = chain(5, 10.0, 500.0);
  EXPECT_FALSE(has_disjoint_pair(overlapping));
  const auto spread = chain(3, 2000.0, 100.0);
  EXPECT_TRUE(has_disjoint_pair(spread));
}

TEST(HasDisjointPair, ConsistentWithExactMis) {
  rng::Xoshiro256 gen(77);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<Disk> disks;
    const int n = 2 + static_cast<int>(rng::uniform_index(gen, 12));
    for (int i = 0; i < n; ++i) {
      disks.emplace_back(GeoPoint(rng::uniform(gen, -60.0, 60.0),
                                  rng::uniform(gen, -180.0, 180.0)),
                         rng::uniform(gen, 200.0, 6000.0));
    }
    EXPECT_EQ(has_disjoint_pair(disks), exact_mis(disks).size() >= 2);
  }
}

}  // namespace
}  // namespace anycast::core
