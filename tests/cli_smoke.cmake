# Drives the anycastd CLI end-to-end: run a small census to disk, analyze
# it back with GeoJSON export, and check the outputs exist and parse.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c1 --vps 12 --unicast 400
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census failed (${rc}): ${out}${err}")
endif()

file(GLOB anc_files ${WORK_DIR}/c1/*.anc)
list(LENGTH anc_files anc_count)
if(NOT anc_count EQUAL 12)
  message(FATAL_ERROR "expected 12 census files, got ${anc_count}")
endif()

execute_process(
  COMMAND ${ANYCASTD} analyze --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --geojson ${WORK_DIR}/map.geojson
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycast: [0-9]+ /24 in [0-9]+ ASes")
  message(FATAL_ERROR "analyze output missing summary: ${out}")
endif()

file(READ ${WORK_DIR}/map.geojson geojson)
if(NOT geojson MATCHES "FeatureCollection")
  message(FATAL_ERROR "GeoJSON export malformed")
endif()

execute_process(
  COMMAND ${ANYCASTD} portscan --top 10 --unicast 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "portscan failed (${rc})")
endif()

# Chaos leg: a fault-injected census must still produce one checkpoint per
# VP, resume must repair the damage we do, and analyze must still work.
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c2 --vps 12 --unicast 400
          --chaos --retries 2 --quarantine-drop 0.5
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos census failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "VP outcomes: [0-9]+ completed")
  message(FATAL_ERROR "chaos census missing outcome summary: ${out}")
endif()

file(GLOB chaos_files ${WORK_DIR}/c2/*.anc)
list(LENGTH chaos_files chaos_count)
if(NOT chaos_count EQUAL 12)
  message(FATAL_ERROR "expected 12 chaos census files, got ${chaos_count}")
endif()

# Destroy one checkpoint (simulating a crash mid-write) and delete
# another; resume must re-run exactly those VPs and reuse the rest.
file(WRITE ${WORK_DIR}/c2/census1_vp3.anc "not a census file")
file(REMOVE ${WORK_DIR}/c2/census1_vp5.anc)

execute_process(
  COMMAND ${ANYCASTD} resume --out ${WORK_DIR}/c2 --vps 12 --unicast 400
          --retries 2 --quarantine-drop 0.5
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "resume: [0-9]+ checkpoints reused, [0-9]+ VPs re-run")
  message(FATAL_ERROR "resume output missing reuse summary: ${out}")
endif()

execute_process(
  COMMAND ${ANYCASTD} analyze --in ${WORK_DIR}/c2 --vps 12 --unicast 400
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos analyze failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycast: [0-9]+ /24 in [0-9]+ ASes")
  message(FATAL_ERROR "chaos analyze output missing summary: ${out}")
endif()
