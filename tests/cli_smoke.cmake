# Drives the anycastd CLI end-to-end: run a small census to disk, analyze
# it back with GeoJSON export, and check the outputs exist and parse.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

# Pulls one counter value out of a JSON metrics scrape.
function(metric_value json name out_var)
  string(REGEX MATCH "\"name\": \"${name}\"[^\n]*\"value\": ([0-9]+)"
         _match "${json}")
  set(value "${CMAKE_MATCH_1}")  # copy: a later MATCHES clobbers it
  if(NOT value MATCHES "^[0-9]+$")
    message(FATAL_ERROR "metric ${name} missing from scrape")
  endif()
  set(${out_var} "${value}" PARENT_SCOPE)
endfunction()

execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c1 --vps 12 --unicast 400
          --metrics-out ${WORK_DIR}/metrics.json --verbose
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census failed (${rc}): ${out}${err}")
endif()

# --verbose prints the metrics table and the span tree.
if(NOT out MATCHES "-- metrics ")
  message(FATAL_ERROR "verbose census missing metrics table: ${out}")
endif()
if(NOT out MATCHES "census_probes_sent")
  message(FATAL_ERROR "verbose table missing census counters: ${out}")
endif()
if(NOT out MATCHES "-- trace spans ")
  message(FATAL_ERROR "verbose census missing span tree: ${out}")
endif()
if(NOT out MATCHES "resume_census")
  message(FATAL_ERROR "span tree missing the census root span: ${out}")
endif()

# --metrics-out produced a JSON scrape with the census instruments.
if(NOT EXISTS ${WORK_DIR}/metrics.json)
  message(FATAL_ERROR "--metrics-out produced no file")
endif()
file(READ ${WORK_DIR}/metrics.json metrics_json)
if(NOT metrics_json MATCHES "\"metrics\": \\[")
  message(FATAL_ERROR "metrics scrape is not the expected JSON shape")
endif()
metric_value("${metrics_json}" census_probes_sent clean_sent)
if(clean_sent EQUAL 0)
  message(FATAL_ERROR "census scrape claims zero probes sent")
endif()

file(GLOB anc_files ${WORK_DIR}/c1/*.anc)
list(LENGTH anc_files anc_count)
if(NOT anc_count EQUAL 12)
  message(FATAL_ERROR "expected 12 census files, got ${anc_count}")
endif()

execute_process(
  COMMAND ${ANYCASTD} analyze --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --geojson ${WORK_DIR}/map.geojson
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycast: [0-9]+ /24 in [0-9]+ ASes")
  message(FATAL_ERROR "analyze output missing summary: ${out}")
endif()

file(READ ${WORK_DIR}/map.geojson geojson)
if(NOT geojson MATCHES "FeatureCollection")
  message(FATAL_ERROR "GeoJSON export malformed")
endif()

execute_process(
  COMMAND ${ANYCASTD} portscan --top 10 --unicast 100
          --metrics-out ${WORK_DIR}/portscan.prom
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "portscan failed (${rc})")
endif()

# A .prom suffix selects the Prometheus exposition format. Counter TYPE
# lines must declare the *_total family promtool expects.
file(READ ${WORK_DIR}/portscan.prom prom)
if(NOT prom MATCHES "# TYPE portscan_deployments_total counter")
  message(FATAL_ERROR "Prometheus scrape missing portscan counter family")
endif()
if(NOT prom MATCHES "portscan_deployments_total [0-9]+")
  message(FATAL_ERROR "Prometheus scrape missing counter sample")
endif()

# An unwritable --metrics-out path must fail fast with a clean error —
# before any probing starts, so no census directory appears.
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c3 --vps 2 --unicast 50
          --metrics-out ${WORK_DIR}/no_such_dir/metrics.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unwritable --metrics-out path was not rejected")
endif()
if(NOT err MATCHES "cannot open --metrics-out path")
  message(FATAL_ERROR "unwritable path error message missing: ${err}")
endif()
if(EXISTS ${WORK_DIR}/c3)
  message(FATAL_ERROR "census ran despite an unwritable metrics path")
endif()

# Serve leg: the query plane answers a request file against the census
# just written, deterministically.
file(WRITE ${WORK_DIR}/queries.txt
  "# smoke queries\npoint 0\nbatch 0 1 2 3 4 5 6 7\nreplicas 2\n"
  "nearest 2 48.85 2.35\n")
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "point 0 target=0 anycast=[01] responsive=[01]")
  message(FATAL_ERROR "serve missing point answer: ${out}")
endif()
if(NOT out MATCHES "batch n=8")
  message(FATAL_ERROR "serve missing batch answer: ${out}")
endif()
if(NOT err MATCHES "serve: answered 4 queries from snapshot 1")
  message(FATAL_ERROR "serve missing summary line: ${err}")
endif()

# The same answers must be byte-identical on a second run.
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out2 ERROR_VARIABLE err)
if(NOT rc EQUAL 0 OR NOT out STREQUAL out2)
  message(FATAL_ERROR "serve answers are not deterministic")
endif()

# A malformed query batch is refused atomically: rc 2, the offending
# line named, and NO answers emitted for the lines before it.
file(WRITE ${WORK_DIR}/bad_queries.txt "point 0\nbogus 12 13\n")
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/bad_queries.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "malformed query batch exited ${rc}, want 2: ${err}")
endif()
if(NOT err MATCHES "serve: bad query at line 2")
  message(FATAL_ERROR "malformed batch error missing line number: ${err}")
endif()
if(out MATCHES "point 0 target=0")
  message(FATAL_ERROR "malformed batch still emitted answers: ${out}")
endif()

# An unwritable --metrics-out during serve fails fast, before the
# snapshot is even loaded.
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt
          --metrics-out ${WORK_DIR}/no_such_dir/serve_metrics.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve with unwritable --metrics-out did not fail")
endif()
if(NOT err MATCHES "cannot open --metrics-out path")
  message(FATAL_ERROR "serve metrics-out error message missing: ${err}")
endif()

# Chaos leg: a fault-injected census must still produce one checkpoint per
# VP, resume must repair the damage we do, and analyze must still work.
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c2 --vps 12 --unicast 400
          --chaos --outage-rate 0.9 --retries 2 --quarantine-drop 0.5
          --metrics-out ${WORK_DIR}/chaos_metrics.json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos census failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "VP outcomes: [0-9]+ completed")
  message(FATAL_ERROR "chaos census missing outcome summary: ${out}")
endif()

# Exact probe accounting under chaos: every probe sent is answered,
# rejected, organically timed out, or lost to an injected fault.
file(READ ${WORK_DIR}/chaos_metrics.json chaos_json)
metric_value("${chaos_json}" census_probes_sent sent)
metric_value("${chaos_json}" census_replies_echo echo)
metric_value("${chaos_json}" census_replies_prohibited prohibited)
metric_value("${chaos_json}" census_timeouts_organic organic)
metric_value("${chaos_json}" census_timeouts_injected injected)
if(injected EQUAL 0)
  message(FATAL_ERROR "outage-rate 0.9 chaos census injected no timeouts")
endif()
math(EXPR accounted "${echo} + ${prohibited} + ${organic} + ${injected}")
if(NOT accounted EQUAL sent)
  message(FATAL_ERROR "probe accounting broken: sent ${sent} != "
          "echo ${echo} + prohibited ${prohibited} + organic ${organic} "
          "+ injected ${injected} = ${accounted}")
endif()

file(GLOB chaos_files ${WORK_DIR}/c2/*.anc)
list(LENGTH chaos_files chaos_count)
if(NOT chaos_count EQUAL 12)
  message(FATAL_ERROR "expected 12 chaos census files, got ${chaos_count}")
endif()

# Destroy one checkpoint (simulating a crash mid-write) and delete
# another; resume must re-run exactly those VPs and reuse the rest.
file(WRITE ${WORK_DIR}/c2/census1_vp3.anc "not a census file")
file(REMOVE ${WORK_DIR}/c2/census1_vp5.anc)

execute_process(
  COMMAND ${ANYCASTD} resume --out ${WORK_DIR}/c2 --vps 12 --unicast 400
          --retries 2 --quarantine-drop 0.5
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "resume failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "resume: [0-9]+ checkpoints reused, [0-9]+ VPs re-run")
  message(FATAL_ERROR "resume output missing reuse summary: ${out}")
endif()

execute_process(
  COMMAND ${ANYCASTD} analyze --in ${WORK_DIR}/c2 --vps 12 --unicast 400
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos analyze failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycast: [0-9]+ /24 in [0-9]+ ASes")
  message(FATAL_ERROR "chaos analyze output missing summary: ${out}")
endif()

# Diff query across two snapshot directories (c1 clean vs c2 repaired
# chaos census of the same world).
file(WRITE ${WORK_DIR}/diff_query.txt "diff\n")
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c2 --vps 12 --unicast 400
          --against ${WORK_DIR}/c1 --queries ${WORK_DIR}/diff_query.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve diff failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "diff dirty=[0-9]+ changes=[0-9]+")
  message(FATAL_ERROR "serve diff answer malformed: ${out}")
endif()

# A snapshot directory with a checksum-failing file is refused strictly —
# serving silently-partial data is worse than not serving — and served
# from the recoverable remainder only under --allow-salvage.
file(MAKE_DIRECTORY ${WORK_DIR}/c_bad)
file(GLOB c1_files ${WORK_DIR}/c1/*.anc)
file(COPY ${c1_files} DESTINATION ${WORK_DIR}/c_bad)
file(WRITE ${WORK_DIR}/c_bad/census1_vp4.anc "garbage, not a census file")
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c_bad --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "serve accepted a checksum-failing snapshot")
endif()
if(NOT err MATCHES "failed checksum validation")
  message(FATAL_ERROR "serve refusal message missing: ${err}")
endif()
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c_bad --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt --allow-salvage
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve --allow-salvage failed (${rc}): ${out}${err}")
endif()
if(NOT err MATCHES "serve: answered 4 queries")
  message(FATAL_ERROR "salvage serve missing summary: ${err}")
endif()

# Flight recorder leg: a census with the journal, trace export, and live
# progress on. The progress heartbeat goes to stderr; the journal is
# JSONL with walk events; the trace is a Trace Event Format JSON object.
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/d1 --vps 12 --unicast 400
          --threads 2 --journal-out ${WORK_DIR}/d1.jsonl
          --trace-out ${WORK_DIR}/d1.trace.json --progress
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "flight recorder census failed (${rc}): ${out}${err}")
endif()
if(NOT err MATCHES "\\[census\\] [0-9]+/12 VPs")
  message(FATAL_ERROR "--progress printed no heartbeat line: ${err}")
endif()
file(READ ${WORK_DIR}/d1.jsonl journal1)
if(NOT journal1 MATCHES "\"key\":\"census.walk\"")
  message(FATAL_ERROR "journal missing census.walk events")
endif()
if(NOT journal1 MATCHES "\"key\":\"census.summary\"")
  message(FATAL_ERROR "journal missing the census.summary event")
endif()
file(READ ${WORK_DIR}/d1.trace.json trace1)
if(NOT trace1 MATCHES "\"traceEvents\":")
  message(FATAL_ERROR "trace export is not Trace Event Format JSON")
endif()
if(NOT trace1 MATCHES "resume_census")
  message(FATAL_ERROR "trace export missing the census root span")
endif()
if(NOT trace1 MATCHES "\"otherData\":")
  message(FATAL_ERROR "trace export missing the drop-accounting footer")
endif()

# Unwritable journal/trace paths must fail fast, before any probing.
foreach(flag journal-out trace-out)
  execute_process(
    COMMAND ${ANYCASTD} census --out ${WORK_DIR}/d_reject --vps 2
            --unicast 50 --${flag} ${WORK_DIR}/no_such_dir/out.file
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "unwritable --${flag} path was not rejected")
  endif()
  if(NOT err MATCHES "cannot open --${flag} path")
    message(FATAL_ERROR "unwritable --${flag} error message missing: ${err}")
  endif()
  if(EXISTS ${WORK_DIR}/d_reject)
    message(FATAL_ERROR "census ran despite an unwritable --${flag} path")
  endif()
endforeach()

# Drift diff: the same census at a different thread count must journal a
# byte-identical semantic stream — `report --diff` proves it (rc 0).
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/d2 --vps 12 --unicast 400
          --threads 8 --journal-out ${WORK_DIR}/d2.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "second flight recorder census failed (${rc})")
endif()
execute_process(
  COMMAND ${ANYCASTD} report --diff ${WORK_DIR}/d1.jsonl
          --against ${WORK_DIR}/d2.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "identical runs reported drift (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "zero drift: [0-9]+ semantic events identical")
  message(FATAL_ERROR "drift diff output malformed: ${out}")
endif()

# A chaos run's journal diverges from the clean run's — rc 3 and the
# first diverging event printed from both sides.
execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/d3 --vps 12 --unicast 400
          --chaos --outage-rate 0.9 --journal-out ${WORK_DIR}/d3.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "chaos journal census failed (${rc})")
endif()
execute_process(
  COMMAND ${ANYCASTD} report --diff ${WORK_DIR}/d1.jsonl
          --against ${WORK_DIR}/d3.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR "chaos drift not detected (rc ${rc}): ${out}")
endif()
if(NOT out MATCHES "DRIFT at semantic event [0-9]+")
  message(FATAL_ERROR "drift report missing divergence point: ${out}")
endif()

# Run report: checkpoints + journal render as one Markdown document.
execute_process(
  COMMAND ${ANYCASTD} report --in ${WORK_DIR}/d1 --vps 12 --unicast 400
          --journal ${WORK_DIR}/d1.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run report failed (${rc}): ${out}${err}")
endif()
foreach(section "# anycastd run report" "## Census characterisation"
        "## Flight recorder" "## Semantic metrics snapshot")
  if(NOT out MATCHES "${section}")
    message(FATAL_ERROR "run report missing section '${section}': ${out}")
  endif()
endforeach()
if(NOT out MATCHES "census.walk")
  message(FATAL_ERROR "run report missing journal event table: ${out}")
endif()

# Resume with no checkpoints on disk must refuse with a clear one-line
# error and a nonzero exit, instead of silently running a fresh census.
execute_process(
  COMMAND ${ANYCASTD} resume --out ${WORK_DIR}/never_ran --vps 4
          --unicast 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "resume with nothing to resume did not fail")
endif()
if(NOT err MATCHES "resume: no checkpoint for census [0-9]+ in")
  message(FATAL_ERROR "resume-nothing error message missing: ${err}")
endif()

# Watch leg: a churning multi-round campaign must journal a byte-identical
# semantic stream at any thread count — the tentpole determinism contract.
# --serve-queries keeps a query reader live across every round's epoch
# swap and answers the file once more against the final snapshot; the
# final answers are deterministic, so they must not differ by thread
# count either.
file(WRITE ${WORK_DIR}/watch_queries.txt "point 0\nbatch 0 1 2 3\n")
foreach(threads 2 8)
  execute_process(
    COMMAND ${ANYCASTD} watch --out ${WORK_DIR}/w${threads} --rounds 3
            --vps 12 --unicast 400 --churn --threads ${threads}
            --journal-out ${WORK_DIR}/w${threads}.jsonl
            --serve-queries ${WORK_DIR}/watch_queries.txt
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "watch (${threads} threads) failed (${rc}): "
            "${out}${err}")
  endif()
  if(NOT out MATCHES "watch: campaign at 3/3 rounds")
    message(FATAL_ERROR "watch output missing campaign summary: ${out}")
  endif()
  if(NOT out MATCHES "point 0 target=0")
    message(FATAL_ERROR "watch --serve-queries printed no final answers: "
            "${out}")
  endif()
  if(NOT err MATCHES "serve: [0-9]+ in-campaign batches across [0-9]+ snapshot")
    message(FATAL_ERROR "watch --serve-queries missing serving summary: "
            "${err}")
  endif()
  string(REGEX MATCH "point 0 target=0[^\n]*" serve_answer_${threads}
         "${out}")
endforeach()
if(NOT serve_answer_2 STREQUAL serve_answer_8)
  message(FATAL_ERROR "watch serve answers differ by thread count: "
          "'${serve_answer_2}' vs '${serve_answer_8}'")
endif()
execute_process(
  COMMAND ${ANYCASTD} report --diff ${WORK_DIR}/w2.jsonl
          --against ${WORK_DIR}/w8.jsonl
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "watch journals drifted across thread counts "
          "(${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "zero drift: [0-9]+ semantic events identical")
  message(FATAL_ERROR "watch drift diff output malformed: ${out}")
endif()

# Watchdog drill: the daemon aborts round 2 mid-walk with the dedicated
# exit code, and a plain restart over the same directory resumes the
# half-done round and finishes the campaign.
execute_process(
  COMMAND ${ANYCASTD} watch --out ${WORK_DIR}/w_drill --rounds 3 --vps 12
          --unicast 400 --churn --die-at-round 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 70)
  message(FATAL_ERROR "watchdog drill exited ${rc}, want 70: ${out}${err}")
endif()
if(NOT out MATCHES "watchdog abort drill fired")
  message(FATAL_ERROR "drill output missing abort notice: ${out}")
endif()
execute_process(
  COMMAND ${ANYCASTD} watch --out ${WORK_DIR}/w_drill --rounds 3 --vps 12
          --unicast 400 --churn
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "watch restart after drill failed (${rc}): "
          "${out}${err}")
endif()
if(NOT out MATCHES "round 2: healthy[^\n]*\\[resumed\\]")
  message(FATAL_ERROR "restart did not resume the aborted round: ${out}")
endif()
if(NOT out MATCHES "watch: campaign at 3/3 rounds")
  message(FATAL_ERROR "restarted campaign did not finish: ${out}")
endif()

# Telemetry leg: the serving protocol's introspection verbs, SLO burn
# state, the periodic metrics flusher, and `top` over the flushed file.
file(WRITE ${WORK_DIR}/telemetry_queries.txt
  "point 0\nbatch 0 1 2 3\nstats\nslo\nmetricsdump\n")
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/telemetry_queries.txt
          --slo "p99_query_us=5000,availability=0.999"
          --metrics-out ${WORK_DIR}/live.json --metrics-interval 0.2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry serve failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "stats snapshot=[0-9]+ targets=[0-9]+")
  message(FATAL_ERROR "serve stats verb missing: ${out}")
endif()
if(NOT out MATCHES "slo objectives=2")
  message(FATAL_ERROR "serve slo verb missing objectives: ${out}")
endif()
if(NOT out MATCHES "state=ok")
  message(FATAL_ERROR "serve slo verb missing burn state: ${out}")
endif()
if(NOT out MATCHES "\"latency\": \\[")
  message(FATAL_ERROR "metricsdump missing the latency section: ${out}")
endif()
if(NOT err MATCHES "metrics-interval: wrote [0-9]+ periodic scrape")
  message(FATAL_ERROR "metrics flusher summary missing: ${err}")
endif()
file(READ ${WORK_DIR}/live.json live_doc)
if(NOT live_doc MATCHES "\"metrics\": \\[")
  message(FATAL_ERROR "flushed telemetry document malformed")
endif()
if(NOT live_doc MATCHES "\"slo\": \\[")
  message(FATAL_ERROR "flushed telemetry document missing slo section")
endif()

# `anycastd top` renders one frame from the flushed document.
execute_process(
  COMMAND ${ANYCASTD} top --metrics ${WORK_DIR}/live.json --iterations 1
          --plain
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "anycastd top failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycastd top")
  message(FATAL_ERROR "top frame missing header: ${out}")
endif()
if(NOT out MATCHES "serving_query_ns")
  message(FATAL_ERROR "top frame missing latency rows: ${out}")
endif()

# top over a missing file fails with a nonzero exit, not a blank frame.
execute_process(
  COMMAND ${ANYCASTD} top --metrics ${WORK_DIR}/no_such_file.json
          --iterations 1 --plain
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "top over a missing file did not fail")
endif()

# A malformed --slo spec is rejected before any work starts.
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt --slo "p99_bogus=1"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "bad --slo spec exited ${rc}, want 2: ${err}")
endif()
if(NOT err MATCHES "bad --slo spec")
  message(FATAL_ERROR "bad --slo error message missing: ${err}")
endif()

# --metrics-interval without a --metrics-out sink is refused.
execute_process(
  COMMAND ${ANYCASTD} serve --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --queries ${WORK_DIR}/queries.txt --metrics-interval 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "--metrics-interval without sink exited ${rc}: ${err}")
endif()
if(NOT err MATCHES "needs --metrics-out")
  message(FATAL_ERROR "metrics-interval error message missing: ${err}")
endif()
