# Drives the anycastd CLI end-to-end: run a small census to disk, analyze
# it back with GeoJSON export, and check the outputs exist and parse.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${ANYCASTD} census --out ${WORK_DIR}/c1 --vps 12 --unicast 400
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "census failed (${rc}): ${out}${err}")
endif()

file(GLOB anc_files ${WORK_DIR}/c1/*.anc)
list(LENGTH anc_files anc_count)
if(NOT anc_count EQUAL 12)
  message(FATAL_ERROR "expected 12 census files, got ${anc_count}")
endif()

execute_process(
  COMMAND ${ANYCASTD} analyze --in ${WORK_DIR}/c1 --vps 12 --unicast 400
          --geojson ${WORK_DIR}/map.geojson
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "analyze failed (${rc}): ${out}${err}")
endif()
if(NOT out MATCHES "anycast: [0-9]+ /24 in [0-9]+ ASes")
  message(FATAL_ERROR "analyze output missing summary: ${out}")
endif()

file(READ ${WORK_DIR}/map.geojson geojson)
if(NOT geojson MATCHES "FeatureCollection")
  message(FATAL_ERROR "GeoJSON export malformed")
endif()

execute_process(
  COMMAND ${ANYCASTD} portscan --top 10 --unicast 100
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "portscan failed (${rc})")
endif()
