#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "anycast/rng/distributions.hpp"
#include "anycast/rng/lfsr.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::rng {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, DeterministicAndSeedSensitive) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next(), b.next());
  Xoshiro256 c(99);
  Xoshiro256 d(100);
  bool any_diff = false;
  for (int i = 0; i < 64; ++i) {
    if (c.next() != d.next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro256, SplitStreamsAreIndependentButReproducible) {
  const Xoshiro256 base(7);
  Xoshiro256 s1 = base.split(1);
  Xoshiro256 s1_again = base.split(1);
  Xoshiro256 s2 = base.split(2);
  EXPECT_EQ(s1.next(), s1_again.next());
  EXPECT_NE(s1.next(), s2.next());
}

// --- Galois LFSR: the probing-order machinery of Sec. 3.5 ---------------

class LfsrPeriod : public ::testing::TestWithParam<int> {};

TEST_P(LfsrPeriod, FullPeriodVisitsEveryNonZeroState) {
  const int bits = GetParam();
  GaloisLfsr lfsr(bits, 1);
  const std::uint64_t period = lfsr.period();
  std::set<std::uint32_t> seen;
  seen.insert(lfsr.state());
  for (std::uint64_t i = 1; i < period; ++i) {
    const std::uint32_t state = lfsr.next();
    EXPECT_NE(state, 0u);
    EXPECT_TRUE(seen.insert(state).second)
        << "state repeated before full period at step " << i;
  }
  // One more step closes the cycle.
  EXPECT_EQ(lfsr.next(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrPeriod,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

// Wider registers: spot-check no short cycle (first 2^20 states distinct).
class LfsrWide : public ::testing::TestWithParam<int> {};

TEST_P(LfsrWide, NoShortCycle) {
  GaloisLfsr lfsr(GetParam(), 12345);
  const std::uint32_t start = lfsr.state();
  for (int i = 0; i < (1 << 20); ++i) {
    ASSERT_NE(lfsr.next(), start) << "cycle shorter than 2^20 at width "
                                  << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrWide,
                         ::testing::Values(24, 28, 32));

TEST(GaloisLfsr, BitsForCoversCount) {
  EXPECT_EQ(GaloisLfsr::bits_for(1), 2);
  EXPECT_EQ(GaloisLfsr::bits_for(3), 2);
  EXPECT_EQ(GaloisLfsr::bits_for(4), 3);
  EXPECT_EQ(GaloisLfsr::bits_for(7), 3);
  EXPECT_EQ(GaloisLfsr::bits_for(8), 4);
  EXPECT_EQ(GaloisLfsr::bits_for(6'600'000), 23);
}

TEST(GaloisLfsr, RejectsBadWidth) {
  EXPECT_THROW(GaloisLfsr(1, 1), std::invalid_argument);
  EXPECT_THROW(GaloisLfsr(33, 1), std::invalid_argument);
}

TEST(GaloisLfsr, ZeroStartIsFixedUp) {
  GaloisLfsr lfsr(8, 0);
  EXPECT_NE(lfsr.state(), 0u);
}

class PermutationSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PermutationSize, EmitsEveryIndexExactlyOnce) {
  const std::uint32_t size = GetParam();
  LfsrPermutation perm(size, /*seed=*/99);
  std::vector<bool> seen(size, false);
  std::uint32_t count = 0;
  while (const auto index = perm.next()) {
    ASSERT_LT(*index, size);
    ASSERT_FALSE(seen[*index]) << "index " << *index << " emitted twice";
    seen[*index] = true;
    ++count;
  }
  EXPECT_EQ(count, size);
  EXPECT_FALSE(perm.next().has_value());  // stays exhausted
}

INSTANTIATE_TEST_SUITE_P(Sizes, PermutationSize,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 100u, 1000u,
                                           4095u, 4096u, 65535u));

TEST(LfsrPermutation, DifferentSeedsGiveDifferentOrders) {
  LfsrPermutation a(1000, 1);
  LfsrPermutation b(1000, 2);
  std::vector<std::uint32_t> va;
  std::vector<std::uint32_t> vb;
  for (int i = 0; i < 10; ++i) {
    va.push_back(*a.next());
    vb.push_back(*b.next());
  }
  EXPECT_NE(va, vb);
}

TEST(LfsrPermutation, EmptyIsImmediatelyExhausted) {
  LfsrPermutation perm(0, 5);
  EXPECT_FALSE(perm.next().has_value());
}

// --- Distributions -------------------------------------------------------

TEST(Distributions, Uniform01InRange) {
  Xoshiro256 gen(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = uniform01(gen);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Distributions, UniformIndexUnbiasedish) {
  Xoshiro256 gen(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[uniform_index(gen, 10)];
  for (const int count : counts) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(Distributions, UniformIndexRejectsZeroBound) {
  Xoshiro256 gen(3);
  EXPECT_THROW(uniform_index(gen, 0), std::invalid_argument);
}

TEST(Distributions, BernoulliEdges) {
  Xoshiro256 gen(4);
  EXPECT_FALSE(bernoulli(gen, 0.0));
  EXPECT_TRUE(bernoulli(gen, 1.0));
  EXPECT_FALSE(bernoulli(gen, -1.0));
  EXPECT_TRUE(bernoulli(gen, 2.0));
}

TEST(Distributions, ExponentialMeanConverges) {
  Xoshiro256 gen(5);
  double sum = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) sum += exponential(gen, 3.0);
  EXPECT_NEAR(sum / kSamples, 3.0, 0.05);
}

TEST(Distributions, NormalMoments) {
  Xoshiro256 gen(6);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = normal(gen, 10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(variance, 4.0, 0.1);
}

TEST(Distributions, LognormalIsPositive) {
  Xoshiro256 gen(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(lognormal(gen, -1.0, 1.0), 0.0);
}

TEST(Distributions, WeightedIndexRespectsWeights) {
  Xoshiro256 gen(8);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[weighted_index(gen, weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Distributions, WeightedIndexRejectsBadWeights) {
  Xoshiro256 gen(9);
  EXPECT_THROW(weighted_index(gen, {0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(weighted_index(gen, {1.0, -1.0}), std::invalid_argument);
}

TEST(Zipf, HeadIsHeavy) {
  Xoshiro256 gen(10);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.sample(gen)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
  // Rank-0 share for s=1, n=100: 1/H(100) ~ 0.192.
  EXPECT_NEAR(counts[0] / 100000.0, 0.192, 0.02);
}

TEST(Zipf, RejectsEmpty) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 gen(11);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  shuffle(gen, shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

}  // namespace
}  // namespace anycast::rng
