#include <gtest/gtest.h>

#include <set>

#include "anycast/geo/city_data.hpp"
#include "anycast/geo/city_index.hpp"

namespace anycast::geo {
namespace {

TEST(CityData, TableIsSubstantialAndSortedByPopulation) {
  const auto cities = world_cities();
  EXPECT_GE(cities.size(), 450u);
  for (std::size_t i = 1; i < cities.size(); ++i) {
    EXPECT_GE(cities[i - 1].population, cities[i].population);
  }
}

TEST(CityData, CoordinatesAreValid) {
  for (const City& city : world_cities()) {
    EXPECT_GE(city.latitude_deg, -90.0) << city.name;
    EXPECT_LE(city.latitude_deg, 90.0) << city.name;
    EXPECT_GE(city.longitude_deg, -180.0) << city.name;
    EXPECT_LE(city.longitude_deg, 180.0) << city.name;
    EXPECT_GT(city.population, 0u) << city.name;
    EXPECT_EQ(city.country.size(), 2u) << city.name;
    EXPECT_FALSE(city.name.empty());
  }
}

TEST(CityData, CoversAllContinents) {
  std::set<std::string_view> countries;
  for (const City& city : world_cities()) countries.insert(city.country);
  for (const std::string_view cc :
       {"US", "DE", "JP", "BR", "AU", "ZA", "IN", "RU"}) {
    EXPECT_TRUE(countries.contains(cc)) << cc;
  }
  EXPECT_GE(countries.size(), 100u);
}

TEST(CityData, PaperCaseStudyCitiesPresent) {
  // Sec. 3.4's population-bias anecdote needs these exact places.
  const CityIndex& index = world_index();
  const City* ashburn = index.by_name("Ashburn");
  const City* philadelphia = index.by_name("Philadelphia");
  ASSERT_NE(ashburn, nullptr);
  ASSERT_NE(philadelphia, nullptr);
  EXPECT_GT(philadelphia->population, 30 * ashburn->population);
}

TEST(CityIndex, ByNameFindsAndMisses) {
  const CityIndex& index = world_index();
  ASSERT_NE(index.by_name("Tokyo"), nullptr);
  EXPECT_EQ(index.by_name("Tokyo")->country, "JP");
  EXPECT_EQ(index.by_name("Atlantis"), nullptr);
}

TEST(CityIndex, CitiesInDiskSortedByPopulation) {
  const CityIndex& index = world_index();
  const City* london = index.by_name("London");
  ASSERT_NE(london, nullptr);
  const geodesy::Disk disk(london->location(), 600.0);
  const auto inside = index.cities_in(disk);
  ASSERT_GE(inside.size(), 4u);  // London, Paris, Brussels, Birmingham, ...
  for (std::size_t i = 1; i < inside.size(); ++i) {
    EXPECT_GE(inside[i - 1]->population, inside[i]->population);
  }
  for (const City* city : inside) {
    EXPECT_TRUE(disk.contains(city->location())) << city->name;
  }
}

TEST(CityIndex, MostPopulatedMatchesCitiesInHead) {
  const CityIndex& index = world_index();
  const City* tokyo = index.by_name("Tokyo");
  const geodesy::Disk disk(tokyo->location(), 800.0);
  const auto inside = index.cities_in(disk);
  ASSERT_FALSE(inside.empty());
  EXPECT_EQ(index.most_populated_in(disk), inside.front());
  EXPECT_EQ(index.most_populated_in(disk)->name, "Tokyo");
}

TEST(CityIndex, EmptyDiskYieldsNothing) {
  const CityIndex& index = world_index();
  // Middle of the South Pacific.
  const geodesy::Disk disk(geodesy::GeoPoint(-48.0, -123.0), 100.0);
  EXPECT_TRUE(index.cities_in(disk).empty());
  EXPECT_EQ(index.most_populated_in(disk), nullptr);
}

TEST(CityIndex, SphereCoveringDiskContainsEverything) {
  const CityIndex& index = world_index();
  const geodesy::Disk disk(geodesy::GeoPoint(0.0, 0.0),
                           geodesy::kMaxDistanceKm + 10.0);
  EXPECT_EQ(index.cities_in(disk).size(), world_cities().size());
}

TEST(CityIndex, NearestExactAndFarAway) {
  const CityIndex& index = world_index();
  const City* sydney = index.by_name("Sydney");
  EXPECT_EQ(index.nearest(sydney->location()), sydney);
  // A point in the outback is still nearest to some Australian city.
  const City* nearest = index.nearest(geodesy::GeoPoint(-25.0, 135.0));
  ASSERT_NE(nearest, nullptr);
  EXPECT_EQ(nearest->country, "AU");
}

TEST(CityIndex, CustomSubsetIndex) {
  const auto all = world_cities();
  const std::span<const City> subset(all.data(), 10);  // 10 megacities
  const CityIndex index(subset);
  EXPECT_EQ(index.size(), 10u);
  const geodesy::Disk everywhere(geodesy::GeoPoint(0.0, 0.0),
                                 geodesy::kMaxDistanceKm + 10.0);
  EXPECT_EQ(index.cities_in(everywhere).size(), 10u);
}

TEST(CityIndex, PopulationBiasInsideDcCorridor) {
  // A 300 km disk around Ashburn holds Washington, Baltimore, and
  // Philadelphia; the population bias must pick Philadelphia (the paper's
  // misclassification case).
  const CityIndex& index = world_index();
  const City* ashburn = index.by_name("Ashburn");
  const geodesy::Disk disk(ashburn->location(), 300.0);
  const City* picked = index.most_populated_in(disk);
  ASSERT_NE(picked, nullptr);
  EXPECT_EQ(picked->name, "Philadelphia");
}

}  // namespace
}  // namespace anycast::geo
