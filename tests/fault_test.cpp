// Fault injection and crash recovery: the census must degrade, not die.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "anycast/census/census.hpp"
#include "anycast/census/fastping.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/net/fault.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

namespace fs = std::filesystem;

net::WorldConfig tiny_world_config() {
  net::WorldConfig config;
  config.seed = 21;
  config.unicast_alive_slash24 = 400;
  config.unicast_dead_slash24 = 300;
  return config;
}

const net::SimulatedInternet& tiny_world() {
  static const net::SimulatedInternet world(tiny_world_config());
  return world;
}

const Hitlist& tiny_hitlist() {
  static const Hitlist hitlist =
      Hitlist::from_world(tiny_world()).without_dead();
  return hitlist;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void expect_same_data(const CensusMatrix& a, const CensusMatrix& b) {
  ASSERT_EQ(a.target_count(), b.target_count());
  for (std::uint32_t t = 0; t < a.target_count(); ++t) {
    const auto ra = a.measurements(t);
    const auto rb = b.measurements(t);
    ASSERT_EQ(ra.size(), rb.size()) << "target " << t;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].vp, rb[i].vp) << "target " << t;
      EXPECT_EQ(ra[i].rtt_ms, rb[i].rtt_ms) << "target " << t;
    }
  }
}

// --- FaultPlan / FaultInjector ---------------------------------------------

TEST(FaultPlan, SchedulesAreDeterministicPerVp) {
  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  spec.outage_rate = 0.5;
  spec.storm_rate = 0.5;
  spec.straggler_rate = 0.5;
  const net::FaultPlan plan(spec);
  const net::FaultPlan replay(spec);
  for (std::uint32_t vp = 0; vp < 64; ++vp) {
    const auto a = plan.schedule_for(vp);
    const auto b = replay.schedule_for(vp);
    EXPECT_EQ(a.crash_fraction, b.crash_fraction);
    EXPECT_EQ(a.outage_begin, b.outage_begin);
    EXPECT_EQ(a.outage_end, b.outage_end);
    EXPECT_EQ(a.storm_begin, b.storm_begin);
    EXPECT_EQ(a.stall_begin, b.stall_begin);
  }
}

TEST(FaultPlan, ZeroRatesScheduleNothing) {
  const net::FaultPlan plan(net::FaultSpec{});
  for (std::uint32_t vp = 0; vp < 64; ++vp) {
    EXPECT_FALSE(plan.schedule_for(vp).any());
  }
}

TEST(FaultPlan, CertainRatesHitEveryVp) {
  net::FaultSpec spec;
  spec.crash_rate = 1.0;
  spec.outage_rate = 1.0;
  const net::FaultPlan plan(spec);
  for (std::uint32_t vp = 0; vp < 32; ++vp) {
    const auto schedule = plan.schedule_for(vp);
    EXPECT_LT(schedule.crash_fraction, 1.0);
    EXPECT_GT(schedule.outage_end, schedule.outage_begin);
  }
}

TEST(FaultInjector, DefaultInjectsNothing) {
  const net::FaultInjector injector;
  EXPECT_FALSE(injector.active());
  EXPECT_FALSE(injector.crashed_before(0));
  EXPECT_FALSE(injector.outage_at(500));
  EXPECT_EQ(injector.extra_drop_at(500), 0.0);
  EXPECT_EQ(injector.dilation_at(500), 1.0);
}

TEST(FaultInjector, WindowsMapToProbeIndices) {
  net::VpFaultSchedule schedule;
  schedule.crash_fraction = 0.5;
  schedule.outage_begin = 0.1;
  schedule.outage_end = 0.2;
  schedule.storm_begin = 0.6;
  schedule.storm_end = 0.8;
  schedule.storm_drop = 0.4;
  schedule.stall_begin = 0.0;
  schedule.stall_end = 0.25;
  schedule.stall_factor = 4.0;
  const net::FaultInjector injector(schedule, 1000);
  EXPECT_TRUE(injector.active());
  EXPECT_FALSE(injector.crashed_before(499));
  EXPECT_TRUE(injector.crashed_before(500));
  EXPECT_FALSE(injector.outage_at(99));
  EXPECT_TRUE(injector.outage_at(100));
  EXPECT_FALSE(injector.outage_at(200));
  EXPECT_EQ(injector.extra_drop_at(700), 0.4);
  EXPECT_EQ(injector.extra_drop_at(500), 0.0);
  EXPECT_EQ(injector.dilation_at(100), 4.0);
  EXPECT_EQ(injector.dilation_at(300), 1.0);
}

FastPingConfig base_config() {
  FastPingConfig config;
  config.seed = 90;
  return config;
}

// --- Longitudinal scenarios (watch-mode chaos) ------------------------------

TEST(FaultPlan, LongitudinalSchedulesAreDeterministic) {
  net::FaultSpec spec;
  spec.flap_rate = 1.0;
  spec.regional_rate = 1.0;
  spec.regional_fraction = 0.5;
  spec.hijack_targets = {5, 17, 40};
  spec.hijack_vp_fraction = 0.5;
  const net::FaultPlan plan(spec);
  const net::FaultPlan replay(spec);
  for (std::uint32_t vp = 0; vp < 64; ++vp) {
    const auto a = plan.schedule_for(vp);
    const auto b = replay.schedule_for(vp);
    ASSERT_EQ(a.flap_count, b.flap_count);
    for (int f = 0; f < a.flap_count; ++f) {
      EXPECT_EQ(a.flap_begin[f], b.flap_begin[f]);
      EXPECT_EQ(a.flap_end[f], b.flap_end[f]);
    }
    EXPECT_EQ(a.regional_begin, b.regional_begin);
    EXPECT_EQ(a.regional_end, b.regional_end);
    EXPECT_EQ(a.hijack_captured, b.hijack_captured);
    EXPECT_EQ(a.hijack_salt, b.hijack_salt);
  }
}

TEST(FaultPlan, ScenarioTagsDoNotPerturbClassicDraws) {
  // The longitudinal fields draw from disjoint sub-stream tags: enabling
  // them must leave every classic fault draw untouched, so an old chaos
  // census replays byte-identically under the extended spec.
  net::FaultSpec classic;
  classic.crash_rate = 0.5;
  classic.outage_rate = 0.5;
  classic.storm_rate = 0.5;
  classic.straggler_rate = 0.5;
  net::FaultSpec extended = classic;
  extended.flap_rate = 1.0;
  extended.regional_rate = 1.0;
  extended.hijack_targets = {1, 2, 3};
  extended.hijack_vp_fraction = 1.0;
  const net::FaultPlan plain(classic);
  const net::FaultPlan loaded(extended);
  for (std::uint32_t vp = 0; vp < 64; ++vp) {
    const auto a = plain.schedule_for(vp);
    const auto b = loaded.schedule_for(vp);
    EXPECT_EQ(a.crash_fraction, b.crash_fraction);
    EXPECT_EQ(a.outage_begin, b.outage_begin);
    EXPECT_EQ(a.outage_end, b.outage_end);
    EXPECT_EQ(a.storm_begin, b.storm_begin);
    EXPECT_EQ(a.storm_end, b.storm_end);
    EXPECT_EQ(a.stall_begin, b.stall_begin);
    EXPECT_EQ(a.stall_end, b.stall_end);
  }
}

TEST(FaultPlan, RegionalOutageIsACorrelatedCohort) {
  net::FaultSpec spec;
  spec.regional_rate = 1.0;
  spec.regional_fraction = 0.5;
  const net::FaultPlan plan(spec);
  std::size_t members = 0;
  double begin = -1.0, end = -1.0;
  for (std::uint32_t vp = 0; vp < 64; ++vp) {
    const auto schedule = plan.schedule_for(vp);
    if (schedule.regional_end > schedule.regional_begin) {
      ++members;
      if (begin < 0.0) {
        begin = schedule.regional_begin;
        end = schedule.regional_end;
      }
      // One shared window: the cohort goes dark together.
      EXPECT_EQ(schedule.regional_begin, begin);
      EXPECT_EQ(schedule.regional_end, end);
    }
  }
  EXPECT_GT(members, 16u);
  EXPECT_LT(members, 48u) << "roughly half the platform, not all of it";
}

TEST(FastPingFaults, FlapInflatesEchoesInsideWindowsOnly) {
  net::FaultSpec spec;
  spec.flap_rate = 1.0;
  spec.flap_extra_ms = 40.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});
  Greylist blacklist;
  Greylist grey_a, grey_b;
  const FastPingResult bare = run_fastping(
      tiny_world(), vps[0], tiny_hitlist(), blacklist, grey_a, base_config());
  const FastPingResult flapped =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, grey_b,
                   base_config(), &plan);
  // The detour only inflates RTTs — reply kinds, probe counts, and the
  // underlying draw sequence are untouched.
  EXPECT_EQ(flapped.probes_sent, bare.probes_sent);
  EXPECT_EQ(flapped.echo_replies, bare.echo_replies);
  EXPECT_EQ(flapped.timeouts, bare.timeouts);
  ASSERT_EQ(flapped.observations.size(), bare.observations.size());
  std::size_t inflated = 0;
  for (std::size_t i = 0; i < bare.observations.size(); ++i) {
    EXPECT_EQ(flapped.observations[i].target_index,
              bare.observations[i].target_index);
    EXPECT_EQ(flapped.observations[i].kind, bare.observations[i].kind);
    const float delta =
        flapped.observations[i].rtt_ms - bare.observations[i].rtt_ms;
    if (delta != 0.0F) {
      EXPECT_EQ(bare.observations[i].kind, net::ReplyKind::kEchoReply);
      EXPECT_FLOAT_EQ(delta, 40.0F);
      ++inflated;
    }
  }
  EXPECT_GT(inflated, 0u) << "a certain flap plan must inflate something";
  EXPECT_LT(inflated, bare.observations.size())
      << "flap windows cover a small fraction of the walk";
}

TEST(FastPingFaults, HijackLeavesEveryOtherRowByteIdentical) {
  net::FaultSpec spec;
  spec.hijack_vp_fraction = 1.0;
  spec.hijack_targets = {3, 30, 90};
  spec.hijack_rtt_ms = 8.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});
  Greylist blacklist;
  Greylist grey_a, grey_b;
  const FastPingResult bare = run_fastping(
      tiny_world(), vps[0], tiny_hitlist(), blacklist, grey_a, base_config());
  const FastPingResult hijacked =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, grey_b,
                   base_config(), &plan);
  // The attacker answers in place of the victim, but the probe still
  // consumes the legitimate path's RNG draws — so every non-victim
  // observation is byte-identical, the invariant that keeps watch-mode
  // dirty sets equal to the exact victim set.
  ASSERT_EQ(hijacked.observations.size(), bare.observations.size());
  for (std::size_t i = 0; i < bare.observations.size(); ++i) {
    const auto& h = hijacked.observations[i];
    const auto& b = bare.observations[i];
    ASSERT_EQ(h.target_index, b.target_index);
    if (std::find(spec.hijack_targets.begin(), spec.hijack_targets.end(),
                  h.target_index) != spec.hijack_targets.end()) {
      EXPECT_EQ(h.kind, net::ReplyKind::kEchoReply);
      EXPECT_GE(h.rtt_ms, 8.0F);
      EXPECT_LT(h.rtt_ms, 12.0F);  // base + up to 4ms deterministic jitter
    } else {
      EXPECT_EQ(h.kind, b.kind);
      EXPECT_EQ(h.rtt_ms, b.rtt_ms);
    }
  }
}

// --- run_fastping under faults ---------------------------------------------

TEST(FastPingFaults, ZeroRatePlanIsByteIdenticalToNoPlan) {
  const auto vps = net::make_planetlab({.node_count = 3, .seed = 91});
  const net::FaultPlan plan{net::FaultSpec{}};
  for (const net::VantagePoint& vp : vps) {
    Greylist blacklist;
    Greylist grey_a;
    Greylist grey_b;
    const FastPingResult bare = run_fastping(
        tiny_world(), vp, tiny_hitlist(), blacklist, grey_a, base_config());
    const FastPingResult planned =
        run_fastping(tiny_world(), vp, tiny_hitlist(), blacklist, grey_b,
                     base_config(), &plan);
    EXPECT_EQ(bare.probes_sent, planned.probes_sent);
    EXPECT_EQ(bare.echo_replies, planned.echo_replies);
    EXPECT_EQ(bare.timeouts, planned.timeouts);
    EXPECT_EQ(bare.errors, planned.errors);
    EXPECT_EQ(bare.duration_hours, planned.duration_hours);
    EXPECT_EQ(bare.outcome, planned.outcome);
    ASSERT_EQ(bare.observations.size(), planned.observations.size());
    for (std::size_t i = 0; i < bare.observations.size(); ++i) {
      EXPECT_EQ(bare.observations[i].target_index,
                planned.observations[i].target_index);
      EXPECT_EQ(bare.observations[i].kind, planned.observations[i].kind);
      EXPECT_EQ(bare.observations[i].rtt_ms, planned.observations[i].rtt_ms);
      EXPECT_EQ(bare.observations[i].time_s, planned.observations[i].time_s);
    }
  }
}

TEST(FastPingFaults, CrashKeepsPartialObservations) {
  net::FaultSpec spec;
  spec.crash_rate = 1.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});
  Greylist blacklist;
  Greylist greylist;
  const FastPingResult result =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, greylist,
                   base_config(), &plan);
  EXPECT_EQ(result.outcome, VpOutcome::kCrashed);
  EXPECT_GT(result.observations.size(), 0u);
  EXPECT_LT(result.observations.size(), tiny_hitlist().size());
  EXPECT_EQ(result.observations.size(), result.probes_sent);
}

TEST(FastPingFaults, OutageInjectsTimeoutsAndRetriesRecoverThem) {
  net::FaultSpec spec;
  spec.outage_rate = 1.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});

  Greylist blacklist;
  Greylist greylist;
  const FastPingResult flat =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, greylist,
                   base_config(), &plan);
  EXPECT_EQ(flat.outcome, VpOutcome::kCompleted);
  EXPECT_GT(flat.injected_timeouts, 0u);
  EXPECT_EQ(flat.retry_probes, 0u);

  FastPingConfig with_retries = base_config();
  with_retries.retry_max_attempts = 2;
  Greylist greylist2;
  const FastPingResult retried =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, greylist2,
                   with_retries, &plan);
  EXPECT_GT(retried.retry_probes, 0u);
  EXPECT_GT(retried.retry_recovered, 0u);
  // Retries run after the outage window, so they win back echo replies.
  EXPECT_GT(retried.echo_replies, flat.echo_replies);
  // Every retry probe is paid for in the funnel and the wall clock.
  EXPECT_EQ(retried.probes_sent,
            flat.probes_sent + retried.retry_probes);
  EXPECT_GT(retried.duration_hours, flat.duration_hours);
}

TEST(FastPingFaults, RetryBudgetCapsRetryProbes) {
  net::FaultSpec spec;
  spec.outage_rate = 1.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});
  FastPingConfig config = base_config();
  config.retry_max_attempts = 4;
  config.retry_probe_budget = 10;
  Greylist blacklist;
  Greylist greylist;
  const FastPingResult result =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, greylist,
                   config, &plan);
  EXPECT_LE(result.retry_probes, 10u);
}

TEST(FastPingFaults, StragglerPastDeadlineIsCutOff) {
  net::FaultSpec spec;
  spec.straggler_rate = 1.0;
  spec.stall_factor = 50.0;
  spec.stall_span = 0.9;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 91});

  FastPingConfig config = base_config();
  // A healthy walk takes hitlist/rate seconds; the stall blows well past
  // twice that, so a 2x budget cuts the VP off mid-walk.
  config.vp_deadline_hours =
      2.0 * static_cast<double>(tiny_hitlist().size()) /
      config.probe_rate_pps / 3600.0;
  Greylist blacklist;
  Greylist greylist;
  const FastPingResult result =
      run_fastping(tiny_world(), vps[0], tiny_hitlist(), blacklist, greylist,
                   config, &plan);
  EXPECT_EQ(result.outcome, VpOutcome::kCutOff);
  EXPECT_GT(result.observations.size(), 0u);
  EXPECT_LT(result.observations.size(), tiny_hitlist().size());
}

// --- run_census under faults ------------------------------------------------

TEST(CensusFaults, StormyVpsAreQuarantinedAndExcluded) {
  net::FaultSpec spec;
  spec.storm_rate = 1.0;
  spec.storm_drop = 0.95;
  spec.storm_span = 0.9;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 4, .seed = 91});

  FastPingConfig config = base_config();
  config.quarantine_drop_rate = 0.3;
  Greylist blacklist;
  const CensusOutput output = run_census(tiny_world(), vps, tiny_hitlist(),
                                         blacklist, config, &plan);
  ASSERT_EQ(output.summary.vp_outcomes.size(), vps.size());
  EXPECT_EQ(output.summary.outcome_count(VpOutcome::kQuarantined),
            vps.size());
  // Quarantined rows are excluded: no target holds any measurement.
  for (std::uint32_t t = 0; t < output.data.target_count(); ++t) {
    EXPECT_TRUE(output.data.measurements(t).empty());
  }
}

TEST(CensusFaults, ReplayWithSamePlanIsIdentical) {
  net::FaultSpec spec;
  spec.crash_rate = 0.4;
  spec.outage_rate = 0.4;
  spec.storm_rate = 0.4;
  spec.straggler_rate = 0.4;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});

  Greylist blacklist_a;
  Greylist blacklist_b;
  const CensusOutput a = run_census(tiny_world(), vps, tiny_hitlist(),
                                    blacklist_a, base_config(), &plan);
  const CensusOutput b = run_census(tiny_world(), vps, tiny_hitlist(),
                                    blacklist_b, base_config(), &plan);
  EXPECT_EQ(a.summary.probes_sent, b.summary.probes_sent);
  EXPECT_EQ(a.summary.echo_replies, b.summary.echo_replies);
  EXPECT_EQ(a.summary.timeouts, b.summary.timeouts);
  EXPECT_EQ(a.summary.injected_timeouts, b.summary.injected_timeouts);
  ASSERT_EQ(a.summary.vp_outcomes.size(), b.summary.vp_outcomes.size());
  for (std::size_t i = 0; i < a.summary.vp_outcomes.size(); ++i) {
    EXPECT_EQ(a.summary.vp_outcomes[i].outcome,
              b.summary.vp_outcomes[i].outcome);
  }
  expect_same_data(a.data, b.data);
}

TEST(CensusFaults, FaultsOnlyDegradeCounters) {
  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  spec.outage_rate = 0.5;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});

  Greylist blacklist_a;
  Greylist blacklist_b;
  const CensusOutput healthy = run_census(tiny_world(), vps, tiny_hitlist(),
                                          blacklist_a, base_config());
  const CensusOutput faulty = run_census(tiny_world(), vps, tiny_hitlist(),
                                         blacklist_b, base_config(), &plan);
  EXPECT_LE(faulty.summary.echo_replies, healthy.summary.echo_replies);
  EXPECT_LE(faulty.summary.probes_sent, healthy.summary.probes_sent);
}

TEST(CensusFaults, MetricsAccountEveryProbeExactly) {
  // The scraped funnel balances to the probe: every probe sent is either
  // answered (echo), rejected (prohibited/admin-filtered), organically
  // timed out, or timed out by an injected fault — no probe unaccounted,
  // none double-counted. The outage plan guarantees the injected term is
  // exercised, not trivially zero.
  net::FaultSpec spec;
  spec.outage_rate = 1.0;
  const net::FaultPlan plan(spec);
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});

  obs::metrics().reset();
  Greylist blacklist;
  const CensusOutput output = run_census(tiny_world(), vps, tiny_hitlist(),
                                         blacklist, base_config(), &plan);

  const auto values = obs::metrics().scrape();
  const auto get = [&values](std::string_view name) -> std::uint64_t {
    for (const obs::MetricValue& value : values) {
      if (value.name == name) return value.value;
    }
    ADD_FAILURE() << "metric not registered: " << name;
    return 0;
  };
  const std::uint64_t sent = get("census_probes_sent");
  const std::uint64_t echo = get("census_replies_echo");
  const std::uint64_t prohibited = get("census_replies_prohibited");
  const std::uint64_t organic = get("census_timeouts_organic");
  const std::uint64_t injected = get("census_timeouts_injected");
  EXPECT_GT(sent, 0u);
  EXPECT_GT(injected, 0u) << "outage plan should inject timeouts";
  EXPECT_EQ(sent, echo + prohibited + organic + injected);
  // The scrape and the census's own summary agree term by term.
  EXPECT_EQ(sent, output.summary.probes_sent);
  EXPECT_EQ(echo, output.summary.echo_replies);
  EXPECT_EQ(prohibited, output.summary.errors);
  EXPECT_EQ(organic + injected, output.summary.timeouts);
  EXPECT_EQ(injected, output.summary.injected_timeouts);
}

// --- checkpoint / resume -----------------------------------------------------

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_fault_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ResumeTest, CrashThenResumeEqualsUninterruptedRun) {
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  const FastPingConfig config = base_config();

  // Baseline: an uninterrupted fault-free census.
  const fs::path clean_dir = dir_ / "clean";
  Greylist blacklist_clean;
  const ResumeReport clean =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_clean,
                    config, clean_dir, /*census_id=*/1);
  EXPECT_EQ(clean.vps_rerun, vps.size());

  // The same census, but several VPs crash mid-walk...
  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  const net::FaultPlan plan(spec);
  const fs::path crash_dir = dir_ / "crashed";
  Greylist blacklist_crash;
  const ResumeReport crashed =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_crash,
                    config, crash_dir, /*census_id=*/1, &plan);
  const std::size_t crashes =
      crashed.output.summary.outcome_count(VpOutcome::kCrashed);
  ASSERT_GT(crashes, 0u) << "plan should crash at least one of 8 VPs";

  // ...and a fault-free resume re-runs exactly the crashed ones.
  Greylist blacklist_resume;
  const ResumeReport resumed =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_resume,
                    config, crash_dir, /*census_id=*/1);
  EXPECT_EQ(resumed.vps_rerun, crashes);
  EXPECT_EQ(resumed.vps_reused, vps.size() - crashes);
  EXPECT_EQ(
      resumed.output.summary.outcome_count(VpOutcome::kCompleted),
      vps.size());

  // The recovered census is indistinguishable from the uninterrupted one:
  // same collated data, same funnel, byte-identical checkpoint files.
  EXPECT_EQ(resumed.output.summary.probes_sent,
            clean.output.summary.probes_sent);
  EXPECT_EQ(resumed.output.summary.echo_replies,
            clean.output.summary.echo_replies);
  EXPECT_EQ(resumed.output.summary.timeouts,
            clean.output.summary.timeouts);
  EXPECT_EQ(resumed.output.summary.errors, clean.output.summary.errors);
  expect_same_data(resumed.output.data, clean.output.data);
  for (const net::VantagePoint& vp : vps) {
    const auto clean_bytes =
        read_bytes(census_checkpoint_path(clean_dir, 1, vp.id));
    const auto resumed_bytes =
        read_bytes(census_checkpoint_path(crash_dir, 1, vp.id));
    ASSERT_FALSE(clean_bytes.empty());
    EXPECT_EQ(clean_bytes, resumed_bytes) << "vp " << vp.id;
  }
}

TEST_F(ResumeTest, TruncatedCheckpointIsSalvagedAndRerun) {
  const auto vps = net::make_planetlab({.node_count = 4, .seed = 91});
  const FastPingConfig config = base_config();
  Greylist blacklist;
  resume_census(tiny_world(), vps, tiny_hitlist(), blacklist, config, dir_,
                /*census_id=*/1);

  // Damage one checkpoint as a crash mid-upload would.
  const fs::path victim = census_checkpoint_path(dir_, 1, vps[1].id);
  const auto original = read_bytes(victim);
  fs::resize_file(victim, fs::file_size(victim) / 2);

  Greylist blacklist2;
  const ResumeReport resumed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist2, config, dir_, 1);
  EXPECT_EQ(resumed.files_salvaged, 1u);
  EXPECT_EQ(resumed.vps_rerun, 1u);
  EXPECT_EQ(resumed.vps_reused, vps.size() - 1);
  // The re-run restores the exact original checkpoint.
  EXPECT_EQ(read_bytes(victim), original);
}

TEST_F(ResumeTest, SecondResumeReusesEverything) {
  const auto vps = net::make_planetlab({.node_count = 4, .seed = 91});
  const FastPingConfig config = base_config();
  Greylist blacklist;
  const ResumeReport first = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist, config, dir_, 1);
  Greylist blacklist2;
  const ResumeReport second = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist2, config, dir_, 1);
  EXPECT_EQ(second.vps_reused, vps.size());
  EXPECT_EQ(second.vps_rerun, 0u);
  EXPECT_EQ(second.output.summary.probes_sent,
            first.output.summary.probes_sent);
  expect_same_data(second.output.data, first.output.data);
}

TEST_F(ResumeTest, MismatchedCensusIdIsNotReused) {
  const auto vps = net::make_planetlab({.node_count = 2, .seed = 91});
  const FastPingConfig config = base_config();
  Greylist blacklist;
  resume_census(tiny_world(), vps, tiny_hitlist(), blacklist, config, dir_,
                /*census_id=*/1);
  // Pretend census 2's checkpoints are census 1's files.
  for (const net::VantagePoint& vp : vps) {
    fs::copy_file(census_checkpoint_path(dir_, 1, vp.id),
                  census_checkpoint_path(dir_, 2, vp.id));
  }
  Greylist blacklist2;
  const ResumeReport resumed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist2, config, dir_, 2);
  // Header says census 1, so nothing is trusted.
  EXPECT_EQ(resumed.vps_reused, 0u);
  EXPECT_EQ(resumed.vps_rerun, vps.size());
}

}  // namespace
}  // namespace anycast::census
