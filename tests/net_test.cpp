#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "anycast/geodesy/disk.hpp"
#include "anycast/net/catalog.hpp"
#include "anycast/net/internet.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/net/services.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::net {
namespace {

WorldConfig small_world_config() {
  WorldConfig config;
  config.seed = 11;
  config.unicast_alive_slash24 = 800;
  config.unicast_dead_slash24 = 700;
  return config;
}

const SimulatedInternet& small_world() {
  static const SimulatedInternet world(small_world_config());
  return world;
}

// --- Catalog --------------------------------------------------------------

TEST(Catalog, HasExactlyOneHundredTopSpecs) {
  EXPECT_EQ(top100_specs().size(), 100u);
}

TEST(Catalog, Ip24FootprintMatchesFig10) {
  int total = 0;
  for (const AsSpec& spec : top100_specs()) total += spec.ip24;
  EXPECT_EQ(total, 897);  // Fig. 10, ">= 5 Replicas" row
}

TEST(Catalog, CaidaTop100CrossCheck) {
  // Fig. 10: 19 /24s of 8 ASes intersect the CAIDA top-100.
  int ases = 0;
  int ip24 = 0;
  for (const AsSpec& spec : top100_specs()) {
    if (spec.caida_rank > 0) {
      ++ases;
      ip24 += spec.ip24;
      EXPECT_LE(spec.caida_rank, 100);
    }
  }
  EXPECT_EQ(ases, 8);
  EXPECT_EQ(ip24, 19);
}

TEST(Catalog, AlexaCrossCheck) {
  // Fig. 10 + Sec. 4.1: 15 ASes host Alexa-100k front pages, ~240 sites.
  int ases = 0;
  int sites = 0;
  for (const AsSpec& spec : top100_specs()) {
    if (spec.alexa_sites > 0) {
      ++ases;
      sites += spec.alexa_sites;
    }
  }
  EXPECT_EQ(ases, 15);
  EXPECT_NEAR(sites, 240, 5);
}

TEST(Catalog, HeadlineFootprintsMatchPaper) {
  std::map<std::string_view, int> ip24;
  for (const AsSpec& spec : top100_specs()) {
    ip24.emplace(spec.whois, spec.ip24);
  }
  EXPECT_EQ(ip24["CLOUDFLARENET,US"], 328);  // Sec. 4.2
  EXPECT_EQ(ip24["GOOGLE,US"], 102);
  EXPECT_EQ(ip24["EDGECAST,US"], 37);
  EXPECT_EQ(ip24["PROLEXIC,US"], 21);
  EXPECT_EQ(ip24["LINKEDIN,US"], 1);
  EXPECT_EQ(ip24["LEVEL3,US"], 2);
  EXPECT_EQ(ip24["TWITTER-NETW"], 3);
  EXPECT_EQ(ip24["APPLE-ENGINE"], 6);
}

TEST(Catalog, SitesAreAtLeastFiveAndBroadlyDescending) {
  // Fig. 9's x-axis orders ASes by *measured* footprint; the catalog's
  // true site counts follow that order except where the paper itself shows
  // a platform-recall gap (Microsoft, whose true footprint is ~2.5x what
  // PlanetLab sees — Fig. 5).
  const auto specs = top100_specs();
  std::size_t inversions = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_GE(specs[i].sites, 5) << specs[i].whois;
    if (i > 0 && specs[i].sites > specs[i - 1].sites) ++inversions;
  }
  EXPECT_LE(inversions, 2u);
}

TEST(Catalog, UniqueAsNumbers) {
  std::set<std::uint32_t> seen;
  for (const AsSpec& spec : top100_specs()) {
    EXPECT_TRUE(seen.insert(spec.as_number).second)
        << "duplicate ASN " << spec.as_number;
  }
}

TEST(Catalog, TailSpecsSumAndShape) {
  const auto tail = tail_specs(246, 799, 5);
  EXPECT_EQ(tail.size(), 246u);
  int total = 0;
  int singles = 0;
  for (const AsSpec& spec : tail) {
    total += spec.ip24;
    if (spec.ip24 == 1) ++singles;
    EXPECT_GE(spec.sites, 2);
    EXPECT_LE(spec.sites, 4);  // below the top-100 threshold
    EXPECT_GE(spec.ip24, 1);
  }
  EXPECT_EQ(total, 799);
  // Fig. 13: about half the ASes have exactly one /24.
  EXPECT_GE(singles, 100);
  EXPECT_LE(singles, 160);
}

TEST(Catalog, TailSpecsAreDeterministic) {
  const auto a = tail_specs(50, 160, 9);
  const auto b = tail_specs(50, 160, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].whois, b[i].whois);
    EXPECT_EQ(a[i].ip24, b[i].ip24);
    EXPECT_EQ(a[i].sites, b[i].sites);
  }
}

TEST(Catalog, MakeServicesProfiles) {
  AsSpec spec{};
  spec.whois = "TEST,US";
  spec.profile = PortProfile::kDnsOnly;
  auto services = make_services(spec, 1);
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].port, 53);

  spec.profile = PortProfile::kNone;
  EXPECT_TRUE(make_services(spec, 1).empty());

  spec.profile = PortProfile::kGoogle;
  spec.whois = "GOOGLE,US";
  services = make_services(spec, 1);
  EXPECT_EQ(services.size(), 9u);  // Sec. 4.3: Google has 9 open ports
}

TEST(Catalog, CloudflareUsesManyMorePortsThanEdgecast) {
  // Sec. 4.2: "CloudFlare using 4x more ports than EdgeCast", sharing
  // only 53, 80, 443 (and here 8080 via the common CDN base).
  AsSpec cf{};
  cf.whois = "CLOUDFLARENET,US";
  cf.profile = PortProfile::kCloudflare;
  AsSpec ec{};
  ec.whois = "EDGECAST,US";
  ec.profile = PortProfile::kEdgecast;
  const auto cf_ports = make_services(cf, 1);
  const auto ec_ports = make_services(ec, 1);
  EXPECT_GE(cf_ports.size(), 4 * ec_ports.size());
  for (const std::uint16_t common : {53, 80, 443}) {
    const auto has = [common](const std::vector<ServicePort>& set) {
      return std::any_of(set.begin(), set.end(),
                         [common](const ServicePort& s) {
                           return s.port == common;
                         });
    };
    EXPECT_TRUE(has(cf_ports)) << common;
    EXPECT_TRUE(has(ec_ports)) << common;
  }
}

TEST(Catalog, OvhHasTenThousandPorts) {
  AsSpec spec{};
  spec.whois = "OVH,FR";
  spec.profile = PortProfile::kOvh;
  const auto services = make_services(spec, 1);
  EXPECT_GT(services.size(), 10000u);
  EXPECT_LT(services.size(), 10400u);
  // Ports are unique.
  std::set<std::uint16_t> unique;
  for (const ServicePort& s : services) unique.insert(s.port);
  EXPECT_EQ(unique.size(), services.size());
}

TEST(Catalog, DnsServiceSemantics) {
  EXPECT_TRUE(profile_serves_dns(PortProfile::kDnsOnly));
  EXPECT_TRUE(profile_serves_dns(PortProfile::kGoogle));
  // An HTTP CDN with TCP/53 open does not answer DNS queries (Fig. 6's
  // binary recall).
  EXPECT_FALSE(profile_serves_dns(PortProfile::kEdgecast));
  EXPECT_FALSE(profile_serves_dns(PortProfile::kNone));
}

// --- Services registry ------------------------------------------------------

TEST(Services, RegistryIsSortedAndUnique) {
  const auto rows = well_known_services();
  EXPECT_GE(rows.size(), 150u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].port, rows[i].port);
  }
}

TEST(Services, ClassifyKnownPorts) {
  EXPECT_EQ(classify_port(53)->name, "domain");
  EXPECT_EQ(classify_port(80)->name, "http");
  EXPECT_EQ(classify_port(443)->name, "https");
  EXPECT_TRUE(classify_port(443)->commonly_ssl);
  EXPECT_EQ(classify_port(1935)->name, "rtmp");
  EXPECT_EQ(classify_port(5252)->name, "movaz-ssc");
  EXPECT_EQ(classify_port(25565)->name, "minecraft");
  EXPECT_FALSE(classify_port(4).has_value());
  EXPECT_FALSE(classify_port(60000).has_value());
}

TEST(Services, SoftwareClassification) {
  EXPECT_EQ(classify_software("ISC BIND"), SoftwareClass::kDns);
  EXPECT_EQ(classify_software("NLnet Labs NSD"), SoftwareClass::kDns);
  EXPECT_EQ(classify_software("nginx"), SoftwareClass::kWeb);
  EXPECT_EQ(classify_software("cloudflare-nginx"), SoftwareClass::kWeb);
  EXPECT_EQ(classify_software("Gmail imapd"), SoftwareClass::kMail);
  EXPECT_EQ(classify_software("OpenSSH"), SoftwareClass::kOther);
  EXPECT_EQ(classify_software("whatever"), SoftwareClass::kOther);
}

// --- Platforms --------------------------------------------------------------

TEST(Platform, PlanetLabSizeAndDeterminism) {
  const auto a = make_planetlab({.node_count = 300, .seed = 1});
  const auto b = make_planetlab({.node_count = 300, .seed = 1});
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].location, b[i].location);
  }
}

TEST(Platform, PlanetLabIsNorthAtlanticHeavy) {
  const auto vps = make_planetlab({.node_count = 400, .seed = 2});
  int na_eu = 0;
  for (const VantagePoint& vp : vps) {
    // Recover the country from the generated name suffix.
    const std::string_view name(vp.name);
    const std::string_view cc = name.substr(name.size() - 2);
    const Region region = region_of(cc);
    if (region == Region::kNorthAmerica || region == Region::kEurope) {
      ++na_eu;
    }
  }
  EXPECT_GT(na_eu, 400 / 2);  // the Sec. 3.2 skew
}

TEST(Platform, RipeEmbedsPlanetLabHostCities) {
  // Fig. 5: with a shared seed, PlanetLab catchments are a subset of RIPE's.
  const auto pl = make_planetlab({.node_count = 300, .seed = 3});
  const auto ripe = make_ripe_atlas({.node_count = 900, .seed = 3});
  ASSERT_EQ(ripe.size(), 900u);
  for (std::size_t i = 0; i < pl.size(); ++i) {
    EXPECT_EQ(pl[i].location, ripe[i].location);
    EXPECT_EQ(ripe[i].id, i);
  }
}

TEST(Platform, BelievedLocationErrorIsApplied) {
  PlatformConfig config{.node_count = 50, .seed = 4,
                        .location_error_km = 500.0};
  const auto vps = make_planetlab(config);
  bool any_moved = false;
  for (const VantagePoint& vp : vps) {
    if (geodesy::distance_km(vp.location, vp.believed_location) > 50.0) {
      any_moved = true;
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(Platform, HostLoadAtLeastOne) {
  for (const VantagePoint& vp : make_planetlab({.node_count = 200, .seed = 5})) {
    EXPECT_GE(vp.host_load, 1.0);
  }
}

TEST(Platform, RegionOfCoversCityTable) {
  EXPECT_EQ(region_of("US"), Region::kNorthAmerica);
  EXPECT_EQ(region_of("DE"), Region::kEurope);
  EXPECT_EQ(region_of("JP"), Region::kAsia);
  EXPECT_EQ(region_of("AU"), Region::kOceania);
  EXPECT_EQ(region_of("BR"), Region::kSouthAmerica);
  EXPECT_EQ(region_of("ZA"), Region::kAfrica);
  EXPECT_EQ(region_of("AE"), Region::kMiddleEast);
}

// --- SimulatedInternet -----------------------------------------------------

TEST(Internet, WorldHasExpectedAnycastPopulation) {
  const SimulatedInternet& world = small_world();
  EXPECT_EQ(world.deployments().size(), 100u + 246u);
  std::size_t anycast_prefixes = 0;
  for (const Deployment& deployment : world.deployments()) {
    anycast_prefixes += deployment.prefixes.size();
    EXPECT_EQ(deployment.prefixes.size(),
              deployment.prefix_site_masks.size());
    EXPECT_FALSE(deployment.sites.empty());
  }
  EXPECT_EQ(anycast_prefixes, 897u + 799u);  // Fig. 10 "All" row
}

TEST(Internet, EveryPrefixAnnouncedFromAtLeastOneSite) {
  for (const Deployment& deployment : small_world().deployments()) {
    for (std::size_t p = 0; p < deployment.prefixes.size(); ++p) {
      EXPECT_NE(deployment.prefix_site_masks[p], 0u);
      EXPECT_FALSE(deployment.sites_for_prefix(p).empty());
    }
  }
}

TEST(Internet, TargetLookupRoundTrips) {
  const SimulatedInternet& world = small_world();
  for (const TargetInfo& info : world.targets()) {
    const auto addr = ipaddr::IPv4Address::from_slash24_index(
        info.slash24_index, 77);
    const TargetInfo* found = world.target_for(addr);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->slash24_index, info.slash24_index);
  }
  EXPECT_EQ(world.target_for(ipaddr::IPv4Address(1, 2, 3, 4)), nullptr);
}

TEST(Internet, RouteTableAttributesAnycastPrefixes) {
  const SimulatedInternet& world = small_world();
  const Deployment* cloudflare = world.deployment_by_name("CLOUDFLARENET,US");
  ASSERT_NE(cloudflare, nullptr);
  for (const ipaddr::Prefix& prefix : cloudflare->prefixes) {
    const auto route = world.route_table().lookup(
        ipaddr::IPv4Address(prefix.network().value() | 1));
    ASSERT_TRUE(route.has_value());
    EXPECT_EQ(route->origin_as, cloudflare->as_number);
  }
}

TEST(Internet, DeadTargetsNeverReply) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 3, .seed = 6});
  rng::Xoshiro256 gen(1);
  for (const TargetInfo& info : world.targets()) {
    if (info.kind != TargetInfo::Kind::kDead) continue;
    const auto reply = world.probe(
        vps[0], ipaddr::IPv4Address::from_slash24_index(info.slash24_index, 1),
        Protocol::kIcmpEcho, gen);
    EXPECT_EQ(reply.kind, ReplyKind::kTimeout);
  }
}

TEST(Internet, ProhibitedTargetsReturnTheirCode) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 1, .seed = 7});
  rng::Xoshiro256 gen(2);
  int prohibited_seen = 0;
  for (const TargetInfo& info : world.targets()) {
    if (info.error_kind == ReplyKind::kEchoReply || !info.alive) continue;
    ++prohibited_seen;
    const auto reply = world.probe(
        vps[0], ipaddr::IPv4Address::from_slash24_index(info.slash24_index, 1),
        Protocol::kIcmpEcho, gen);
    EXPECT_EQ(reply.kind, info.error_kind);
    EXPECT_TRUE(is_prohibited(reply.kind));
  }
  EXPECT_GT(prohibited_seen, 0);
}

TEST(Internet, RttNeverBelowPhysicalMinimum) {
  // The no-false-positive precondition: measured RTT >= propagation time
  // to the replied location, so a VP's disk always contains the target.
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 20, .seed = 8});
  rng::Xoshiro256 gen(3);
  for (const TargetInfo& info : world.targets()) {
    if (info.kind != TargetInfo::Kind::kUnicast ||
        info.error_kind != ReplyKind::kEchoReply || !info.alive) {
      continue;
    }
    for (std::size_t v = 0; v < vps.size(); v += 7) {
      const auto reply = world.probe(
          vps[v],
          ipaddr::IPv4Address::from_slash24_index(info.slash24_index, 1),
          Protocol::kIcmpEcho, gen);
      if (reply.kind != ReplyKind::kEchoReply) continue;
      const double physical = geodesy::distance_to_min_rtt_ms(
          geodesy::distance_km(vps[v].location, info.unicast_location));
      EXPECT_GE(reply.rtt_ms, physical * 0.999);
    }
  }
}

TEST(Internet, CatchmentIsDeterministicAndAnnounced) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 10, .seed = 9});
  const Deployment* microsoft = world.deployment_by_name("MICROSOFT,US");
  ASSERT_NE(microsoft, nullptr);
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world.deployments().size(); ++d) {
    if (&world.deployments()[d] == microsoft) deployment_index = d;
  }
  for (const VantagePoint& vp : vps) {
    const ReplicaSite* a = world.catchment(vp, deployment_index, 0);
    const ReplicaSite* b = world.catchment(vp, deployment_index, 0);
    EXPECT_EQ(a, b);
    ASSERT_NE(a, nullptr);
    const auto announced = microsoft->sites_for_prefix(0);
    EXPECT_NE(std::find(announced.begin(), announced.end(), a),
              announced.end());
  }
}

TEST(Internet, AnycastRepliesComeFromCatchmentSite) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 5, .seed = 10});
  rng::Xoshiro256 gen(4);
  const Deployment* cloudflare = world.deployment_by_name("CLOUDFLARENET,US");
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world.deployments().size(); ++d) {
    if (&world.deployments()[d] == cloudflare) deployment_index = d;
  }
  const auto target = ipaddr::IPv4Address(
      cloudflare->prefixes[0].network().value() | 1);
  for (const VantagePoint& vp : vps) {
    const ReplicaSite* site = world.catchment(vp, deployment_index, 0);
    double best = 1e18;
    for (int k = 0; k < 12; ++k) {
      const auto reply = world.probe(vp, target, Protocol::kIcmpEcho, gen);
      if (reply.kind == ReplyKind::kEchoReply) {
        best = std::min(best, reply.rtt_ms);
      }
    }
    const double physical = geodesy::distance_to_min_rtt_ms(
        geodesy::distance_km(vp.location, site->location));
    EXPECT_GE(best, physical * 0.999);
    // And the minimum over repeats approaches the deterministic base
    // within the jitter budget.
    EXPECT_LT(best, physical * 2.6 + 12.0);
  }
}

TEST(Internet, ProtocolRecallIsBinary) {
  // Fig. 6: ICMP answers everywhere; TCP/DNS only where the service runs.
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 2, .seed = 11});
  rng::Xoshiro256 gen(5);

  const auto respond_rate = [&](const Deployment* deployment,
                                Protocol protocol) {
    const auto target = ipaddr::IPv4Address(
        deployment->prefixes[0].network().value() | 1);
    int ok = 0;
    constexpr int kTrials = 50;
    for (int i = 0; i < kTrials; ++i) {
      if (world.probe(vps[0], target, protocol, gen).kind ==
          ReplyKind::kEchoReply) {
        ++ok;
      }
    }
    return static_cast<double>(ok) / kTrials;
  };

  const Deployment* opendns = world.deployment_by_name("OPENDNS,US");
  const Deployment* edgecast = world.deployment_by_name("EDGECAST,US");
  ASSERT_NE(opendns, nullptr);
  ASSERT_NE(edgecast, nullptr);
  // OpenDNS: resolver + web — everything answers.
  EXPECT_GT(respond_rate(opendns, Protocol::kIcmpEcho), 0.9);
  EXPECT_GT(respond_rate(opendns, Protocol::kDnsUdp), 0.9);
  EXPECT_GT(respond_rate(opendns, Protocol::kTcpSyn80), 0.9);
  // EdgeCast: HTTP CDN — TCP/80 yes, DNS queries no.
  EXPECT_GT(respond_rate(edgecast, Protocol::kIcmpEcho), 0.9);
  EXPECT_GT(respond_rate(edgecast, Protocol::kTcpSyn80), 0.9);
  EXPECT_DOUBLE_EQ(respond_rate(edgecast, Protocol::kDnsUdp), 0.0);
  EXPECT_DOUBLE_EQ(respond_rate(edgecast, Protocol::kDnsTcp), 0.0);
}

TEST(Internet, ExtraDropProbabilityLosesReplies) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 1, .seed = 12});
  rng::Xoshiro256 gen(6);
  const Deployment* cloudflare = world.deployment_by_name("CLOUDFLARENET,US");
  const auto target = ipaddr::IPv4Address(
      cloudflare->prefixes[0].network().value() | 1);
  int ok = 0;
  constexpr int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    if (world.probe(vps[0], target, Protocol::kIcmpEcho, gen, 0.5).kind ==
        ReplyKind::kEchoReply) {
      ++ok;
    }
  }
  EXPECT_GT(ok, kTrials / 4);
  EXPECT_LT(ok, 3 * kTrials / 4);
}

TEST(Internet, ReachableSitesSubsetOfAllSites) {
  const SimulatedInternet& world = small_world();
  const auto vps = make_planetlab({.node_count = 50, .seed = 13});
  for (std::size_t d = 0; d < 5; ++d) {
    const Deployment& deployment = world.deployments()[d];
    const auto reachable = world.reachable_sites(vps, d, 0);
    EXPECT_FALSE(reachable.empty());
    EXPECT_LE(reachable.size(), deployment.sites.size());
  }
}

TEST(Internet, OpenDnsHasAshburnSite) {
  // Pinned so the Sec. 3.4 case study is reproducible.
  const Deployment* opendns =
      small_world().deployment_by_name("OPENDNS,US");
  ASSERT_NE(opendns, nullptr);
  const bool has_ashburn = std::any_of(
      opendns->sites.begin(), opendns->sites.end(),
      [](const ReplicaSite& site) { return site.city->name == "Ashburn"; });
  EXPECT_TRUE(has_ashburn);
}

}  // namespace
}  // namespace anycast::net
