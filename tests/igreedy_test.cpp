#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "anycast/core/igreedy.hpp"
#include "anycast/geo/city_data.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::core {
namespace {

using geodesy::GeoPoint;

const geo::CityIndex& cities() { return geo::world_index(); }

/// Ideal RTT between two points: pure fibre propagation, no inflation.
double clean_rtt(const GeoPoint& a, const GeoPoint& b,
                 double extra_ms = 0.5) {
  return geodesy::distance_to_min_rtt_ms(geodesy::distance_km(a, b)) +
         extra_ms;
}

GeoPoint city_at(std::string_view name) {
  const geo::City* city = cities().by_name(name);
  EXPECT_NE(city, nullptr) << name;
  return city->location();
}

/// Builds measurements for VPs probing a single unicast host.
std::vector<Measurement> unicast_measurements(
    const std::vector<GeoPoint>& vps, const GeoPoint& host) {
  std::vector<Measurement> out;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    out.push_back(Measurement{static_cast<std::uint32_t>(i), vps[i],
                              clean_rtt(vps[i], host)});
  }
  return out;
}

/// Builds measurements for VPs probing an anycast deployment: each VP
/// reaches its geographically nearest replica.
std::vector<Measurement> anycast_measurements(
    const std::vector<GeoPoint>& vps, const std::vector<GeoPoint>& replicas) {
  std::vector<Measurement> out;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    double best = 1e18;
    for (const GeoPoint& replica : replicas) {
      best = std::min(best, clean_rtt(vps[i], replica));
    }
    out.push_back(
        Measurement{static_cast<std::uint32_t>(i), vps[i], best});
  }
  return out;
}

std::vector<GeoPoint> global_vps() {
  return {city_at("London"),   city_at("New York"), city_at("Tokyo"),
          city_at("Sydney"),   city_at("Sao Paulo"), city_at("Johannesburg"),
          city_at("Moscow"),   city_at("Singapore"), city_at("Los Angeles"),
          city_at("Frankfurt"), city_at("Mumbai"),   city_at("Toronto")};
}

TEST(IGreedy, UnicastTargetIsNotDetected) {
  const IGreedy igreedy(cities());
  const auto measurements =
      unicast_measurements(global_vps(), city_at("Vienna"));
  const Result result = igreedy.analyze(measurements);
  EXPECT_FALSE(result.anycast);
  ASSERT_EQ(result.replicas.size(), 1u);
}

TEST(IGreedy, UnicastGeolocationIsNearTruth) {
  const IGreedy igreedy(cities());
  const GeoPoint host = city_at("Vienna");
  const auto measurements = unicast_measurements(global_vps(), host);
  const Result result = igreedy.analyze(measurements);
  ASSERT_EQ(result.replicas.size(), 1u);
  ASSERT_NE(result.replicas[0].city, nullptr);
  // The smallest disk is from Frankfurt (~600 km away), so the population
  // bias can land on any West-European metropolis — the paper's ~350 km
  // median error at continental scale. Bound it loosely.
  EXPECT_LT(geodesy::distance_km(result.replicas[0].location, host), 1500.0);

  // With a vantage point in town, classification is exact.
  auto close_vps = global_vps();
  close_vps.push_back(geodesy::destination(host, 10.0, 15.0));
  const Result close_result =
      igreedy.analyze(unicast_measurements(close_vps, host));
  ASSERT_EQ(close_result.replicas.size(), 1u);
  ASSERT_NE(close_result.replicas[0].city, nullptr);
  EXPECT_EQ(close_result.replicas[0].city->name, "Vienna");
}

TEST(IGreedy, TwoDistantReplicasAreDetected) {
  const IGreedy igreedy(cities());
  const auto measurements = anycast_measurements(
      global_vps(), {city_at("Amsterdam"), city_at("Tokyo")});
  const Result result = igreedy.analyze(measurements);
  EXPECT_TRUE(result.anycast);
  EXPECT_GE(result.replicas.size(), 2u);
}

TEST(IGreedy, FirstRoundMisIsAStrictLowerBound) {
  // Property (conservative enumeration): the first-round MIS — pairwise
  // disjoint disks — can never exceed the true replica count. Later
  // collapse-and-resolve rounds only add heuristic recall.
  rng::Xoshiro256 gen(2024);
  const auto vps = global_vps();
  const auto all = geo::world_cities();
  for (int trial = 0; trial < 25; ++trial) {
    const int replica_count = 2 + static_cast<int>(rng::uniform_index(gen, 8));
    std::vector<GeoPoint> replicas;
    std::set<std::size_t> chosen;
    while (replicas.size() < static_cast<std::size_t>(replica_count)) {
      const std::size_t pick = rng::uniform_index(gen, 120);
      if (chosen.insert(pick).second) {
        replicas.push_back(all[pick].location());
      }
    }
    const IGreedy igreedy(cities());
    const Result result =
        igreedy.analyze(anycast_measurements(vps, replicas));
    EXPECT_LE(result.first_round_replicas, replicas.size());
    EXPECT_GE(result.replicas.size(), result.first_round_replicas);
  }
}

TEST(IGreedy, GeolocationRecoversPlantedCities) {
  // Replicas in three far-apart megacities, VPs colocated nearby: the
  // classification must name exactly those cities.
  const std::vector<GeoPoint> replicas{
      city_at("London"), city_at("Tokyo"), city_at("New York")};
  std::vector<GeoPoint> vps;
  for (const GeoPoint& replica : replicas) {
    vps.push_back(geodesy::destination(replica, 45.0, 30.0));
    vps.push_back(geodesy::destination(replica, 200.0, 80.0));
  }
  const IGreedy igreedy(cities());
  const Result result = igreedy.analyze(anycast_measurements(vps, replicas));
  EXPECT_TRUE(result.anycast);
  std::set<std::string_view> names;
  for (const Replica& replica : result.replicas) {
    ASSERT_NE(replica.city, nullptr);
    names.insert(replica.city->name);
  }
  EXPECT_EQ(names, (std::set<std::string_view>{"London", "Tokyo",
                                               "New York"}));
}

TEST(IGreedy, IterationIncreasesRecall) {
  // A VP ring where plain MIS finds fewer replicas than iGreedy's
  // collapse-and-resolve: verify iterations > 1 can add replicas.
  const std::vector<GeoPoint> replicas{
      city_at("London"), city_at("Paris"), city_at("Tokyo")};
  std::vector<GeoPoint> vps;
  // Close VPs for London/Tokyo; Paris seen only through a medium disk that
  // overlaps London's once uncollapsed.
  vps.push_back(geodesy::destination(city_at("London"), 0.0, 20.0));
  vps.push_back(geodesy::destination(city_at("Tokyo"), 0.0, 20.0));
  vps.push_back(geodesy::destination(city_at("Paris"), 180.0, 150.0));
  const IGreedy igreedy(cities());
  const Result result = igreedy.analyze(anycast_measurements(vps, replicas));
  EXPECT_TRUE(result.anycast);
  EXPECT_GE(result.replicas.size(), 2u);
}

TEST(IGreedy, DuplicateVpMeasurementsCollapseToMinimum) {
  const IGreedy igreedy(cities());
  const GeoPoint vp = city_at("London");
  std::vector<Measurement> measurements{
      {0, vp, 80.0},
      {0, vp, 12.0},   // the minimum: used
      {0, vp, 300.0},
  };
  const Result result = igreedy.analyze(measurements);
  EXPECT_EQ(result.usable_measurements, 1u);
  ASSERT_EQ(result.replicas.size(), 1u);
  EXPECT_NEAR(result.replicas[0].disk.radius_km(),
              geodesy::rtt_to_radius_km(12.0), 1e-9);
}

TEST(IGreedy, RejectsNonPositiveAndHugeRtts) {
  Options options;
  options.max_rtt_ms = 400.0;
  const IGreedy igreedy(cities(), options);
  std::vector<Measurement> measurements{
      {0, city_at("London"), -3.0},
      {1, city_at("Tokyo"), 0.0},
      {2, city_at("Sydney"), 500.0},
  };
  const Result result = igreedy.analyze(measurements);
  EXPECT_EQ(result.usable_measurements, 0u);
  EXPECT_TRUE(result.replicas.empty());
  EXPECT_FALSE(result.anycast);
}

TEST(IGreedy, EmptyInput) {
  const IGreedy igreedy(cities());
  const Result result = igreedy.analyze({});
  EXPECT_FALSE(result.anycast);
  EXPECT_TRUE(result.replicas.empty());
}

TEST(IGreedy, DetectStaticMatchesAnalyze) {
  rng::Xoshiro256 gen(5);
  const auto vps = global_vps();
  const auto all = geo::world_cities();
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<GeoPoint> replicas;
    const int count = 1 + static_cast<int>(rng::uniform_index(gen, 4));
    for (int i = 0; i < count; ++i) {
      replicas.push_back(
          all[rng::uniform_index(gen, 200)].location());
    }
    const auto measurements = anycast_measurements(vps, replicas);
    const IGreedy igreedy(cities());
    EXPECT_EQ(IGreedy::detect(measurements),
              igreedy.analyze(measurements).anycast);
  }
}

TEST(IGreedy, NoFalsePositiveUnderInflatedRtts) {
  // Property: RTT >= physical minimum implies no detection for unicast,
  // whatever the inflation pattern (the Sec. 4.2 false-positive argument).
  rng::Xoshiro256 gen(6);
  const auto vps = global_vps();
  const auto all = geo::world_cities();
  for (int trial = 0; trial < 40; ++trial) {
    const GeoPoint host = all[rng::uniform_index(gen, 300)].location();
    std::vector<Measurement> measurements;
    for (std::size_t i = 0; i < vps.size(); ++i) {
      const double physical = clean_rtt(vps[i], host, 0.0);
      const double inflated =
          physical * rng::uniform(gen, 1.0, 2.5) +
          rng::exponential(gen, 5.0);
      measurements.push_back(
          Measurement{static_cast<std::uint32_t>(i), vps[i], inflated});
    }
    EXPECT_FALSE(IGreedy::detect(measurements));
  }
}

TEST(IGreedy, PopulationBiasMisclassifiesAshburn) {
  // The paper's OpenDNS case study (Sec. 3.4): a replica physically in
  // Ashburn is classified as a larger city in the disk, because the
  // classifier is population-biased.
  const GeoPoint ashburn = city_at("Ashburn");
  // Two VPs a couple of ms away: the smallest disk spans the DC corridor
  // (Washington, Baltimore, Philadelphia) but stops short of New York.
  std::vector<Measurement> measurements{
      {0, geodesy::destination(ashburn, 90.0, 100.0), 2.2},
      {1, geodesy::destination(ashburn, 270.0, 160.0), 3.0},
  };
  const IGreedy igreedy(cities());
  const Result result = igreedy.analyze(measurements);
  ASSERT_EQ(result.replicas.size(), 1u);
  ASSERT_NE(result.replicas[0].city, nullptr);
  EXPECT_EQ(result.replicas[0].city->name, "Philadelphia");
}

TEST(IGreedy, CityPolicyNearestFixesAshburnCase) {
  const GeoPoint ashburn = city_at("Ashburn");
  std::vector<Measurement> measurements{
      {0, geodesy::destination(ashburn, 90.0, 3.0), 0.2},
  };
  Options options;
  options.city_policy = CityPolicy::kNearestToCenter;
  const IGreedy igreedy(cities(), options);
  const Result result = igreedy.analyze(measurements);
  ASSERT_EQ(result.replicas.size(), 1u);
  ASSERT_NE(result.replicas[0].city, nullptr);
  EXPECT_EQ(result.replicas[0].city->name, "Ashburn");
}

TEST(IGreedy, CityPolicyNoneKeepsDiskCenters) {
  Options options;
  options.city_policy = CityPolicy::kNone;
  const IGreedy igreedy(cities(), options);
  const auto measurements = anycast_measurements(
      global_vps(), {city_at("Amsterdam"), city_at("Tokyo")});
  const Result result = igreedy.analyze(measurements);
  EXPECT_TRUE(result.anycast);
  for (const Replica& replica : result.replicas) {
    EXPECT_EQ(replica.city, nullptr);
    EXPECT_EQ(replica.location, replica.disk.center());
  }
}

TEST(IGreedy, ExactEnumerationOptionNeverWorse) {
  rng::Xoshiro256 gen(9);
  const auto vps = global_vps();
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<GeoPoint> replicas;
    for (int i = 0; i < 5; ++i) {
      replicas.push_back(
          geo::world_cities()[rng::uniform_index(gen, 80)].location());
    }
    const auto measurements = anycast_measurements(vps, replicas);
    Options exact_options;
    exact_options.exact_enumeration = true;
    const Result greedy = IGreedy(cities()).analyze(measurements);
    const Result exact = IGreedy(cities(), exact_options).analyze(measurements);
    EXPECT_GE(exact.replicas.size() * 5 + 5, greedy.replicas.size());
    EXPECT_EQ(greedy.anycast, exact.anycast);
  }
}

}  // namespace
}  // namespace anycast::core
