#include <gtest/gtest.h>

#include "anycast/ipaddr/ipv4.hpp"
#include "anycast/ipaddr/prefix.hpp"
#include "anycast/ipaddr/prefix_table.hpp"

namespace anycast::ipaddr {
namespace {

TEST(IPv4Address, ParsesDottedQuad) {
  const auto addr = IPv4Address::parse("192.0.2.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->value(), 0xC0000201u);
  EXPECT_EQ(addr->octet(0), 192);
  EXPECT_EQ(addr->octet(1), 0);
  EXPECT_EQ(addr->octet(2), 2);
  EXPECT_EQ(addr->octet(3), 1);
}

TEST(IPv4Address, ParsesBoundaries) {
  EXPECT_EQ(IPv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(IPv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(IPv4Address, RejectsMalformedInput) {
  EXPECT_FALSE(IPv4Address::parse(""));
  EXPECT_FALSE(IPv4Address::parse("1.2.3"));
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(IPv4Address::parse("1.2.3.256"));
  EXPECT_FALSE(IPv4Address::parse("1.2.3.-4"));
  EXPECT_FALSE(IPv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(IPv4Address::parse(" 1.2.3.4"));
  EXPECT_FALSE(IPv4Address::parse("1..3.4"));
  EXPECT_FALSE(IPv4Address::parse("a.b.c.d"));
  EXPECT_FALSE(IPv4Address::parse("01.2.3.4"));  // leading zero
}

TEST(IPv4Address, FormatsRoundTrip) {
  for (const char* text : {"0.0.0.0", "10.1.2.3", "104.16.0.1",
                           "255.255.255.255", "8.8.8.8"}) {
    const auto addr = IPv4Address::parse(text);
    ASSERT_TRUE(addr.has_value()) << text;
    EXPECT_EQ(addr->to_string(), text);
  }
}

TEST(IPv4Address, Slash24Index) {
  const IPv4Address addr(104, 16, 7, 99);
  EXPECT_EQ(addr.slash24_index(), (104u << 16) | (16u << 8) | 7u);
  EXPECT_EQ(addr.slash24_base().to_string(), "104.16.7.0");
  EXPECT_EQ(IPv4Address::from_slash24_index(addr.slash24_index(), 42)
                .to_string(),
            "104.16.7.42");
}

TEST(IPv4Address, Ordering) {
  EXPECT_LT(IPv4Address(1, 0, 0, 0), IPv4Address(2, 0, 0, 0));
  EXPECT_EQ(IPv4Address(1, 2, 3, 4), *IPv4Address::parse("1.2.3.4"));
}

TEST(Prefix, ParseAndCanonicalize) {
  const auto prefix = Prefix::parse("10.1.2.3/16");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->network().to_string(), "10.1.0.0");
  EXPECT_EQ(prefix->length(), 16);
  EXPECT_EQ(prefix->to_string(), "10.1.0.0/16");
}

TEST(Prefix, RejectsMalformed) {
  EXPECT_FALSE(Prefix::parse("10.1.2.3"));
  EXPECT_FALSE(Prefix::parse("10.1.2.3/33"));
  EXPECT_FALSE(Prefix::parse("10.1.2.3/-1"));
  EXPECT_FALSE(Prefix::parse("10.1.2/24"));
  EXPECT_FALSE(Prefix::parse("10.1.2.3/abc"));
}

TEST(Prefix, Contains) {
  const Prefix p = *Prefix::parse("192.168.0.0/16");
  EXPECT_TRUE(p.contains(*IPv4Address::parse("192.168.255.255")));
  EXPECT_FALSE(p.contains(*IPv4Address::parse("192.169.0.0")));
  EXPECT_TRUE(p.contains(*Prefix::parse("192.168.4.0/24")));
  EXPECT_FALSE(p.contains(*Prefix::parse("192.0.0.0/8")));
  EXPECT_TRUE(p.contains(p));
}

TEST(Prefix, ZeroLengthCoversEverything) {
  const Prefix everything(IPv4Address(0), 0);
  EXPECT_TRUE(everything.contains(IPv4Address(0xFFFFFFFF)));
  EXPECT_TRUE(everything.contains(IPv4Address(0)));
  EXPECT_EQ(everything.mask(), 0u);
}

TEST(Prefix, LastAddress) {
  EXPECT_EQ(Prefix::parse("10.0.0.0/24")->last_address().to_string(),
            "10.0.0.255");
  EXPECT_EQ(Prefix::parse("10.0.0.0/30")->last_address().to_string(),
            "10.0.0.3");
  EXPECT_EQ(Prefix::parse("10.0.0.1/32")->last_address().to_string(),
            "10.0.0.1");
}

TEST(Prefix, Slash24SplitOfShorterPrefix) {
  const Prefix p = *Prefix::parse("10.0.0.0/22");
  EXPECT_EQ(p.slash24_count(), 4u);
  const auto parts = p.split_slash24();
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].to_string(), "10.0.0.0/24");
  EXPECT_EQ(parts[3].to_string(), "10.0.3.0/24");
  for (const Prefix& part : parts) {
    EXPECT_EQ(part.length(), 24);
    EXPECT_TRUE(p.contains(part));
  }
}

TEST(Prefix, Slash24SplitOfLongerPrefixYieldsCoveringSlash24) {
  // Sec. 3.1: sub-/24 announcements are probed via their covering /24.
  const Prefix p = *Prefix::parse("10.0.0.128/25");
  const auto parts = p.split_slash24();
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].to_string(), "10.0.0.0/24");
}

TEST(Prefix, Slash24OfAddress) {
  EXPECT_EQ(Prefix::slash24_of(*IPv4Address::parse("8.8.8.8")).to_string(),
            "8.8.8.0/24");
}

TEST(PrefixTable, LongestPrefixMatchPicksMostSpecific) {
  PrefixTable table({
      {*Prefix::parse("10.0.0.0/8"), 100},
      {*Prefix::parse("10.1.0.0/16"), 200},
      {*Prefix::parse("10.1.2.0/24"), 300},
  });
  EXPECT_EQ(table.lookup(*IPv4Address::parse("10.1.2.3"))->origin_as, 300u);
  EXPECT_EQ(table.lookup(*IPv4Address::parse("10.1.9.9"))->origin_as, 200u);
  EXPECT_EQ(table.lookup(*IPv4Address::parse("10.9.9.9"))->origin_as, 100u);
  EXPECT_FALSE(table.lookup(*IPv4Address::parse("11.0.0.0")).has_value());
}

TEST(PrefixTable, DefaultRouteMatchesEverything) {
  PrefixTable table({{Prefix(IPv4Address(0), 0), 1}});
  EXPECT_EQ(table.lookup(IPv4Address(0xFFFFFFFF))->origin_as, 1u);
  EXPECT_EQ(table.lookup(IPv4Address(0))->origin_as, 1u);
}

TEST(PrefixTable, DeduplicatesRoutes) {
  PrefixTable table({
      {*Prefix::parse("10.0.0.0/8"), 1},
      {*Prefix::parse("10.0.0.0/8"), 1},
  });
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, EmptyTable) {
  PrefixTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(IPv4Address(1)).has_value());
  EXPECT_EQ(table.covered_slash24_count(), 0u);
}

TEST(PrefixTable, CoveredSlash24CountMergesOverlaps) {
  PrefixTable table({
      {*Prefix::parse("10.0.0.0/22"), 1},   // 4 x /24
      {*Prefix::parse("10.0.2.0/24"), 2},   // nested, no new coverage
      {*Prefix::parse("10.0.8.0/24"), 3},   // disjoint
  });
  EXPECT_EQ(table.covered_slash24_count(), 5u);
}

TEST(PrefixTable, HostRouteMatch) {
  PrefixTable table({
      {*Prefix::parse("8.8.8.8/32"), 15169},
      {*Prefix::parse("8.8.8.0/24"), 1},
  });
  EXPECT_EQ(table.lookup(*IPv4Address::parse("8.8.8.8"))->origin_as, 15169u);
  EXPECT_EQ(table.lookup(*IPv4Address::parse("8.8.8.9"))->origin_as, 1u);
}

// Parameterized sweep: every /24 of a covering prefix maps back to it.
class SplitParam : public ::testing::TestWithParam<int> {};

TEST_P(SplitParam, SplitCountMatchesFormula) {
  const int length = GetParam();
  const Prefix p(IPv4Address(10, 0, 0, 0), length);
  EXPECT_EQ(p.split_slash24().size(), p.slash24_count());
  EXPECT_EQ(p.slash24_count(), 1u << (24 - length));
}

INSTANTIATE_TEST_SUITE_P(Lengths, SplitParam,
                         ::testing::Values(16, 17, 18, 19, 20, 21, 22, 23,
                                           24));

}  // namespace
}  // namespace anycast::ipaddr
