#include <gtest/gtest.h>

#include <cmath>

#include "anycast/geodesy/disk.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::geodesy {
namespace {

const GeoPoint kNewYork(40.71, -74.01);
const GeoPoint kLondon(51.51, -0.13);
const GeoPoint kSydney(-33.87, 151.21);
const GeoPoint kTokyo(35.68, 139.69);

TEST(GeoPoint, NormalizesLongitude) {
  EXPECT_DOUBLE_EQ(GeoPoint(0.0, 190.0).longitude(), -170.0);
  EXPECT_DOUBLE_EQ(GeoPoint(0.0, -190.0).longitude(), 170.0);
  EXPECT_DOUBLE_EQ(GeoPoint(0.0, 360.0).longitude(), 0.0);
  EXPECT_DOUBLE_EQ(GeoPoint(0.0, -180.0).longitude(), -180.0);
}

TEST(GeoPoint, ClampsLatitude) {
  EXPECT_DOUBLE_EQ(GeoPoint(95.0, 0.0).latitude(), 90.0);
  EXPECT_DOUBLE_EQ(GeoPoint(-95.0, 0.0).latitude(), -90.0);
}

TEST(Distance, KnownCityPairs) {
  // Reference values from standard great-circle calculators (+-1%).
  EXPECT_NEAR(distance_km(kNewYork, kLondon), 5570.0, 60.0);
  EXPECT_NEAR(distance_km(kLondon, kSydney), 16990.0, 170.0);
  EXPECT_NEAR(distance_km(kTokyo, kSydney), 7820.0, 80.0);
}

TEST(Distance, IdentityAndSymmetry) {
  EXPECT_DOUBLE_EQ(distance_km(kLondon, kLondon), 0.0);
  EXPECT_DOUBLE_EQ(distance_km(kNewYork, kTokyo),
                   distance_km(kTokyo, kNewYork));
}

TEST(Distance, Antipodal) {
  const GeoPoint a(0.0, 0.0);
  const GeoPoint b(0.0, 180.0);
  EXPECT_NEAR(distance_km(a, b), kMaxDistanceKm, 2.0);
}

TEST(Distance, AcrossAntimeridian) {
  // Fiji-side and Samoa-side points ~ a few hundred km apart, not ~40000.
  const GeoPoint west(-17.0, 179.0);
  const GeoPoint east(-17.0, -179.0);
  EXPECT_NEAR(distance_km(west, east), 2.0 * 111.19 * std::cos(17.0 * M_PI /
                                                               180.0),
              5.0);
}

TEST(Distance, Poles) {
  const GeoPoint north(90.0, 0.0);
  const GeoPoint south(-90.0, 123.0);  // longitude irrelevant at the pole
  EXPECT_NEAR(distance_km(north, south), kMaxDistanceKm, 2.0);
}

TEST(Destination, RoundTripsDistance) {
  for (const double bearing : {0.0, 45.0, 90.0, 135.0, 200.0, 330.0}) {
    const GeoPoint there = destination(kLondon, bearing, 1234.0);
    EXPECT_NEAR(distance_km(kLondon, there), 1234.0, 1.0) << bearing;
  }
}

TEST(Destination, ZeroDistanceIsIdentity) {
  const GeoPoint there = destination(kTokyo, 77.0, 0.0);
  EXPECT_NEAR(distance_km(kTokyo, there), 0.0, 1e-6);
}

TEST(Bearing, CardinalDirections) {
  const GeoPoint origin(0.0, 0.0);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint(1.0, 0.0)), 0.0, 0.1);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint(0.0, 1.0)), 90.0, 0.1);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint(-1.0, 0.0)), 180.0, 0.1);
  EXPECT_NEAR(initial_bearing_deg(origin, GeoPoint(0.0, -1.0)), 270.0, 0.1);
}

TEST(RttRadius, SpeedOfLightInFiber) {
  // 1 ms RTT -> 0.5 ms one way -> ~100 km in fibre.
  EXPECT_NEAR(rtt_to_radius_km(1.0), 99.93, 0.1);
  EXPECT_NEAR(rtt_to_radius_km(10.0), 999.3, 1.0);
  EXPECT_DOUBLE_EQ(rtt_to_radius_km(0.0), 0.0);
}

TEST(RttRadius, InverseRelationship) {
  for (const double km : {10.0, 500.0, 9000.0}) {
    EXPECT_NEAR(rtt_to_radius_km(distance_to_min_rtt_ms(km)), km, 1e-9);
  }
}

TEST(Disk, ContainsPoint) {
  const Disk disk(kLondon, 400.0);
  EXPECT_TRUE(disk.contains(kLondon));
  EXPECT_TRUE(disk.contains(GeoPoint(52.49, -1.89)));   // Birmingham
  EXPECT_FALSE(disk.contains(kNewYork));
}

TEST(Disk, NegativeRadiusClampedToZero) {
  const Disk disk(kLondon, -5.0);
  EXPECT_DOUBLE_EQ(disk.radius_km(), 0.0);
  EXPECT_TRUE(disk.contains(kLondon));
}

TEST(Disk, IntersectionCases) {
  const Disk london(kLondon, 300.0);
  const Disk paris(GeoPoint(48.86, 2.35), 100.0);  // ~344 km away
  EXPECT_TRUE(london.intersects(paris));
  EXPECT_TRUE(paris.intersects(london));
  const Disk tight_paris(GeoPoint(48.86, 2.35), 20.0);
  EXPECT_FALSE(london.intersects(tight_paris));
  // Any disk intersects itself.
  EXPECT_TRUE(london.intersects(london));
}

TEST(Disk, ContainmentOfDisk) {
  const Disk big(kLondon, 1000.0);
  const Disk small(GeoPoint(48.86, 2.35), 100.0);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
}

TEST(Disk, CoversSphere) {
  EXPECT_TRUE(Disk(kLondon, kMaxDistanceKm + 1.0).covers_sphere());
  EXPECT_FALSE(Disk(kLondon, 10000.0).covers_sphere());
}

TEST(Disk, FromRtt) {
  const Disk disk = Disk::from_rtt(kTokyo, 20.0);
  EXPECT_NEAR(disk.radius_km(), 1998.6, 2.0);
  EXPECT_EQ(disk.center(), kTokyo);
}

TEST(Disk, GapKm) {
  const Disk a(kLondon, 100.0);
  const Disk b(GeoPoint(48.86, 2.35), 100.0);
  const double separation = distance_km(kLondon, GeoPoint(48.86, 2.35));
  EXPECT_NEAR(gap_km(a, b), separation - 200.0, 1e-9);
  EXPECT_LT(gap_km(a, Disk(kLondon, 50.0)), 0.0);  // overlapping
}

TEST(Disk, SpeedOfLightViolationExample) {
  // The paper's core inference: a 5 ms RTT from London and a 5 ms RTT from
  // Sydney cannot point at the same host.
  const Disk from_london = Disk::from_rtt(kLondon, 5.0);
  const Disk from_sydney = Disk::from_rtt(kSydney, 5.0);
  EXPECT_FALSE(from_london.intersects(from_sydney));
  // But 90 ms from both is perfectly consistent with a mid-point host.
  EXPECT_TRUE(Disk::from_rtt(kLondon, 90.0)
                  .intersects(Disk::from_rtt(kSydney, 90.0)));
}

}  // namespace
}  // namespace anycast::geodesy
