// The determinism contract of the parallel engine: any thread count —
// including the serial path — produces byte-identical censuses, resumes,
// and analyses. Plus unit coverage for the ThreadPool itself.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <unistd.h>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/fault.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/slo.hpp"
#include "anycast/portscan/scanner.hpp"
#include "anycast/serving/query.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/serving/store.hpp"

namespace anycast {
namespace {

namespace fs = std::filesystem;
using census::CensusMatrix;
using census::CensusOutput;
using census::CensusSummary;
using census::FastPingConfig;
using census::Greylist;
using census::Hitlist;
using census::ResumeReport;
using concurrency::ThreadPool;

// --- ThreadPool --------------------------------------------------------------

TEST(ThreadPool, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(concurrency::default_thread_count(), 1u);
}

TEST(ThreadPool, ThreadCountSemantics) {
  EXPECT_EQ(ThreadPool(1).thread_count(), 1u);
  EXPECT_EQ(ThreadPool(4).thread_count(), 4u);
  EXPECT_EQ(ThreadPool(0).thread_count(),
            concurrency::default_thread_count());
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kItems = 1000;
    std::vector<std::atomic<int>> hits(kItems);
    pool.parallel_for(kItems, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelForZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelMapIsPositionStable) {
  ThreadPool pool(8);
  const auto out =
      pool.parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 3 * i + 1);
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool survives a failed parallel_for.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, PoolIsReusableAcrossManyForkJoins) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(64, [&](std::size_t i) { sum += i; });
    total += sum.load();
  }
  EXPECT_EQ(total, 50u * (64u * 63u / 2));
}

TEST(ShardRanges, CoverContiguouslyAndEvenly) {
  const auto ranges = concurrency::shard_ranges(103, 10);
  ASSERT_EQ(ranges.size(), 10u);
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : ranges) {
    EXPECT_EQ(begin, expected_begin);
    const std::size_t size = end - begin;
    EXPECT_TRUE(size == 10 || size == 11);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 103u);
  // Fewer items than shards: one shard per item.
  EXPECT_EQ(concurrency::shard_ranges(3, 16).size(), 3u);
  EXPECT_TRUE(concurrency::shard_ranges(0, 16).empty());
}

TEST(ShardRangesWeighted, BalancesByWeightNotRowCount) {
  // 4 rows: weights 90, 2, 4, 4 (cumulative prefix array). Two shards of
  // equal *row count* would pair the heavy row with another; weighted
  // sharding isolates it.
  const std::vector<std::uint64_t> cumulative{0, 90, 92, 96, 100};
  const auto ranges = concurrency::shard_ranges_weighted(cumulative, 2);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{1, 4}));
}

TEST(ShardRangesWeighted, CoversContiguouslyForAnyShardCount) {
  std::vector<std::uint64_t> cumulative{0};
  for (std::size_t i = 0; i < 57; ++i) {
    cumulative.push_back(cumulative.back() + (i * 7) % 13);
  }
  for (const std::size_t shards : {1u, 2u, 5u, 16u, 100u}) {
    const auto ranges = concurrency::shard_ranges_weighted(cumulative, shards);
    ASSERT_FALSE(ranges.empty());
    EXPECT_LE(ranges.size(), std::min<std::size_t>(shards, 57));
    std::size_t expected_begin = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);  // no empty shards
      expected_begin = end;
    }
    EXPECT_EQ(expected_begin, 57u);
  }
}

TEST(ShardRangesWeighted, ZeroWeightsDegradeToEvenRowSplit) {
  const std::vector<std::uint64_t> cumulative(11, 0);  // 10 empty rows
  const auto ranges = concurrency::shard_ranges_weighted(cumulative, 5);
  EXPECT_EQ(ranges, concurrency::shard_ranges(10, 5));
}

TEST(ShardRangesWeighted, DegenerateInputsYieldNothing) {
  EXPECT_TRUE(concurrency::shard_ranges_weighted({}, 4).empty());
  const std::vector<std::uint64_t> one{0};
  EXPECT_TRUE(concurrency::shard_ranges_weighted(one, 4).empty());
  const std::vector<std::uint64_t> some{0, 5, 9};
  EXPECT_TRUE(concurrency::shard_ranges_weighted(some, 0).empty());
}

// --- Determinism across thread counts ---------------------------------------

net::WorldConfig tiny_world_config() {
  net::WorldConfig config;
  config.seed = 21;
  config.unicast_alive_slash24 = 400;
  config.unicast_dead_slash24 = 300;
  return config;
}

const net::SimulatedInternet& tiny_world() {
  static const net::SimulatedInternet world(tiny_world_config());
  return world;
}

const Hitlist& tiny_hitlist() {
  static const Hitlist hitlist =
      Hitlist::from_world(tiny_world()).without_dead();
  return hitlist;
}

/// A config that exercises every runner feature at once: node churn,
/// retries with a budget, a straggler deadline, and quarantine.
FastPingConfig loaded_config() {
  FastPingConfig config;
  config.seed = 90;
  config.vp_availability = 0.8;
  config.retry_max_attempts = 2;
  config.retry_probe_budget = 64;
  config.vp_deadline_hours = 10.0;
  config.quarantine_drop_rate = 0.5;
  return config;
}

net::FaultPlan stormy_plan() {
  net::FaultSpec spec;
  spec.crash_rate = 0.4;
  spec.outage_rate = 0.4;
  spec.storm_rate = 0.4;
  spec.straggler_rate = 0.4;
  return net::FaultPlan(spec);
}

void expect_same_data(const CensusMatrix& a, const CensusMatrix& b) {
  ASSERT_EQ(a.target_count(), b.target_count());
  for (std::uint32_t t = 0; t < a.target_count(); ++t) {
    const auto ra = a.measurements(t);
    const auto rb = b.measurements(t);
    ASSERT_EQ(ra.size(), rb.size()) << "target " << t;
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].vp, rb[i].vp) << "target " << t;
      EXPECT_EQ(ra[i].rtt_ms, rb[i].rtt_ms) << "target " << t;
    }
  }
}

void expect_same_summary(const CensusSummary& a, const CensusSummary& b) {
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.echo_replies, b.echo_replies);
  EXPECT_EQ(a.errors, b.errors);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.injected_timeouts, b.injected_timeouts);
  EXPECT_EQ(a.retry_probes, b.retry_probes);
  EXPECT_EQ(a.retry_recovered, b.retry_recovered);
  EXPECT_EQ(a.greylist_new, b.greylist_new);
  EXPECT_EQ(a.active_vps, b.active_vps);
  ASSERT_EQ(a.vp_duration_hours.size(), b.vp_duration_hours.size());
  for (std::size_t i = 0; i < a.vp_duration_hours.size(); ++i) {
    EXPECT_EQ(a.vp_duration_hours[i], b.vp_duration_hours[i]) << "vp " << i;
  }
  // vp_outcomes must match element-wise *in order* — the summary is part
  // of the byte-identical output contract.
  ASSERT_EQ(a.vp_outcomes.size(), b.vp_outcomes.size());
  for (std::size_t i = 0; i < a.vp_outcomes.size(); ++i) {
    EXPECT_EQ(a.vp_outcomes[i].vp_id, b.vp_outcomes[i].vp_id) << i;
    EXPECT_EQ(a.vp_outcomes[i].outcome, b.vp_outcomes[i].outcome) << i;
  }
}

void expect_same_greylist_counters(const Greylist& a, const Greylist& b) {
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(a.admin_filtered_count(), b.admin_filtered_count());
  EXPECT_EQ(a.host_prohibited_count(), b.host_prohibited_count());
  EXPECT_EQ(a.net_prohibited_count(), b.net_prohibited_count());
}

CensusOutput census_with(ThreadPool* pool, const net::FaultPlan* plan,
                         Greylist& blacklist) {
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 91});
  return run_census(tiny_world(), vps, tiny_hitlist(), blacklist,
                    loaded_config(), plan, pool);
}

// --- Pinned output digests ---------------------------------------------------
//
// The constants below were recorded from the row-of-vectors engine before
// the CSR refactor (same worlds, seeds, and configs). They pin the whole
// observable output — rows, summary counters, greylist counters, analysis
// outcomes — so any layout change that alters *what* is computed, not just
// where it lives in memory, fails loudly. The serialization below is
// layout-independent on purpose: it walks the public row API only.

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v));
  put32(out, static_cast<std::uint32_t>(v >> 32));
}

template <typename OutputT>  // CensusOutput or ShardedCensusOutput
std::uint32_t census_digest(const OutputT& out, const Greylist& blacklist) {
  std::vector<std::uint8_t> bytes;
  const auto& data = out.data;
  put64(bytes, data.target_count());
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    const auto row = data.measurements(t);
    put64(bytes, row.size());
    for (const census::VpRtt& sample : row) {
      put32(bytes, sample.vp);
      put32(bytes, std::bit_cast<std::uint32_t>(sample.rtt_ms));
    }
  }
  const CensusSummary& s = out.summary;
  put64(bytes, s.probes_sent);
  put64(bytes, s.echo_replies);
  put64(bytes, s.errors);
  put64(bytes, s.timeouts);
  put64(bytes, s.injected_timeouts);
  put64(bytes, s.retry_probes);
  put64(bytes, s.retry_recovered);
  put64(bytes, s.greylist_new);
  put64(bytes, s.active_vps);
  for (const double d : s.vp_duration_hours) {
    put64(bytes, std::bit_cast<std::uint64_t>(d));
  }
  for (const census::VpStatus& status : s.vp_outcomes) {
    put32(bytes, status.vp_id);
    put32(bytes, static_cast<std::uint32_t>(status.outcome));
  }
  put64(bytes, blacklist.size());
  put64(bytes, blacklist.admin_filtered_count());
  put64(bytes, blacklist.host_prohibited_count());
  put64(bytes, blacklist.net_prohibited_count());
  return census::crc32(bytes);
}

std::uint32_t outcome_digest(
    const std::vector<analysis::TargetOutcome>& outcomes) {
  std::vector<std::uint8_t> bytes;
  put64(bytes, outcomes.size());
  for (const analysis::TargetOutcome& outcome : outcomes) {
    put32(bytes, outcome.target_index);
    put32(bytes, outcome.slash24_index);
    put32(bytes, outcome.result.anycast ? 1u : 0u);
    put32(bytes, static_cast<std::uint32_t>(outcome.result.iterations));
    put64(bytes, outcome.result.usable_measurements);
    put64(bytes, outcome.result.first_round_replicas);
    put64(bytes, outcome.result.replicas.size());
    for (const core::Replica& replica : outcome.result.replicas) {
      put32(bytes, replica.vp_id);
      put64(bytes,
            std::bit_cast<std::uint64_t>(replica.location.latitude()));
      put64(bytes,
            std::bit_cast<std::uint64_t>(replica.location.longitude()));
    }
  }
  return census::crc32(bytes);
}

// Recorded from commit 4b30468 (pre-CSR row-of-vectors engine).
constexpr std::uint32_t kCensusDigestClean = 0xA02F7EE0;
constexpr std::uint32_t kCensusDigestChaos = 0xBDD46711;
constexpr std::uint32_t kResumeDigestClean = 0xA108F494;
constexpr std::uint32_t kResumeDigestChaos = 0x14732D63;
constexpr std::uint32_t kAnalysisDigest = 0x4A4DFBAC;

TEST(PinnedDigests, CensusMatchesPreRefactorEngineForAnyThreadCount) {
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;
    const std::uint32_t expected =
        chaos ? kCensusDigestChaos : kCensusDigestClean;
    {
      Greylist blacklist;
      const CensusOutput serial = census_with(nullptr, faults, blacklist);
      EXPECT_EQ(census_digest(serial, blacklist), expected)
          << "serial chaos=" << chaos;
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      Greylist blacklist;
      const CensusOutput parallel = census_with(&pool, faults, blacklist);
      EXPECT_EQ(census_digest(parallel, blacklist), expected)
          << "chaos=" << chaos << " threads=" << threads;
    }
  }
}

TEST(PinnedDigests, ShardedCensusMatchesPinnedDigestForAnyShardSize) {
  // The sharded data plane — any shard size, with a 1 MiB RSS budget
  // forcing spills, chaos on or off — lands on the exact digests pinned
  // from the pre-CSR monolithic engine. Rows, summary, greylist: all of it.
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 91});
  const fs::path spill_root =
      fs::temp_directory_path() /
      ("anycast_sharded_digest_" + std::to_string(::getpid()));
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;
    const std::uint32_t expected =
        chaos ? kCensusDigestChaos : kCensusDigestClean;
    for (const std::size_t shard_targets : {1u, 37u, 1u << 20}) {
      census::DataPlaneConfig plane;
      plane.shard_targets = shard_targets;
      plane.rss_budget_mb = 1;
      plane.spill_dir = (spill_root / std::to_string(shard_targets)).string();
      Greylist blacklist;
      const census::ShardedCensusOutput sharded = census::run_census_sharded(
          tiny_world(), vps, tiny_hitlist(), blacklist, loaded_config(),
          plane, faults);
      EXPECT_EQ(census_digest(sharded, blacklist), expected)
          << "chaos=" << chaos << " shard_targets=" << shard_targets;
    }
  }
  fs::remove_all(spill_root);
}

TEST(PinnedDigests, AnalysisMatchesPreRefactorEngineForAnyThreadCount) {
  const auto vps = net::make_planetlab({.node_count = 16, .seed = 92});
  Greylist blacklist;
  FastPingConfig config;
  config.seed = 92;
  const CensusOutput output =
      run_census(tiny_world(), vps, tiny_hitlist(), blacklist, config);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  EXPECT_EQ(outcome_digest(analyzer.analyze(output.data, tiny_hitlist())),
            kAnalysisDigest)
      << "serial";
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(outcome_digest(
                  analyzer.analyze(output.data, tiny_hitlist(), 2, &pool)),
              kAnalysisDigest)
        << "threads=" << threads;
  }
}

TEST(ParallelCensus, OutputIsIdenticalForAnyThreadCount) {
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;

    Greylist serial_blacklist;
    const CensusOutput serial =
        census_with(nullptr, faults, serial_blacklist);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      Greylist blacklist;
      const CensusOutput parallel = census_with(&pool, faults, blacklist);
      SCOPED_TRACE("chaos=" + std::to_string(chaos) +
                   " threads=" + std::to_string(threads));
      expect_same_summary(parallel.summary, serial.summary);
      expect_same_data(parallel.data, serial.data);
      expect_same_greylist_counters(blacklist, serial_blacklist);
    }
  }
}

TEST(ParallelCensus, SerialPathIsExactlyTheLegacyLoop) {
  // threads == 1 must not even touch the pool machinery: a 1-lane pool
  // and a null pool take the same inline path and agree bit-for-bit.
  Greylist blacklist_null;
  Greylist blacklist_one;
  const CensusOutput with_null = census_with(nullptr, nullptr, blacklist_null);
  ThreadPool one(1);
  const CensusOutput with_one = census_with(&one, nullptr, blacklist_one);
  expect_same_summary(with_one.summary, with_null.summary);
  expect_same_data(with_one.data, with_null.data);
  expect_same_greylist_counters(blacklist_one, blacklist_null);
}

TEST(ParallelAnalysis, OutcomesAndReportAreIdenticalForAnyThreadCount) {
  const auto vps = net::make_planetlab({.node_count = 16, .seed = 92});
  Greylist blacklist;
  FastPingConfig config;
  config.seed = 92;
  const CensusOutput output = run_census(tiny_world(), vps, tiny_hitlist(),
                                         blacklist, config);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());

  const auto serial = analyzer.analyze(output.data, tiny_hitlist());
  ASSERT_GT(serial.size(), 0u) << "world should contain detectable anycast";
  const analysis::CensusReport serial_report(tiny_world(), serial);
  const analysis::GlanceRow serial_glance = serial_report.glance_all();

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel =
        analyzer.analyze(output.data, tiny_hitlist(), 2, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].target_index, serial[i].target_index) << i;
      EXPECT_EQ(parallel[i].slash24_index, serial[i].slash24_index) << i;
      EXPECT_EQ(parallel[i].result.anycast, serial[i].result.anycast) << i;
      EXPECT_EQ(parallel[i].result.iterations, serial[i].result.iterations)
          << i;
      EXPECT_EQ(parallel[i].result.first_round_replicas,
                serial[i].result.first_round_replicas)
          << i;
      ASSERT_EQ(parallel[i].result.replicas.size(),
                serial[i].result.replicas.size())
          << i;
      for (std::size_t r = 0; r < serial[i].result.replicas.size(); ++r) {
        EXPECT_EQ(parallel[i].result.replicas[r].vp_id,
                  serial[i].result.replicas[r].vp_id);
        EXPECT_EQ(parallel[i].result.replicas[r].city,
                  serial[i].result.replicas[r].city);
      }
    }
    // The derived report numbers match too.
    const analysis::CensusReport report(tiny_world(), parallel);
    const analysis::GlanceRow glance = report.glance_all();
    EXPECT_EQ(glance.ip24, serial_glance.ip24);
    EXPECT_EQ(glance.ases, serial_glance.ases);
    EXPECT_EQ(glance.replicas, serial_glance.replicas);
    EXPECT_EQ(glance.cities, serial_glance.cities);
    EXPECT_EQ(glance.countries, serial_glance.countries);
  }
}

// --- Resume under threads (extends PR 1's invariant) -------------------------

class ParallelResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_concurrency_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static std::vector<std::uint8_t> read_bytes(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

TEST_F(ParallelResumeTest, ResumeOutputIsIdenticalForAnyThreadCount) {
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  FastPingConfig config;
  config.seed = 93;

  Greylist serial_blacklist;
  const ResumeReport serial =
      resume_census(tiny_world(), vps, tiny_hitlist(), serial_blacklist,
                    config, dir_ / "serial", /*census_id=*/1);

  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const fs::path sub = dir_ / ("threads" + std::to_string(threads));
    Greylist blacklist;
    const ResumeReport parallel = resume_census(
        tiny_world(), vps, tiny_hitlist(), blacklist, config, sub,
        /*census_id=*/1, /*faults=*/nullptr, &pool);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(parallel.vps_reused, serial.vps_reused);
    EXPECT_EQ(parallel.vps_rerun, serial.vps_rerun);
    EXPECT_EQ(parallel.vps_skipped, serial.vps_skipped);
    EXPECT_EQ(parallel.files_salvaged, serial.files_salvaged);
    expect_same_summary(parallel.output.summary, serial.output.summary);
    expect_same_data(parallel.output.data, serial.output.data);
    expect_same_greylist_counters(blacklist, serial_blacklist);
    for (const net::VantagePoint& vp : vps) {
      const auto a = read_bytes(census::census_checkpoint_path(dir_ / "serial", 1,
                                                       vp.id));
      const auto b = read_bytes(census::census_checkpoint_path(sub, 1, vp.id));
      ASSERT_FALSE(a.empty());
      EXPECT_EQ(a, b) << "vp " << vp.id;
    }
  }
}

TEST_F(ParallelResumeTest, ResumeMatchesPreRefactorEngineForAnyThreadCount) {
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  FastPingConfig config;
  config.seed = 93;
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;
    const std::uint32_t expected =
        chaos ? kResumeDigestChaos : kResumeDigestClean;
    {
      const fs::path sub =
          dir_ / (std::string("serial_chaos") + (chaos ? "1" : "0"));
      Greylist blacklist;
      const ResumeReport report =
          resume_census(tiny_world(), vps, tiny_hitlist(), blacklist, config,
                        sub, /*census_id=*/1, faults);
      EXPECT_EQ(census_digest(report.output, blacklist), expected)
          << "serial chaos=" << chaos;
    }
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      const fs::path sub = dir_ / (std::string("chaos") + (chaos ? "1" : "0") +
                                   "_threads" + std::to_string(threads));
      Greylist blacklist;
      const ResumeReport report =
          resume_census(tiny_world(), vps, tiny_hitlist(), blacklist, config,
                        sub, /*census_id=*/1, faults, &pool);
      EXPECT_EQ(census_digest(report.output, blacklist), expected)
          << "chaos=" << chaos << " threads=" << threads;
    }
  }
}

TEST_F(ParallelResumeTest, ChaosCrashThenParallelResumeEqualsUninterrupted) {
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  FastPingConfig config;
  config.seed = 90;

  // Baseline: an uninterrupted fault-free *serial* census.
  const fs::path clean_dir = dir_ / "clean";
  Greylist blacklist_clean;
  const ResumeReport clean =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_clean,
                    config, clean_dir, /*census_id=*/1);

  // The same census with 8 threads, under a crashy plan...
  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  const net::FaultPlan plan(spec);
  const fs::path crash_dir = dir_ / "crashed";
  ThreadPool pool(8);
  Greylist blacklist_crash;
  const ResumeReport crashed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_crash, config, crash_dir,
      /*census_id=*/1, &plan, &pool);
  const std::size_t crashes =
      crashed.output.summary.outcome_count(census::VpOutcome::kCrashed);
  ASSERT_GT(crashes, 0u) << "plan should crash at least one of 8 VPs";

  // ...then a fault-free resume, still at 8 threads, re-runs exactly the
  // crashed VPs and reproduces the uninterrupted census byte-for-byte.
  Greylist blacklist_resume;
  const ResumeReport resumed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_resume, config, crash_dir,
      /*census_id=*/1, /*faults=*/nullptr, &pool);
  EXPECT_EQ(resumed.vps_rerun, crashes);
  EXPECT_EQ(resumed.vps_reused, vps.size() - crashes);
  // Funnel counters, rows, and files match the uninterrupted census.
  // (Durations are excluded: reused checkpoints reconstruct a coarse
  // duration from the file's quantised timestamps, as in fault_test.)
  EXPECT_EQ(resumed.output.summary.probes_sent,
            clean.output.summary.probes_sent);
  EXPECT_EQ(resumed.output.summary.echo_replies,
            clean.output.summary.echo_replies);
  EXPECT_EQ(resumed.output.summary.timeouts, clean.output.summary.timeouts);
  EXPECT_EQ(resumed.output.summary.errors, clean.output.summary.errors);
  EXPECT_EQ(resumed.output.summary.outcome_count(census::VpOutcome::kCompleted),
            vps.size());
  expect_same_data(resumed.output.data, clean.output.data);
  for (const net::VantagePoint& vp : vps) {
    const auto clean_bytes =
        read_bytes(census::census_checkpoint_path(clean_dir, 1, vp.id));
    const auto resumed_bytes =
        read_bytes(census::census_checkpoint_path(crash_dir, 1, vp.id));
    ASSERT_FALSE(clean_bytes.empty());
    EXPECT_EQ(clean_bytes, resumed_bytes) << "vp " << vp.id;
  }
}

// --- Metrics determinism -----------------------------------------------------
//
// The observability layer's contract (DESIGN.md §10): every kSemantic
// metric is byte-identical across thread counts and across crash+resume.
// kTiming metrics are allowed to vary, but only the ones on the declared
// allowlist below — an undeclared timing metric, or an allowlisted name
// that went missing or changed class, fails loudly.

std::string census_snapshot(ThreadPool* pool, const net::FaultPlan* plan) {
  obs::metrics().reset();
  Greylist blacklist;
  (void)census_with(pool, plan, blacklist);
  return obs::metrics().semantic_snapshot();
}

TEST(MetricsDeterminism, SemanticSnapshotIdenticalAcrossThreadCounts) {
  std::string clean_serial;
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;
    const std::string serial = census_snapshot(nullptr, faults);
    ASSERT_NE(serial.find("census_probes_sent"), std::string::npos);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(census_snapshot(&pool, faults), serial)
          << "chaos=" << chaos << " threads=" << threads;
    }
    if (!chaos) {
      clean_serial = serial;
    } else {
      // Sanity: the snapshot actually sees the chaos (injected timeouts
      // change the funnel), it is not just a constant string.
      EXPECT_NE(serial, clean_serial);
    }
  }
}

TEST_F(ParallelResumeTest, SemanticSnapshotSurvivesCrashAndResume) {
  // The resumed census must not only reproduce the *data* of its
  // uninterrupted twin (ChaosCrashThenParallelResumeEqualsUninterrupted),
  // but the exact same semantic metrics: reused checkpoints replay through
  // the same flush chokepoint as live walks. Retries stay off — a replayed
  // checkpoint cannot distinguish retry probes from first attempts.
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  FastPingConfig config;
  config.seed = 90;

  obs::metrics().reset();
  Greylist blacklist_clean;
  const ResumeReport clean =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist_clean,
                    config, dir_ / "clean", /*census_id=*/1);
  const std::string clean_snapshot = obs::metrics().semantic_snapshot();
  ASSERT_NE(clean_snapshot.find("census_rtt_ms"), std::string::npos);

  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  const net::FaultPlan plan(spec);
  const fs::path crash_dir = dir_ / "crashed";
  ThreadPool pool(8);
  Greylist blacklist_crash;
  const ResumeReport crashed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_crash, config, crash_dir,
      /*census_id=*/1, &plan, &pool);
  ASSERT_GT(
      crashed.output.summary.outcome_count(census::VpOutcome::kCrashed), 0u);

  obs::metrics().reset();
  Greylist blacklist_resume;
  const ResumeReport resumed = resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_resume, config, crash_dir,
      /*census_id=*/1, /*faults=*/nullptr, &pool);
  EXPECT_GT(resumed.vps_reused, 0u);
  EXPECT_EQ(obs::metrics().semantic_snapshot(), clean_snapshot);
}

TEST_F(ParallelResumeTest, TimingMetricsAreExactlyTheDeclaredAllowlist) {
  // Drive every instrumented stage once so all instruments are registered,
  // then check the classification of each registered metric against the
  // declared list. A new wall-clock/scheduling/run-history metric must be
  // added HERE as well as classified kTiming at its registration — the
  // two declarations cross-check each other.
  const auto vps = net::make_planetlab({.node_count = 4, .seed = 91});
  FastPingConfig config;
  config.seed = 90;
  ThreadPool pool(2);
  Greylist blacklist;
  const ResumeReport report =
      resume_census(tiny_world(), vps, tiny_hitlist(), blacklist, config,
                    dir_, /*census_id=*/1, /*faults=*/nullptr, &pool);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  (void)analyzer.analyze(report.output.data, tiny_hitlist(), 2, &pool);
  const portscan::PortScanner scanner(tiny_world());
  (void)scanner.scan(tiny_world().deployments().front());
  // The sharded data plane registers its instruments too: one bounded
  // resume with a spill budget covers shard flush/spill/restore/salvage
  // counters and the residency gauges.
  census::DataPlaneConfig plane;
  plane.shard_targets = 53;
  plane.rss_budget_mb = 1;
  plane.spill_dir = (dir_ / "spill").string();
  Greylist blacklist_sharded;
  (void)census::resume_census_sharded(tiny_world(), vps, tiny_hitlist(),
                                      blacklist_sharded, config,
                                      dir_ / "sharded", /*census_id=*/1,
                                      plane, /*faults=*/nullptr, &pool);

  // The serving plane's instruments: two publishes (the second retires
  // and reclaims the first), one acquire, and one unknown-key query
  // register the epoch-swap counters, the retired-depth gauge, and the
  // query-path counters — all wall-clock/traffic-shaped, never semantic.
  {
    serving::SnapshotStore store;
    store.publish(
        serving::SnapshotView::build(census::CensusMatrix(4), {}, 1));
    store.publish(
        serving::SnapshotView::build(census::CensusMatrix(4), {}, 2));
    serving::ReadGuard guard = store.acquire();
    ASSERT_TRUE(guard.valid());
    std::string out;
    std::string error;
    ASSERT_TRUE(serving::answer_query({&guard.view(), nullptr}, "point 99",
                                      out, error));
    // A malformed line bumps serving_errors (registered with the other
    // query instruments, but exercise the inc path too).
    EXPECT_FALSE(
        serving::answer_query({&guard.view(), nullptr}, "point", out, error));
  }

  // The SLO tracker's instruments (violation/recovery counters + the
  // worst-burn gauge) register on first construction — burn rates are
  // wall-clock operational state, never semantic.
  {
    std::string slo_error;
    auto objectives = obs::parse_slo_spec("availability=0.9", &slo_error);
    ASSERT_TRUE(objectives.has_value()) << slo_error;
    obs::SloTracker tracker(std::move(*objectives));
    (void)tracker.observe("availability", 1, 1, 9);
  }

  const std::set<std::string> allowlist{
      "census_arena_maps",
      "census_arena_remaps",
      "census_blacklist_skips",
      "census_shard_flushes",
      "census_shard_resident_bytes",
      "census_shard_restores",
      "census_shard_spilled_bytes",
      "census_shard_spills",
      "census_spill_salvages",
      "census_vp_duration_hours",
      "checkpoint_read_failures",
      "checkpoint_reads_ok",
      "checkpoint_salvages",
      "checkpoint_write_bytes",
      "checkpoint_writes",
      "pool_helper_dispatches",
      "pool_indices_by_caller",
      "pool_indices_by_helpers",
      "pool_lane_busy_ms",
      "pool_parallel_ops",
      "record_dropped_oversized",
      "resume_files_salvaged",
      "resume_vps_rerun",
      "resume_vps_reused",
      "serving_errors",
      "serving_publishes",
      "serving_queries",
      "serving_retired_depth",
      "serving_snapshots_freed",
      "serving_snapshots_retired",
      "serving_unknown_keys",
      "slo_recoveries",
      "slo_violations",
      "slo_worst_burn_permille",
  };
  std::set<std::string> seen_timing;
  for (const obs::MetricValue& value : obs::metrics().scrape()) {
    if (value.cls == obs::MetricClass::kTiming) {
      EXPECT_TRUE(allowlist.contains(value.name))
          << "metric '" << value.name
          << "' is kTiming but not on the declared allowlist";
      seen_timing.insert(value.name);
    } else {
      EXPECT_FALSE(allowlist.contains(value.name))
          << "metric '" << value.name
          << "' is allowlisted as timing but registered kSemantic";
    }
  }
  for (const std::string& name : allowlist) {
    EXPECT_TRUE(seen_timing.contains(name))
        << "allowlisted timing metric '" << name
        << "' was never registered — renamed or dropped?";
  }
}

}  // namespace
}  // namespace anycast
