#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::vector<Observation> sample_stream() {
  std::vector<Observation> out;
  for (std::uint32_t i = 0; i < 500; ++i) {
    Observation obs;
    obs.target_index = (i * 37) % 400;  // LFSR-ish scrambled order
    obs.time_s = i * 0.5;
    if (i % 11 == 0) {
      obs.kind = net::ReplyKind::kTimeout;
    } else if (i % 47 == 0) {
      obs.kind = net::ReplyKind::kAdminProhibited;
    } else {
      obs.kind = net::ReplyKind::kEchoReply;
      obs.rtt_ms = 5.0 + (i % 90) * 1.5;
    }
    out.push_back(obs);
  }
  return out;
}

TEST_F(StorageTest, WriteReadRoundTrip) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "vp7_census2.anc";
  write_census_file(path, {7, 2}, stream);
  const auto loaded = read_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.vp_id, 7u);
  EXPECT_EQ(loaded->header.census_id, 2u);
  ASSERT_EQ(loaded->observations.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded->observations[i].target_index, stream[i].target_index);
    EXPECT_EQ(loaded->observations[i].kind, stream[i].kind);
  }
}

TEST_F(StorageTest, MissingFileYieldsNullopt) {
  EXPECT_FALSE(read_census_file(dir_ / "nope.anc").has_value());
}

TEST_F(StorageTest, TruncatedFileRejected) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "full.anc";
  write_census_file(path, {1, 1}, stream);
  // Chop the tail off.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CorruptedMagicRejected) {
  const fs::path path = dir_ / "bad.anc";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a census file at all";
  out.close();
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CollationMatchesDirectCensus) {
  // Run a small census, persist each VP's stream, collate back from disk,
  // and check the analyzer sees identical data.
  net::WorldConfig world_config;
  world_config.seed = 81;
  world_config.unicast_alive_slash24 = 300;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 82});
  const Hitlist hitlist = Hitlist::from_world(internet).without_dead();

  Greylist blacklist;
  Greylist greylist;
  CensusMatrixBuilder direct_builder(hitlist.size());
  std::vector<fs::path> paths;
  for (const net::VantagePoint& vp : vps) {
    FastPingConfig config;
    config.seed = 83;
    const FastPingResult run =
        run_fastping(internet, vp, hitlist, blacklist, greylist, config);
    const fs::path path =
        dir_ / ("vp" + std::to_string(vp.id) + ".anc");
    write_census_file(path, {vp.id, 1}, run.observations);
    paths.push_back(path);
    for (const Observation& obs : run.observations) {
      if (obs.kind == net::ReplyKind::kEchoReply) {
        direct_builder.add(obs.target_index,
                           static_cast<std::uint16_t>(vp.id),
                           static_cast<float>(obs.rtt_ms));
      }
    }
  }
  const CensusMatrix direct = direct_builder.build();

  std::size_t skipped = 0;
  const CensusMatrix collated =
      collate_census_files(paths, hitlist.size(), &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(collated.target_count(), direct.target_count());
  for (std::uint32_t t = 0; t < direct.target_count(); ++t) {
    const auto a = direct.measurements(t);
    const auto b = collated.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << "target " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp);
      // Binary storage quantises to 1/50 ms.
      EXPECT_NEAR(a[i].rtt_ms, b[i].rtt_ms, 0.011F);
    }
  }
}

TEST_F(StorageTest, CollationSkipsDamagedUploads) {
  const auto stream = sample_stream();
  const fs::path good = dir_ / "good.anc";
  const fs::path bad = dir_ / "bad.anc";
  write_census_file(good, {3, 1}, stream);
  write_census_file(bad, {4, 1}, stream);
  fs::resize_file(bad, fs::file_size(bad) / 2);

  const std::vector<fs::path> paths{good, bad, dir_ / "missing.anc"};
  std::size_t skipped = 0;
  const CensusMatrix data = collate_census_files(paths, 400, &skipped);
  EXPECT_EQ(skipped, 2u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_GT(total, 0u);
}

TEST_F(StorageTest, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  const std::uint32_t got = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size()));
  EXPECT_EQ(got, 0xCBF43926u);
}

TEST_F(StorageTest, AtomicWriteLeavesNoTmpFile) {
  const fs::path path = dir_ / "atomic.anc";
  write_census_file(path, {1, 1, kCensusFileComplete}, sample_stream());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(dir_ / "atomic.anc.tmp"));
}

TEST_F(StorageTest, CompleteFlagRoundTrips) {
  const fs::path done = dir_ / "done.anc";
  const fs::path partial = dir_ / "partial.anc";
  write_census_file(done, {1, 1, kCensusFileComplete}, sample_stream());
  write_census_file(partial, {2, 1, 0}, sample_stream());
  ASSERT_TRUE(read_census_file(done).has_value());
  EXPECT_TRUE(read_census_file(done)->header.complete());
  ASSERT_TRUE(read_census_file(partial).has_value());
  EXPECT_FALSE(read_census_file(partial)->header.complete());
}

TEST_F(StorageTest, BitFlipRejectedStrictlyButSalvaged) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "flipped.anc";
  write_census_file(path, {5, 1, kCensusFileComplete}, stream);

  // Flip one bit in the middle of the payload.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(64);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(64);
  file.write(&byte, 1);
  file.close();

  EXPECT_FALSE(read_census_file(path).has_value());
  const auto rescued = salvage_census_file(path);
  ASSERT_TRUE(rescued.has_value());
  EXPECT_TRUE(rescued->salvaged);
  // A salvaged file can never claim to be a complete walk.
  EXPECT_FALSE(rescued->header.complete());
  EXPECT_EQ(rescued->header.vp_id, 5u);
  EXPECT_EQ(rescued->observations.size(), stream.size());
}

TEST_F(StorageTest, TruncatedFileSalvagesValidPrefix) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "chopped.anc";
  write_census_file(path, {9, 3, kCensusFileComplete}, stream);

  // Keep the 16-byte file header, the 8-byte payload header, and exactly
  // 100 complete records plus half of the 101st.
  fs::resize_file(path, 16 + 8 + 100 * binary_bytes_per_observation() + 3);

  EXPECT_FALSE(read_census_file(path).has_value());
  const auto rescued = salvage_census_file(path);
  ASSERT_TRUE(rescued.has_value());
  EXPECT_TRUE(rescued->salvaged);
  EXPECT_EQ(rescued->header.vp_id, 9u);
  EXPECT_EQ(rescued->header.census_id, 3u);
  ASSERT_EQ(rescued->observations.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rescued->observations[i].target_index,
              stream[i].target_index);
    EXPECT_EQ(rescued->observations[i].kind, stream[i].kind);
  }
}

TEST_F(StorageTest, SalvageOfIntactFileIsNotMarkedSalvaged) {
  const fs::path path = dir_ / "intact.anc";
  write_census_file(path, {2, 2, kCensusFileComplete}, sample_stream());
  const auto loaded = salvage_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->salvaged);
  EXPECT_TRUE(loaded->header.complete());
}

TEST_F(StorageTest, LegacyV1FormatStillReadable) {
  // Hand-build a v1 file: "ANCF" magic, vp, census — no flags word, no
  // CRC trailer — followed by the shared binary payload.
  const auto stream = sample_stream();
  std::vector<std::uint8_t> bytes;
  const auto append32 = [&bytes](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  };
  append32(0x46434E41u);  // "ANCF"
  append32(11u);          // vp_id
  append32(4u);           // census_id
  const auto payload = encode_binary(stream);
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const fs::path path = dir_ / "legacy.anc";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();

  const auto loaded = read_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.vp_id, 11u);
  EXPECT_EQ(loaded->header.census_id, 4u);
  // v1 predates partial checkpoints: every v1 file counts as complete.
  EXPECT_TRUE(loaded->header.complete());
  EXPECT_EQ(loaded->observations.size(), stream.size());
}

TEST_F(StorageTest, CollateStatsSeparateSalvagedFromSkipped) {
  const auto stream = sample_stream();
  const fs::path good = dir_ / "good.anc";
  const fs::path chopped = dir_ / "chopped.anc";
  const fs::path garbage = dir_ / "garbage.anc";
  write_census_file(good, {1, 1, kCensusFileComplete}, stream);
  write_census_file(chopped, {2, 1, kCensusFileComplete}, stream);
  fs::resize_file(chopped,
                  16 + 8 + 50 * binary_bytes_per_observation());
  std::ofstream(garbage, std::ios::binary) << "nothing useful here";

  const std::vector<fs::path> paths{good, chopped, garbage};
  CollateStats stats;
  const CensusMatrix data = collate_census_files(paths, 400, &stats);
  EXPECT_EQ(stats.files_ok, 1u);
  EXPECT_EQ(stats.files_salvaged, 1u);
  EXPECT_EQ(stats.files_skipped, 1u);
  EXPECT_GT(stats.observations, 0u);

  // The legacy strict overload refuses the salvageable file too.
  std::size_t skipped = 0;
  collate_census_files(paths, 400, &skipped);
  EXPECT_EQ(skipped, 2u);
  (void)data;
}

TEST_F(StorageTest, OutOfRangeTargetsDropped) {
  std::vector<Observation> stream{
      {399, 0.0, net::ReplyKind::kEchoReply, 10.0},
      {100000, 0.0, net::ReplyKind::kEchoReply, 10.0},  // beyond hitlist
  };
  const fs::path path = dir_ / "range.anc";
  write_census_file(path, {1, 1}, stream);
  const std::vector<fs::path> paths{path};
  const CensusMatrix data = collate_census_files(paths, 400);
  EXPECT_EQ(data.measurements(399).size(), 1u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_EQ(total, 1u);
}

TEST_F(StorageTest, OversizedIndexDroppedCountedAndJournaled) {
  // An index >= 2^24 cannot come from a real hitlist (~14.7M routed /24s);
  // the codec must drop it — never wrap it into another target's row —
  // and make the corruption visible in the flight recorder.
  std::vector<Observation> stream = sample_stream();
  Observation corrupt;
  corrupt.target_index = 1u << 24;  // first index the 24-bit field loses
  corrupt.kind = net::ReplyKind::kEchoReply;
  corrupt.rtt_ms = 12.0;
  stream.insert(stream.begin() + 250, corrupt);

  const auto dropped_metric = [] {
    for (const auto& metric : obs::metrics().scrape()) {
      if (metric.name == "record_dropped_oversized") return metric.value;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t before = dropped_metric();
  const fs::path journal_path = dir_ / "journal.jsonl";
  ASSERT_TRUE(obs::journal().open(journal_path));

  std::size_t dropped = 0;
  const std::vector<std::uint8_t> bytes = encode_binary(stream, &dropped);
  obs::journal().close();
  obs::journal().set_recording(false);

  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(dropped_metric(), before + 1);

  // Journaled as a kTiming warning, so the drop shows up in run reports.
  std::ifstream journal(journal_path);
  const std::string text((std::istreambuf_iterator<char>(journal)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("record.dropped_oversized"), std::string::npos);

  // Every other record survives, byte-exact after quantisation.
  const auto decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.has_value());
  const std::vector<Observation> clean = sample_stream();
  ASSERT_EQ(decoded->size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ((*decoded)[i].target_index, clean[i].target_index);
    EXPECT_EQ((*decoded)[i].kind, clean[i].kind);
    if (clean[i].kind == net::ReplyKind::kEchoReply) {
      EXPECT_DOUBLE_EQ((*decoded)[i].rtt_ms,
                       quantised_rtt_ms(clean[i].rtt_ms));
    }
  }

  // The boundary case 2^24 - 1 is a valid index and must be kept.
  Observation edge = corrupt;
  edge.target_index = (1u << 24) - 1;
  std::size_t edge_dropped = 99;
  const auto edge_bytes =
      encode_binary(std::vector<Observation>{edge}, &edge_dropped);
  EXPECT_EQ(edge_dropped, 0u);
  const auto edge_decoded = decode_binary(edge_bytes);
  ASSERT_TRUE(edge_decoded.has_value());
  ASSERT_EQ(edge_decoded->size(), 1u);
  EXPECT_EQ((*edge_decoded)[0].target_index, (1u << 24) - 1);
}

}  // namespace
}  // namespace anycast::census
