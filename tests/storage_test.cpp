#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::census {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::vector<Observation> sample_stream() {
  std::vector<Observation> out;
  for (std::uint32_t i = 0; i < 500; ++i) {
    Observation obs;
    obs.target_index = (i * 37) % 400;  // LFSR-ish scrambled order
    obs.time_s = i * 0.5;
    if (i % 11 == 0) {
      obs.kind = net::ReplyKind::kTimeout;
    } else if (i % 47 == 0) {
      obs.kind = net::ReplyKind::kAdminProhibited;
    } else {
      obs.kind = net::ReplyKind::kEchoReply;
      obs.rtt_ms = 5.0 + (i % 90) * 1.5;
    }
    out.push_back(obs);
  }
  return out;
}

TEST_F(StorageTest, WriteReadRoundTrip) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "vp7_census2.anc";
  write_census_file(path, {7, 2}, stream);
  const auto loaded = read_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.vp_id, 7u);
  EXPECT_EQ(loaded->header.census_id, 2u);
  ASSERT_EQ(loaded->observations.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded->observations[i].target_index, stream[i].target_index);
    EXPECT_EQ(loaded->observations[i].kind, stream[i].kind);
  }
}

TEST_F(StorageTest, MissingFileYieldsNullopt) {
  EXPECT_FALSE(read_census_file(dir_ / "nope.anc").has_value());
}

TEST_F(StorageTest, TruncatedFileRejected) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "full.anc";
  write_census_file(path, {1, 1}, stream);
  // Chop the tail off.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CorruptedMagicRejected) {
  const fs::path path = dir_ / "bad.anc";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a census file at all";
  out.close();
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CollationMatchesDirectCensus) {
  // Run a small census, persist each VP's stream, collate back from disk,
  // and check the analyzer sees identical data.
  net::WorldConfig world_config;
  world_config.seed = 81;
  world_config.unicast_alive_slash24 = 300;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 82});
  const Hitlist hitlist = Hitlist::from_world(internet).without_dead();

  Greylist blacklist;
  Greylist greylist;
  CensusData direct(hitlist.size());
  std::vector<fs::path> paths;
  for (const net::VantagePoint& vp : vps) {
    FastPingConfig config;
    config.seed = 83;
    const FastPingResult run =
        run_fastping(internet, vp, hitlist, blacklist, greylist, config);
    const fs::path path =
        dir_ / ("vp" + std::to_string(vp.id) + ".anc");
    write_census_file(path, {vp.id, 1}, run.observations);
    paths.push_back(path);
    for (const Observation& obs : run.observations) {
      if (obs.kind == net::ReplyKind::kEchoReply) {
        direct.record(obs.target_index, static_cast<std::uint16_t>(vp.id),
                      static_cast<float>(obs.rtt_ms));
      }
    }
  }

  std::size_t skipped = 0;
  const CensusData collated =
      collate_census_files(paths, hitlist.size(), &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(collated.target_count(), direct.target_count());
  for (std::uint32_t t = 0; t < direct.target_count(); ++t) {
    const auto a = direct.measurements(t);
    const auto b = collated.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << "target " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp);
      // Binary storage quantises to 1/50 ms.
      EXPECT_NEAR(a[i].rtt_ms, b[i].rtt_ms, 0.011F);
    }
  }
}

TEST_F(StorageTest, CollationSkipsDamagedUploads) {
  const auto stream = sample_stream();
  const fs::path good = dir_ / "good.anc";
  const fs::path bad = dir_ / "bad.anc";
  write_census_file(good, {3, 1}, stream);
  write_census_file(bad, {4, 1}, stream);
  fs::resize_file(bad, fs::file_size(bad) / 2);

  const std::vector<fs::path> paths{good, bad, dir_ / "missing.anc"};
  std::size_t skipped = 0;
  const CensusData data = collate_census_files(paths, 400, &skipped);
  EXPECT_EQ(skipped, 2u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_GT(total, 0u);
}

TEST_F(StorageTest, OutOfRangeTargetsDropped) {
  std::vector<Observation> stream{
      {399, 0.0, net::ReplyKind::kEchoReply, 10.0},
      {100000, 0.0, net::ReplyKind::kEchoReply, 10.0},  // beyond hitlist
  };
  const fs::path path = dir_ / "range.anc";
  write_census_file(path, {1, 1}, stream);
  const std::vector<fs::path> paths{path};
  const CensusData data = collate_census_files(paths, 400);
  EXPECT_EQ(data.measurements(399).size(), 1u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_EQ(total, 1u);
}

}  // namespace
}  // namespace anycast::census
