#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

namespace fs = std::filesystem;

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_storage_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

std::vector<Observation> sample_stream() {
  std::vector<Observation> out;
  for (std::uint32_t i = 0; i < 500; ++i) {
    Observation obs;
    obs.target_index = (i * 37) % 400;  // LFSR-ish scrambled order
    obs.time_s = i * 0.5;
    if (i % 11 == 0) {
      obs.kind = net::ReplyKind::kTimeout;
    } else if (i % 47 == 0) {
      obs.kind = net::ReplyKind::kAdminProhibited;
    } else {
      obs.kind = net::ReplyKind::kEchoReply;
      obs.rtt_ms = 5.0 + (i % 90) * 1.5;
    }
    out.push_back(obs);
  }
  return out;
}

TEST_F(StorageTest, WriteReadRoundTrip) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "vp7_census2.anc";
  write_census_file(path, {7, 2}, stream);
  const auto loaded = read_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.vp_id, 7u);
  EXPECT_EQ(loaded->header.census_id, 2u);
  ASSERT_EQ(loaded->observations.size(), stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(loaded->observations[i].target_index, stream[i].target_index);
    EXPECT_EQ(loaded->observations[i].kind, stream[i].kind);
  }
}

TEST_F(StorageTest, MissingFileYieldsNullopt) {
  EXPECT_FALSE(read_census_file(dir_ / "nope.anc").has_value());
}

TEST_F(StorageTest, TruncatedFileRejected) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "full.anc";
  write_census_file(path, {1, 1}, stream);
  // Chop the tail off.
  const auto size = fs::file_size(path);
  fs::resize_file(path, size - 5);
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CorruptedMagicRejected) {
  const fs::path path = dir_ / "bad.anc";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a census file at all";
  out.close();
  EXPECT_FALSE(read_census_file(path).has_value());
}

TEST_F(StorageTest, CollationMatchesDirectCensus) {
  // Run a small census, persist each VP's stream, collate back from disk,
  // and check the analyzer sees identical data.
  net::WorldConfig world_config;
  world_config.seed = 81;
  world_config.unicast_alive_slash24 = 300;
  world_config.unicast_dead_slash24 = 100;
  const net::SimulatedInternet internet(world_config);
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 82});
  const Hitlist hitlist = Hitlist::from_world(internet).without_dead();

  Greylist blacklist;
  Greylist greylist;
  CensusMatrixBuilder direct_builder(hitlist.size());
  std::vector<fs::path> paths;
  for (const net::VantagePoint& vp : vps) {
    FastPingConfig config;
    config.seed = 83;
    const FastPingResult run =
        run_fastping(internet, vp, hitlist, blacklist, greylist, config);
    const fs::path path =
        dir_ / ("vp" + std::to_string(vp.id) + ".anc");
    write_census_file(path, {vp.id, 1}, run.observations);
    paths.push_back(path);
    for (const Observation& obs : run.observations) {
      if (obs.kind == net::ReplyKind::kEchoReply) {
        direct_builder.add(obs.target_index,
                           static_cast<std::uint16_t>(vp.id),
                           static_cast<float>(obs.rtt_ms));
      }
    }
  }
  const CensusMatrix direct = direct_builder.build();

  std::size_t skipped = 0;
  const CensusMatrix collated =
      collate_census_files(paths, hitlist.size(), &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(collated.target_count(), direct.target_count());
  for (std::uint32_t t = 0; t < direct.target_count(); ++t) {
    const auto a = direct.measurements(t);
    const auto b = collated.measurements(t);
    ASSERT_EQ(a.size(), b.size()) << "target " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].vp, b[i].vp);
      // Binary storage quantises to 1/50 ms.
      EXPECT_NEAR(a[i].rtt_ms, b[i].rtt_ms, 0.011F);
    }
  }
}

TEST_F(StorageTest, CollationSkipsDamagedUploads) {
  const auto stream = sample_stream();
  const fs::path good = dir_ / "good.anc";
  const fs::path bad = dir_ / "bad.anc";
  write_census_file(good, {3, 1}, stream);
  write_census_file(bad, {4, 1}, stream);
  fs::resize_file(bad, fs::file_size(bad) / 2);

  const std::vector<fs::path> paths{good, bad, dir_ / "missing.anc"};
  std::size_t skipped = 0;
  const CensusMatrix data = collate_census_files(paths, 400, &skipped);
  EXPECT_EQ(skipped, 2u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_GT(total, 0u);
}

TEST_F(StorageTest, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value.
  const std::string check = "123456789";
  const std::uint32_t got = crc32(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(check.data()), check.size()));
  EXPECT_EQ(got, 0xCBF43926u);
}

TEST_F(StorageTest, AtomicWriteLeavesNoTmpFile) {
  const fs::path path = dir_ / "atomic.anc";
  write_census_file(path, {1, 1, kCensusFileComplete}, sample_stream());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(dir_ / "atomic.anc.tmp"));
}

TEST_F(StorageTest, CompleteFlagRoundTrips) {
  const fs::path done = dir_ / "done.anc";
  const fs::path partial = dir_ / "partial.anc";
  write_census_file(done, {1, 1, kCensusFileComplete}, sample_stream());
  write_census_file(partial, {2, 1, 0}, sample_stream());
  ASSERT_TRUE(read_census_file(done).has_value());
  EXPECT_TRUE(read_census_file(done)->header.complete());
  ASSERT_TRUE(read_census_file(partial).has_value());
  EXPECT_FALSE(read_census_file(partial)->header.complete());
}

TEST_F(StorageTest, BitFlipRejectedStrictlyButSalvaged) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "flipped.anc";
  write_census_file(path, {5, 1, kCensusFileComplete}, stream);

  // Flip one bit in the middle of the payload.
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(64);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(64);
  file.write(&byte, 1);
  file.close();

  EXPECT_FALSE(read_census_file(path).has_value());
  const auto rescued = salvage_census_file(path);
  ASSERT_TRUE(rescued.has_value());
  EXPECT_TRUE(rescued->salvaged);
  // A salvaged file can never claim to be a complete walk.
  EXPECT_FALSE(rescued->header.complete());
  EXPECT_EQ(rescued->header.vp_id, 5u);
  EXPECT_EQ(rescued->observations.size(), stream.size());
}

TEST_F(StorageTest, TruncatedFileSalvagesValidPrefix) {
  const auto stream = sample_stream();
  const fs::path path = dir_ / "chopped.anc";
  write_census_file(path, {9, 3, kCensusFileComplete}, stream);

  // Keep the 16-byte file header, the 8-byte payload header, and exactly
  // 100 complete records plus half of the 101st.
  fs::resize_file(path, 16 + 8 + 100 * binary_bytes_per_observation() + 3);

  EXPECT_FALSE(read_census_file(path).has_value());
  const auto rescued = salvage_census_file(path);
  ASSERT_TRUE(rescued.has_value());
  EXPECT_TRUE(rescued->salvaged);
  EXPECT_EQ(rescued->header.vp_id, 9u);
  EXPECT_EQ(rescued->header.census_id, 3u);
  ASSERT_EQ(rescued->observations.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(rescued->observations[i].target_index,
              stream[i].target_index);
    EXPECT_EQ(rescued->observations[i].kind, stream[i].kind);
  }
}

TEST_F(StorageTest, SalvageOfIntactFileIsNotMarkedSalvaged) {
  const fs::path path = dir_ / "intact.anc";
  write_census_file(path, {2, 2, kCensusFileComplete}, sample_stream());
  const auto loaded = salvage_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->salvaged);
  EXPECT_TRUE(loaded->header.complete());
}

TEST_F(StorageTest, LegacyV1FormatStillReadable) {
  // Hand-build a v1 file: "ANCF" magic, vp, census — no flags word, no
  // CRC trailer — followed by the shared binary payload.
  const auto stream = sample_stream();
  std::vector<std::uint8_t> bytes;
  const auto append32 = [&bytes](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(value >> shift));
    }
  };
  append32(0x46434E41u);  // "ANCF"
  append32(11u);          // vp_id
  append32(4u);           // census_id
  const auto payload = encode_binary(stream);
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const fs::path path = dir_ / "legacy.anc";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();

  const auto loaded = read_census_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->header.vp_id, 11u);
  EXPECT_EQ(loaded->header.census_id, 4u);
  // v1 predates partial checkpoints: every v1 file counts as complete.
  EXPECT_TRUE(loaded->header.complete());
  EXPECT_EQ(loaded->observations.size(), stream.size());
}

TEST_F(StorageTest, CollateStatsSeparateSalvagedFromSkipped) {
  const auto stream = sample_stream();
  const fs::path good = dir_ / "good.anc";
  const fs::path chopped = dir_ / "chopped.anc";
  const fs::path garbage = dir_ / "garbage.anc";
  write_census_file(good, {1, 1, kCensusFileComplete}, stream);
  write_census_file(chopped, {2, 1, kCensusFileComplete}, stream);
  fs::resize_file(chopped,
                  16 + 8 + 50 * binary_bytes_per_observation());
  std::ofstream(garbage, std::ios::binary) << "nothing useful here";

  const std::vector<fs::path> paths{good, chopped, garbage};
  CollateStats stats;
  const CensusMatrix data = collate_census_files(paths, 400, &stats);
  EXPECT_EQ(stats.files_ok, 1u);
  EXPECT_EQ(stats.files_salvaged, 1u);
  EXPECT_EQ(stats.files_skipped, 1u);
  EXPECT_GT(stats.observations, 0u);

  // The legacy strict overload refuses the salvageable file too.
  std::size_t skipped = 0;
  collate_census_files(paths, 400, &skipped);
  EXPECT_EQ(skipped, 2u);
  (void)data;
}

TEST_F(StorageTest, OutOfRangeTargetsDropped) {
  std::vector<Observation> stream{
      {399, 0.0, net::ReplyKind::kEchoReply, 10.0},
      {100000, 0.0, net::ReplyKind::kEchoReply, 10.0},  // beyond hitlist
  };
  const fs::path path = dir_ / "range.anc";
  write_census_file(path, {1, 1}, stream);
  const std::vector<fs::path> paths{path};
  const CensusMatrix data = collate_census_files(paths, 400);
  EXPECT_EQ(data.measurements(399).size(), 1u);
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < data.target_count(); ++t) {
    total += data.measurements(t).size();
  }
  EXPECT_EQ(total, 1u);
}

TEST_F(StorageTest, OversizedIndexDroppedCountedAndJournaled) {
  // An index >= 2^24 cannot come from a real hitlist (~14.7M routed /24s);
  // the codec must drop it — never wrap it into another target's row —
  // and make the corruption visible in the flight recorder.
  std::vector<Observation> stream = sample_stream();
  Observation corrupt;
  corrupt.target_index = 1u << 24;  // first index the 24-bit field loses
  corrupt.kind = net::ReplyKind::kEchoReply;
  corrupt.rtt_ms = 12.0;
  stream.insert(stream.begin() + 250, corrupt);

  const auto dropped_metric = [] {
    for (const auto& metric : obs::metrics().scrape()) {
      if (metric.name == "record_dropped_oversized") return metric.value;
    }
    return std::uint64_t{0};
  };
  const std::uint64_t before = dropped_metric();
  const fs::path journal_path = dir_ / "journal.jsonl";
  ASSERT_TRUE(obs::journal().open(journal_path));

  std::size_t dropped = 0;
  const std::vector<std::uint8_t> bytes = encode_binary(stream, &dropped);
  obs::journal().close();
  obs::journal().set_recording(false);

  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(dropped_metric(), before + 1);

  // Journaled as a kTiming warning, so the drop shows up in run reports.
  std::ifstream journal(journal_path);
  const std::string text((std::istreambuf_iterator<char>(journal)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("record.dropped_oversized"), std::string::npos);

  // Every other record survives, byte-exact after quantisation.
  const auto decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.has_value());
  const std::vector<Observation> clean = sample_stream();
  ASSERT_EQ(decoded->size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ((*decoded)[i].target_index, clean[i].target_index);
    EXPECT_EQ((*decoded)[i].kind, clean[i].kind);
    if (clean[i].kind == net::ReplyKind::kEchoReply) {
      EXPECT_DOUBLE_EQ((*decoded)[i].rtt_ms,
                       quantised_rtt_ms(clean[i].rtt_ms));
    }
  }

  // The boundary case 2^24 - 1 is a valid index and must be kept.
  Observation edge = corrupt;
  edge.target_index = (1u << 24) - 1;
  std::size_t edge_dropped = 99;
  const auto edge_bytes =
      encode_binary(std::vector<Observation>{edge}, &edge_dropped);
  EXPECT_EQ(edge_dropped, 0u);
  const auto edge_decoded = decode_binary(edge_bytes);
  ASSERT_TRUE(edge_decoded.has_value());
  ASSERT_EQ(edge_decoded->size(), 1u);
  EXPECT_EQ((*edge_decoded)[0].target_index, (1u << 24) - 1);
}

// --- ANCS spill-file fault corpus -------------------------------------------
//
// The serving plane keeps spilled shards mmap'd read-only and faults their
// pages back on demand, so the same truncation/bit-flip corpus the .anc
// census files get must hold for .ancs spill files: strict reads refuse any
// damage, salvage recovers exactly the whole-record prefix — including
// while reader threads are actively faulting the snapshot back in.

/// A deterministic matrix whose row sizes encode the target index, so a
/// reader can verify any row against pure arithmetic.
CensusMatrix spillable_matrix(std::size_t targets) {
  CensusMatrixBuilder builder(targets);
  for (std::uint32_t t = 0; t < targets; ++t) {
    const std::uint16_t row = static_cast<std::uint16_t>(t % 9 + 1);
    for (std::uint16_t vp = 0; vp < row; ++vp) {
      builder.add(t, vp, 1.0F + static_cast<float>(t % 50) * 0.25F +
                             static_cast<float>(vp));
    }
  }
  return builder.build();
}

TEST_F(StorageTest, SpillFileTruncationCorpusStrictVsSalvage) {
  CensusMatrix matrix = spillable_matrix(300);
  const std::size_t total = matrix.observation_count();
  const fs::path path = dir_ / "shard0.ancs";
  if (!matrix.spill_values(path.string())) GTEST_SKIP() << "no spill tier";

  const auto intact = read_spill_file(path.string());
  ASSERT_TRUE(intact.has_value());
  EXPECT_FALSE(intact->salvaged);
  ASSERT_EQ(intact->values.size(), total);

  // Truncation corpus: empty file, half a header, header only, header +
  // half a record, and whole-record prefixes of several lengths.
  const std::size_t header = detail::kSpillHeaderBytes;
  const std::size_t rec = sizeof(VpRtt);
  struct Cut {
    std::size_t bytes;
    // Whole records a salvage must recover; SIZE_MAX = nothing at all
    // (nullopt even in salvage mode).
    std::size_t recoverable;
  };
  const Cut corpus[] = {
      {0, SIZE_MAX},
      {header / 2, SIZE_MAX},
      {header, 0},
      {header + rec / 2, 0},
      {header + rec, 1},
      {header + 17 * rec + 3, 17},
      {header + (total - 1) * rec, total - 1},
  };
  for (const Cut& cut : corpus) {
    const fs::path hurt = dir_ / ("cut_" + std::to_string(cut.bytes) + ".ancs");
    fs::copy_file(path, hurt);
    fs::resize_file(hurt, cut.bytes);

    EXPECT_FALSE(read_spill_file(hurt.string()).has_value())
        << "strict read accepted a file cut to " << cut.bytes << " bytes";
    const auto rescued = read_spill_file(hurt.string(), /*salvage=*/true);
    if (cut.recoverable == SIZE_MAX) {
      EXPECT_FALSE(rescued.has_value()) << cut.bytes;
      continue;
    }
    ASSERT_TRUE(rescued.has_value()) << cut.bytes;
    EXPECT_TRUE(rescued->salvaged);
    ASSERT_EQ(rescued->values.size(), cut.recoverable) << cut.bytes;
    for (std::size_t i = 0; i < cut.recoverable; ++i) {
      EXPECT_EQ(rescued->values[i].vp, intact->values[i].vp);
      EXPECT_EQ(rescued->values[i].rtt_ms, intact->values[i].rtt_ms);
    }
  }
}

TEST_F(StorageTest, SpillFileBitFlipCorpusStrictVsSalvage) {
  CensusMatrix matrix = spillable_matrix(300);
  const std::size_t total = matrix.observation_count();
  const fs::path path = dir_ / "shard0.ancs";
  if (!matrix.spill_values(path.string())) GTEST_SKIP() << "no spill tier";
  const std::size_t header = detail::kSpillHeaderBytes;
  const std::size_t size = fs::file_size(path);

  // Payload flips: CRC catches them; the file keeps its length, so
  // salvage keeps the declared count (damaged values and all — the
  // caller opted into best-effort).
  for (const std::size_t offset :
       {header, header + size / 3, size - 1}) {
    const fs::path hurt = dir_ / ("flip_" + std::to_string(offset) + ".ancs");
    fs::copy_file(path, hurt);
    std::fstream file(hurt, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
    file.close();

    EXPECT_FALSE(read_spill_file(hurt.string()).has_value()) << offset;
    const auto rescued = read_spill_file(hurt.string(), /*salvage=*/true);
    ASSERT_TRUE(rescued.has_value()) << offset;
    EXPECT_TRUE(rescued->salvaged);
    EXPECT_EQ(rescued->values.size(), total);
  }

  // A flipped magic is not an ANCS file: even salvage refuses.
  const fs::path bad_magic = dir_ / "bad_magic.ancs";
  fs::copy_file(path, bad_magic);
  {
    std::fstream file(bad_magic,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(0);
    file.put('X');
  }
  EXPECT_FALSE(read_spill_file(bad_magic.string()).has_value());
  EXPECT_FALSE(read_spill_file(bad_magic.string(), true).has_value());

  // A flipped CRC field leaves the payload intact but unverifiable:
  // strict refuses, salvage recovers every record bit-exact.
  const fs::path bad_crc = dir_ / "bad_crc.ancs";
  fs::copy_file(path, bad_crc);
  {
    std::fstream file(bad_crc, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(5);
    char byte = 0;
    file.seekg(5);
    file.read(&byte, 1);
    file.seekp(5);
    file.put(static_cast<char>(byte ^ 0x01));
  }
  EXPECT_FALSE(read_spill_file(bad_crc.string()).has_value());
  const auto intact = read_spill_file(path.string());
  const auto rescued = read_spill_file(bad_crc.string(), true);
  ASSERT_TRUE(intact.has_value());
  ASSERT_TRUE(rescued.has_value());
  EXPECT_TRUE(rescued->salvaged);
  ASSERT_EQ(rescued->values.size(), intact->values.size());
  for (std::size_t i = 0; i < rescued->values.size(); ++i) {
    EXPECT_EQ(rescued->values[i].vp, intact->values[i].vp);
    EXPECT_EQ(rescued->values[i].rtt_ms, intact->values[i].rtt_ms);
  }
}

TEST_F(StorageTest, SpilledSnapshotServesWhileFaultCorpusRuns) {
  // A snapshot whose value pages live in a spill file, served to reader
  // threads that fault them back in, while the main thread runs the
  // strict-vs-salvage corpus against copies of the same file. Readers
  // must never observe a wrong row; the corpus must behave exactly as it
  // does with no load.
  constexpr std::size_t kTargets = 400;
  CensusMatrix matrix = spillable_matrix(kTargets);
  const fs::path path = dir_ / "snapshot.ancs";
  if (!matrix.spill_values(path.string())) GTEST_SKIP() << "no spill tier";
  matrix.drop_resident_values();

  const serving::SnapshotView view = serving::SnapshotView::build(
      std::move(matrix), {}, /*id=*/1);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&view, &stop, &torn] {
      std::vector<std::uint32_t> targets(kTargets);
      for (std::uint32_t t = 0; t < kTargets; ++t) targets[t] = t;
      std::vector<serving::PointAnswer> answers(kTargets);
      while (!stop.load(std::memory_order_relaxed)) {
        view.lookup_batch(targets, answers.data());
        for (std::uint32_t t = 0; t < kTargets; ++t) {
          if (answers[t].vp_count != t % 9 + 1 || answers[t].anycast != 0) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }

  // The corpus, under load: intact strict read succeeds unsalvaged; a
  // truncated copy is refused strictly and salvages its prefix; a
  // bit-flipped copy is refused strictly and salvages its full count.
  for (int round = 0; round < 20; ++round) {
    const auto intact = read_spill_file(path.string());
    ASSERT_TRUE(intact.has_value());
    EXPECT_FALSE(intact->salvaged);

    const fs::path cut = dir_ / ("load_cut_" + std::to_string(round));
    fs::copy_file(path, cut);
    const std::size_t keep = 10 + static_cast<std::size_t>(round) * 7;
    fs::resize_file(cut, detail::kSpillHeaderBytes + keep * sizeof(VpRtt) + 1);
    EXPECT_FALSE(read_spill_file(cut.string()).has_value());
    const auto rescued = read_spill_file(cut.string(), true);
    ASSERT_TRUE(rescued.has_value());
    EXPECT_TRUE(rescued->salvaged);
    ASSERT_EQ(rescued->values.size(), keep);
    for (std::size_t i = 0; i < keep; ++i) {
      EXPECT_EQ(rescued->values[i].vp, intact->values[i].vp);
    }
    fs::remove(cut);
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0U);
}

}  // namespace
}  // namespace anycast::census
