#include <gtest/gtest.h>

#include "anycast/analysis/baselines.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::analysis {
namespace {

const net::SimulatedInternet& world() {
  static const net::SimulatedInternet instance([] {
    net::WorldConfig config;
    config.seed = 91;
    config.unicast_alive_slash24 = 200;
    config.unicast_dead_slash24 = 100;
    return config;
  }());
  return instance;
}

ipaddr::IPv4Address first_prefix_host(const net::Deployment& deployment) {
  return ipaddr::IPv4Address(deployment.prefixes[0].network().value() | 1);
}

TEST(ChaosQuery, DnsDeploymentRevealsSiteIds) {
  const auto vps = net::make_planetlab({.node_count = 80, .seed = 92});
  const net::Deployment* lroot = world().deployment_by_name("L-ROOT,US");
  const ChaosResult result =
      chaos_enumerate(world(), vps, first_prefix_host(*lroot), 1);
  EXPECT_TRUE(result.applicable);
  EXPECT_TRUE(result.anycast());
  // Exact per-site ids: the count equals the number of distinct
  // catchments, bounded by the true site count.
  EXPECT_GE(result.replica_count(), 2u);
  EXPECT_LE(result.replica_count(), lroot->sites.size());
}

TEST(ChaosQuery, NonDnsDeploymentIsBlind) {
  const auto vps = net::make_planetlab({.node_count = 40, .seed = 93});
  const net::Deployment* edgecast = world().deployment_by_name("EDGECAST,US");
  const ChaosResult result =
      chaos_enumerate(world(), vps, first_prefix_host(*edgecast), 2);
  EXPECT_FALSE(result.applicable);
  EXPECT_EQ(result.replica_count(), 0u);
  EXPECT_FALSE(result.anycast());
}

TEST(ChaosQuery, ChaosCountMatchesCatchmentGroundTruth) {
  // With enough retries, the CHAOS ids equal exactly the set of sites the
  // platform can reach — the technique's defining strength on DNS.
  const auto vps = net::make_planetlab({.node_count = 120, .seed = 94});
  const net::Deployment* opendns = world().deployment_by_name("OPENDNS,US");
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world().deployments().size(); ++d) {
    if (&world().deployments()[d] == opendns) deployment_index = d;
  }
  const auto reachable = world().reachable_sites(vps, deployment_index, 0);
  const ChaosResult result = chaos_enumerate(
      world(), vps, first_prefix_host(*opendns), 3, /*probes_per_vp=*/4);
  EXPECT_EQ(result.replica_count(), reachable.size());
}

TEST(ChaosQuery, UnicastDnsHostGivesOneId) {
  const auto vps = net::make_planetlab({.node_count = 50, .seed = 95});
  const net::TargetInfo* host = nullptr;
  for (const net::TargetInfo& info : world().targets()) {
    if (info.kind == net::TargetInfo::Kind::kUnicast && info.alive &&
        info.unicast_dns && info.error_kind == net::ReplyKind::kEchoReply) {
      host = &info;
      break;
    }
  }
  ASSERT_NE(host, nullptr);
  const ChaosResult result = chaos_enumerate(
      world(), vps,
      ipaddr::IPv4Address::from_slash24_index(host->slash24_index, 1), 4);
  EXPECT_TRUE(result.applicable);
  EXPECT_EQ(result.replica_count(), 1u);
  EXPECT_FALSE(result.anycast());
}

TEST(ChaosQuery, DeadTargetAnswersNothing) {
  const auto vps = net::make_planetlab({.node_count = 10, .seed = 96});
  const net::TargetInfo* dead = nullptr;
  for (const net::TargetInfo& info : world().targets()) {
    if (info.kind == net::TargetInfo::Kind::kDead) {
      dead = &info;
      break;
    }
  }
  ASSERT_NE(dead, nullptr);
  const ChaosResult result = chaos_enumerate(
      world(), vps,
      ipaddr::IPv4Address::from_slash24_index(dead->slash24_index, 1), 5);
  EXPECT_FALSE(result.applicable);
}

TEST(ChaosQuery, Deterministic) {
  const auto vps = net::make_planetlab({.node_count = 30, .seed = 97});
  const net::Deployment* isc = world().deployment_by_name("ISC-AS,US");
  const ChaosResult a =
      chaos_enumerate(world(), vps, first_prefix_host(*isc), 42);
  const ChaosResult b =
      chaos_enumerate(world(), vps, first_prefix_host(*isc), 42);
  EXPECT_EQ(a.server_ids, b.server_ids);
  EXPECT_EQ(a.answers, b.answers);
}


TEST(EcsQuery, AdopterRevealsFullFootprint) {
  const net::Deployment* google = world().deployment_by_name("GOOGLE,US");
  ASSERT_NE(google, nullptr);
  ASSERT_TRUE(google->ecs_capable);
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world().deployments().size(); ++d) {
    if (&world().deployments()[d] == google) deployment_index = d;
  }
  const EcsResult result =
      ecs_enumerate(world(), deployment_index, 20000, 6);
  EXPECT_TRUE(result.applicable);
  // A dense client sweep recovers (nearly) every PoP of the L7 mapping —
  // better recall than any RTT technique, for adopters.
  EXPECT_GE(result.replica_count() + 1, google->sites.size());
  EXPECT_LE(result.replica_count(), google->sites.size());
}

TEST(EcsQuery, NonAdopterIsInvisible) {
  const net::Deployment* cloudflare =
      world().deployment_by_name("CLOUDFLARENET,US");
  ASSERT_FALSE(cloudflare->ecs_capable);
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world().deployments().size(); ++d) {
    if (&world().deployments()[d] == cloudflare) deployment_index = d;
  }
  const EcsResult result =
      ecs_enumerate(world(), deployment_index, 5000, 7);
  EXPECT_FALSE(result.applicable);
  EXPECT_EQ(result.replica_count(), 0u);
}

TEST(EcsQuery, MapsClientToNearestPop) {
  const net::Deployment* google = world().deployment_by_name("GOOGLE,US");
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < world().deployments().size(); ++d) {
    if (&world().deployments()[d] == google) deployment_index = d;
  }
  for (const net::ReplicaSite& site : google->sites) {
    const net::ReplicaSite* mapped =
        world().ecs_query(deployment_index, site.location);
    ASSERT_NE(mapped, nullptr);
    EXPECT_EQ(mapped, &site);  // a client at the PoP maps to that PoP
  }
}

}  // namespace
}  // namespace anycast::analysis
