#include <gtest/gtest.h>

#include "anycast/analysis/geojson.hpp"
#include "anycast/geo/city_index.hpp"

namespace anycast::analysis {
namespace {

TEST(JsonEscape, HandlesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

std::vector<TargetOutcome> sample_outcomes() {
  const geo::City* london = geo::world_index().by_name("London");
  const geo::City* tokyo = geo::world_index().by_name("Tokyo");
  TargetOutcome outcome;
  outcome.slash24_index = 104u << 16;
  outcome.result.anycast = true;
  core::Replica r1;
  r1.city = london;
  r1.location = london->location();
  r1.disk = geodesy::Disk(london->location(), 120.0);
  core::Replica r2;
  r2.city = tokyo;
  r2.location = tokyo->location();
  r2.disk = geodesy::Disk(tokyo->location(), 90.0);
  core::Replica r3;  // unclassified replica
  r3.city = nullptr;
  r3.location = geodesy::GeoPoint(10.0, 20.0);
  r3.disk = geodesy::Disk(r3.location, 500.0);
  outcome.result.replicas = {r1, r2, r3};
  return {outcome};
}

TEST(Geojson, CensusExportIsWellFormedFeatureCollection) {
  net::WorldConfig config;
  config.unicast_alive_slash24 = 10;
  config.unicast_dead_slash24 = 10;
  const net::SimulatedInternet internet(config);
  const CensusReport report(internet, sample_outcomes());
  const std::string json = census_geojson(report);
  EXPECT_TRUE(json.starts_with(
      "{\"type\":\"FeatureCollection\",\"features\":["));
  EXPECT_TRUE(json.ends_with("]}"));
  // One feature per replica.
  std::size_t features = 0;
  for (std::size_t at = json.find("\"Feature\"");
       at != std::string::npos; at = json.find("\"Feature\"", at + 1)) {
    ++features;
  }
  EXPECT_EQ(features, 3u);
  EXPECT_NE(json.find("\"city\":\"London\""), std::string::npos);
  EXPECT_NE(json.find("\"city\":\"Tokyo\""), std::string::npos);
  EXPECT_NE(json.find("\"classified\":false"), std::string::npos);
  EXPECT_NE(json.find("\"prefix\":\"104.0.0.0/24\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  long depth = 0;
  for (const char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Geojson, DeploymentExportFiltersByAs) {
  net::WorldConfig config;
  config.unicast_alive_slash24 = 10;
  config.unicast_dead_slash24 = 10;
  const net::SimulatedInternet internet(config);
  const CensusReport report(internet, sample_outcomes());
  ASSERT_FALSE(report.ases().empty());
  const AsReport& as_report = report.ases().front();
  const std::string json = deployment_geojson(report, as_report);
  EXPECT_NE(json.find(json_escape(as_report.deployment->whois_name)),
            std::string::npos);
  EXPECT_TRUE(json.starts_with("{\"type\":\"FeatureCollection\""));
}

TEST(Geojson, CoordinatesAreLonLatOrder) {
  net::WorldConfig config;
  config.unicast_alive_slash24 = 10;
  config.unicast_dead_slash24 = 10;
  const net::SimulatedInternet internet(config);
  const CensusReport report(internet, sample_outcomes());
  const std::string json = census_geojson(report);
  // London: lon -0.13, lat 51.51 — GeoJSON mandates [lon, lat].
  EXPECT_NE(json.find("[-0.1300,51.5100]"), std::string::npos);
}

}  // namespace
}  // namespace anycast::analysis
