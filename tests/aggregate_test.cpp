#include <gtest/gtest.h>

#include "anycast/ipaddr/aggregate.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::ipaddr {
namespace {

std::uint64_t covered(const std::vector<Prefix>& prefixes) {
  std::uint64_t total = 0;
  for (const Prefix& prefix : prefixes) total += prefix.slash24_count();
  return total;
}

TEST(Aggregate, EmptyRange) {
  EXPECT_TRUE(aggregate_slash24_range(100, 0).empty());
}

TEST(Aggregate, SingleSlash24) {
  const auto prefixes = aggregate_slash24_range(0x680000, 1);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].to_string(), "104.0.0.0/24");
}

TEST(Aggregate, AlignedPowerOfTwoCollapsesToOnePrefix) {
  const auto prefixes = aggregate_slash24_range(0x680000, 256);
  ASSERT_EQ(prefixes.size(), 1u);
  EXPECT_EQ(prefixes[0].to_string(), "104.0.0.0/16");
}

TEST(Aggregate, UnalignedRangeUsesMinimalCover) {
  // 3 /24s starting at an odd index: /24 + /23 or /23 + /24.
  const auto prefixes = aggregate_slash24_range(0x680001, 3);
  EXPECT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(covered(prefixes), 3u);
}

TEST(Aggregate, CoverIsExactAndDisjoint) {
  rng::Xoshiro256 gen(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto first = static_cast<std::uint32_t>(
        rng::uniform_index(gen, 1u << 20));
    const auto count = static_cast<std::uint32_t>(
        1 + rng::uniform_index(gen, 600));
    const auto prefixes = aggregate_slash24_range(first, count);
    EXPECT_EQ(covered(prefixes), count);
    // In order, adjacent, and exactly covering [first, first+count).
    std::uint32_t cursor = first;
    for (const Prefix& prefix : prefixes) {
      EXPECT_EQ(prefix.network().slash24_index(), cursor);
      EXPECT_LE(prefix.length(), 24);
      cursor += prefix.slash24_count();
    }
    EXPECT_EQ(cursor, first + count);
    // Minimality: a run of n /24s needs at most 2*24 prefixes, and at most
    // 2 per bit of n (standard range-to-CIDR bound).
    EXPECT_LE(prefixes.size(), 48u);
  }
}

TEST(Aggregate, SplitRoundTrip) {
  // aggregate(split(p)) == {p} for any prefix <= /24 granularity.
  for (const char* text : {"10.0.0.0/16", "192.168.4.0/22", "8.8.8.0/24"}) {
    const Prefix prefix = *Prefix::parse(text);
    const auto parts = prefix.split_slash24();
    const auto back = aggregate_slash24_range(
        parts.front().network().slash24_index(),
        static_cast<std::uint32_t>(parts.size()));
    ASSERT_EQ(back.size(), 1u) << text;
    EXPECT_EQ(back[0], prefix);
  }
}

TEST(Aggregate, SetWithGapsAndDuplicates) {
  const auto prefixes =
      aggregate_slash24_set({10, 11, 11, 12, 13, 100, 101, 300});
  EXPECT_EQ(covered(prefixes), 7u);  // 4 + 2 + 1 after dedup
  // Gap boundaries respected: no prefix covers index 14..99.
  for (const Prefix& prefix : prefixes) {
    const std::uint32_t first = prefix.network().slash24_index();
    const std::uint32_t last = first + prefix.slash24_count() - 1;
    EXPECT_TRUE(last <= 13 || (first >= 100 && last <= 101) || first == 300);
  }
}

TEST(Aggregate, EmptySet) {
  EXPECT_TRUE(aggregate_slash24_set({}).empty());
}

TEST(Aggregate, RangeAtZero) {
  const auto prefixes = aggregate_slash24_range(0, 5);
  EXPECT_EQ(covered(prefixes), 5u);
  EXPECT_EQ(prefixes.front().network().value(), 0u);
}

}  // namespace
}  // namespace anycast::ipaddr
