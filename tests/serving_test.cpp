// Property suite for the snapshot serving plane (DESIGN.md §16).
//
// The contracts under test:
//  - Answer fidelity: every point/batch/address/nearest answer equals what
//    the analyzer's own output says, for monolithic and sharded matrices.
//  - Swap atomicity: under N concurrent reader threads (1/2/8, with and
//    without chaos delays) every answer is internally consistent with ONE
//    published snapshot — no torn views — while a writer swaps epochs as
//    fast as it can. Run under TSAN by tools/run_sanitizers.sh.
//  - Exact reclamation: epoch retirement frees exactly the retired
//    snapshots; a pinned guard keeps its snapshot queryable across any
//    number of later publishes, and releasing it reclaims them all.
//  - Diff fidelity: changed_since is element-identical to the full
//    analysis::diff_censuses oracle on randomized churn.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/diff.hpp"
#include "anycast/analysis/incremental.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/fastping.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/daemon/watch.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/geodesy/geopoint.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/serving/query.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/serving/store.hpp"

namespace anycast {
namespace {

namespace fs = std::filesystem;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

net::WorldConfig small_world_config() {
  net::WorldConfig config;
  config.seed = 47;
  config.unicast_alive_slash24 = 300;
  config.unicast_dead_slash24 = 150;
  return config;
}

const net::SimulatedInternet& small_world() {
  static const net::SimulatedInternet world(small_world_config());
  return world;
}

const census::Hitlist& small_hitlist() {
  static const census::Hitlist hitlist =
      census::Hitlist::from_world(small_world()).without_dead();
  return hitlist;
}

const std::vector<net::VantagePoint>& small_vps() {
  static const std::vector<net::VantagePoint> vps =
      net::make_planetlab({.node_count = 24, .seed = 48});
  return vps;
}

const analysis::CensusAnalyzer& small_analyzer() {
  static const analysis::CensusAnalyzer analyzer(small_vps(),
                                                 geo::world_index());
  return analyzer;
}

census::CensusOutput run_small_census() {
  census::Greylist blacklist;
  census::FastPingConfig config;
  config.seed = 91;
  return census::run_census(small_world(), small_vps(), small_hitlist(),
                            blacklist, config);
}

/// Synthetic matrix whose rows are a pure function of (seed, target, vp):
/// per-row purity is exactly what changed_since relies on, so churn tests
/// regenerate rows from a new seed for a chosen subset and leave the rest
/// bit-identical. ~1/13 of rows get a tight low-RTT lattice that the
/// analyzer reads as anycast; verdict realism is irrelevant to the diff
/// oracle — only determinism is.
census::CensusMatrix synthetic_matrix(std::size_t targets, std::size_t vps,
                                      std::uint64_t seed,
                                      const std::vector<std::uint32_t>& fresh,
                                      std::uint64_t fresh_seed) {
  census::CensusMatrixBuilder builder(targets);
  std::size_t fresh_at = 0;
  for (std::uint32_t t = 0; t < targets; ++t) {
    std::uint64_t row_seed = seed;
    while (fresh_at < fresh.size() && fresh[fresh_at] < t) ++fresh_at;
    if (fresh_at < fresh.size() && fresh[fresh_at] == t) row_seed = fresh_seed;
    for (std::uint16_t vp = 0; vp < vps; ++vp) {
      const std::uint64_t h = splitmix64(row_seed ^ (t * 1000003ULL + vp));
      if ((h & 7U) == 0) continue;  // unresponsive at this VP
      float rtt;
      if (t % 13 == 0) {
        rtt = 1.0F + static_cast<float>(h % 5);
      } else {
        rtt = 10.0F + static_cast<float>(h % 20000) * 0.01F;
      }
      builder.add(t, vp, rtt);
    }
  }
  return builder.build();
}

// --- Answer fidelity --------------------------------------------------------

TEST(ServingSnapshot, PointBatchAndAddressLookupsMatchAnalyzer) {
  const census::CensusOutput output = run_small_census();
  const census::Hitlist& hitlist = small_hitlist();
  std::vector<analysis::TargetOutcome> outcomes =
      small_analyzer().analyze(output.data, hitlist);
  ASSERT_FALSE(outcomes.empty());

  // Keep an oracle copy: build() consumes its inputs.
  const std::vector<analysis::TargetOutcome> oracle = outcomes;
  const serving::SnapshotView view = serving::SnapshotView::build(
      output.data, std::move(outcomes), /*id=*/7, &hitlist);

  EXPECT_EQ(view.id(), 7U);
  EXPECT_EQ(view.target_count(), output.data.target_count());
  EXPECT_EQ(view.anycast_count(), oracle.size());

  // Dense oracle map.
  std::vector<const analysis::TargetOutcome*> expect_of(
      output.data.target_count(), nullptr);
  for (const analysis::TargetOutcome& o : oracle) {
    expect_of[o.target_index] = &o;
  }

  std::vector<std::uint32_t> all(output.data.target_count());
  for (std::uint32_t t = 0; t < all.size(); ++t) all[t] = t;
  std::vector<serving::PointAnswer> answers(all.size());
  view.lookup_batch(all, answers.data());

  for (std::uint32_t t = 0; t < all.size(); ++t) {
    const analysis::TargetOutcome* expected = expect_of[t];
    EXPECT_EQ(view.is_anycast(t), expected != nullptr) << "target " << t;
    EXPECT_EQ(answers[t].anycast, expected != nullptr ? 1 : 0);
    const auto row = output.data.measurements(t);
    EXPECT_EQ(answers[t].responsive, row.empty() ? 0 : 1);
    EXPECT_EQ(answers[t].vp_count, row.size());
    const std::size_t replicas =
        expected != nullptr ? expected->result.replicas.size() : 0;
    EXPECT_EQ(answers[t].replica_count, replicas) << "target " << t;
    EXPECT_EQ(view.replicas(t).size(), replicas);
    if (expected != nullptr) {
      const analysis::TargetOutcome* outcome = view.outcome(t);
      ASSERT_NE(outcome, nullptr);
      EXPECT_EQ(outcome->slash24_index, expected->slash24_index);
      for (std::size_t k = 0; k < replicas; ++k) {
        EXPECT_EQ(view.replicas(t)[k].vp_id,
                  expected->result.replicas[k].vp_id);
      }
    }
    // Address-keyed lookup round-trips through the hitlist index.
    const auto resolved =
        view.target_of_address(hitlist[t].representative.slash24_index());
    ASSERT_TRUE(resolved.has_value());
    EXPECT_EQ(*resolved, t);
  }

  // Out-of-range and unknown keys answer "miss", never crash.
  serving::PointAnswer miss;
  const std::uint32_t bogus[1] = {static_cast<std::uint32_t>(all.size()) + 9};
  view.lookup_batch(bogus, &miss);
  EXPECT_EQ(miss.anycast, 0);
  EXPECT_EQ(miss.responsive, 0);
  EXPECT_FALSE(view.is_anycast(bogus[0]));
  EXPECT_FALSE(view.target_of_address(0xFFFFFF).has_value());
}

TEST(ServingSnapshot, ShardedAndMonolithicViewsAnswerIdentically) {
  const census::CensusOutput output = run_small_census();
  const census::Hitlist& hitlist = small_hitlist();
  std::vector<analysis::TargetOutcome> outcomes =
      small_analyzer().analyze(output.data, hitlist);

  census::DataPlaneConfig plane;
  plane.shard_targets = 37;  // odd shard size, ragged tail
  census::ShardedCensusMatrixBuilder sharded_builder(
      output.data.target_count(), plane);
  for (std::uint32_t t = 0; t < output.data.target_count(); ++t) {
    for (const census::VpRtt& m : output.data.measurements(t)) {
      sharded_builder.add(t, m.vp, m.rtt_ms);
    }
  }
  const serving::SnapshotView mono = serving::SnapshotView::build(
      output.data, outcomes, /*id=*/1, &hitlist);
  const serving::SnapshotView sharded = serving::SnapshotView::build(
      sharded_builder.build(), outcomes, /*id=*/1, &hitlist);

  std::vector<std::uint32_t> all(output.data.target_count());
  for (std::uint32_t t = 0; t < all.size(); ++t) all[t] = t;
  std::vector<serving::PointAnswer> a(all.size());
  std::vector<serving::PointAnswer> b(all.size());
  mono.lookup_batch(all, a.data());
  sharded.lookup_batch(all, b.data());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(a[i].anycast, b[i].anycast) << i;
    EXPECT_EQ(a[i].responsive, b[i].responsive) << i;
    EXPECT_EQ(a[i].vp_count, b[i].vp_count) << i;
    EXPECT_EQ(a[i].replica_count, b[i].replica_count) << i;
  }
}

TEST(ServingSnapshot, NearestReplicaMatchesBruteForceHaversine) {
  const census::CensusOutput output = run_small_census();
  std::vector<analysis::TargetOutcome> outcomes =
      small_analyzer().analyze(output.data, small_hitlist());
  const std::vector<analysis::TargetOutcome> oracle = outcomes;
  const serving::SnapshotView view = serving::SnapshotView::build(
      output.data, std::move(outcomes), /*id=*/1);

  const geodesy::GeoPoint probes[] = {
      {48.85, 2.35}, {-33.9, 151.2}, {37.77, -122.42}, {0.0, 0.0},
      {71.0, -42.0}, {-54.8, -68.3}};
  for (const analysis::TargetOutcome& o : oracle) {
    for (const geodesy::GeoPoint& probe : probes) {
      double best_km = 1e18;
      const core::Replica* best = nullptr;
      for (const core::Replica& replica : o.result.replicas) {
        const double km = geodesy::distance_km(probe, replica.location);
        if (km < best_km) {
          best_km = km;
          best = &replica;
        }
      }
      double got_km = 0.0;
      const core::Replica* got = view.nearest_replica(
          o.target_index, probe.latitude(), probe.longitude(), &got_km);
      ASSERT_NE(got, nullptr);
      ASSERT_NE(best, nullptr);
      // Chord-space argmin agrees with haversine argmin up to exact ties.
      EXPECT_DOUBLE_EQ(geodesy::distance_km(probe, got->location), best_km);
      EXPECT_DOUBLE_EQ(got_km, best_km);
    }
  }
  EXPECT_EQ(view.nearest_replica(0x7FFFFFFF, 0, 0), nullptr);
}

// --- Swap atomicity under load ----------------------------------------------

/// Snapshot whose every answer encodes its id: target t of snapshot k has
/// (k + t) % 7 replicas and k % 13 + 1 measurements per row, so one
/// mismatched element in a batch proves a torn view (adjacent ids always
/// differ in both codes).
serving::SnapshotView coded_snapshot(std::uint64_t id, std::size_t targets) {
  census::CensusMatrixBuilder builder(targets);
  const std::uint16_t row_vps = static_cast<std::uint16_t>(id % 13 + 1);
  for (std::uint32_t t = 0; t < targets; ++t) {
    for (std::uint16_t vp = 0; vp < row_vps; ++vp) {
      builder.add(t, vp, 1.0F + static_cast<float>(t % 3));
    }
  }
  std::vector<analysis::TargetOutcome> outcomes;
  for (std::uint32_t t = 0; t < targets; ++t) {
    const std::size_t replicas = (id + t) % 7;
    if (replicas == 0) continue;  // some targets: no outcome at all
    analysis::TargetOutcome outcome;
    outcome.target_index = t;
    outcome.slash24_index = t;
    outcome.result.anycast = true;
    outcome.result.replicas.resize(replicas);
    for (std::size_t k = 0; k < replicas; ++k) {
      outcome.result.replicas[k].vp_id = static_cast<std::uint32_t>(k);
      outcome.result.replicas[k].location =
          geodesy::GeoPoint(10.0 + static_cast<double>(k), 20.0);
    }
    outcomes.push_back(std::move(outcome));
  }
  return serving::SnapshotView::build(builder.build(), std::move(outcomes),
                                      id);
}

void swap_under_load(std::size_t reader_threads, bool chaos) {
  constexpr std::size_t kTargets = 96;
  constexpr std::uint64_t kSwaps = 400;
  serving::SnapshotStore store;
  store.publish(coded_snapshot(1, kTargets));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> batches{0};
  std::vector<std::thread> readers;
  readers.reserve(reader_threads);
  for (std::size_t r = 0; r < reader_threads; ++r) {
    readers.emplace_back([&store, &stop, &torn, &batches, chaos, r] {
      std::uint64_t rng = 0x9E3779B9u * (r + 1);
      std::vector<std::uint32_t> targets(kTargets);
      for (std::uint32_t t = 0; t < kTargets; ++t) targets[t] = t;
      std::vector<serving::PointAnswer> answers(kTargets);
      while (!stop.load(std::memory_order_relaxed)) {
        serving::ReadGuard guard = store.acquire();
        ASSERT_TRUE(guard.valid());
        const std::uint64_t id = guard->id();
        if (chaos && (splitmix64(rng++) & 15U) == 0) {
          std::this_thread::yield();  // widen the pin window mid-batch
        }
        guard->lookup_batch(targets, answers.data());
        for (std::uint32_t t = 0; t < kTargets; ++t) {
          const std::uint32_t want_replicas =
              static_cast<std::uint32_t>((id + t) % 7);
          if (answers[t].replica_count != want_replicas ||
              answers[t].vp_count != id % 13 + 1 ||
              answers[t].anycast != (want_replicas > 0 ? 1 : 0)) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
        batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t id = 2; id <= kSwaps; ++id) {
    store.publish(coded_snapshot(id, kTargets));
    if (chaos && (splitmix64(id) & 7U) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0U) << reader_threads << " readers, chaos=" << chaos;
  EXPECT_GT(batches.load(), 0U);
  store.drain();
  EXPECT_EQ(store.retired_count(), 0U);
  EXPECT_EQ(store.snapshots_freed(), kSwaps - 1);
  EXPECT_EQ(store.epoch(), kSwaps);
}

TEST(ServingStore, SwapUnderLoadOneReader) { swap_under_load(1, false); }
TEST(ServingStore, SwapUnderLoadTwoReaders) { swap_under_load(2, false); }
TEST(ServingStore, SwapUnderLoadEightReaders) { swap_under_load(8, false); }
TEST(ServingStore, SwapUnderLoadOneReaderChaos) { swap_under_load(1, true); }
TEST(ServingStore, SwapUnderLoadTwoReadersChaos) { swap_under_load(2, true); }
TEST(ServingStore, SwapUnderLoadEightReadersChaos) { swap_under_load(8, true); }

// --- Exact reclamation ------------------------------------------------------

TEST(ServingStore, AcquireBeforePublishIsInvalid) {
  serving::SnapshotStore store;
  serving::ReadGuard guard = store.acquire();
  EXPECT_FALSE(guard.valid());
  EXPECT_EQ(store.epoch(), 0U);
}

TEST(ServingStore, RetirementFreesExactlyTheRetiredSnapshots) {
  serving::SnapshotStore store;
  for (std::uint64_t id = 1; id <= 5; ++id) {
    store.publish(coded_snapshot(id, 8));
  }
  // No readers: each publish displaces and immediately reclaims its
  // predecessor — 4 retired, 4 freed, current (id 5) alive.
  EXPECT_EQ(store.snapshots_freed(), 4U);
  EXPECT_EQ(store.retired_count(), 0U);
  serving::ReadGuard current = store.acquire();
  ASSERT_TRUE(current.valid());
  EXPECT_EQ(current->id(), 5U);
}

TEST(ServingStore, PinnedGuardDefersReclamationUntilRelease) {
  serving::SnapshotStore store;
  store.publish(coded_snapshot(1, 16));
  serving::ReadGuard pinned = store.acquire();
  ASSERT_TRUE(pinned.valid());
  EXPECT_EQ(pinned->id(), 1U);

  store.publish(coded_snapshot(2, 16));
  store.publish(coded_snapshot(3, 16));
  // Snapshots 1 and 2 are retired; the guard (epoch 1) protects both
  // stamps (2 and 3), so nothing is freed yet...
  EXPECT_EQ(store.snapshots_freed(), 0U);
  EXPECT_EQ(store.retired_count(), 2U);

  // ...and the pinned view still answers, byte-correct for ITS epoch —
  // TSAN/ASAN would flag a reclaimed arena here.
  std::vector<std::uint32_t> targets(16);
  for (std::uint32_t t = 0; t < 16; ++t) targets[t] = t;
  std::vector<serving::PointAnswer> answers(16);
  pinned->lookup_batch(targets, answers.data());
  for (std::uint32_t t = 0; t < 16; ++t) {
    EXPECT_EQ(answers[t].replica_count, (1 + t) % 7);
    EXPECT_EQ(answers[t].vp_count, 1 % 13 + 1);
  }

  pinned.release();
  store.drain();
  EXPECT_EQ(store.snapshots_freed(), 2U);
  EXPECT_EQ(store.retired_count(), 0U);
  serving::ReadGuard current = store.acquire();
  ASSERT_TRUE(current.valid());
  EXPECT_EQ(current->id(), 3U);
}

// --- changed_since vs the full diff oracle ----------------------------------

/// Dirty subset for a churn round: a seeded pseudo-random ~6% of rows.
std::vector<std::uint32_t> churn_rows(std::size_t targets,
                                      std::uint64_t seed) {
  std::vector<std::uint32_t> rows;
  for (std::uint32_t t = 0; t < targets; ++t) {
    if (splitmix64(seed ^ t) % 16 == 0) rows.push_back(t);
  }
  return rows;
}

void expect_changes_identical(const analysis::CensusDiff& got,
                              const analysis::CensusDiff& want) {
  ASSERT_EQ(got.changes.size(), want.changes.size());
  for (std::size_t i = 0; i < want.changes.size(); ++i) {
    const analysis::PrefixChange& g = got.changes[i];
    const analysis::PrefixChange& w = want.changes[i];
    EXPECT_EQ(g.kind, w.kind) << i;
    EXPECT_EQ(g.slash24_index, w.slash24_index) << i;
    EXPECT_EQ(g.replicas_before, w.replicas_before) << i;
    EXPECT_EQ(g.replicas_after, w.replicas_after) << i;
    EXPECT_EQ(g.cities_gained, w.cities_gained) << i;
    EXPECT_EQ(g.cities_lost, w.cities_lost) << i;
  }
}

TEST(ServingDiff, ChangedSinceMatchesFullDiffOracleOnRandomizedChurn) {
  constexpr std::size_t kTargets = 600;
  constexpr std::size_t kVps = 24;
  const census::Hitlist& hitlist = small_hitlist();
  ASSERT_GE(hitlist.size(), kTargets);
  const analysis::CensusAnalyzer& analyzer = small_analyzer();

  std::uint64_t seed = 0xA11CAFEULL;
  census::CensusMatrix prev_matrix =
      synthetic_matrix(kTargets, kVps, seed, {}, 0);
  std::vector<analysis::TargetOutcome> prev_outcomes =
      analyzer.analyze(prev_matrix, hitlist);
  serving::SnapshotView prev = serving::SnapshotView::build(
      prev_matrix, prev_outcomes, /*id=*/1);

  for (int round = 2; round <= 5; ++round) {
    // Churned rows are regenerated from a fresh seed; every other row is
    // regenerated from the SAME seed, hence bit-identical.
    const std::uint64_t fresh_seed = seed + static_cast<std::uint64_t>(round);
    const std::vector<std::uint32_t> fresh =
        churn_rows(kTargets, 0xC0FFEE ^ round);
    census::CensusMatrix next_matrix =
        synthetic_matrix(kTargets, kVps, seed, fresh, fresh_seed);
    std::vector<analysis::TargetOutcome> next_outcomes =
        analyzer.analyze(next_matrix, hitlist);
    serving::SnapshotView next = serving::SnapshotView::build(
        next_matrix, next_outcomes, static_cast<std::uint64_t>(round));

    for (const std::size_t min_delta : {1UL, 2UL}) {
      const serving::SnapshotDelta delta = next.changed_since(prev, min_delta);
      // Dirty rows must be exactly the element-wise matrix diff...
      const std::vector<std::uint32_t> dirty_oracle =
          analysis::dirty_rows(prev.matrix(), next.matrix());
      EXPECT_EQ(delta.dirty, dirty_oracle);
      // ...and the landscape delta exactly the unrestricted oracle diff.
      const analysis::CensusDiff oracle = analysis::diff_censuses(
          analysis::CensusSnapshot(prev_outcomes),
          analysis::CensusSnapshot(next_outcomes), min_delta);
      expect_changes_identical(delta.diff, oracle);
      if (min_delta == 1) {
        EXPECT_FALSE(delta.diff.stable());  // churn must actually register
      }
    }

    prev_outcomes = std::move(next_outcomes);
    prev = std::move(next);
  }
}

TEST(ServingDiff, IncomparableLayoutsFallBackToEveryPrefix) {
  constexpr std::size_t kVps = 16;
  const census::Hitlist& hitlist = small_hitlist();
  const analysis::CensusAnalyzer& analyzer = small_analyzer();

  census::CensusMatrix big = synthetic_matrix(400, kVps, 11, {}, 0);
  census::CensusMatrix small = synthetic_matrix(260, kVps, 12, {}, 0);
  std::vector<analysis::TargetOutcome> big_outcomes =
      analyzer.analyze(big, hitlist);
  std::vector<analysis::TargetOutcome> small_outcomes =
      analyzer.analyze(small, hitlist);

  const serving::SnapshotView prev = serving::SnapshotView::build(
      big, big_outcomes, 1);
  const serving::SnapshotView next = serving::SnapshotView::build(
      small, small_outcomes, 2);
  const serving::SnapshotDelta delta = next.changed_since(prev);
  const analysis::CensusDiff oracle = analysis::diff_censuses(
      analysis::CensusSnapshot(big_outcomes),
      analysis::CensusSnapshot(small_outcomes));
  // Prefixes only present beyond the smaller target count must still be
  // reported as disappeared — dirty-row restriction cannot hide them.
  expect_changes_identical(delta.diff, oracle);
}

// --- Query protocol ---------------------------------------------------------

TEST(ServingQuery, AnswersAreDeterministicAndMalformedBatchesAtomic) {
  const serving::SnapshotView view = coded_snapshot(3, 32);
  const serving::QueryContext context{&view, nullptr};

  std::string out;
  const auto ok = serving::answer_queries(
      context, "# comment\n\npoint 0\nbatch 1 2 3 999999\npoint 31\n", out);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.answered, 3U);
  EXPECT_NE(out.find("point 0 target=0 anycast=1"), std::string::npos);
  EXPECT_NE(out.find("batch n=3 unknown=1"), std::string::npos);

  // Determinism: same queries, same bytes.
  std::string again;
  (void)serving::answer_queries(
      context, "# comment\n\npoint 0\nbatch 1 2 3 999999\npoint 31\n", again);
  EXPECT_EQ(out, again);

  // A malformed line ANYWHERE suppresses all output and reports its
  // 1-based line number.
  std::string none;
  const auto bad = serving::answer_queries(
      context, "point 0\nnope 12\npoint 1\n", none);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error_line, 2U);
  EXPECT_TRUE(none.empty());

  std::string bad_coord_out;
  const auto bad_coord = serving::answer_queries(
      context, "nearest 3 91.0 10.0\n", bad_coord_out);
  EXPECT_FALSE(bad_coord.ok());

  // diff without a previous snapshot is a query error, not a crash.
  std::string diff_out;
  const auto no_prev = serving::answer_queries(context, "diff\n", diff_out);
  EXPECT_FALSE(no_prev.ok());
}

// --- Daemon integration -----------------------------------------------------

TEST(ServingWatch, WatchPublishesEveryRoundWithoutStallingReaders) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("anycast_serving_watch_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  serving::SnapshotStore store;
  daemon::WatchConfig config;
  config.rounds = 3;
  config.out_dir = dir;
  config.fastping.seed = 90;
  config.serve_store = &store;

  // A reader hammering the store for the whole campaign: every answer it
  // sees must come from a complete snapshot of SOME committed round.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> acquired{0};
  std::thread reader([&store, &stop, &acquired] {
    while (!stop.load(std::memory_order_relaxed)) {
      serving::ReadGuard guard = store.acquire();
      if (guard.valid()) {
        EXPECT_GE(guard->id(), 1U);
        EXPECT_LE(guard->id(), 3U);
        EXPECT_GT(guard->target_count(), 0U);
        acquired.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::yield();
    }
  });

  net::SimulatedInternet internet(small_world_config());
  daemon::WatchDaemon watcher(internet, small_vps(), geo::world_index(),
                              small_hitlist(), config);
  const daemon::WatchResult result = watcher.run();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(store.epoch(), 3U);
  EXPECT_GT(acquired.load(), 0U);
  serving::ReadGuard final_guard = store.acquire();
  ASSERT_TRUE(final_guard.valid());
  EXPECT_EQ(final_guard->id(), 3U);
  EXPECT_EQ(final_guard->target_count(), small_hitlist().size());
  store.drain();
  EXPECT_EQ(store.retired_count(), 0U);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace anycast
