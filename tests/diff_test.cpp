#include <gtest/gtest.h>

#include "anycast/analysis/diff.hpp"
#include "anycast/geo/city_index.hpp"

namespace anycast::analysis {
namespace {

const geo::City* city(std::string_view name) {
  const geo::City* found = geo::world_index().by_name(name);
  EXPECT_NE(found, nullptr) << name;
  return found;
}

TargetOutcome make_outcome(std::uint32_t slash24,
                           std::initializer_list<const geo::City*> cities) {
  TargetOutcome outcome;
  outcome.slash24_index = slash24;
  outcome.result.anycast = true;
  for (const geo::City* c : cities) {
    core::Replica replica;
    replica.city = c;
    replica.location = c->location();
    outcome.result.replicas.push_back(replica);
  }
  return outcome;
}

TEST(CensusSnapshot, BuildsSortedAndFindable) {
  std::vector<TargetOutcome> outcomes;
  outcomes.push_back(make_outcome(30, {city("London")}));
  outcomes.push_back(make_outcome(10, {city("Tokyo"), city("Paris")}));
  const CensusSnapshot snapshot(outcomes);
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.prefixes()[0].slash24_index, 10u);
  EXPECT_EQ(snapshot.prefixes()[1].slash24_index, 30u);
  ASSERT_NE(snapshot.find(10), nullptr);
  EXPECT_EQ(snapshot.find(10)->replica_count, 2u);
  EXPECT_EQ(snapshot.find(99), nullptr);
}

TEST(CensusDiff, IdenticalSnapshotsAreStable) {
  std::vector<TargetOutcome> outcomes;
  outcomes.push_back(make_outcome(1, {city("London"), city("Tokyo")}));
  const CensusSnapshot a(outcomes);
  const CensusSnapshot b(outcomes);
  EXPECT_TRUE(diff_censuses(a, b).stable());
}

TEST(CensusDiff, DetectsAppearanceAndDisappearance) {
  std::vector<TargetOutcome> before;
  before.push_back(make_outcome(1, {city("London"), city("Tokyo")}));
  std::vector<TargetOutcome> after;
  after.push_back(make_outcome(2, {city("Paris"), city("Miami")}));
  const CensusDiff diff =
      diff_censuses(CensusSnapshot(before), CensusSnapshot(after));
  ASSERT_EQ(diff.changes.size(), 2u);
  EXPECT_EQ(diff.count(PrefixChange::Kind::kDisappeared), 1u);
  EXPECT_EQ(diff.count(PrefixChange::Kind::kAppeared), 1u);
  EXPECT_EQ(diff.changes[0].slash24_index, 1u);
  EXPECT_EQ(diff.changes[0].replicas_before, 2u);
  EXPECT_EQ(diff.changes[1].slash24_index, 2u);
  EXPECT_EQ(diff.changes[1].replicas_after, 2u);
}

TEST(CensusDiff, DetectsGrowthWithCityDelta) {
  std::vector<TargetOutcome> before;
  before.push_back(make_outcome(5, {city("London")}));
  std::vector<TargetOutcome> after;
  after.push_back(make_outcome(5, {city("London"), city("Singapore")}));
  const CensusDiff diff =
      diff_censuses(CensusSnapshot(before), CensusSnapshot(after));
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, PrefixChange::Kind::kGrew);
  ASSERT_EQ(diff.changes[0].cities_gained.size(), 1u);
  EXPECT_EQ(diff.changes[0].cities_gained[0]->name, "Singapore");
  EXPECT_TRUE(diff.changes[0].cities_lost.empty());
}

TEST(CensusDiff, DetectsShrinkage) {
  std::vector<TargetOutcome> before;
  before.push_back(
      make_outcome(5, {city("London"), city("Tokyo"), city("Miami")}));
  std::vector<TargetOutcome> after;
  after.push_back(make_outcome(5, {city("London")}));
  const CensusDiff diff =
      diff_censuses(CensusSnapshot(before), CensusSnapshot(after));
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, PrefixChange::Kind::kShrank);
  EXPECT_EQ(diff.changes[0].cities_lost.size(), 2u);
}

TEST(CensusDiff, MoveDetectedWhenCountStableButCitiesChange) {
  std::vector<TargetOutcome> before;
  before.push_back(make_outcome(5, {city("London"), city("Tokyo")}));
  std::vector<TargetOutcome> after;
  after.push_back(make_outcome(5, {city("London"), city("Osaka")}));
  const CensusDiff diff =
      diff_censuses(CensusSnapshot(before), CensusSnapshot(after));
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, PrefixChange::Kind::kMoved);
  ASSERT_EQ(diff.changes[0].cities_gained.size(), 1u);
  EXPECT_EQ(diff.changes[0].cities_gained[0]->name, "Osaka");
  ASSERT_EQ(diff.changes[0].cities_lost.size(), 1u);
  EXPECT_EQ(diff.changes[0].cities_lost[0]->name, "Tokyo");
}

TEST(CensusDiff, NoiseThresholdSuppressesSmallDeltas) {
  std::vector<TargetOutcome> before;
  before.push_back(make_outcome(5, {city("London"), city("Tokyo")}));
  std::vector<TargetOutcome> after;
  after.push_back(
      make_outcome(5, {city("London"), city("Tokyo"), city("Miami")}));
  // With min_replica_delta = 2, a one-replica wiggle with a superset city
  // list is reported as kMoved (cities differ).
  const CensusDiff diff = diff_censuses(CensusSnapshot(before),
                                        CensusSnapshot(after), 2);
  ASSERT_EQ(diff.changes.size(), 1u);
  EXPECT_EQ(diff.changes[0].kind, PrefixChange::Kind::kMoved);
}

TEST(CensusDiff, EmptySnapshots) {
  const CensusSnapshot empty;
  std::vector<TargetOutcome> some;
  some.push_back(make_outcome(1, {city("London")}));
  EXPECT_TRUE(diff_censuses(empty, empty).stable());
  EXPECT_EQ(diff_censuses(empty, CensusSnapshot(some))
                .count(PrefixChange::Kind::kAppeared),
            1u);
}

}  // namespace
}  // namespace anycast::analysis
