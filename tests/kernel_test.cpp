// Property tests for the vectorized analysis kernel: every fast path is
// pinned against the scalar original it replaced, on adversarial and
// randomized inputs.
//
// The kernel's contract is not "approximately equal" — it is byte-for-byte
// equality with the pre-kernel implementations, which the code retains as
// oracles (geodesy scalar predicates, core::reference MIS solvers, the
// CityIndex *_scan queries, CensusAnalyzer::detect_scan). Inputs here are
// chosen to stress the places where that contract could crack: distances
// at the decision boundary (forcing the guard-band fallback), radius sums
// near the maximum great-circle distance (where the angle-sum identity
// stops being monotone), cities straddling the latitude band edge, tied
// populations, tied RTTs, duplicate VPs, and antimeridian/pole geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/core/igreedy.hpp"
#include "anycast/core/mis.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/geodesy/chord.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/geodesy/geopoint.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast {
namespace {

using geodesy::Disk;
using geodesy::GeoPoint;

GeoPoint random_point(rng::Xoshiro256& gen) {
  return GeoPoint(rng::uniform(gen, -90.0, 90.0),
                  rng::uniform(gen, -180.0, 180.0));
}

// ---- Chord-space predicates vs scalar originals -----------------------------

TEST(ChordKernel, IntersectsMatchesScalarOnRandomPairs) {
  rng::Xoshiro256 gen(2015);
  for (int i = 0; i < 20000; ++i) {
    const GeoPoint pa = random_point(gen);
    const GeoPoint pb = random_point(gen);
    const double ra = rng::uniform(gen, 0.0, 12000.0);
    const double rb = rng::uniform(gen, 0.0, 12000.0);
    const Disk a(pa, ra);
    const Disk b(pb, rb);
    const geodesy::Unit3 ua = geodesy::unit_vector(pa);
    const geodesy::Unit3 ub = geodesy::unit_vector(pb);
    const geodesy::CapTrig ca = geodesy::cap_trig(ra);
    const geodesy::CapTrig cb = geodesy::cap_trig(rb);
    ASSERT_EQ(geodesy::caps_intersect(ua, ub, ca, cb, pa, pb),
              a.intersects(b))
        << "pair " << i << ": ra=" << ra << " rb=" << rb;
  }
}

TEST(ChordKernel, IntersectsMatchesScalarAtTheBoundary) {
  // Radii built FROM the distance, so chord2 lands within rounding of the
  // threshold and the guard band must route to the scalar fallback.
  rng::Xoshiro256 gen(42);
  for (int i = 0; i < 5000; ++i) {
    const GeoPoint pa = random_point(gen);
    const GeoPoint pb = random_point(gen);
    const double d = geodesy::distance_km(pa, pb);
    const double ra = d * rng::uniform(gen, 0.05, 0.95);
    for (const double rb : {d - ra, std::nextafter(d - ra, 0.0),
                            std::nextafter(d - ra, 1e9)}) {
      if (rb < 0.0) continue;
      const Disk a(pa, ra);
      const Disk b(pb, rb);
      ASSERT_EQ(geodesy::caps_intersect(
                    geodesy::unit_vector(pa), geodesy::unit_vector(pb),
                    geodesy::cap_trig(ra), geodesy::cap_trig(rb), pa, pb),
                a.intersects(b))
          << "boundary pair " << i << " d=" << d << " ra=" << ra
          << " rb=" << rb;
    }
  }
}

TEST(ChordKernel, IntersectsMatchesScalarNearMaxRadiusSum) {
  // Radius sums around pi*R ~ 20015.087 km: past the largest possible
  // great-circle distance the answer must be "true" no matter what the
  // angle-sum identity would do (sin stops being monotone past pi/2).
  rng::Xoshiro256 gen(7);
  for (int i = 0; i < 4000; ++i) {
    const GeoPoint pa = random_point(gen);
    const GeoPoint pb = random_point(gen);
    const double sum = rng::uniform(gen, 19000.0, 22000.0);
    const double ra = sum * rng::uniform(gen, 0.0, 1.0);
    const double rb = sum - ra;
    const Disk a(pa, ra);
    const Disk b(pb, rb);
    ASSERT_EQ(geodesy::caps_intersect(
                  geodesy::unit_vector(pa), geodesy::unit_vector(pb),
                  geodesy::cap_trig(ra), geodesy::cap_trig(rb), pa, pb),
              a.intersects(b))
        << "sum=" << sum << " ra=" << ra;
  }
}

TEST(ChordKernel, ContainsMatchesScalarIncludingBoundary) {
  rng::Xoshiro256 gen(99);
  for (int i = 0; i < 20000; ++i) {
    const GeoPoint center = random_point(gen);
    const GeoPoint point = random_point(gen);
    const double d = geodesy::distance_km(center, point);
    double radius = rng::uniform(gen, 0.0, 15000.0);
    if (i % 3 == 0) radius = d;  // exact boundary
    if (i % 3 == 1) radius = std::nextafter(d, i % 2 ? 0.0 : 1e9);
    const Disk disk(center, radius);
    ASSERT_EQ(geodesy::cap_contains(geodesy::unit_vector(center),
                                    geodesy::unit_vector(point),
                                    geodesy::cap_trig(radius), center, point),
              disk.contains(point))
        << "i=" << i << " d=" << d << " r=" << radius;
  }
}

TEST(ChordKernel, BatchHaversineBitwiseEqualsScalar) {
  rng::Xoshiro256 gen(1234);
  for (int round = 0; round < 50; ++round) {
    const GeoPoint origin = random_point(gen);
    std::vector<double> lat;
    std::vector<double> lon;
    for (int i = 0; i < 257; ++i) {  // odd length: exercises any tail path
      const GeoPoint p = random_point(gen);
      lat.push_back(p.latitude());
      lon.push_back(p.longitude());
    }
    std::vector<double> out(lat.size());
    geodesy::batch_distance_km(origin, lat, lon, out);
    for (std::size_t i = 0; i < lat.size(); ++i) {
      const double scalar =
          geodesy::distance_km(origin, GeoPoint(lat[i], lon[i]));
      ASSERT_EQ(out[i], scalar) << "element " << i;  // bitwise, not approx
    }
  }
}

// ---- Grid: conservative superset --------------------------------------------

TEST(ChordKernel, GridVisitIsSupersetOfWithinRadius) {
  rng::Xoshiro256 gen(555);
  std::vector<GeoPoint> points;
  for (int i = 0; i < 600; ++i) points.push_back(random_point(gen));
  // Include poles and antimeridian points explicitly.
  points.emplace_back(89.99, 10.0);
  points.emplace_back(-89.99, -170.0);
  points.emplace_back(0.0, 179.999);
  points.emplace_back(0.0, -179.999);
  const geodesy::LatLonGrid grid(points, 5.0);
  for (int q = 0; q < 2000; ++q) {
    const GeoPoint center = random_point(gen);
    const double radius = rng::uniform(gen, 1.0, 15000.0);
    std::vector<char> visited(points.size(), 0);
    grid.visit_within(center, radius,
                      [&](std::uint32_t index) { visited[index] = 1; });
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (geodesy::distance_km(center, points[i]) <= radius) {
        ASSERT_TRUE(visited[i])
            << "query " << q << " missed point " << i << " at radius "
            << radius;
      }
    }
  }
}

// ---- Bitset MIS vs reference solvers ----------------------------------------

std::vector<Disk> random_disks(rng::Xoshiro256& gen, int count,
                               double max_radius) {
  std::vector<Disk> disks;
  for (int i = 0; i < count; ++i) {
    disks.emplace_back(random_point(gen), rng::uniform(gen, 1.0, max_radius));
  }
  return disks;
}

TEST(MisKernel, GreedyMatchesReferenceExactly) {
  rng::Xoshiro256 gen(2023);
  for (int round = 0; round < 400; ++round) {
    // Mix of regimes: sparse/disjoint, dense/overlapping, duplicate disks,
    // and sizes straddling the grid-pruning threshold.
    const int count = 1 + static_cast<int>(rng::uniform_index(gen, 180));
    auto disks = random_disks(gen, count, round % 2 ? 600.0 : 6000.0);
    if (round % 5 == 0 && disks.size() > 2) disks[1] = disks[0];
    ASSERT_EQ(core::greedy_mis(disks), core::reference::greedy_mis(disks))
        << "round " << round << " n=" << disks.size();
  }
}

TEST(MisKernel, ExactMatchesReferenceExactly) {
  rng::Xoshiro256 gen(31337);
  for (int round = 0; round < 250; ++round) {
    const int count = 1 + static_cast<int>(rng::uniform_index(gen, 26));
    auto disks = random_disks(gen, count, round % 2 ? 800.0 : 5000.0);
    if (round % 7 == 0 && disks.size() > 2) disks[2] = disks[0];
    ASSERT_EQ(core::exact_mis(disks), core::reference::exact_mis(disks))
        << "round " << round << " n=" << disks.size();
  }
}

TEST(MisKernel, HasDisjointPairMatchesReference) {
  rng::Xoshiro256 gen(808);
  for (int round = 0; round < 600; ++round) {
    const int count = 2 + static_cast<int>(rng::uniform_index(gen, 150));
    const auto disks = random_disks(gen, count, round % 2 ? 300.0 : 9000.0);
    ASSERT_EQ(core::has_disjoint_pair(disks),
              core::reference::has_disjoint_pair(disks))
        << "round " << round;
  }
}

// ---- CityIndex grid paths vs band-scan oracles ------------------------------

TEST(CityKernel, DiskQueriesMatchScanOracles) {
  const geo::CityIndex& index = geo::world_index();
  rng::Xoshiro256 gen(4096);
  for (int q = 0; q < 4000; ++q) {
    const GeoPoint center = random_point(gen);
    // Radii from metro-sized through hemispheric; every few queries centre
    // the disk ON a known city so the band edge cuts through real entries.
    double radius = rng::uniform(gen, 5.0, 9000.0);
    const Disk disk(center, radius);
    ASSERT_EQ(index.most_populated_in(disk), index.most_populated_in_scan(disk))
        << "query " << q << " r=" << radius;
    ASSERT_EQ(index.cities_in(disk), index.cities_in_scan(disk))
        << "query " << q << " r=" << radius;
  }
  // Boundary radii: the disk's edge exactly on a city.
  const geo::City* paris = index.by_name("Paris");
  ASSERT_NE(paris, nullptr);
  for (int q = 0; q < 500; ++q) {
    const GeoPoint center = random_point(gen);
    const double d = geodesy::distance_km(center, paris->location());
    for (const double radius :
         {d, std::nextafter(d, 0.0), std::nextafter(d, 1e9)}) {
      const Disk disk(center, radius);
      ASSERT_EQ(index.most_populated_in(disk),
                index.most_populated_in_scan(disk))
          << "boundary query " << q;
      ASSERT_EQ(index.cities_in(disk), index.cities_in_scan(disk))
          << "boundary query " << q;
    }
  }
}

TEST(CityKernel, NearestMatchesScanOracle) {
  const geo::CityIndex& index = geo::world_index();
  rng::Xoshiro256 gen(777);
  for (int q = 0; q < 5000; ++q) {
    const GeoPoint point = random_point(gen);
    ASSERT_EQ(index.nearest(point), index.nearest_scan(point))
        << "query " << q << " at " << point.latitude() << ","
        << point.longitude();
  }
  // On-city queries (distance 0) and pole/antimeridian corners.
  const geo::City* tokyo = index.by_name("Tokyo");
  ASSERT_NE(tokyo, nullptr);
  EXPECT_EQ(index.nearest(tokyo->location()), index.nearest_scan(tokyo->location()));
  for (const GeoPoint corner :
       {GeoPoint(90.0, 0.0), GeoPoint(-90.0, 0.0), GeoPoint(0.0, 180.0),
        GeoPoint(0.0, -180.0), GeoPoint(51.5, -0.1)}) {
    EXPECT_EQ(index.nearest(corner), index.nearest_scan(corner));
  }
}

TEST(CityKernel, ByNameMatchesScanOracle) {
  const geo::CityIndex& index = geo::world_index();
  // Every indexed name resolves to the scan's winner (first in ascending
  // latitude for duplicates), and a miss stays a miss.
  rng::Xoshiro256 gen(1);
  for (int q = 0; q < 200; ++q) {
    const Disk everywhere(random_point(gen), 20100.0);
    for (const geo::City* city : index.cities_in(everywhere)) {
      ASSERT_EQ(index.by_name(city->name), index.by_name_scan(city->name));
    }
    break;  // one covering disk enumerates every city
  }
  EXPECT_EQ(index.by_name("Atlantis"), nullptr);
  EXPECT_EQ(index.by_name(""), index.by_name_scan(""));
}

// ---- Analyzer detect prefilter vs full pairwise sweep -----------------------

TEST(DetectKernel, WitnessPrefilterMatchesFullSweep) {
  const auto vps = net::make_planetlab({.node_count = 60, .seed = 11});
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  rng::Xoshiro256 gen(60601);
  int detected = 0;
  for (int round = 0; round < 3000; ++round) {
    // Rows mixing unicast-consistent RTTs (one hidden location) with
    // occasional speed-of-light violations and out-of-range RTTs.
    const GeoPoint site = random_point(gen);
    std::vector<census::VpRtt> row;
    const std::size_t entries = 2 + rng::uniform_index(gen, vps.size() - 2);
    for (std::size_t i = 0; i < entries; ++i) {
      census::VpRtt sample;
      sample.vp = static_cast<std::uint32_t>(i);
      const double base =
          geodesy::distance_km(vps[i].believed_location, site) / 100.0;
      sample.rtt_ms = base * rng::uniform(gen, 1.0, 1.5) +
                      rng::uniform(gen, 0.0, 5.0);
      if (rng::uniform01(gen) < 0.02) sample.rtt_ms = rng::uniform(gen, 0.1, 2.0);
      if (rng::uniform01(gen) < 0.02) sample.rtt_ms = rng::uniform(gen, 600.0, 900.0);
      row.push_back(sample);
    }
    const bool fast = analyzer.detect(row);
    const bool full = analyzer.detect_scan(row);
    ASSERT_EQ(fast, full) << "round " << round;
    detected += fast ? 1 : 0;
  }
  // The mix must actually exercise both verdicts to mean anything.
  EXPECT_GT(detected, 50);
  EXPECT_LT(detected, 2950);
}

// ---- Whole-pipeline equality: reference_kernel routing ----------------------

TEST(PipelineKernel, AnalyzeIsByteIdenticalToReferenceKernel) {
  const auto vps = net::make_planetlab({.node_count = 40, .seed = 5});
  core::Options reference_options;
  reference_options.reference_kernel = true;
  const core::IGreedy kernel(geo::world_index());
  const core::IGreedy reference(geo::world_index(), reference_options);

  rng::Xoshiro256 gen(20151215);
  for (int round = 0; round < 300; ++round) {
    const int replica_count = 1 + static_cast<int>(rng::uniform_index(gen, 6));
    std::vector<GeoPoint> sites;
    for (int r = 0; r < replica_count; ++r) sites.push_back(random_point(gen));
    std::vector<core::Measurement> measurements;
    for (std::size_t v = 0; v < vps.size(); ++v) {
      double best = 1e18;
      for (const GeoPoint& site : sites) {
        best = std::min(
            best, geodesy::distance_km(vps[v].believed_location, site));
      }
      core::Measurement m;
      m.vp_id = static_cast<std::uint32_t>(v);
      m.vp_location = vps[v].believed_location;
      m.rtt_ms = best / 100.0 * rng::uniform(gen, 1.0, 1.4);
      measurements.push_back(m);
      if (rng::uniform01(gen) < 0.2) {  // duplicate VP, possibly tied RTT
        core::Measurement dup = m;
        if (rng::uniform01(gen) < 0.5) dup.rtt_ms += rng::uniform(gen, 0.0, 30.0);
        measurements.push_back(dup);
      }
    }
    const core::Result a = kernel.analyze(measurements);
    const core::Result b = reference.analyze(measurements);
    ASSERT_EQ(a.anycast, b.anycast) << "round " << round;
    ASSERT_EQ(a.iterations, b.iterations) << "round " << round;
    ASSERT_EQ(a.usable_measurements, b.usable_measurements);
    ASSERT_EQ(a.first_round_replicas, b.first_round_replicas);
    ASSERT_EQ(a.replicas.size(), b.replicas.size()) << "round " << round;
    for (std::size_t r = 0; r < a.replicas.size(); ++r) {
      ASSERT_EQ(a.replicas[r].vp_id, b.replicas[r].vp_id);
      ASSERT_EQ(a.replicas[r].city, b.replicas[r].city);
      // Bitwise coordinate equality, not tolerance.
      ASSERT_EQ(a.replicas[r].location.latitude(),
                b.replicas[r].location.latitude());
      ASSERT_EQ(a.replicas[r].location.longitude(),
                b.replicas[r].location.longitude());
      ASSERT_EQ(a.replicas[r].disk.radius_km(), b.replicas[r].disk.radius_km());
    }
  }
}

}  // namespace
}  // namespace anycast
