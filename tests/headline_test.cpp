// Tier-1 guard for the paper's headline numbers (Figs. 7, 10, 12).
//
// The bench suite regenerates the full figures but only runs on demand;
// this test promotes the headline quantities — anycast /24 count, AS
// count, enumerated replica count and geolocation accuracy — into fast
// ctest so a regression fails `ctest`, not just the bench binaries.
//
// The scenario is the seed world at test scale: the anycast catalog is at
// full size (1,696 /24s in 346 ASes — it is not downsampled by
// WorldConfig), only the unicast background is small. Everything is
// deterministic, so the exact values below are pinned: a change means the
// pipeline's semantics changed, and the pin must be re-derived on purpose.
#include <gtest/gtest.h>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/analysis/validation.hpp"
#include "anycast/census/census.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast {
namespace {

struct HeadlineWorld {
  net::SimulatedInternet internet{[] {
    net::WorldConfig config;
    config.seed = 2015;  // census year, same flavour as the benches
    config.unicast_alive_slash24 = 600;
    config.unicast_dead_slash24 = 400;
    return config;
  }()};
  std::vector<net::VantagePoint> vps =
      net::make_planetlab({.node_count = 120, .seed = 2015 ^ 0xF1E1D});
  census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::Greylist blacklist;
  census::CensusMatrix combined;
  analysis::CensusReport report;

  HeadlineWorld()
      : combined([this] {
          census::CensusMatrix acc(hitlist.size());
          for (int c = 0; c < 2; ++c) {
            census::FastPingConfig fastping;
            fastping.seed = 2015 + static_cast<std::uint64_t>(c) * 101;
            acc.combine_min(
                run_census(internet, vps, hitlist, blacklist, fastping)
                    .data);
          }
          return acc;
        }()),
        report(internet,
               analysis::CensusAnalyzer(vps, geo::world_index())
                   .analyze(combined, hitlist, /*min_vps=*/2)) {}
};

const HeadlineWorld& world() {
  static const HeadlineWorld instance;
  return instance;
}

TEST(Headline, AnycastPrefixAndAsCounts) {
  // Fig. 10 "All" row shape: the combined census finds the bulk of the
  // 1,696-prefix / 346-AS anycast catalog and nothing that is not anycast
  // (unicast false positives are covered by integration_test).
  const analysis::GlanceRow all = world().report.glance_all();
  EXPECT_EQ(all.ip24, 1382u);
  EXPECT_EQ(all.ases, 266u);
  EXPECT_LE(all.ip24, 1696u);
  EXPECT_LE(all.ases, 346u);
}

TEST(Headline, ReplicaEnumeration) {
  // Fig. 12: the mean geographic footprint is O(10) replicas per anycast
  // /24 (paper: ~8.1 at 450 VPs; fewer VPs enumerate conservatively).
  const analysis::GlanceRow all = world().report.glance_all();
  EXPECT_EQ(all.replicas, 12091u);
  const double mean = static_cast<double>(all.replicas) /
                      static_cast<double>(all.ip24);
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 12.0);
}

TEST(Headline, GeographicSpread) {
  // Fig. 10: replicas spread over dozens of cities in dozens of countries.
  const analysis::GlanceRow all = world().report.glance_all();
  EXPECT_EQ(all.cities, 56u);
  EXPECT_EQ(all.countries, 35u);
}

TEST(Headline, GeolocationAccuracy) {
  // Fig. 7: city-level true-positive rate against CloudFlare ground truth
  // (paper: 0.77, median misclassification error 434 km).
  const net::Deployment* cloudflare =
      world().internet.deployment_by_name("CLOUDFLARENET,US");
  ASSERT_NE(cloudflare, nullptr);
  const analysis::ValidationMetrics metrics = validate_deployment(
      world().internet, world().vps, *cloudflare,
      world().report.prefixes());
  EXPECT_GT(metrics.evaluated_prefixes, 0u);
  EXPECT_NEAR(metrics.tpr, 0.77, 0.15);  // paper shape
  EXPECT_NEAR(metrics.tpr, 0.67826261901551654, 1e-12);       // pinned
  EXPECT_NEAR(metrics.median_error_km, 301.28571174789715, 1e-9);  // pinned
}

TEST(Headline, CombinationDominatesSingleCensus) {
  // Fig. 12 headline: min-RTT combination never detects fewer anycast
  // /24s than a single census (checked here at glance scale; the per-/24
  // dominance is in integration_test).
  census::Greylist blacklist;
  census::FastPingConfig fastping;
  fastping.seed = 2015;
  const auto single = run_census(world().internet, world().vps,
                                 world().hitlist, blacklist, fastping);
  const auto outcomes =
      analysis::CensusAnalyzer(world().vps, geo::world_index())
          .analyze(single.data, world().hitlist, /*min_vps=*/2);
  EXPECT_LE(outcomes.size(), world().report.glance_all().ip24);
}

}  // namespace
}  // namespace anycast
