#include <gtest/gtest.h>

#include "../tools/flags.hpp"

namespace anycast::tools {
namespace {

Flags parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  const auto flags =
      Flags::parse(static_cast<int>(args.size()),
                   const_cast<char**>(args.data()));
  EXPECT_TRUE(flags.has_value());
  return *flags;
}

TEST(Flags, SpaceSeparatedValues) {
  const Flags flags = parse({"--seed", "42", "--out", "dir"});
  EXPECT_EQ(flags.get("seed"), "42");
  EXPECT_EQ(flags.get("out"), "dir");
  EXPECT_FALSE(flags.get("missing").has_value());
}

TEST(Flags, EqualsSeparatedValues) {
  const Flags flags = parse({"--seed=7", "--rate=1000.5"});
  EXPECT_EQ(flags.get_int("seed", 0), 7);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 1000.5);
}

TEST(Flags, Defaults) {
  const Flags flags = parse({});
  EXPECT_EQ(flags.get_int("seed", 99), 99);
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 1.5), 1.5);
  EXPECT_EQ(flags.get_or("name", "fallback"), "fallback");
}

TEST(Flags, BooleanFlagBeforeAnotherFlagOrAtEnd) {
  const Flags flags = parse({"--verbose", "--seed", "3", "--dry-run"});
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_EQ(flags.get("verbose"), "true");
  EXPECT_TRUE(flags.has("dry-run"));
  EXPECT_EQ(flags.get_int("seed", 0), 3);
}

TEST(Flags, PositionalArguments) {
  const Flags flags = parse({"census", "--seed", "1", "extra"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "census");
  EXPECT_EQ(flags.positional()[1], "extra");
}

TEST(Flags, MetricsOutAndVerboseParseBothSpellings) {
  // The observability flags of anycastd: --metrics-out takes a path (in
  // either --flag value or --flag=value form) and --verbose is boolean.
  const Flags spaced =
      parse({"census", "--metrics-out", "run/metrics.json", "--verbose"});
  EXPECT_EQ(spaced.get("metrics-out"), "run/metrics.json");
  EXPECT_TRUE(spaced.get_bool("verbose"));

  const Flags equals = parse({"census", "--metrics-out=run/metrics.prom"});
  EXPECT_EQ(equals.get("metrics-out"), "run/metrics.prom");
  EXPECT_FALSE(equals.get_bool("verbose"));
  ASSERT_EQ(equals.positional().size(), 1u);
  EXPECT_EQ(equals.positional()[0], "census");
}

TEST(Flags, UnknownFlagsReportedOnlyIfNeverQueried) {
  const Flags flags = parse({"--seed", "1", "--typo", "x"});
  (void)flags.get("seed");
  const auto unknown = flags.unknown();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, EmptyUnknownWhenAllQueried) {
  const Flags flags = parse({"--a", "1", "--b", "2"});
  (void)flags.get("a");
  (void)flags.get("b");
  EXPECT_TRUE(flags.unknown().empty());
}

}  // namespace
}  // namespace anycast::tools
