#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/analysis/stats.hpp"
#include "anycast/analysis/validation.hpp"
#include "anycast/census/census.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::analysis {
namespace {

// --- Stats -------------------------------------------------------------------

TEST(Empirical, QuantilesAndMoments) {
  const Empirical dist({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(dist.median(), 3.0);
  EXPECT_DOUBLE_EQ(dist.min(), 1.0);
  EXPECT_DOUBLE_EQ(dist.max(), 5.0);
  EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
  EXPECT_NEAR(dist.stddev(), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(dist.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(dist.quantile(0.25), 2.0);
}

TEST(Empirical, CdfAndCcdf) {
  const Empirical dist({1.0, 1.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(dist.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(dist.cdf(3.0), 0.75);
  EXPECT_DOUBLE_EQ(dist.cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.ccdf(1.0), 0.5);
}

TEST(Empirical, SingleValueAndThrowOnEmpty) {
  const Empirical one({7.0});
  EXPECT_DOUBLE_EQ(one.median(), 7.0);
  EXPECT_DOUBLE_EQ(one.quantile(0.3), 7.0);
  EXPECT_THROW(Empirical({}), std::invalid_argument);
}

TEST(Correlation, PearsonPerfectAndInverse) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> up{2, 4, 6, 8, 10};
  const std::vector<double> down{5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
}

TEST(Correlation, PearsonDegenerateInputs) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> constant{1, 1, 1};
  const std::vector<double> shorter{1, 2};
  const std::vector<double> one_x{1.0};
  const std::vector<double> one_y{2.0};
  EXPECT_DOUBLE_EQ(pearson(xs, constant), 0.0);  // constant side
  EXPECT_DOUBLE_EQ(pearson(xs, shorter), 0.0);   // size mismatch
  EXPECT_DOUBLE_EQ(pearson(one_x, one_y), 0.0);  // too small
}

TEST(Correlation, SpearmanIsRankBased) {
  // Monotone but nonlinear: Spearman 1, Pearson < 1.
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson(xs, ys), 1.0);
}

TEST(Correlation, AverageRanksHandleTies) {
  const auto ranks = average_ranks(std::vector<double>{10.0, 20.0, 10.0});
  EXPECT_DOUBLE_EQ(ranks[0], 1.5);
  EXPECT_DOUBLE_EQ(ranks[1], 3.0);
  EXPECT_DOUBLE_EQ(ranks[2], 1.5);
}

// --- End-to-end analyzer over a small census -------------------------------

struct Pipeline {
  net::SimulatedInternet internet;
  std::vector<net::VantagePoint> vps;
  census::Hitlist hitlist;
  census::CensusMatrix data;
  std::vector<TargetOutcome> outcomes;

  explicit Pipeline(std::uint64_t seed, int vp_count = 120)
      : internet([seed] {
          net::WorldConfig config;
          config.seed = seed;
          config.unicast_alive_slash24 = 600;
          config.unicast_dead_slash24 = 400;
          return config;
        }()),
        vps(net::make_planetlab({.node_count = vp_count,
                                 .seed = seed + 1})),
        hitlist(census::Hitlist::from_world(internet).without_dead()) {
    census::Greylist blacklist;
    census::FastPingConfig config;
    config.seed = seed + 2;
    data = run_census(internet, vps, hitlist, blacklist, config).data;
    const CensusAnalyzer analyzer(vps, geo::world_index());
    outcomes = analyzer.analyze(data, hitlist);
  }
};

const Pipeline& pipeline() {
  static const Pipeline instance(51);
  return instance;
}

TEST(CensusAnalyzer, DetectedTargetsAreTrulyAnycast) {
  // No false positives: every detection is a real anycast /24.
  for (const TargetOutcome& outcome : pipeline().outcomes) {
    const net::TargetInfo* info = pipeline().internet.target_for(
        ipaddr::IPv4Address::from_slash24_index(outcome.slash24_index, 1));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->kind, net::TargetInfo::Kind::kAnycast);
  }
}

TEST(CensusAnalyzer, RecallCoversMostMultiSiteDeployments) {
  // Deployments with well-separated sites must be found; count how many
  // top-100 deployments have at least one detected /24.
  std::set<const net::Deployment*> detected;
  for (const TargetOutcome& outcome : pipeline().outcomes) {
    const net::TargetInfo* info = pipeline().internet.target_for(
        ipaddr::IPv4Address::from_slash24_index(outcome.slash24_index, 1));
    detected.insert(&pipeline().internet.deployments()[static_cast<std::size_t>(
        info->deployment_index)]);
  }
  std::size_t top100_detected = 0;
  for (std::size_t d = 0; d < 100; ++d) {
    if (detected.contains(&pipeline().internet.deployments()[d])) {
      ++top100_detected;
    }
  }
  EXPECT_GE(top100_detected, 90u);
}

TEST(CensusAnalyzer, DetectAgreesWithCoreDetect) {
  const CensusAnalyzer analyzer(pipeline().vps, geo::world_index());
  std::size_t checked = 0;
  for (std::uint32_t t = 0; t < pipeline().data.target_count() && checked < 400;
       t += 7) {
    const auto row = pipeline().data.measurements(t);
    if (row.size() < 2) continue;
    ++checked;
    std::vector<core::Measurement> measurements;
    for (const census::VpRtt& sample : row) {
      measurements.push_back(core::Measurement{
          sample.vp, pipeline().vps[sample.vp].believed_location,
          sample.rtt_ms});
    }
    EXPECT_EQ(analyzer.detect(row), core::IGreedy::detect(measurements))
        << "target " << t;
  }
  EXPECT_GT(checked, 100u);
}

TEST(CensusAnalyzer, AnalyzeRowMatchesDetection) {
  for (std::size_t i = 0; i < std::min<std::size_t>(
                              20, pipeline().outcomes.size());
       ++i) {
    const TargetOutcome& outcome = pipeline().outcomes[i];
    EXPECT_TRUE(outcome.result.anycast);
    EXPECT_GE(outcome.result.replicas.size(), 2u);
  }
}

// --- CensusReport -------------------------------------------------------------

const CensusReport& report() {
  static const CensusReport instance(pipeline().internet,
                                     pipeline().outcomes);
  return instance;
}

TEST(CensusReport, EveryPrefixAttributed) {
  EXPECT_EQ(report().prefixes().size(), pipeline().outcomes.size());
  for (const PrefixReport& prefix : report().prefixes()) {
    EXPECT_NE(prefix.deployment, nullptr);
    EXPECT_GE(prefix.prefix_index, 0);
  }
}

TEST(CensusReport, AsAggregatesAreConsistent) {
  std::size_t total_prefixes = 0;
  for (const AsReport& as_report : report().ases()) {
    total_prefixes += as_report.detected_ip24;
    EXPECT_GT(as_report.mean_replicas, 0.0);
    EXPECT_GE(static_cast<double>(as_report.max_replicas),
              as_report.mean_replicas);
    EXPECT_LE(as_report.cities.size(),
              static_cast<std::size_t>(as_report.total_replicas));
  }
  EXPECT_EQ(total_prefixes, report().prefixes().size());
  // Sorted by decreasing footprint.
  const auto ases = report().ases();
  for (std::size_t i = 1; i < ases.size(); ++i) {
    EXPECT_GE(ases[i - 1].mean_replicas, ases[i].mean_replicas);
  }
}

TEST(CensusReport, GlanceRowsNest) {
  const GlanceRow all = report().glance_all();
  const GlanceRow top = report().glance_min_replicas(5);
  const GlanceRow caida = report().glance_caida_top100();
  const GlanceRow alexa = report().glance_alexa();
  EXPECT_GE(all.ip24, top.ip24);
  EXPECT_GE(all.ases, top.ases);
  EXPECT_GE(all.replicas, top.replicas);
  EXPECT_GE(all.ases, caida.ases);
  EXPECT_GE(all.ases, alexa.ases);
  EXPECT_GT(all.cities, 30u);
  EXPECT_GT(all.countries, 15u);
  // The CAIDA/Alexa intersections are small, as in Fig. 10.
  EXPECT_LE(caida.ases, 8u);
  EXPECT_LE(alexa.ases, 15u);
  EXPECT_GT(caida.ases, 0u);
  EXPECT_GT(alexa.ases, 5u);
}

TEST(CensusReport, CategoryBreakdownDominatedByDns) {
  const auto breakdown = report().category_breakdown();
  std::size_t total = 0;
  for (const auto& [category, count] : breakdown) total += count;
  ASSERT_GT(total, 0u);
  const auto dns = breakdown.find(net::Category::kDns);
  ASSERT_NE(dns, breakdown.end());
  // Fig. 11: DNS is the largest class, about a third of anycast ASes.
  const double share = static_cast<double>(dns->second) / total;
  EXPECT_GT(share, 0.2);
  EXPECT_LT(share, 0.55);
  for (const auto& [category, count] : breakdown) {
    EXPECT_LE(count, dns->second) << to_string(category);
  }
}

TEST(CensusReport, ByNameAndFootprintOrdering) {
  const AsReport* cloudflare = report().by_name("CLOUDFLARENET,US");
  ASSERT_NE(cloudflare, nullptr);
  EXPECT_GT(cloudflare->detected_ip24, 250u);  // most of its 328 /24s
  EXPECT_EQ(report().by_name("NOPE"), nullptr);
  // CloudFlare has the largest /24 footprint (Fig. 13).
  for (const AsReport& as_report : report().ases()) {
    EXPECT_LE(as_report.detected_ip24, cloudflare->detected_ip24);
  }
}

TEST(CensusReport, DataVectorsMatchCounts) {
  EXPECT_EQ(report().replicas_per_prefix().size(),
            report().prefixes().size());
  EXPECT_EQ(report().ip24_per_as().size(), report().ases().size());
}

// --- Validation ---------------------------------------------------------------

TEST(Validation, CloudflareMetricsInPaperBallpark) {
  const net::Deployment* cloudflare =
      pipeline().internet.deployment_by_name("CLOUDFLARENET,US");
  const ValidationMetrics metrics = validate_deployment(
      pipeline().internet, pipeline().vps, *cloudflare, report().prefixes());
  EXPECT_GT(metrics.evaluated_prefixes, 100u);
  // Fig. 7: TPR ~0.65-0.8; median error a few hundred km.
  EXPECT_GT(metrics.tpr, 0.45);
  EXPECT_LE(metrics.tpr, 1.0);
  EXPECT_GT(metrics.gt_over_pai, 0.3);
  EXPECT_LE(metrics.gt_over_pai, 1.0);
  if (metrics.misclassified_replicas > 0) {
    EXPECT_GT(metrics.median_error_km, 0.0);
    EXPECT_LT(metrics.median_error_km, 2000.0);
  }
}

TEST(Validation, NoPrefixesYieldsZeroedMetrics) {
  const net::Deployment* cloudflare =
      pipeline().internet.deployment_by_name("CLOUDFLARENET,US");
  const ValidationMetrics metrics = validate_deployment(
      pipeline().internet, pipeline().vps, *cloudflare, {});
  EXPECT_EQ(metrics.evaluated_prefixes, 0u);
  EXPECT_DOUBLE_EQ(metrics.tpr, 0.0);
}

}  // namespace
}  // namespace anycast::analysis
