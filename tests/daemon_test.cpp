// Continuous census daemon: supervisor verdicts, incremental re-analysis,
// and multi-round watch campaigns under adverse rounds (degraded coverage,
// staged hijacks, watchdog aborts). The load-bearing invariant throughout:
// an incremental pass, a resumed campaign, and a pooled run must be
// element-identical to the full / uninterrupted / serial equivalent.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <vector>

#include "anycast/analysis/incremental.hpp"
#include "anycast/census/census.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/daemon/supervisor.hpp"
#include "anycast/daemon/watch.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/slo.hpp"
#include "anycast/obs/telemetry.hpp"

namespace anycast {
namespace {

namespace fs = std::filesystem;

net::WorldConfig small_world_config() {
  net::WorldConfig config;
  config.seed = 33;
  config.unicast_alive_slash24 = 400;
  config.unicast_dead_slash24 = 200;
  return config;
}

const net::SimulatedInternet& small_world() {
  static const net::SimulatedInternet world(small_world_config());
  return world;
}

const census::Hitlist& small_hitlist() {
  static const census::Hitlist hitlist =
      census::Hitlist::from_world(small_world()).without_dead();
  return hitlist;
}

const std::vector<net::VantagePoint>& small_vps() {
  static const std::vector<net::VantagePoint> vps =
      net::make_planetlab({.node_count = 20, .seed = 34});
  return vps;
}

census::FastPingConfig watch_fastping() {
  census::FastPingConfig config;
  config.seed = 90;
  return config;
}

// --- Supervisor -------------------------------------------------------------

census::CensusSummary summary_with(std::size_t completed, std::size_t active,
                                   std::size_t configured) {
  census::CensusSummary summary;
  summary.active_vps = active;
  for (std::size_t i = 0; i < configured; ++i) {
    census::VpStatus status;
    status.vp_id = static_cast<std::uint32_t>(i);
    status.outcome = i < completed    ? census::VpOutcome::kCompleted
                     : i < active     ? census::VpOutcome::kCrashed
                                      : census::VpOutcome::kSkipped;
    summary.vp_outcomes.push_back(status);
  }
  return summary;
}

TEST(Supervisor, AssessJudgesCoverageAgainstFloor) {
  daemon::SupervisorConfig config;
  config.coverage_floor = 0.80;
  const daemon::Supervisor supervisor(config);

  const auto healthy = supervisor.assess(1, summary_with(8, 10, 12));
  EXPECT_EQ(healthy.health, daemon::RoundHealth::kHealthy);
  EXPECT_DOUBLE_EQ(healthy.coverage, 0.8);
  EXPECT_EQ(healthy.completed, 8u);
  EXPECT_EQ(healthy.active, 10u);
  EXPECT_EQ(healthy.configured, 12u);

  const auto degraded = supervisor.assess(2, summary_with(7, 10, 12));
  EXPECT_EQ(degraded.health, daemon::RoundHealth::kDegraded);

  // Skipped VPs (availability coin) do not count against coverage: 8 of 8
  // active completing is a healthy round even on a 12-node platform.
  const auto half_dark = supervisor.assess(3, summary_with(8, 8, 12));
  EXPECT_EQ(half_dark.health, daemon::RoundHealth::kHealthy);

  // An entirely dark platform is degraded, not a division by zero.
  const auto dark = supervisor.assess(4, summary_with(0, 0, 12));
  EXPECT_EQ(dark.health, daemon::RoundHealth::kDegraded);
  EXPECT_DOUBLE_EQ(dark.coverage, 0.0);
}

TEST(Supervisor, EscalationClimbsSaturatesAndDecays) {
  daemon::SupervisorConfig config;
  config.coverage_floor = 0.80;
  config.max_escalation = 3;
  daemon::Supervisor supervisor(config);
  const auto degraded = supervisor.assess(1, summary_with(1, 10, 10));
  const auto healthy = supervisor.assess(1, summary_with(10, 10, 10));

  for (int i = 0; i < 5; ++i) supervisor.observe(degraded);
  EXPECT_EQ(supervisor.escalation(), 3) << "ladder must saturate at the cap";
  supervisor.observe(healthy);
  EXPECT_EQ(supervisor.escalation(), 2);
  for (int i = 0; i < 5; ++i) supervisor.observe(healthy);
  EXPECT_EQ(supervisor.escalation(), 0) << "must floor at zero";
}

TEST(Supervisor, TunedScalesRetryKnobsWithEscalation) {
  daemon::Supervisor supervisor({.coverage_floor = 0.9});
  census::FastPingConfig base;
  base.retry_max_attempts = 1;
  base.retry_probe_budget = 100;
  base.vp_deadline_hours = 4.0;

  // Level 0: the base configuration, untouched.
  EXPECT_EQ(supervisor.tuned(base).retry_max_attempts, 1);
  EXPECT_EQ(supervisor.tuned(base).retry_probe_budget, 100u);

  supervisor.observe(supervisor.assess(1, summary_with(0, 10, 10)));
  supervisor.observe(supervisor.assess(2, summary_with(0, 10, 10)));
  const census::FastPingConfig tuned = supervisor.tuned(base);
  EXPECT_EQ(tuned.retry_max_attempts, 3);      // base + 2 * retry_step
  EXPECT_EQ(tuned.retry_probe_budget, 300u);   // base * (escalation + 1)
  EXPECT_DOUBLE_EQ(tuned.vp_deadline_hours, 4.0 * 1.5);

  // Zero budgets/deadlines mean "unlimited" and must stay that way.
  census::FastPingConfig unlimited;
  EXPECT_EQ(supervisor.tuned(unlimited).retry_probe_budget, 0u);
  EXPECT_DOUBLE_EQ(supervisor.tuned(unlimited).vp_deadline_hours, 0.0);
}

TEST(Supervisor, VerdictReplayRestoresEscalation) {
  // The daemon persists verdicts, not the escalation counter: a restarted
  // process replays history through observe() and must land on the same
  // level. assess() is pure, so replay has no side effects of its own.
  daemon::Supervisor live({.coverage_floor = 0.8, .max_escalation = 3});
  std::vector<daemon::RoundVerdict> history;
  const std::size_t completions[] = {10, 2, 3, 10, 1};
  for (int round = 1; round <= 5; ++round) {
    const auto verdict = live.assess(
        round, summary_with(completions[round - 1], 10, 10));
    live.observe(verdict);
    history.push_back(verdict);
  }

  daemon::Supervisor replayed({.coverage_floor = 0.8, .max_escalation = 3});
  for (const auto& verdict : history) replayed.observe(verdict);
  EXPECT_EQ(replayed.escalation(), live.escalation());
}

// --- dirty_rows / incremental_analyze ---------------------------------------

TEST(IncrementalAnalysis, DirtyRowsFindsExactlyTheChangedRows) {
  census::CensusMatrixBuilder prev_builder(10);
  census::CensusMatrixBuilder next_builder(10);
  for (std::uint32_t t = 0; t < 10; ++t) {
    prev_builder.add(t, 0, 10.0F + static_cast<float>(t));
    prev_builder.add(t, 1, 20.0F);
    next_builder.add(t, 0, 10.0F + static_cast<float>(t));
    next_builder.add(t, 1, t == 3 ? 21.0F : 20.0F);  // row 3: rtt changed
    if (t == 7) next_builder.add(t, 2, 30.0F);       // row 7: extra vp
  }
  const census::CensusMatrix prev = prev_builder.build();
  const census::CensusMatrix next = next_builder.build();

  const auto dirty = analysis::dirty_rows(prev, next);
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{3, 7}));
  EXPECT_TRUE(analysis::dirty_rows(prev, prev).empty());

  concurrency::ThreadPool pool(4);
  EXPECT_EQ(analysis::dirty_rows(prev, next, &pool), dirty);
}

TEST(IncrementalAnalysis, MismatchedTargetCountsDirtyEverything) {
  const census::CensusMatrix prev =
      census::CensusMatrixBuilder(5).build();
  const census::CensusMatrix next =
      census::CensusMatrixBuilder(7).build();
  std::vector<std::uint32_t> all(7);
  std::iota(all.begin(), all.end(), 0u);
  EXPECT_EQ(analysis::dirty_rows(prev, next), all);
}

void expect_same_outcomes(std::span<const analysis::TargetOutcome> a,
                          std::span<const analysis::TargetOutcome> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target_index, b[i].target_index);
    EXPECT_EQ(a[i].slash24_index, b[i].slash24_index);
    EXPECT_EQ(a[i].result.anycast, b[i].result.anycast);
    ASSERT_EQ(a[i].result.replicas.size(), b[i].result.replicas.size());
    for (std::size_t r = 0; r < a[i].result.replicas.size(); ++r) {
      EXPECT_EQ(a[i].result.replicas[r].city, b[i].result.replicas[r].city);
    }
  }
}

TEST(IncrementalAnalysis, MatchesFullAnalyzeUnderAdverseRounds) {
  // prev: a clean census. next: the same census probed through a fault
  // plan that knocks out windows of probes and crashes VPs — the adverse
  // shape watch rounds actually produce. The incremental splice must be
  // element-identical to a full re-analysis of next, serial and pooled.
  census::Greylist blacklist_a;
  const census::CensusMatrix prev =
      run_census(small_world(), small_vps(), small_hitlist(), blacklist_a,
                 watch_fastping())
          .data;
  net::FaultSpec spec;
  spec.outage_rate = 0.6;
  spec.crash_rate = 0.3;
  const net::FaultPlan plan(spec);
  census::Greylist blacklist_b;
  const census::CensusMatrix next =
      run_census(small_world(), small_vps(), small_hitlist(), blacklist_b,
                 watch_fastping(), &plan)
          .data;

  const analysis::CensusAnalyzer analyzer(small_vps(), geo::world_index());
  const auto prev_outcomes = analyzer.analyze(prev, small_hitlist());
  const auto full = analyzer.analyze(next, small_hitlist());

  const auto incremental = analysis::incremental_analyze(
      analyzer, prev_outcomes, prev, next, small_hitlist());
  EXPECT_FALSE(incremental.dirty.empty());
  EXPECT_LT(incremental.dirty.size(), small_hitlist().size())
      << "faults should not dirty literally every row";
  expect_same_outcomes(incremental.outcomes, full);

  concurrency::ThreadPool pool(4);
  const auto pooled = analysis::incremental_analyze(
      analyzer, prev_outcomes, prev, next, small_hitlist(), 2, &pool);
  EXPECT_EQ(pooled.dirty, incremental.dirty);
  expect_same_outcomes(pooled.outcomes, incremental.outcomes);
}

TEST(IncrementalAnalysis, CleanRoundReanalyzesNothing) {
  census::Greylist blacklist;
  const census::CensusMatrix data =
      run_census(small_world(), small_vps(), small_hitlist(), blacklist,
                 watch_fastping())
          .data;
  const analysis::CensusAnalyzer analyzer(small_vps(), geo::world_index());
  const auto outcomes = analyzer.analyze(data, small_hitlist());
  const auto incremental = analysis::incremental_analyze(
      analyzer, outcomes, data, data, small_hitlist());
  EXPECT_TRUE(incremental.dirty.empty());
  expect_same_outcomes(incremental.outcomes, outcomes);
}

TEST(HijackMonitor, ScanTargetsOverDirtyRowsEqualsFullScan) {
  // The reference is fixed and detection is row-pure, so restricting the
  // scan to rows that changed since the reference round must raise the
  // exact alarms of a full scan: an unchanged row cannot change verdict.
  census::Greylist blacklist_a;
  const census::CensusMatrix reference =
      run_census(small_world(), small_vps(), small_hitlist(), blacklist_a,
                 watch_fastping())
          .data;
  net::FaultSpec spec;
  spec.hijack_vp_fraction = 0.8;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    spec.hijack_targets.push_back(
        static_cast<std::uint32_t>(i * small_hitlist().size() / 5));
  }
  const net::FaultPlan plan(spec);
  census::Greylist blacklist_b;
  const census::CensusMatrix hijacked =
      run_census(small_world(), small_vps(), small_hitlist(), blacklist_b,
                 watch_fastping(), &plan)
          .data;

  analysis::HijackMonitor monitor(small_vps(), geo::world_index());
  monitor.set_reference(reference, small_hitlist());
  const auto full = monitor.scan(hijacked, small_hitlist());
  const auto dirty = analysis::dirty_rows(reference, hijacked);
  EXPECT_EQ(dirty.size(), spec.hijack_targets.size())
      << "hijack must dirty its victims and nothing else";
  const auto targeted =
      monitor.scan_targets(hijacked, small_hitlist(), dirty);
  ASSERT_EQ(targeted.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(targeted[i].target_index, full[i].target_index);
    EXPECT_EQ(targeted[i].slash24_index, full[i].slash24_index);
  }
  EXPECT_GT(full.size(), 0u) << "a staged hijack must raise alarms";
}

// --- WatchDaemon ------------------------------------------------------------

class WatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_daemon_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  daemon::WatchConfig base_config(const fs::path& out) const {
    daemon::WatchConfig config;
    config.out_dir = out;
    config.fastping = watch_fastping();
    return config;
  }

  daemon::WatchResult run_watch(const daemon::WatchConfig& config,
                                concurrency::ThreadPool* pool = nullptr) {
    net::SimulatedInternet internet(small_world_config());
    daemon::WatchDaemon watcher(internet, small_vps(), geo::world_index(),
                                small_hitlist(), config);
    return watcher.run(pool);
  }

  fs::path dir_;
};

void expect_same_records(const daemon::RoundRecord& a,
                         const daemon::RoundRecord& b) {
  EXPECT_EQ(a.verdict.round, b.verdict.round);
  EXPECT_EQ(a.verdict.health, b.verdict.health);
  EXPECT_EQ(a.verdict.completed, b.verdict.completed);
  EXPECT_EQ(a.verdict.active, b.verdict.active);
  EXPECT_EQ(a.dirty, b.dirty);
  EXPECT_EQ(a.anycast, b.anycast);
  EXPECT_EQ(a.churn_events, b.churn_events);
  EXPECT_EQ(a.hijack_alarms, b.hijack_alarms);
}

TEST_F(WatchTest, StaticWorldReplaysBitIdenticalRounds) {
  daemon::WatchConfig config = base_config(dir_);
  config.rounds = 3;
  const auto result = run_watch(config);
  EXPECT_EQ(result.exit_code, 0) << result.error;
  ASSERT_EQ(result.rounds.size(), 3u);
  EXPECT_EQ(result.rounds_completed, 3);
  for (const auto& record : result.rounds) {
    EXPECT_EQ(record.verdict.health, daemon::RoundHealth::kHealthy);
    EXPECT_EQ(record.churn_events, 0u);
    EXPECT_EQ(record.hijack_alarms, 0u);
  }
  // Same seed, same world: rounds 2 and 3 replay round 1 exactly, so the
  // incremental pass re-analyzes nothing at all.
  EXPECT_EQ(result.rounds[1].dirty, 0u);
  EXPECT_EQ(result.rounds[2].dirty, 0u);
  EXPECT_EQ(result.rounds[1].anycast, result.rounds[0].anycast);
}

TEST_F(WatchTest, PooledRunMatchesSerialRun) {
  daemon::WatchConfig serial_config = base_config(dir_ / "serial");
  serial_config.rounds = 3;
  serial_config.churn = true;
  const auto serial = run_watch(serial_config);
  EXPECT_EQ(serial.exit_code, 0) << serial.error;

  daemon::WatchConfig pooled_config = base_config(dir_ / "pooled");
  pooled_config.rounds = 3;
  pooled_config.churn = true;
  concurrency::ThreadPool pool(4);
  const auto pooled = run_watch(pooled_config, &pool);
  EXPECT_EQ(pooled.exit_code, 0) << pooled.error;

  ASSERT_EQ(serial.rounds.size(), pooled.rounds.size());
  for (std::size_t i = 0; i < serial.rounds.size(); ++i) {
    expect_same_records(serial.rounds[i], pooled.rounds[i]);
  }
}

TEST_F(WatchTest, StagedHijackAlarmsOnlyFromStageRound) {
  daemon::WatchConfig config = base_config(dir_);
  config.rounds = 4;
  config.chaos_enabled = true;
  config.chaos.hijack_vp_fraction = 0.8;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    config.chaos.hijack_targets.push_back(
        static_cast<std::uint32_t>(i * small_hitlist().size() / 5));
  }
  config.hijack_from_round = 3;
  const auto result = run_watch(config);
  EXPECT_EQ(result.exit_code, 0) << result.error;
  ASSERT_EQ(result.rounds.size(), 4u);

  // Pre-stage rounds: bit-identical replays, no alarms, nothing dirty.
  EXPECT_EQ(result.rounds[0].hijack_alarms, 0u);
  EXPECT_EQ(result.rounds[1].hijack_alarms, 0u);
  EXPECT_EQ(result.rounds[1].dirty, 0u);

  // Stage round: only the victims' rows change, and the monitor alarms on
  // the reference-unicast ones. Nothing spurious rides along.
  EXPECT_EQ(result.rounds[2].dirty, config.chaos.hijack_targets.size());
  EXPECT_GT(result.rounds[2].hijack_alarms, 0u);
  EXPECT_LE(result.rounds[2].hijack_alarms,
            config.chaos.hijack_targets.size());

  // The attack persists in round 4; the edge-triggered scan measures
  // against the (pre-attack) baseline, so the standing alarms re-raise.
  EXPECT_EQ(result.rounds[3].dirty, config.chaos.hijack_targets.size());
  EXPECT_EQ(result.rounds[3].hijack_alarms, result.rounds[2].hijack_alarms);
}

TEST_F(WatchTest, DegradedRoundEmitsNoEventsAndIsNoBaseline) {
  // Phase 1: one clean round establishes the baseline and the hijack
  // reference.
  daemon::WatchConfig phase1 = base_config(dir_);
  phase1.rounds = 1;
  const auto first = run_watch(phase1);
  EXPECT_EQ(first.exit_code, 0) << first.error;
  ASSERT_EQ(first.rounds.size(), 1u);
  ASSERT_EQ(first.rounds[0].verdict.health, daemon::RoundHealth::kHealthy);

  // Phase 2: round 2 under a near-total crash plan drops below the floor.
  daemon::WatchConfig phase2 = base_config(dir_);
  phase2.rounds = 2;
  phase2.chaos_enabled = true;
  phase2.chaos.crash_rate = 0.97;
  phase2.hijack_from_round = 99;
  const auto second = run_watch(phase2);
  EXPECT_EQ(second.exit_code, 0) << second.error;
  ASSERT_EQ(second.rounds.size(), 1u);
  const auto& degraded = second.rounds[0];
  ASSERT_EQ(degraded.verdict.health, daemon::RoundHealth::kDegraded)
      << "coverage " << degraded.verdict.coverage;
  // A half-dark platform loses replicas by artifact; the daemon must not
  // convert the darkness into churn or hijack events.
  EXPECT_EQ(degraded.churn_events, 0u);
  EXPECT_EQ(degraded.hijack_alarms, 0u);
  EXPECT_GT(degraded.dirty, 0u) << "the darkness itself does dirty rows";

  // Phase 3: round 3 is clean again, but stages a hijack. The reference
  // and baseline must still be round 1 (not the degraded round 2), so the
  // alarms fire through the baseline-matrix comparison path.
  daemon::WatchConfig phase3 = base_config(dir_);
  phase3.rounds = 3;
  phase3.chaos_enabled = true;
  phase3.chaos.hijack_vp_fraction = 0.8;
  for (std::uint32_t i = 1; i <= 4; ++i) {
    phase3.chaos.hijack_targets.push_back(
        static_cast<std::uint32_t>(i * small_hitlist().size() / 5));
  }
  phase3.hijack_from_round = 3;
  const auto third = run_watch(phase3);
  EXPECT_EQ(third.exit_code, 0) << third.error;
  ASSERT_EQ(third.rounds.size(), 1u);
  const auto& recovered = third.rounds[0];
  EXPECT_EQ(recovered.verdict.health, daemon::RoundHealth::kHealthy);
  // Escalation climbed after the degraded round: round 3 probes at level 1.
  EXPECT_EQ(recovered.verdict.escalation, 1);
  EXPECT_GT(recovered.hijack_alarms, 0u)
      << "degraded round must not have poisoned the unicast reference";
}

TEST_F(WatchTest, WatchdogAbortThenRestartMatchesUninterruptedCampaign) {
  daemon::WatchConfig clean_config = base_config(dir_ / "clean");
  clean_config.rounds = 3;
  clean_config.churn = true;
  const auto clean = run_watch(clean_config);
  EXPECT_EQ(clean.exit_code, 0) << clean.error;
  ASSERT_EQ(clean.rounds.size(), 3u);

  // The drill kills the daemon mid-round-2: half the platform probed and
  // checkpointed, nothing committed.
  daemon::WatchConfig drill_config = base_config(dir_ / "drill");
  drill_config.rounds = 3;
  drill_config.churn = true;
  drill_config.die_at_round = 2;
  const auto aborted = run_watch(drill_config);
  EXPECT_EQ(aborted.exit_code, daemon::kAbortedExitCode);
  ASSERT_EQ(aborted.rounds.size(), 1u);
  EXPECT_EQ(aborted.rounds_completed, 1);

  // The restart resumes the interrupted round from its checkpoints and
  // the campaign converges to the uninterrupted run, record for record.
  daemon::WatchConfig restart_config = base_config(dir_ / "drill");
  restart_config.rounds = 3;
  restart_config.churn = true;
  const auto resumed = run_watch(restart_config);
  EXPECT_EQ(resumed.exit_code, 0) << resumed.error;
  ASSERT_EQ(resumed.rounds.size(), 2u);
  EXPECT_EQ(resumed.rounds_completed, 3);
  EXPECT_TRUE(resumed.rounds[0].resumed)
      << "round 2 must inherit the drill's checkpoints";
  EXPECT_GT(resumed.rounds[0].vps_reused, 0u);
  expect_same_records(resumed.rounds[0], clean.rounds[1]);
  expect_same_records(resumed.rounds[1], clean.rounds[2]);
}

TEST_F(WatchTest, CompletedCampaignRestartsAsNoOp) {
  daemon::WatchConfig config = base_config(dir_);
  config.rounds = 2;
  const auto first = run_watch(config);
  EXPECT_EQ(first.exit_code, 0) << first.error;
  const auto again = run_watch(config);
  EXPECT_EQ(again.exit_code, 0) << again.error;
  EXPECT_TRUE(again.rounds.empty());
  EXPECT_EQ(again.rounds_completed, 2);
}

TEST_F(WatchTest, RegionalOutageSloViolationsAreDriftGatedAcrossPools) {
  std::string slo_error;
  const auto objectives = obs::parse_slo_spec("availability=0.9", &slo_error);
  ASSERT_TRUE(objectives.has_value()) << slo_error;

  // A correlated regional outage plus flaky quarantine probes pushes the
  // per-round availability ratio below the 0.9 objective: the burn tracker
  // must journal a violation, and the event sequence — a semantic artifact
  // computed from verdict counts, not wall clocks — must be byte-identical
  // no matter how many threads probed the platform.
  const auto chaos_config = [&](const fs::path& out) {
    daemon::WatchConfig config = base_config(out);
    config.rounds = 4;
    config.chaos_enabled = true;
    config.chaos.regional_rate = 0.9;
    config.chaos.regional_fraction = 0.5;
    config.chaos.regional_span = 0.6;
    config.fastping.quarantine_drop_rate = 0.4;
    config.slo = *objectives;
    return config;
  };

  const auto journaled_run = [&](const daemon::WatchConfig& config,
                                 concurrency::ThreadPool* pool) {
    obs::journal().reset();
    obs::journal().set_recording(true);
    const auto result = run_watch(config, pool);
    EXPECT_EQ(result.exit_code, 0) << result.error;
    std::string text = obs::journal().semantic_text();
    obs::journal().set_recording(false);
    obs::journal().reset();
    return text;
  };

  const std::string serial =
      journaled_run(chaos_config(dir_ / "serial"), nullptr);
  EXPECT_NE(serial.find("slo.violation"), std::string::npos)
      << "regional outage must trip the availability burn rate";

  for (const std::size_t threads : {1u, 2u, 8u}) {
    concurrency::ThreadPool pool(threads);
    const std::string pooled = journaled_run(
        chaos_config(dir_ / ("pool" + std::to_string(threads))), &pool);
    EXPECT_EQ(pooled, serial) << threads << "-thread pool drifted";
  }

  // A healthy campaign with the same objective never burns the budget.
  daemon::WatchConfig healthy = base_config(dir_ / "healthy");
  healthy.rounds = 4;
  healthy.slo = *objectives;
  const std::string clean = journaled_run(healthy, nullptr);
  EXPECT_EQ(clean.find("slo.violation"), std::string::npos)
      << "healthy rounds must not burn the availability budget";
  obs::telemetry().set_slo({});
}

TEST_F(WatchTest, CorruptStateFileFailsLoudly) {
  daemon::WatchConfig config = base_config(dir_);
  config.rounds = 1;
  EXPECT_EQ(run_watch(config).exit_code, 0);
  {
    std::FILE* f = std::fopen((dir_ / "watch.state").string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a state file\n", f);
    std::fclose(f);
  }
  const auto result = run_watch(config);
  EXPECT_EQ(result.exit_code, 1);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace anycast
