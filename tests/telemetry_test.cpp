// The live telemetry plane: lock-free HDR latency histograms, windowed
// time series, and multi-window SLO burn-rate tracking. These tests are
// also the TSAN surface for the per-thread histogram shards and the
// series mutex — run_sanitizers.sh builds this binary under
// -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "anycast/obs/latency.hpp"
#include "anycast/obs/slo.hpp"
#include "anycast/obs/telemetry.hpp"
#include "anycast/obs/timeseries.hpp"

namespace anycast::obs {
namespace {

namespace fs = std::filesystem;

// --- LatencyHisto ------------------------------------------------------------

TEST(LatencyHistoTest, SlotMathIsExactBelowSubCountAndConsistentAbove) {
  // The exact region: unit-wide buckets, slot == value.
  for (std::uint64_t v = 0; v < LatencyHisto::kSubCount; ++v) {
    EXPECT_EQ(LatencyHisto::slot_of(v), v);
    EXPECT_EQ(LatencyHisto::slot_lower(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(LatencyHisto::slot_upper(static_cast<std::uint32_t>(v)), v + 1);
  }
  // Every slot's bounds round-trip through slot_of, and bucket width
  // never exceeds lower / 2^kSubBits (the relative-error invariant).
  for (std::uint32_t s = 0; s < LatencyHisto::kSlots; ++s) {
    const std::uint64_t lower = LatencyHisto::slot_lower(s);
    const std::uint64_t upper = LatencyHisto::slot_upper(s);
    ASSERT_LT(lower, upper) << "slot " << s;
    EXPECT_EQ(LatencyHisto::slot_of(lower), s);
    EXPECT_EQ(LatencyHisto::slot_of(upper - 1), s);
    if (lower >= LatencyHisto::kSubCount) {
      EXPECT_LE(upper - lower, lower / LatencyHisto::kSubCount)
          << "slot " << s << " too wide for the error bound";
    }
  }
  // Saturation: anything at or beyond kMaxValue lands in the top slot.
  EXPECT_EQ(LatencyHisto::slot_of(LatencyHisto::kMaxValue),
            LatencyHisto::kSlots - 1);
}

TEST(LatencyHistoTest, RecordSnapshotAndWindowDelta) {
  LatencyHisto histo("test_rsd", "ns", "test histogram");
  for (int i = 0; i < 100; ++i) histo.record(10);
  for (int i = 0; i < 5; ++i) histo.record(1000);
  const LatencyHisto::Snapshot first = histo.snapshot();
  EXPECT_EQ(first.count, 105u);
  EXPECT_EQ(first.sum, 100u * 10 + 5u * 1000);
  EXPECT_EQ(first.min(), 10u);
  EXPECT_GE(first.max(), 1000u);
  // count_above counts whole buckets strictly above the threshold:
  // the value-10 bucket is excluded at threshold 10, included at 9.
  EXPECT_EQ(first.count_above(500), 5u);
  EXPECT_EQ(first.count_above(10), 5u);
  EXPECT_EQ(first.count_above(9), 105u);

  histo.record(20);
  histo.record(20);
  const LatencyHisto::Snapshot window = histo.snapshot().delta_since(first);
  EXPECT_EQ(window.count, 2u);
  EXPECT_EQ(window.sum, 40u);
  EXPECT_EQ(window.min(), 20u);
}

TEST(LatencyHistoTest, KillSwitchMakesRecordANoOp) {
  LatencyHisto histo("test_kill", "ns", "test histogram");
  histo.record(7);
  set_latency_recording(false);
  histo.record(7);
  histo.record(7);
  set_latency_recording(true);
  histo.record(7);
  EXPECT_EQ(histo.snapshot().count, 2u);
}

TEST(LatencyHistoTest, ConcurrentRecordersMergeExactly) {
  // 8 threads record disjoint value sets and exit (folding their shards
  // into the retired array) while a reader scrapes concurrently. The
  // final merge must be exact — relaxed atomics lose nothing.
  LatencyHisto histo("test_mt", "ns", "test histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)histo.snapshot();
    }
  });
  {
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&histo, t] {
        for (int i = 0; i < kPerThread; ++i) {
          histo.record(static_cast<std::uint64_t>(t) * 1000 + 10);
        }
      });
    }
    for (std::thread& w : writers) w.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const LatencyHisto::Snapshot snap = histo.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<std::uint64_t>(kPerThread) *
                    (static_cast<std::uint64_t>(t) * 1000 + 10);
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(LatencyHistoTest, GlobalRegistryReturnsSameInstance) {
  LatencyHisto& a = LatencyHisto::get("test_global_histo", "us", "help");
  LatencyHisto& b = LatencyHisto::get("test_global_histo", "ms", "ignored");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.unit(), "us") << "unit is fixed by the creating call";
}

// --- TimeSeries --------------------------------------------------------------

TEST(TimeSeriesTest, RotationKeepsNewestPointsOldestFirst) {
  TimeSeries series("s", {"a", "b"}, 4);
  for (std::uint64_t t = 1; t <= 6; ++t) {
    const double values[] = {static_cast<double>(t),
                             static_cast<double>(10 * t)};
    series.push(t, values);
  }
  EXPECT_EQ(series.size(), 4u);
  EXPECT_EQ(series.total_pushed(), 6u);
  const std::vector<TimeSeries::Point> window = series.window();
  ASSERT_EQ(window.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(window[i].t, i + 3) << "oldest-first after rotation";
    EXPECT_EQ(window[i].v[1], static_cast<double>(10 * (i + 3)));
  }
  const std::vector<TimeSeries::Point> last2 = series.window(2);
  ASSERT_EQ(last2.size(), 2u);
  EXPECT_EQ(last2[0].t, 5u);
  EXPECT_EQ(last2[1].t, 6u);

  const TimeSeries::FieldStats stats = series.stats(0);
  EXPECT_EQ(stats.n, 4u);
  EXPECT_EQ(stats.last, 6.0);
  EXPECT_EQ(stats.min, 3.0);
  EXPECT_EQ(stats.max, 6.0);
  EXPECT_DOUBLE_EQ(stats.mean, (3 + 4 + 5 + 6) / 4.0);
}

TEST(TimeSeriesTest, ShortAndLongValueSpansClampToSchema) {
  TimeSeries series("s", {"a", "b"}, 4);
  const double one[] = {7.0};
  series.push(1, one);  // missing b reads as 0
  const double three[] = {1.0, 2.0, 3.0};
  series.push(2, three);  // extra value drops
  const auto window = series.window();
  ASSERT_EQ(window.size(), 2u);
  EXPECT_EQ(window[0].v, (std::vector<double>{7.0, 0.0}));
  EXPECT_EQ(window[1].v, (std::vector<double>{1.0, 2.0}));
}

TEST(TimeSeriesTest, ToJsonCarriesFieldArraysOldestFirst) {
  TimeSeries series("qps_series", {"qps"}, 8);
  const double a[] = {100.0};
  const double b[] = {200.0};
  series.push(1, a);
  series.push(2, b);
  const std::string json = series.to_json();
  EXPECT_NE(json.find("\"name\": \"qps_series\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"t\": [1, 2]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"qps\": [100, 200]"), std::string::npos) << json;
}

TEST(TimeSeriesTest, ConcurrentPushAndReadAreRaceFree) {
  // Pure TSAN surface: writers rotate the ring while readers walk it.
  TimeSeries series("mt", {"x"}, 16);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&series, w] {
      for (std::uint64_t i = 0; i < 5000; ++i) {
        const double v[] = {static_cast<double>(w * 10000 + i)};
        series.push(i, v);
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&series, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)series.window(8);
        (void)series.stats(0, 4);
        (void)series.to_json();
      }
    });
  }
  for (int w = 0; w < 3; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  threads[3].join();
  threads[4].join();
  EXPECT_EQ(series.total_pushed(), 15000u);
  EXPECT_EQ(series.size(), 16u);
}

// --- SloTracker --------------------------------------------------------------

TEST(SloSpecTest, ParsesRatioAndLatencyObjectives) {
  std::string error;
  const auto objectives =
      parse_slo_spec("p99_lookup_us=50, availability=0.999", &error);
  ASSERT_TRUE(objectives.has_value()) << error;
  ASSERT_EQ(objectives->size(), 2u);

  const SloObjective& latency = (*objectives)[0];
  EXPECT_EQ(latency.name, "p99_lookup_us");
  EXPECT_EQ(latency.input, SloObjective::Input::kLatency);
  EXPECT_EQ(latency.cls, MetricClass::kTiming);
  EXPECT_DOUBLE_EQ(latency.quantile, 0.99);
  EXPECT_NEAR(latency.budget, 0.01, 1e-12);
  EXPECT_EQ(latency.stage, "lookup");
  EXPECT_EQ(latency.histo_name, "serving_lookup_ns");
  EXPECT_EQ(latency.threshold_ns, 50000u);

  const SloObjective& ratio = (*objectives)[1];
  EXPECT_EQ(ratio.name, "availability");
  EXPECT_EQ(ratio.input, SloObjective::Input::kRatio);
  EXPECT_EQ(ratio.cls, MetricClass::kSemantic);
  EXPECT_NEAR(ratio.budget, 0.001, 1e-12);

  // p999 + ms: three-digit quantile, millisecond unit.
  const auto p999 = parse_slo_spec("p999_query_ms=2", &error);
  ASSERT_TRUE(p999.has_value()) << error;
  EXPECT_DOUBLE_EQ((*p999)[0].quantile, 0.999);
  EXPECT_EQ((*p999)[0].threshold_ns, 2000000u);

  EXPECT_TRUE(parse_slo_spec("", &error)->empty());
}

TEST(SloSpecTest, RejectsMalformedSpecs) {
  for (const char* bad :
       {"availability=1.5", "availability=0", "availability=x",
        "p99_bogus_us=50", "p99_lookup_parsecs=50", "p0_lookup_us=50",
        "pxx_lookup_us=50", "p99_lookup_us=-1", "unknown=1", "noequals"}) {
    std::string error;
    EXPECT_FALSE(parse_slo_spec(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

std::vector<SloObjective> availability_objective(double target) {
  std::string error;
  auto parsed = parse_slo_spec("availability=" + std::to_string(target),
                               &error);
  EXPECT_TRUE(parsed.has_value()) << error;
  return std::move(*parsed);
}

TEST(SloTrackerTest, MultiWindowBurnEntersAndRecovers) {
  // availability=0.9 -> budget 0.1. Defaults: short=1, long=4, threshold
  // 2x. Three healthy rounds, then a 50% outage: short burn 5000 and long
  // burn mean(0,0,0,5.0)=1250 permille -> violation. Healthy rounds after
  // push the long mean back under 1.0 -> recovery.
  SloTracker tracker(availability_objective(0.9));
  for (std::uint64_t t = 1; t <= 3; ++t) {
    EXPECT_FALSE(tracker.observe("availability", t, 100, 0).has_value());
  }
  const auto enter = tracker.observe("availability", 4, 50, 50);
  ASSERT_TRUE(enter.has_value());
  EXPECT_TRUE(enter->entered);
  EXPECT_EQ(enter->objective, "availability");
  EXPECT_EQ(enter->burn_short_permille, 5000u);
  EXPECT_EQ(enter->burn_long_permille, 1250u);

  auto state = tracker.states().at(0);
  EXPECT_TRUE(state.violating);
  EXPECT_EQ(state.violations, 1u);
  EXPECT_EQ(state.windows, 4u);

  // One healthy window: short burn drops to 0, so the AND gate releases.
  const auto recover = tracker.observe("availability", 5, 100, 0);
  ASSERT_TRUE(recover.has_value());
  EXPECT_FALSE(recover->entered);
  EXPECT_FALSE(tracker.states().at(0).violating);
  EXPECT_EQ(tracker.states().at(0).violations, 1u);
}

TEST(SloTrackerTest, LongWindowGuardsAgainstSingleBlips) {
  // A mild single-window burn (2x budget) clears the short threshold but
  // not the long-window budget — no page.
  SloTracker tracker(availability_objective(0.9));
  for (std::uint64_t t = 1; t <= 3; ++t) {
    (void)tracker.observe("availability", t, 100, 0);
  }
  EXPECT_FALSE(tracker.observe("availability", 4, 80, 20).has_value());
  const auto state = tracker.states().at(0);
  EXPECT_FALSE(state.violating);
  EXPECT_EQ(state.burn_short_permille, 2000u);
  EXPECT_EQ(state.burn_long_permille, 500u);
}

TEST(SloTrackerTest, UnknownObjectiveIsIgnored) {
  SloTracker tracker(availability_objective(0.9));
  EXPECT_FALSE(tracker.observe("latency", 1, 0, 100).has_value());
  EXPECT_EQ(tracker.states().at(0).windows, 0u);
}

TEST(SloTrackerTest, ObserveHistogramWindowsOnSnapshotDeltas) {
  std::string error;
  auto objectives = parse_slo_spec("p99_lookup_us=50", &error);
  ASSERT_TRUE(objectives.has_value()) << error;
  SloTracker tracker(std::move(*objectives));

  LatencyHisto histo("test_slo_histo", "ns", "test histogram");
  // Window 1: all fast (1us << 50us) -> burn 0.
  for (int i = 0; i < 1000; ++i) histo.record(1000);
  auto t1 = tracker.observe_histogram("p99_lookup_us", 1, histo.snapshot());
  EXPECT_FALSE(t1.has_value());
  EXPECT_EQ(tracker.states().at(0).burn_short_permille, 0u);

  // Window 2: the DELTA is 100% slow samples (10ms each): burn 100x over
  // the 1% budget on both windows -> violation.
  for (int i = 0; i < 100; ++i) histo.record(10'000'000);
  auto t2 = tracker.observe_histogram("p99_lookup_us", 2, histo.snapshot());
  ASSERT_TRUE(t2.has_value());
  EXPECT_TRUE(t2->entered);
  EXPECT_TRUE(tracker.states().at(0).violating);

  // Ratio-style observe on a latency objective is rejected as shape
  // mismatch; histogram observe on an unknown name is ignored.
  EXPECT_FALSE(
      tracker.observe_histogram("availability", 3, histo.snapshot())
          .has_value());
}

// --- TelemetryPlane ----------------------------------------------------------

TEST(TelemetryPlaneTest, TickAtRotatesPerSecondWindows) {
  TelemetryPlane plane;
  LatencyHisto& histo =
      LatencyHisto::get("serving_query_ns", "ns", "serving query latency");
  plane.tick_at(100.0);  // anchor against the current cumulative state
  EXPECT_EQ(plane.per_second().size(), 0u);

  for (int i = 0; i < 1000; ++i) histo.record(2000);
  plane.note_query_error();
  plane.tick_at(100.5);  // sub-second: gated, no rotation
  EXPECT_EQ(plane.per_second().size(), 0u);

  plane.tick_at(102.0);  // dt = 2.0s since the anchor
  ASSERT_EQ(plane.per_second().size(), 1u);
  const TimeSeries::Point point = plane.per_second().window().back();
  EXPECT_DOUBLE_EQ(point.v[0], 500.0);  // 1000 queries / 2.0 s
  EXPECT_DOUBLE_EQ(point.v[1], 0.5);    // 1 error / 2.0 s
  // p50 of an all-2000ns window, in us, within the 1/128 bucket bound.
  EXPECT_GE(point.v[2], 2.0);
  EXPECT_LE(point.v[2], 2.0 * (1 + LatencyHisto::kMaxRelativeError) + 0.001);
  EXPECT_EQ(plane.query_errors(), 1u);
}

TEST(TelemetryPlaneTest, LatencySloEvaluatedOnTick) {
  TelemetryPlane plane;
  std::string error;
  auto objectives = parse_slo_spec("p99_query_us=50", &error);
  ASSERT_TRUE(objectives.has_value()) << error;
  plane.set_slo(std::move(*objectives));
  ASSERT_TRUE(plane.has_slo());

  LatencyHisto& histo =
      LatencyHisto::get("serving_query_ns", "ns", "serving query latency");
  const std::uint64_t before = histo.snapshot().count;
  plane.tick_at(200.0);
  for (int i = 0; i < 100; ++i) histo.record(1'000'000);  // 1ms >> 50us
  plane.tick_at(201.5);
  (void)before;

  const auto states = plane.slo_states();
  ASSERT_EQ(states.size(), 1u);
  EXPECT_TRUE(states[0].violating);
  EXPECT_EQ(states[0].violations, 1u);
  EXPECT_GE(states[0].burn_short_permille, 1000u);

  // Idle seconds drain the short window; the objective recovers without
  // any ratio feed — tick() is the only evaluator latency SLOs need.
  for (int s = 0; s < 5; ++s) {
    plane.tick_at(203.0 + 1.5 * s);
  }
  EXPECT_FALSE(plane.slo_states().at(0).violating);

  plane.set_slo({});
  EXPECT_FALSE(plane.has_slo());
}

TEST(TelemetryPlaneTest, RatioObservationsFlowThroughThePlane) {
  TelemetryPlane plane;
  plane.set_slo(availability_objective(0.9));
  for (std::uint64_t round = 1; round <= 3; ++round) {
    EXPECT_FALSE(
        plane.observe_slo_ratio("availability", round, 100, 0).has_value());
  }
  const auto transition = plane.observe_slo_ratio("availability", 4, 40, 60);
  ASSERT_TRUE(transition.has_value());
  EXPECT_TRUE(transition->entered);
  EXPECT_TRUE(plane.slo_states().at(0).violating);
}

TEST(TelemetryPlaneTest, DocumentJsonSplicesTelemetrySections) {
  TelemetryPlane plane;
  plane.note_round(7, 0.95, 190, 200, 100000, 0.62, 1234, 4311, 812.5);
  const std::string doc = plane.document_json();
  // The legacy scrape shape is preserved verbatim at the front...
  EXPECT_EQ(doc.rfind("{\n  \"metrics\": [", 0), 0u) << doc.substr(0, 80);
  // ...with the telemetry sections spliced in before the closing brace.
  EXPECT_NE(doc.find("\"latency\": ["), std::string::npos);
  EXPECT_NE(doc.find("\"serving_per_second\""), std::string::npos);
  EXPECT_NE(doc.find("\"census_per_round\""), std::string::npos);
  EXPECT_NE(doc.find("\"coverage\": [0.95]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"slo\": []"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');

  plane.reset();
  EXPECT_EQ(plane.per_round().size(), 0u);
  EXPECT_EQ(plane.query_errors(), 0u);
}

TEST(TelemetryPlaneTest, WriteFileAtomicNeverLeavesATornFile) {
  const fs::path dir = fs::path(::testing::TempDir()) / "telemetry_atomic";
  fs::create_directories(dir);
  const fs::path path = dir / "scrape.json";
  ASSERT_TRUE(write_file_atomic(path, "first version\n"));
  ASSERT_TRUE(write_file_atomic(path, "second version\n"));
  std::ifstream in(path);
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(body, "second version\n");
  EXPECT_FALSE(fs::exists(path.string() + ".tmp")) << "tmp must be renamed";
  EXPECT_FALSE(write_file_atomic(dir / "no_such_dir" / "x.json", "body"));
}

}  // namespace
}  // namespace anycast::obs
