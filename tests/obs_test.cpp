// Unit tests for the observability layer: the sharded metrics registry
// (merge correctness, histogram bucket edges, scrape determinism,
// concurrent increments — run under TSAN via tools/run_sanitizers.sh) and
// the trace span tree (nesting, cross-thread adoption, orphan handling).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace.hpp"

namespace {

using anycast::obs::Counter;
using anycast::obs::Gauge;
using anycast::obs::Histogram;
using anycast::obs::MetricClass;
using anycast::obs::MetricKind;
using anycast::obs::MetricsRegistry;
using anycast::obs::MetricValue;
using anycast::obs::Span;
using anycast::obs::SpanRecord;

const MetricValue* find(const std::vector<MetricValue>& values,
                        std::string_view name) {
  for (const MetricValue& v : values) {
    if (v.name == name) return &v;
  }
  return nullptr;
}

TEST(MetricsRegistry, CounterAccumulatesAndScrapes) {
  MetricsRegistry registry;
  const Counter c = registry.counter("test_counter", MetricClass::kSemantic,
                                     "a counter");
  c.inc();
  c.add(41);
  const auto values = registry.scrape();
  const MetricValue* v = find(values, "test_counter");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kCounter);
  EXPECT_EQ(v->cls, MetricClass::kSemantic);
  EXPECT_EQ(v->value, 42u);
  EXPECT_EQ(v->help, "a counter");
}

TEST(MetricsRegistry, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  const Counter a = registry.counter("same", MetricClass::kSemantic);
  const Counter b = registry.counter("same", MetricClass::kSemantic);
  a.add(1);
  b.add(2);
  const auto values = registry.scrape();
  EXPECT_EQ(find(values, "same")->value, 3u);
}

TEST(MetricsRegistry, ReRegisteringDifferentlyThrows) {
  MetricsRegistry registry;
  (void)registry.counter("clash", MetricClass::kSemantic);
  EXPECT_THROW((void)registry.counter("clash", MetricClass::kTiming),
               std::logic_error);
  EXPECT_THROW((void)registry.gauge("clash", MetricClass::kSemantic),
               std::logic_error);
  (void)registry.histogram("h", MetricClass::kSemantic, {1.0, 2.0});
  EXPECT_THROW(
      (void)registry.histogram("h", MetricClass::kSemantic, {1.0, 3.0}),
      std::logic_error);
}

TEST(MetricsRegistry, BadNamesAndBoundsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW((void)registry.counter("", MetricClass::kSemantic),
               std::logic_error);
  EXPECT_THROW((void)registry.counter("has space", MetricClass::kSemantic),
               std::logic_error);
  EXPECT_THROW(
      (void)registry.histogram("unsorted", MetricClass::kSemantic,
                               {2.0, 1.0}),
      std::logic_error);
  EXPECT_THROW(
      (void)registry.histogram("empty", MetricClass::kSemantic, {}),
      std::logic_error);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry registry;
  const Gauge g = registry.gauge("test_gauge", MetricClass::kTiming);
  g.set(1.5);
  g.set(-2.25);
  const auto values = registry.scrape();
  EXPECT_DOUBLE_EQ(find(values, "test_gauge")->gauge, -2.25);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  const Histogram h = registry.histogram(
      "edges", MetricClass::kSemantic, {1.0, 2.0, 4.0});
  // Prometheus `le` semantics: value <= bound lands in that bucket.
  h.observe(0.5);   // bucket[0] (le 1)
  h.observe(1.0);   // bucket[0] — edge is inclusive
  h.observe(1.001); // bucket[1]
  h.observe(2.0);   // bucket[1]
  h.observe(4.0);   // bucket[2]
  h.observe(4.001); // overflow
  h.observe(100.0); // overflow
  const auto values = registry.scrape();
  const MetricValue* v = find(values, "edges");
  ASSERT_NE(v, nullptr);
  ASSERT_EQ(v->bucket_counts.size(), 4u);
  EXPECT_EQ(v->bucket_counts[0], 2u);
  EXPECT_EQ(v->bucket_counts[1], 2u);
  EXPECT_EQ(v->bucket_counts[2], 1u);
  EXPECT_EQ(v->bucket_counts[3], 2u);
  EXPECT_EQ(v->count, 7u);
  // Fixed-point milli sum: 0.5+1+1.001+2+4+4.001+100 = 112.502
  EXPECT_EQ(v->sum_milli, 112502);
}

TEST(MetricsRegistry, ConcurrentIncrementsMergeExactly) {
  MetricsRegistry registry;
  const Counter c = registry.counter("spam", MetricClass::kSemantic);
  const Histogram h =
      registry.histogram("spam_h", MetricClass::kSemantic, {10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<double>(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto values = registry.scrape();
  EXPECT_EQ(find(values, "spam")->value,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(find(values, "spam_h")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Threads came and went: their shards were retired, not lost.
  EXPECT_GE(registry.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsRegistry, SemanticSnapshotExcludesTimingAndIsStableText) {
  MetricsRegistry registry;
  registry.counter("b_semantic", MetricClass::kSemantic).add(7);
  registry.counter("a_timing", MetricClass::kTiming).add(9);
  registry
      .histogram("c_hist", MetricClass::kSemantic, {1.0, 2.0})
      .observe(1.5);
  const std::string snapshot = registry.semantic_snapshot();
  EXPECT_NE(snapshot.find("b_semantic 7"), std::string::npos);
  EXPECT_EQ(snapshot.find("a_timing"), std::string::npos);
  EXPECT_NE(snapshot.find("c_hist{le=2} 1"), std::string::npos);
  // Same state scraped twice is byte-identical.
  EXPECT_EQ(snapshot, registry.semantic_snapshot());
}

TEST(MetricsRegistry, ScrapeIsSortedByName) {
  MetricsRegistry registry;
  (void)registry.counter("zzz", MetricClass::kSemantic);
  (void)registry.counter("aaa", MetricClass::kSemantic);
  const auto values = registry.scrape();
  ASSERT_TRUE(std::is_sorted(values.begin(), values.end(),
                             [](const MetricValue& a, const MetricValue& b) {
                               return a.name < b.name;
                             }));
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  const Counter c = registry.counter("resettable", MetricClass::kSemantic);
  c.add(5);
  registry.reset();
  const auto after_reset = registry.scrape();
  EXPECT_EQ(find(after_reset, "resettable")->value, 0u);
  c.add(2);
  const auto after_add = registry.scrape();
  EXPECT_EQ(find(after_add, "resettable")->value, 2u);
}

TEST(MetricsRegistry, DisabledRegistryDropsWrites) {
  MetricsRegistry registry;
  const Counter c = registry.counter("muted", MetricClass::kSemantic);
  registry.set_enabled(false);
  c.add(100);
  registry.set_enabled(true);
  c.add(1);
  const auto values = registry.scrape();
  EXPECT_EQ(find(values, "muted")->value, 1u);
}

TEST(MetricsRegistry, JsonAndPrometheusCarryEveryMetric) {
  MetricsRegistry registry;
  registry.counter("c1", MetricClass::kSemantic).add(3);
  registry.gauge("g1", MetricClass::kTiming).set(1.5);
  registry.histogram("h1", MetricClass::kSemantic, {1.0}).observe(0.5);
  const std::string json = registry.scrape_json();
  EXPECT_NE(json.find("\"name\": \"c1\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"g1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"h1\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
  const std::string prom = registry.scrape_prometheus();
  // Counter TYPE lines must name the *_total family, not the bare name:
  // promtool rejects samples that do not belong to the declared family.
  EXPECT_NE(prom.find("# TYPE c1_total counter"), std::string::npos);
  EXPECT_EQ(prom.find("# TYPE c1 counter"), std::string::npos);
  EXPECT_NE(prom.find("c1_total 3"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE h1 histogram"), std::string::npos);
  EXPECT_NE(prom.find("h1_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(prom.find("h1_count 1"), std::string::npos);
}

// --- Prometheus exposition lint -------------------------------------------
//
// A promtool-shaped validator: every sample must belong to a family
// declared by a preceding # TYPE line, counters must end in _total,
// histograms must close with +Inf/_sum/_count and have monotonically
// non-decreasing cumulative buckets. Runs against the real scrape so any
// future exposition regression fails here, without needing promtool in
// the test image.
struct PromLint {
  std::vector<std::string> errors;
};

std::vector<std::string_view> lint_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t end = text.find('\n', at);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(at, end - at));
    at = end + 1;
  }
  return lines;
}

PromLint prometheus_lint(std::string_view exposition) {
  PromLint lint;
  std::string family;
  std::string type;
  bool saw_inf = false;
  bool saw_sum = false;
  bool saw_count = false;
  double last_bucket = -1.0;
  const auto close_family = [&] {
    if (type == "histogram" && !family.empty()) {
      if (!saw_inf) lint.errors.push_back(family + ": no +Inf bucket");
      if (!saw_sum) lint.errors.push_back(family + ": no _sum");
      if (!saw_count) lint.errors.push_back(family + ": no _count");
    }
  };
  for (const std::string_view line : lint_lines(exposition)) {
    if (line.empty()) continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      close_family();
      const std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      family = std::string(rest.substr(0, space));
      type = std::string(rest.substr(space + 1));
      saw_inf = saw_sum = saw_count = false;
      last_bucket = -1.0;
      if (type == "counter" &&
          family.size() < 6 /* "_total" */) {
        lint.errors.push_back(family + ": counter family missing _total");
      }
      if (type == "counter" &&
          family.rfind("_total") != family.size() - 6) {
        lint.errors.push_back(family + ": counter family missing _total");
      }
      continue;
    }
    if (line.front() == '#') continue;
    // Sample line: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ ");
    const std::string name(line.substr(0, name_end));
    if (family.empty()) {
      lint.errors.push_back(name + ": sample before any # TYPE");
      continue;
    }
    bool in_family = false;
    if (type == "histogram") {
      const std::string base =
          family;  // histogram samples are base_bucket/_sum/_count
      if (name == base + "_sum") {
        saw_sum = true;
        in_family = true;
      } else if (name == base + "_count") {
        saw_count = true;
        in_family = true;
      } else if (name == base + "_bucket") {
        in_family = true;
        const std::size_t le = line.find("le=\"");
        if (le == std::string_view::npos) {
          lint.errors.push_back(name + ": bucket without le label");
        } else {
          const std::size_t vstart = le + 4;
          const std::size_t vend = line.find('"', vstart);
          const std::string le_text(line.substr(vstart, vend - vstart));
          if (le_text == "+Inf") {
            saw_inf = true;
          } else {
            const double bound = std::stod(le_text);
            if (bound < last_bucket) {
              lint.errors.push_back(name + ": le bounds not sorted");
            }
            last_bucket = bound;
          }
        }
        // Cumulative monotonicity is asserted separately below by
        // comparing the parsed values; here we just track bounds.
      }
    } else {
      in_family = name == family;
    }
    if (!in_family) {
      lint.errors.push_back(name + ": not in family " + family + " (" +
                            type + ")");
    }
  }
  close_family();
  return lint;
}

TEST(MetricsRegistry, PrometheusExpositionPassesLint) {
  MetricsRegistry registry;
  registry.counter("probes", MetricClass::kSemantic, "probes sent").add(7);
  registry.gauge("depth", MetricClass::kTiming, "queue depth").set(2.5);
  const Histogram h = registry.histogram("rtt_ms", MetricClass::kSemantic,
                                         {1.0, 10.0, 100.0}, "rtt");
  h.observe(0.5);
  h.observe(5.0);
  h.observe(5000.0);
  const std::string prom = registry.scrape_prometheus();
  const PromLint lint = prometheus_lint(prom);
  for (const std::string& error : lint.errors) ADD_FAILURE() << error;

  // Cumulative buckets are non-decreasing and the +Inf bucket equals
  // rtt_ms_count (promtool's histogram invariant).
  std::uint64_t last = 0;
  std::uint64_t inf_value = 0;
  for (const std::string_view line : lint_lines(prom)) {
    if (line.rfind("rtt_ms_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t value =
        std::stoull(std::string(line.substr(space + 1)));
    EXPECT_GE(value, last) << line;
    last = value;
    if (line.find("+Inf") != std::string_view::npos) inf_value = value;
  }
  EXPECT_EQ(inf_value, 3u);
  EXPECT_NE(prom.find("rtt_ms_count 3"), std::string::npos);
}

TEST(MetricsRegistry, PrometheusEscapingOfHelpAndLabels) {
  using anycast::obs::prometheus_escape_help;
  using anycast::obs::prometheus_escape_label;
  EXPECT_EQ(prometheus_escape_help("plain"), "plain");
  EXPECT_EQ(prometheus_escape_help("a\\b\nc"), "a\\\\b\\nc");
  // Label values additionally escape double quotes.
  EXPECT_EQ(prometheus_escape_label("he said \"hi\"\n"),
            "he said \\\"hi\\\"\\n");
  EXPECT_EQ(prometheus_escape_label("back\\slash"), "back\\\\slash");

  // And the registry applies help escaping in the exposition itself.
  MetricsRegistry registry;
  (void)registry.counter("esc", MetricClass::kSemantic, "line\nbreak");
  const std::string prom = registry.scrape_prometheus();
  EXPECT_NE(prom.find("# HELP esc_total line\\nbreak"), std::string::npos);
  EXPECT_EQ(prom.find("line\nbreak"), std::string::npos);
}

// --- Trace spans ----------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { anycast::obs::trace().reset(); }
};

const SpanRecord* find_span(const std::vector<SpanRecord>& records,
                            std::string_view name) {
  for (const SpanRecord& r : records) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

TEST_F(TraceTest, LexicalNestingParentsInnerToOuter) {
  {
    const Span outer("outer");
    {
      const Span inner("inner");
      (void)inner;
    }
    (void)outer;
  }
  const auto records = anycast::obs::trace().finished();
  const SpanRecord* outer = find_span(records, "outer");
  const SpanRecord* inner = find_span(records, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_FALSE(inner->adopted);
  EXPECT_GE(inner->duration_ns, 0);
}

TEST_F(TraceTest, WorkerSpansAreAdoptedByTheRootSpan) {
  {
    const Span root(Span::Root::kAdoptionPoint, "fanout");
    std::thread worker([] {
      const Span task("task", 7);
      (void)task;
    });
    worker.join();
  }
  const auto records = anycast::obs::trace().finished();
  const SpanRecord* root = find_span(records, "fanout");
  const SpanRecord* task = find_span(records, "task");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(task, nullptr);
  EXPECT_EQ(task->parent, root->id);
  EXPECT_TRUE(task->adopted);
  EXPECT_EQ(task->label, 7u);
  EXPECT_EQ(anycast::obs::trace().orphans(), 0u);
}

TEST_F(TraceTest, SpansWithNoParentAnywhereAreCountedAsOrphans) {
  std::thread worker([] {
    const Span lonely("lonely");
    (void)lonely;
  });
  worker.join();
  const auto records = anycast::obs::trace().finished();
  const SpanRecord* lonely = find_span(records, "lonely");
  ASSERT_NE(lonely, nullptr);
  EXPECT_EQ(lonely->parent, 0u);
  EXPECT_EQ(anycast::obs::trace().orphans(), 1u);
}

TEST_F(TraceTest, CapacityCapDropsAndCounts) {
  anycast::obs::trace().set_capacity(2);
  for (int i = 0; i < 5; ++i) {
    const Span s("burst", static_cast<std::uint64_t>(i));
    (void)s;
  }
  EXPECT_EQ(anycast::obs::trace().finished().size(), 2u);
  EXPECT_EQ(anycast::obs::trace().dropped(), 3u);
  anycast::obs::trace().set_capacity(16384);  // restore the default
}

TEST_F(TraceTest, RenderTreeIndentsChildren) {
  {
    const Span outer("phase");
    const Span inner("step", 3);
    (void)outer;
    (void)inner;
  }
  const std::string tree = anycast::obs::trace().render_tree();
  EXPECT_NE(tree.find("phase"), std::string::npos);
  EXPECT_NE(tree.find("  step[3]"), std::string::npos);
}

TEST_F(TraceTest, RenderTreeCapsOutputAndReportsDrops) {
  anycast::obs::trace().set_capacity(3);
  for (int i = 0; i < 6; ++i) {
    const Span s("burst", static_cast<std::uint64_t>(i));
    (void)s;
  }
  // Explicit cap below the stored count: the footer must account for
  // both the omitted-by-cap spans and the dropped-at-capacity ones
  // instead of truncating silently.
  const std::string capped = anycast::obs::trace().render_tree(2);
  EXPECT_NE(capped.find("2 spans shown"), std::string::npos);
  EXPECT_NE(capped.find("1 omitted"), std::string::npos);
  EXPECT_NE(capped.find("3 dropped at capacity"), std::string::npos);
  // Default render (cap = stored capacity) shows everything stored but
  // still reports the drops.
  const std::string full = anycast::obs::trace().render_tree();
  EXPECT_NE(full.find("3 dropped at capacity"), std::string::npos);
  anycast::obs::trace().set_capacity(16384);  // restore the default
}

TEST_F(TraceTest, SpansJsonListsEverySpan) {
  {
    const Span a("alpha");
    (void)a;
  }
  {
    const Span b("beta", 2);
    (void)b;
  }
  const std::string json = anycast::obs::trace().spans_json();
  EXPECT_NE(json.find("\"name\": \"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": 2"), std::string::npos);
}

// --- LatencyHisto quantile correctness vs exact oracle ----------------------
//
// The documented bound (latency.hpp): for exact order statistic x at rank
// ceil(q*n), the estimate e satisfies x <= e <= x*(1+kMaxRelativeError)+1
// (the +1 absorbs the half-open integer bucket edge). Checked against a
// sort-based oracle on uniform, log-normal (the shape real RTTs take),
// and adversarial bucket-edge samples.

using anycast::obs::LatencyHisto;

void check_quantiles_against_oracle(const std::vector<std::uint64_t>& samples,
                                    const char* label) {
  LatencyHisto histo("oracle_scratch", "ns", "oracle test");
  histo.reset();
  std::vector<std::uint64_t> sorted = samples;
  for (const std::uint64_t v : samples) histo.record(v);
  std::sort(sorted.begin(), sorted.end());
  const LatencyHisto::Snapshot snap = histo.snapshot();
  ASSERT_EQ(snap.count, samples.size()) << label;
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    // Same rank definition as Snapshot::quantile: the ceil(q*n)-th
    // smallest sample, clamped to [1, n].
    const std::size_t rank = std::min<std::size_t>(
        sorted.size(),
        std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(sorted.size())))));
    const double oracle = static_cast<double>(sorted[rank - 1]);
    const double estimate = snap.quantile(q);
    EXPECT_GE(estimate, oracle) << label << " q=" << q;
    EXPECT_LE(estimate, oracle * (1.0 + LatencyHisto::kMaxRelativeError) + 1.0)
        << label << " q=" << q << " oracle=" << oracle;
  }
}

TEST(LatencyHistoQuantiles, UniformSamplesWithinDocumentedBound) {
  std::mt19937_64 rng(20150417);
  std::uniform_int_distribution<std::uint64_t> dist(1, 50'000'000);
  std::vector<std::uint64_t> samples(20000);
  for (std::uint64_t& v : samples) v = dist(rng);
  check_quantiles_against_oracle(samples, "uniform");
}

TEST(LatencyHistoQuantiles, LogNormalSamplesWithinDocumentedBound) {
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> dist(10.0, 2.0);  // ~22us median, ns
  std::vector<std::uint64_t> samples(20000);
  for (std::uint64_t& v : samples) {
    v = static_cast<std::uint64_t>(std::llround(dist(rng))) + 1;
  }
  check_quantiles_against_oracle(samples, "lognormal");
}

TEST(LatencyHistoQuantiles, AdversarialBucketEdgeSamples) {
  // Values pinned to bucket boundaries (lower, upper-1) across several
  // octaves — the worst case for an estimator returning the bucket's
  // upper representative — plus the exact-region edge and saturation.
  std::vector<std::uint64_t> samples;
  for (const std::uint32_t slot :
       {0u, 127u, 128u, 129u, 255u, 256u, 1024u, 2048u, 4000u,
        LatencyHisto::kSlots - 1}) {
    const std::uint64_t lower = LatencyHisto::slot_lower(slot);
    const std::uint64_t upper = LatencyHisto::slot_upper(slot);
    for (int i = 0; i < 50; ++i) {
      samples.push_back(lower);
      samples.push_back(upper - 1);
    }
  }
  check_quantiles_against_oracle(samples, "bucket-edge");
}

TEST(LatencyHistoQuantiles, ExactRegionIsExact) {
  // Below kSubCount the buckets are unit-wide: the estimate IS the order
  // statistic, no error at all.
  LatencyHisto histo("oracle_exact", "ns", "oracle test");
  for (std::uint64_t v = 1; v <= 100; ++v) histo.record(v);
  const LatencyHisto::Snapshot snap = histo.snapshot();
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);  // rank clamps to 1
}

TEST(LatencyHistoQuantiles, LatencyPrometheusPassesExpositionLint) {
  // The per-query histograms ride the same exposition pipeline as the
  // registry scrape; the promtool-shaped linter must accept both, alone
  // and concatenated (the document_prometheus composition).
  LatencyHisto& histo =
      LatencyHisto::get("lint_latency_ns", "ns", "lint \"edge\" case\n");
  histo.record(50);
  histo.record(5000);
  histo.record(5'000'000);
  const std::string prom = anycast::obs::latency_prometheus();
  ASSERT_NE(prom.find("# TYPE lint_latency_ns histogram"), std::string::npos);
  for (const std::string& error : prometheus_lint(prom).errors) {
    ADD_FAILURE() << error;
  }
  MetricsRegistry registry;
  registry.counter("side", MetricClass::kTiming, "side counter").inc();
  const std::string combined = registry.scrape_prometheus() + prom;
  for (const std::string& error : prometheus_lint(combined).errors) {
    ADD_FAILURE() << "combined: " << error;
  }
  // Cumulative monotonicity + the +Inf == _count invariant, as promtool
  // checks them.
  std::uint64_t last = 0;
  std::uint64_t inf_value = 0;
  for (const std::string_view line : lint_lines(prom)) {
    if (line.rfind("lint_latency_ns_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t value =
        std::stoull(std::string(line.substr(space + 1)));
    EXPECT_GE(value, last) << line;
    last = value;
    if (line.find("+Inf") != std::string_view::npos) inf_value = value;
  }
  EXPECT_EQ(inf_value, 3u);
}

}  // namespace
