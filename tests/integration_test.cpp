// End-to-end pipeline tests: world -> censuses -> combination -> analysis
// -> report, plus failure injection (VP geolocation error, overdriven
// prober). These exercise the same code path as the Fig. 10/12 benches at
// a smaller scale.
#include <gtest/gtest.h>

#include <set>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast {
namespace {

net::WorldConfig world_config() {
  net::WorldConfig config;
  config.seed = 61;
  config.unicast_alive_slash24 = 500;
  config.unicast_dead_slash24 = 300;
  return config;
}

struct MultiCensus {
  net::SimulatedInternet internet{world_config()};
  std::vector<net::VantagePoint> vps =
      net::make_planetlab({.node_count = 100, .seed = 62});
  census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  std::vector<census::CensusMatrix> censuses;
  census::CensusMatrix combined;
  census::Greylist blacklist;

  MultiCensus() {
    combined = census::CensusMatrix(hitlist.size());
    for (int c = 0; c < 3; ++c) {
      census::FastPingConfig config;
      config.seed = 100 + static_cast<std::uint64_t>(c);
      censuses.push_back(
          run_census(internet, vps, hitlist, blacklist, config).data);
      combined.combine_min(censuses.back());
    }
  }
};

const MultiCensus& multi() {
  static const MultiCensus instance;
  return instance;
}

std::size_t anycast_count(const census::CensusMatrix& data) {
  const analysis::CensusAnalyzer analyzer(multi().vps, geo::world_index());
  return analyzer.analyze(data, multi().hitlist).size();
}

TEST(Integration, CombinationNeverLosesMeasurements) {
  for (std::uint32_t t = 0; t < multi().combined.target_count(); t += 13) {
    for (const census::CensusMatrix& single : multi().censuses) {
      EXPECT_GE(multi().combined.measurements(t).size(),
                single.measurements(t).size());
    }
  }
}

TEST(Integration, CombinationRttIsPointwiseMinimum) {
  for (std::uint32_t t = 0; t < multi().combined.target_count(); t += 29) {
    const auto combined_row = multi().combined.measurements(t);
    for (const census::VpRtt& sample : combined_row) {
      float expected = 1e30F;
      for (const census::CensusMatrix& single : multi().censuses) {
        for (const census::VpRtt& other : single.measurements(t)) {
          if (other.vp == sample.vp) expected = std::min(expected,
                                                         other.rtt_ms);
        }
      }
      EXPECT_FLOAT_EQ(sample.rtt_ms, expected);
    }
  }
}

TEST(Integration, CombinationFindsAtLeastAsManyAnycastPrefixes) {
  // Fig. 12: combining censuses raises detection recall.
  const std::size_t combined_count = anycast_count(multi().combined);
  for (const census::CensusMatrix& single : multi().censuses) {
    EXPECT_GE(combined_count, anycast_count(single));
  }
}

TEST(Integration, IndividualCensusesAreConsistent) {
  // "Results are quite consistent across censuses" (Sec. 4.1): per-census
  // anycast counts differ by at most ~10%.
  std::vector<std::size_t> counts;
  for (const census::CensusMatrix& single : multi().censuses) {
    counts.push_back(anycast_count(single));
  }
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(static_cast<double>(*max_it - *min_it),
            0.12 * static_cast<double>(*max_it));
}

TEST(Integration, NoFalsePositivesWithAccurateVpLocations) {
  const analysis::CensusAnalyzer analyzer(multi().vps, geo::world_index());
  const auto outcomes = analyzer.analyze(multi().combined, multi().hitlist);
  for (const analysis::TargetOutcome& outcome : outcomes) {
    const net::TargetInfo* info = multi().internet.target_for(
        ipaddr::IPv4Address::from_slash24_index(outcome.slash24_index, 1));
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->kind, net::TargetInfo::Kind::kAnycast)
        << "false positive on /24 " << outcome.slash24_index;
  }
}

TEST(Integration, WrongVpGeolocationCreatesFalsePositives) {
  // Failure injection for the Sec. 4.2 caveat: two-replica detections "could
  // be tied to the wrong geolocation of some VP raising false positives".
  // Corrupt the believed locations heavily and count unicast detections.
  auto corrupted = multi().vps;
  for (std::size_t i = 0; i < corrupted.size(); i += 3) {
    corrupted[i].believed_location = geodesy::destination(
        corrupted[i].location, static_cast<double>(i * 37 % 360), 6000.0);
  }
  const analysis::CensusAnalyzer analyzer(corrupted, geo::world_index());
  const auto outcomes = analyzer.analyze(multi().combined, multi().hitlist);
  std::size_t false_positives = 0;
  for (const analysis::TargetOutcome& outcome : outcomes) {
    const net::TargetInfo* info = multi().internet.target_for(
        ipaddr::IPv4Address::from_slash24_index(outcome.slash24_index, 1));
    if (info->kind != net::TargetInfo::Kind::kAnycast) ++false_positives;
  }
  EXPECT_GT(false_positives, 0u);
}

TEST(Integration, GreylistOnlyGrowsAndStabilizes) {
  // After the first census the offending targets are blacklisted; further
  // censuses add nothing (same world, same offenders).
  net::SimulatedInternet internet(world_config());
  const auto vps = net::make_planetlab({.node_count = 5, .seed = 63});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::Greylist blacklist;
  census::FastPingConfig config;
  const auto first = run_census(internet, vps, hitlist, blacklist, config);
  const std::size_t after_first = blacklist.size();
  const auto second = run_census(internet, vps, hitlist, blacklist, config);
  EXPECT_GT(after_first, 0u);
  EXPECT_EQ(blacklist.size(), after_first);
  EXPECT_EQ(second.summary.greylist_new, 0u);
}

TEST(Integration, ReportFromCombinedCensusHasPaperShape) {
  const analysis::CensusAnalyzer analyzer(multi().vps, geo::world_index());
  const analysis::CensusReport report(
      multi().internet, analyzer.analyze(multi().combined, multi().hitlist));
  const analysis::GlanceRow all = report.glance_all();
  // With 100 VPs on a small world we still find the bulk of the anycast
  // population (1,696 true anycast /24s).
  EXPECT_GT(all.ip24, 1100u);
  EXPECT_LE(all.ip24, 1696u);
  EXPECT_GT(all.ases, 215u);
  EXPECT_LE(all.ases, 346u);
  // Mean footprint O(10) replicas (Sec. 1).
  EXPECT_GT(all.replicas, 4 * all.ip24);
  EXPECT_LT(all.replicas, 40 * all.ip24);
}

TEST(Integration, BinaryRecordsSurviveCensusRoundTrip) {
  // A VP's observation stream encodes to the binary format and back
  // without losing the analysis-relevant content.
  net::SimulatedInternet internet(world_config());
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 64});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  census::Greylist blacklist;
  census::Greylist greylist;
  const census::FastPingResult result = census::run_fastping(
      internet, vps[0], hitlist, blacklist, greylist,
      census::FastPingConfig{});
  const auto decoded =
      census::decode_binary(census::encode_binary(result.observations));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), result.observations.size());
  for (std::size_t i = 0; i < decoded->size(); ++i) {
    EXPECT_EQ((*decoded)[i].kind, result.observations[i].kind);
    EXPECT_EQ((*decoded)[i].target_index,
              result.observations[i].target_index);
  }
}

TEST(Integration, OverdrivenCensusDetectsFewerPrefixes) {
  // The probing-rate lesson end-to-end: 10k pps loses replies near
  // overdriven VPs, which costs detection recall vs the slowed-down rate.
  net::SimulatedInternet internet(world_config());
  const auto vps = net::make_planetlab({.node_count = 60, .seed = 65});
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());

  census::FastPingConfig slow;
  slow.probe_rate_pps = 1000.0;
  census::FastPingConfig fast = slow;
  fast.probe_rate_pps = 10000.0;

  census::Greylist blacklist_slow;
  census::Greylist blacklist_fast;
  const auto slow_data =
      run_census(internet, vps, hitlist, blacklist_slow, slow).data;
  const auto fast_data =
      run_census(internet, vps, hitlist, blacklist_fast, fast).data;
  const auto slow_outcomes = analyzer.analyze(slow_data, hitlist);
  const auto fast_outcomes = analyzer.analyze(fast_data, hitlist);
  // Reply volume drops measurably at 10k pps...
  const auto total_measurements = [](const census::CensusMatrix& data) {
    std::uint64_t total = 0;
    for (std::uint32_t t = 0; t < data.target_count(); ++t) {
      total += data.measurements(t).size();
    }
    return total;
  };
  EXPECT_LT(total_measurements(fast_data),
            0.95 * static_cast<double>(total_measurements(slow_data)));
  // ...which can only hurt detection and enumeration.
  EXPECT_GE(slow_outcomes.size(), fast_outcomes.size());
  std::uint64_t slow_replicas = 0;
  std::uint64_t fast_replicas = 0;
  for (const auto& outcome : slow_outcomes) {
    slow_replicas += outcome.result.replicas.size();
  }
  for (const auto& outcome : fast_outcomes) {
    fast_replicas += outcome.result.replicas.size();
  }
  EXPECT_GT(slow_replicas, fast_replicas);
}

}  // namespace
}  // namespace anycast
