#include <gtest/gtest.h>

#include "anycast/analysis/hijack.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::analysis {
namespace {

struct Setup {
  net::SimulatedInternet internet;
  std::vector<net::VantagePoint> vps;
  census::Hitlist hitlist;
  census::CensusMatrix reference;

  Setup()
      : internet([] {
          net::WorldConfig config;
          config.seed = 101;
          config.unicast_alive_slash24 = 400;
          config.unicast_dead_slash24 = 100;
          config.prohibited_fraction = 0.0;
          return config;
        }()),
        vps(net::make_planetlab({.node_count = 60, .seed = 102})),
        hitlist(census::Hitlist::from_world(internet).without_dead()) {
    census::Greylist blacklist;
    census::FastPingConfig config;
    config.seed = 103;
    reference = run_census(internet, vps, hitlist, blacklist, config).data;
  }
};

const Setup& setup() {
  static const Setup instance;
  return instance;
}

/// Index of a reference-unicast target that is far from the impostor and
/// has a vantage point nearby (so both the true and the hijacked origin
/// produce tight disks — the detectable configuration).
std::uint32_t pick_unicast_target(const geodesy::GeoPoint& impostor) {
  for (std::uint32_t t = 0; t < setup().hitlist.size(); ++t) {
    const net::TargetInfo* info = setup().internet.target_for(
        setup().hitlist[t].representative);
    if (info->kind != net::TargetInfo::Kind::kUnicast || !info->alive ||
        setup().reference.measurements(t).size() < 20) {
      continue;
    }
    if (geodesy::distance_km(info->unicast_location, impostor) < 6000.0) {
      continue;
    }
    for (const net::VantagePoint& vp : setup().vps) {
      if (geodesy::distance_km(vp.location, info->unicast_location) <
          600.0) {
        return t;
      }
    }
  }
  ADD_FAILURE() << "no suitable unicast target found";
  return 0;
}

TEST(HijackMonitor, ReferenceLearnsOnlyUnicastPrefixes) {
  HijackMonitor monitor(setup().vps, geo::world_index());
  monitor.set_reference(setup().reference, setup().hitlist);
  EXPECT_GT(monitor.monitored_prefixes(), 200u);
  // Anycast prefixes are excluded from the watchlist: re-scanning the
  // reference itself raises no alarms.
  const auto alarms = monitor.scan(setup().reference, setup().hitlist);
  EXPECT_TRUE(alarms.empty());
}

TEST(HijackMonitor, SplicedHijackRaisesAlarmAndGeolocatesImpostor) {
  HijackMonitor monitor(setup().vps, geo::world_index());
  monitor.set_reference(setup().reference, setup().hitlist);

  // A regional hijack attracts the networks NEAR the impostor: every VP
  // within 4,000 km of Tokyo now reaches the impostor instead of the
  // victim (rebuild the row rather than min-merging — a hijacked path
  // replaces the real one).
  const geo::City* tokyo = geo::world_index().by_name("Tokyo");
  const std::uint32_t victim = pick_unicast_target(tokyo->location());
  census::CensusMatrixBuilder hijack_builder(setup().hitlist.size());
  for (std::uint32_t t = 0; t < setup().hitlist.size(); ++t) {
    for (const census::VpRtt& sample : setup().reference.measurements(t)) {
      const bool diverted =
          geodesy::distance_km(setup().vps[sample.vp].location,
                               tokyo->location()) < 4000.0;
      if (t == victim && diverted) {
        const double km = geodesy::distance_km(
            setup().vps[sample.vp].location, tokyo->location());
        hijack_builder.add(t, sample.vp,
                           static_cast<float>(
                               geodesy::distance_to_min_rtt_ms(km) * 1.2 +
                               0.5));
      } else {
        hijack_builder.add(t, sample.vp, sample.rtt_ms);
      }
    }
  }
  const census::CensusMatrix hijacked = hijack_builder.build();

  const auto alarms = monitor.scan(hijacked, setup().hitlist);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].target_index, victim);
  EXPECT_TRUE(alarms[0].result.anycast);
  // One of the apparent origins is near the impostor.
  bool impostor_located = false;
  for (const core::Replica& replica : alarms[0].result.replicas) {
    if (geodesy::distance_km(replica.location, tokyo->location()) < 800.0) {
      impostor_located = true;
    }
  }
  EXPECT_TRUE(impostor_located);
}

TEST(HijackMonitor, EmptyReferenceMonitorsNothing) {
  HijackMonitor monitor(setup().vps, geo::world_index());
  EXPECT_EQ(monitor.monitored_prefixes(), 0u);
  EXPECT_TRUE(monitor.scan(setup().reference, setup().hitlist).empty());
}

}  // namespace
}  // namespace anycast::analysis
