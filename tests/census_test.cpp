#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <set>
#include <tuple>

#include "anycast/census/census.hpp"
#include "anycast/census/fastping.hpp"
#include "anycast/census/greylist.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/legacy_census.hpp"
#include "anycast/census/record.hpp"
#include "anycast/net/platform.hpp"

namespace anycast::census {
namespace {

net::WorldConfig tiny_world_config() {
  net::WorldConfig config;
  config.seed = 21;
  config.unicast_alive_slash24 = 400;
  config.unicast_dead_slash24 = 300;
  return config;
}

const net::SimulatedInternet& tiny_world() {
  static const net::SimulatedInternet world(tiny_world_config());
  return world;
}

// --- Hitlist ---------------------------------------------------------------

TEST(Hitlist, FromWorldCoversEveryRoutedSlash24) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world());
  EXPECT_EQ(hitlist.size(), tiny_world().targets().size());
  std::set<std::uint32_t> seen;
  for (const HitlistEntry& entry : hitlist.entries()) {
    EXPECT_TRUE(seen.insert(entry.representative.slash24_index()).second);
  }
}

TEST(Hitlist, WithoutDeadDropsExactlyTheDeadSpace) {
  const Hitlist full = Hitlist::from_world(tiny_world());
  const Hitlist live = full.without_dead();
  std::size_t dead = 0;
  for (const net::TargetInfo& info : tiny_world().targets()) {
    if (info.kind == net::TargetInfo::Kind::kDead) ++dead;
  }
  EXPECT_EQ(live.size(), full.size() - dead);
  for (const HitlistEntry& entry : live.entries()) {
    EXPECT_GT(entry.score, -2);
  }
}

// --- Greylist ----------------------------------------------------------------

TEST(Greylist, AddAndContains) {
  Greylist list;
  EXPECT_TRUE(list.add(100, net::ReplyKind::kAdminProhibited));
  EXPECT_FALSE(list.add(100, net::ReplyKind::kAdminProhibited));
  EXPECT_TRUE(list.contains(100));
  EXPECT_FALSE(list.contains(101));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_EQ(list.admin_filtered_count(), 1u);
}

TEST(Greylist, CodeBreakdownCounters) {
  Greylist list;
  list.add(1, net::ReplyKind::kAdminProhibited);
  list.add(2, net::ReplyKind::kHostProhibited);
  list.add(3, net::ReplyKind::kNetProhibited);
  EXPECT_EQ(list.admin_filtered_count(), 1u);
  EXPECT_EQ(list.host_prohibited_count(), 1u);
  EXPECT_EQ(list.net_prohibited_count(), 1u);
}

TEST(Greylist, MergeUnions) {
  Greylist a;
  Greylist b;
  a.add(1, net::ReplyKind::kAdminProhibited);
  b.add(2, net::ReplyKind::kHostProhibited);
  b.add(1, net::ReplyKind::kAdminProhibited);
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(1));
  EXPECT_TRUE(a.contains(2));
}

TEST(Greylist, MergeCountsOnlyNewMembers) {
  Greylist blacklist;
  blacklist.add(1, net::ReplyKind::kAdminProhibited);

  Greylist census1;
  census1.add(1, net::ReplyKind::kAdminProhibited);  // already blacklisted
  census1.add(2, net::ReplyKind::kHostProhibited);

  // Merging the same overlapping greylist repeatedly must not inflate the
  // per-code breakdown: counters follow membership, not merge calls.
  blacklist.merge(census1);
  blacklist.merge(census1);
  blacklist.merge(census1);
  EXPECT_EQ(blacklist.size(), 2u);
  EXPECT_EQ(blacklist.admin_filtered_count(), 1u);
  EXPECT_EQ(blacklist.host_prohibited_count(), 1u);
  EXPECT_EQ(blacklist.net_prohibited_count(), 0u);

  const std::uint64_t total = blacklist.admin_filtered_count() +
                              blacklist.host_prohibited_count() +
                              blacklist.net_prohibited_count();
  EXPECT_EQ(total, blacklist.size());
}

// --- Record formats -----------------------------------------------------------

std::vector<Observation> sample_observations() {
  return {
      {0, 0.5, net::ReplyKind::kEchoReply, 12.34},
      {12345, 100.0, net::ReplyKind::kTimeout, 0.0},
      {999999, 3000.0, net::ReplyKind::kAdminProhibited, 0.0},
      {7, 9000.0, net::ReplyKind::kHostProhibited, 0.0},
      {8, 15000.0, net::ReplyKind::kNetProhibited, 0.0},
      {42, 16000.0, net::ReplyKind::kEchoReply, 0.019},
      {43, 16200.0, net::ReplyKind::kEchoReply, 399.99},
  };
}

TEST(Record, BinaryRoundTrip) {
  const auto original = sample_observations();
  const auto bytes = encode_binary(original);
  EXPECT_EQ(bytes.size(), 8 + original.size() * binary_bytes_per_observation());
  const auto decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*decoded)[i].target_index, original[i].target_index) << i;
    EXPECT_EQ((*decoded)[i].kind, original[i].kind) << i;
    if (original[i].kind == net::ReplyKind::kEchoReply) {
      // 1/50 ms quantisation.
      EXPECT_NEAR((*decoded)[i].rtt_ms, original[i].rtt_ms, 0.021) << i;
    }
  }
}

TEST(Record, BinaryRejectsCorruptedBuffers) {
  const auto bytes = encode_binary(sample_observations());
  // Truncated payload.
  const std::span<const std::uint8_t> truncated(bytes.data(),
                                                bytes.size() - 3);
  EXPECT_FALSE(decode_binary(truncated).has_value());
  // Bad magic.
  auto corrupt = bytes;
  corrupt[0] ^= 0xFF;
  EXPECT_FALSE(decode_binary(corrupt).has_value());
  // Empty buffer.
  EXPECT_FALSE(decode_binary({}).has_value());
}

TEST(Record, BinaryEmptyStream) {
  const auto bytes = encode_binary({});
  const auto decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Record, BinarySaturatesHugeRtt) {
  const std::vector<Observation> huge{
      {1, 0.0, net::ReplyKind::kEchoReply, 5000.0}};
  const auto decoded = decode_binary(encode_binary(huge));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ((*decoded)[0].kind, net::ReplyKind::kEchoReply);
  EXPECT_NEAR((*decoded)[0].rtt_ms, 655.34, 0.01);
}

TEST(Record, BinaryDropsOversizedTargetIndexInsteadOfWrapping) {
  // 2^24 would alias target 0 if wrapped; the encoder must drop it.
  const std::vector<Observation> stream{
      {5, 0.0, net::ReplyKind::kEchoReply, 10.0},
      {0x1000000, 1.0, net::ReplyKind::kEchoReply, 11.0},
      {0xFFFFFF, 2.0, net::ReplyKind::kEchoReply, 12.0},   // max valid
      {0xFFFFFFFF, 3.0, net::ReplyKind::kTimeout, 0.0},
  };
  std::size_t dropped = 0;
  const auto bytes = encode_binary(stream, &dropped);
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(bytes.size(), 8 + 2 * binary_bytes_per_observation());
  const auto decoded = decode_binary(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].target_index, 5u);
  EXPECT_EQ((*decoded)[1].target_index, 0xFFFFFFu);
}

TEST(Record, BinaryInRangeStreamReportsZeroDropped) {
  std::size_t dropped = 123;
  const auto bytes = encode_binary(sample_observations(), &dropped);
  EXPECT_EQ(dropped, 0u);
  EXPECT_EQ(decode_binary(bytes)->size(), sample_observations().size());
}

TEST(Record, TextualRoundTrip) {
  const auto original = sample_observations();
  const auto text = encode_textual(original);
  const auto decoded = decode_textual(text);
  ASSERT_EQ(decoded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded[i].target_index, original[i].target_index);
    EXPECT_EQ(decoded[i].kind, original[i].kind);
    EXPECT_NEAR(decoded[i].rtt_ms, original[i].rtt_ms, 1e-6);
    EXPECT_NEAR(decoded[i].time_s, original[i].time_s, 1e-6);
  }
}

TEST(Record, TextualIsMuchLargerThanBinary) {
  // Tab. 1: csv is an order of magnitude bigger (270 MB vs 21 MB/host).
  std::vector<Observation> many;
  for (std::uint32_t i = 0; i < 10000; ++i) {
    many.push_back({i, i * 0.001, net::ReplyKind::kEchoReply,
                    20.0 + (i % 100) * 0.37});
  }
  const auto text_size = textual_bytes(many);
  const auto binary_size = encode_binary(many).size();
  EXPECT_GT(text_size, 5 * binary_size);
}

// --- FastPing ----------------------------------------------------------------

TEST(FastPing, DropModel) {
  EXPECT_DOUBLE_EQ(reply_drop_probability(1000.0, 2000.0, 0.45), 0.0);
  EXPECT_DOUBLE_EQ(reply_drop_probability(2000.0, 2000.0, 0.45), 0.0);
  EXPECT_NEAR(reply_drop_probability(4000.0, 2000.0, 0.45), 0.45, 1e-12);
  EXPECT_DOUBLE_EQ(reply_drop_probability(1e9, 2000.0, 0.45), 0.9);
}

TEST(FastPing, ThresholdsAreHeterogeneousAndDeterministic) {
  FastPingConfig config;
  const auto vps = net::make_planetlab({.node_count = 30, .seed = 31});
  std::set<long> buckets;
  for (const net::VantagePoint& vp : vps) {
    const double t1 = vp_drop_threshold(vp, config);
    const double t2 = vp_drop_threshold(vp, config);
    EXPECT_DOUBLE_EQ(t1, t2);
    EXPECT_GE(t1, config.min_drop_threshold_pps);
    EXPECT_LE(t1, config.max_drop_threshold_pps);
    buckets.insert(std::lround(t1 / 500.0));
  }
  EXPECT_GT(buckets.size(), 4u);  // spread across the range
}

TEST(FastPing, ProbesEveryNonBlacklistedTargetOnce) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 32});
  Greylist blacklist;
  blacklist.add(hitlist[0].representative.slash24_index(),
                net::ReplyKind::kAdminProhibited);
  Greylist greylist;
  const FastPingResult result = run_fastping(
      tiny_world(), vps[0], hitlist, blacklist, greylist, FastPingConfig{});
  EXPECT_EQ(result.probes_sent, hitlist.size() - 1);
  std::set<std::uint32_t> probed;
  for (const Observation& obs : result.observations) {
    EXPECT_TRUE(probed.insert(obs.target_index).second);
  }
  EXPECT_FALSE(probed.contains(0));  // blacklisted
  EXPECT_EQ(result.echo_replies + result.errors + result.timeouts,
            result.probes_sent);
}

TEST(FastPing, FeedsGreylistWithProhibitedTargets) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 33});
  Greylist blacklist;
  Greylist greylist;
  const FastPingResult result = run_fastping(
      tiny_world(), vps[0], hitlist, blacklist, greylist, FastPingConfig{});
  EXPECT_EQ(greylist.size(), result.errors);
  EXPECT_GT(greylist.size(), 0u);
}

TEST(FastPing, SlowerProbingTakesProportionallyLonger) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 1, .seed = 34});
  Greylist blacklist;
  Greylist grey1;
  Greylist grey2;
  FastPingConfig fast;
  fast.probe_rate_pps = 10000.0;
  FastPingConfig slow;
  slow.probe_rate_pps = 1000.0;
  const auto fast_result =
      run_fastping(tiny_world(), vps[0], hitlist, blacklist, grey1, fast);
  const auto slow_result =
      run_fastping(tiny_world(), vps[0], hitlist, blacklist, grey2, slow);
  EXPECT_NEAR(slow_result.duration_hours / fast_result.duration_hours, 10.0,
              0.2);
}

TEST(FastPing, OverdrivingLosesReplies) {
  // The Sec. 3.5 lesson: at 10k pps many VPs drop replies; at 1k pps
  // almost none do. Pick a VP with a low tolerance threshold.
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 20, .seed = 35});
  FastPingConfig config;
  const net::VantagePoint* fragile = &vps[0];
  for (const net::VantagePoint& vp : vps) {
    if (vp_drop_threshold(vp, config) <
        vp_drop_threshold(*fragile, config)) {
      fragile = &vp;
    }
  }
  Greylist blacklist;
  Greylist grey;
  FastPingConfig fast = config;
  fast.probe_rate_pps = 10000.0;
  FastPingConfig slow = config;
  slow.probe_rate_pps = 1000.0;
  const auto fast_result =
      run_fastping(tiny_world(), *fragile, hitlist, blacklist, grey, fast);
  const auto slow_result =
      run_fastping(tiny_world(), *fragile, hitlist, blacklist, grey, slow);
  EXPECT_GT(fast_result.drop_probability, 0.3);
  EXPECT_DOUBLE_EQ(slow_result.drop_probability, 0.0);
  EXPECT_LT(fast_result.echo_replies, slow_result.echo_replies * 0.8);
}

// --- CensusMatrix ----------------------------------------------------------

CensusMatrix matrix_of(std::size_t targets,
                       std::initializer_list<std::tuple<std::uint32_t,
                                                        std::uint16_t, float>>
                           samples) {
  CensusMatrixBuilder builder(targets);
  for (const auto& [target, vp, rtt] : samples) builder.add(target, vp, rtt);
  return builder.build();
}

TEST(CensusMatrix, BuilderKeepsMinimumPerVp) {
  const CensusMatrix data = matrix_of(
      4, {{1, 7, 30.0F}, {1, 7, 20.0F}, {1, 7, 25.0F}, {1, 3, 40.0F}});
  const auto row = data.measurements(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].vp, 3);   // sorted by vp
  EXPECT_EQ(row[1].vp, 7);
  EXPECT_FLOAT_EQ(row[1].rtt_ms, 20.0F);
  EXPECT_EQ(data.observation_count(), 2u);
}

TEST(CensusMatrix, ResponsiveTargetCounts) {
  const CensusMatrix data =
      matrix_of(5, {{0, 1, 10.0F}, {0, 2, 11.0F}, {3, 1, 12.0F}});
  EXPECT_EQ(data.responsive_targets(1), 2u);
  EXPECT_EQ(data.responsive_targets(2), 1u);
  EXPECT_EQ(data.responsive_targets(3), 0u);
}

TEST(CensusMatrix, CombineMinIsPointwiseMinimumAndUnion) {
  CensusMatrix a = matrix_of(3, {{0, 1, 10.0F}, {0, 2, 50.0F}});
  const CensusMatrix b =
      matrix_of(3, {{0, 2, 30.0F}, {0, 3, 70.0F}, {2, 1, 5.0F}});
  a.combine_min(b);
  const auto row0 = a.measurements(0);
  ASSERT_EQ(row0.size(), 3u);
  EXPECT_FLOAT_EQ(row0[0].rtt_ms, 10.0F);  // vp1 only in a
  EXPECT_FLOAT_EQ(row0[1].rtt_ms, 30.0F);  // min(50, 30)
  EXPECT_FLOAT_EQ(row0[2].rtt_ms, 70.0F);  // vp3 only in b
  EXPECT_EQ(a.measurements(2).size(), 1u);
}

TEST(CensusMatrix, CombineMinIsIdempotent) {
  CensusMatrix a = matrix_of(2, {{0, 1, 10.0F}, {1, 2, 20.0F}});
  const CensusMatrix copy = a;
  a.combine_min(copy);
  EXPECT_FLOAT_EQ(a.measurements(0)[0].rtt_ms, 10.0F);
  EXPECT_FLOAT_EQ(a.measurements(1)[0].rtt_ms, 20.0F);
}

TEST(CensusMatrix, OffsetsAreCumulativeRowEnds) {
  const CensusMatrix data =
      matrix_of(4, {{0, 1, 10.0F}, {0, 2, 11.0F}, {2, 5, 12.0F}});
  const auto offsets = data.row_offsets();
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[1], 2u);
  EXPECT_EQ(offsets[2], 2u);  // empty row
  EXPECT_EQ(offsets[3], 3u);
  EXPECT_EQ(offsets[4], 3u);
  // Rows are views into one contiguous buffer.
  EXPECT_EQ(data.measurements(0).data() + 2, data.measurements(2).data());
}

TEST(CensusMatrix, BuilderDropsOutOfRangeTargets) {
  CensusMatrixBuilder builder(2);
  builder.add(0, 1, 10.0F);
  builder.add(2, 1, 11.0F);  // beyond target_count: damaged record
  builder.add_fragment(4, {TargetRtt{1, 12.0F}, TargetRtt{9, 13.0F}});
  const CensusMatrix data = builder.build();
  EXPECT_EQ(data.observation_count(), 2u);
  EXPECT_EQ(data.measurements(0).size(), 1u);
  EXPECT_EQ(data.measurements(1).size(), 1u);
}

TEST(CensusMatrix, BuildResetsTheBuilder) {
  CensusMatrixBuilder builder(3);
  builder.add(0, 1, 10.0F);
  EXPECT_EQ(builder.build().observation_count(), 1u);
  const CensusMatrix empty_again = builder.build();
  EXPECT_EQ(empty_again.target_count(), 3u);
  EXPECT_EQ(empty_again.observation_count(), 0u);
}

// --- CensusMatrix vs. the legacy row-of-vectors oracle -----------------------
//
// `LegacyCensusData` is the pre-CSR container kept verbatim as a test
// oracle; on any input stream, matrix and oracle must expose identical
// rows through the shared `measurements()` read API.

void expect_matches_oracle(const CensusMatrix& matrix,
                           const LegacyCensusData& oracle) {
  ASSERT_EQ(matrix.target_count(), oracle.target_count());
  std::size_t total = 0;
  for (std::uint32_t t = 0; t < oracle.target_count(); ++t) {
    const auto got = matrix.measurements(t);
    const auto want = oracle.measurements(t);
    ASSERT_EQ(got.size(), want.size()) << "target " << t;
    total += want.size();
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].vp, want[i].vp) << "target " << t;
      EXPECT_EQ(got[i].rtt_ms, want[i].rtt_ms) << "target " << t;
    }
  }
  EXPECT_EQ(matrix.observation_count(), total);
}

TEST(CensusMatrixOracle, EmptyCensus) {
  CensusMatrixBuilder builder(16);
  expect_matches_oracle(builder.build(), LegacyCensusData(16));
  expect_matches_oracle(CensusMatrix(16), LegacyCensusData(16));
  expect_matches_oracle(CensusMatrix(), LegacyCensusData());
}

TEST(CensusMatrixOracle, SingleVpFragment) {
  const std::vector<TargetRtt> fragment{
      {0, 12.0F}, {3, 9.5F}, {4, 80.25F}, {7, 3.0F}};
  CensusMatrixBuilder builder(8);
  builder.add_fragment(5, fragment);
  LegacyCensusData oracle(8);
  oracle.record_fragment(5, fragment);
  expect_matches_oracle(builder.build(), oracle);
}

TEST(CensusMatrixOracle, DuplicateVpTargetPairsKeepTheMinimum) {
  // Same (vp, target) seen repeatedly, interleaved across targets and in
  // descending vp order — the worst case for the canonicalisation sweep.
  const std::uint32_t targets[] = {2, 0, 2, 1, 2, 0, 2};
  const std::uint16_t vps[] = {9, 4, 9, 9, 2, 4, 9};
  const float rtts[] = {30.0F, 12.0F, 10.0F, 55.0F, 41.0F, 11.5F, 20.0F};
  CensusMatrixBuilder builder(3);
  LegacyCensusData oracle(3);
  for (std::size_t i = 0; i < std::size(targets); ++i) {
    builder.add(targets[i], vps[i], rtts[i]);
    oracle.record(targets[i], vps[i], rtts[i]);
  }
  const CensusMatrix matrix = builder.build();
  expect_matches_oracle(matrix, oracle);
  EXPECT_FLOAT_EQ(matrix.measurements(2)[1].rtt_ms, 10.0F);  // min of vp 9
}

TEST(CensusMatrixOracle, CombineMinDisjointVpSets) {
  CensusMatrixBuilder builder_a(4);
  CensusMatrixBuilder builder_b(4);
  LegacyCensusData oracle_a(4);
  LegacyCensusData oracle_b(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    builder_a.add(t, static_cast<std::uint16_t>(2 * t), 10.0F + t);
    oracle_a.record(t, static_cast<std::uint16_t>(2 * t), 10.0F + t);
    builder_b.add(t, static_cast<std::uint16_t>(2 * t + 1), 20.0F + t);
    oracle_b.record(t, static_cast<std::uint16_t>(2 * t + 1), 20.0F + t);
  }
  CensusMatrix a = builder_a.build();
  a.combine_min(builder_b.build());
  oracle_a.combine_min(oracle_b);
  expect_matches_oracle(a, oracle_a);
  EXPECT_EQ(a.measurements(0).size(), 2u);
}

TEST(CensusMatrixOracle, CombineMinOverlappingVpSets) {
  CensusMatrixBuilder builder_a(3);
  CensusMatrixBuilder builder_b(3);
  LegacyCensusData oracle_a(3);
  LegacyCensusData oracle_b(3);
  const auto feed_a = [&](std::uint32_t t, std::uint16_t vp, float rtt) {
    builder_a.add(t, vp, rtt);
    oracle_a.record(t, vp, rtt);
  };
  const auto feed_b = [&](std::uint32_t t, std::uint16_t vp, float rtt) {
    builder_b.add(t, vp, rtt);
    oracle_b.record(t, vp, rtt);
  };
  feed_a(0, 1, 10.0F);
  feed_a(0, 2, 50.0F);
  feed_a(1, 3, 7.0F);
  feed_b(0, 2, 30.0F);  // overlaps: min wins
  feed_b(0, 3, 70.0F);
  feed_b(1, 3, 9.0F);   // overlaps: ours is smaller
  feed_b(2, 1, 5.0F);   // empty row on our side
  CensusMatrix a = builder_a.build();
  a.combine_min(builder_b.build());
  oracle_a.combine_min(oracle_b);
  expect_matches_oracle(a, oracle_a);
}

TEST(CensusMatrixOracle, CombineMinGrowsToTheLargerTargetCount) {
  CensusMatrixBuilder small_builder(2);
  small_builder.add(1, 4, 15.0F);
  CensusMatrix small = small_builder.build();
  CensusMatrixBuilder big_builder(5);
  big_builder.add(4, 6, 25.0F);
  LegacyCensusData oracle_small(2);
  oracle_small.record(1, 4, 15.0F);
  LegacyCensusData oracle_big(5);
  oracle_big.record(4, 6, 25.0F);
  small.combine_min(big_builder.build());
  oracle_small.combine_min(oracle_big);
  expect_matches_oracle(small, oracle_small);
  EXPECT_EQ(small.target_count(), 5u);
}

// --- run_census ---------------------------------------------------------------

TEST(RunCensus, FunnelAccountingIsConsistent) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 36});
  Greylist blacklist;
  const CensusOutput output =
      run_census(tiny_world(), vps, hitlist, blacklist, FastPingConfig{});
  EXPECT_EQ(output.summary.probes_sent,
            output.summary.echo_replies + output.summary.errors +
                output.summary.timeouts);
  EXPECT_EQ(output.summary.vp_duration_hours.size(), vps.size());
  // The blacklist received this census's greylist.
  EXPECT_EQ(blacklist.size(), output.summary.greylist_new);
  EXPECT_GT(blacklist.size(), 0u);
  // Responsive targets answered at least one VP.
  EXPECT_GT(output.data.responsive_targets(1), 0u);
}

TEST(RunCensus, SecondCensusSkipsBlacklistedTargets) {
  const Hitlist hitlist = Hitlist::from_world(tiny_world()).without_dead();
  const auto vps = net::make_planetlab({.node_count = 4, .seed = 37});
  Greylist blacklist;
  const CensusOutput first =
      run_census(tiny_world(), vps, hitlist, blacklist, FastPingConfig{});
  const CensusOutput second =
      run_census(tiny_world(), vps, hitlist, blacklist, FastPingConfig{});
  // Prohibited targets answered (as errors) in census 1, are skipped in 2.
  EXPECT_GT(first.summary.errors, 0u);
  EXPECT_EQ(second.summary.errors, 0u);
  EXPECT_LT(second.summary.probes_sent, first.summary.probes_sent);
}

}  // namespace
}  // namespace anycast::census
