// Flight recorder tests: the structured event journal's determinism
// contract (semantic events byte-identical across thread counts and
// crash+resume), the bounded-buffer and rate-limit behavior, the
// Chrome-trace exporter's JSON validity, and the progress heartbeat.
//
// These mirror the metrics determinism tests in concurrency_test.cpp:
// same tiny world, same configs, same thread counts — the journal is the
// event-stream analogue of MetricsRegistry::semantic_snapshot() and must
// hold to the same byte contract (DESIGN.md §12).
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "anycast/analysis/run_report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/net/fault.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/progress.hpp"
#include "anycast/obs/trace.hpp"
#include "anycast/obs/trace_export.hpp"

namespace {

namespace fs = std::filesystem;
using namespace anycast;
using census::FastPingConfig;
using census::Greylist;
using census::Hitlist;
using concurrency::ThreadPool;
using obs::EventField;
using obs::Journal;
using obs::MetricClass;
using obs::Severity;

// --- Journal unit behavior ------------------------------------------------

TEST(Journal, SemanticEventsCommitSortedByOrderKey) {
  Journal j;
  j.set_recording(true);
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 2, {{"vp", 2u}});
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 0, {{"vp", 0u}});
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 1, {{"vp", 1u}});
  j.commit();
  const std::string text = j.semantic_text();
  const std::size_t p0 = text.find("\"order\":0");
  const std::size_t p1 = text.find("\"order\":1");
  const std::size_t p2 = text.find("\"order\":2");
  ASSERT_NE(p0, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_EQ(j.events_recorded(), 3u);
  EXPECT_EQ(j.events_dropped(), 0u);
}

TEST(Journal, SemanticTextIsIdenticalForAnyEmitInterleaving) {
  // Two threads emit disjoint order keys; commit() sorts, so the final
  // text must not depend on scheduling.
  std::string first;
  for (int round = 0; round < 3; ++round) {
    Journal j;
    j.set_recording(true);
    std::thread even([&j] {
      for (std::uint64_t i = 0; i < 64; i += 2) {
        j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", i,
               {{"vp", i}});
      }
    });
    std::thread odd([&j] {
      for (std::uint64_t i = 1; i < 64; i += 2) {
        j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", i,
               {{"vp", i}});
      }
    });
    even.join();
    odd.join();
    j.commit();
    ASSERT_EQ(j.events_dropped(), 0u);
    if (round == 0) {
      first = j.semantic_text();
      ASSERT_FALSE(first.empty());
    } else {
      EXPECT_EQ(j.semantic_text(), first) << "round " << round;
    }
  }
}

TEST(Journal, FieldTypesSerializeDistinctly) {
  Journal j;
  j.set_recording(true);
  j.emit(MetricClass::kSemantic, Severity::kWarn, "mixed", 0,
         {{"u", 7u},
          {"i", -3},
          {"f", 1.5},
          {"yes", true},
          {"no", false},
          {"s", "text \"quoted\"\n"}});
  j.commit();
  const std::string text = j.semantic_text();
  EXPECT_NE(text.find("\"sev\":\"warn\""), std::string::npos);
  EXPECT_NE(text.find("\"u\":7"), std::string::npos);
  EXPECT_NE(text.find("\"i\":-3"), std::string::npos);
  EXPECT_NE(text.find("\"f\":1.5"), std::string::npos);
  EXPECT_NE(text.find("\"yes\":true"), std::string::npos);
  EXPECT_NE(text.find("\"no\":false"), std::string::npos);
  // String values are JSON-escaped.
  EXPECT_NE(text.find("\"s\":\"text \\\"quoted\\\"\\n\""),
            std::string::npos);
}

TEST(Journal, OversizedEventsAreTruncatedNotSplit) {
  Journal j;
  j.set_recording(true);
  const std::string huge(4096, 'x');
  j.emit(MetricClass::kSemantic, Severity::kInfo, "big", 0,
         {{"blob", huge}, {"after", 1u}});
  j.commit();
  const std::string text = j.semantic_text();
  // One complete line, flagged, still valid-ish JSON shape.
  ASSERT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  EXPECT_NE(text.find("\"truncated\":true"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text[text.size() - 2], '}');
}

TEST(Journal, BadKeysThrowAndRecordingGateIsCheap) {
  Journal j;
  j.set_recording(true);
  EXPECT_THROW(j.emit(MetricClass::kSemantic, Severity::kInfo, "Bad Key", 0,
                      {}),
               std::logic_error);
  j.set_recording(false);
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 0, {{"vp", 1u}});
  j.commit();
  EXPECT_EQ(j.events_recorded(), 0u);
  EXPECT_TRUE(j.semantic_text().empty());
}

TEST(Journal, SeverityFloorDiscardsBelow) {
  Journal j;
  j.set_recording(true);
  j.set_min_severity(Severity::kWarn);
  j.emit(MetricClass::kSemantic, Severity::kDebug, "noise", 0, {});
  j.emit(MetricClass::kSemantic, Severity::kInfo, "noise", 1, {});
  j.emit(MetricClass::kSemantic, Severity::kError, "signal", 2, {});
  j.commit();
  EXPECT_EQ(j.events_recorded(), 1u);
  EXPECT_NE(j.semantic_text().find("signal"), std::string::npos);
}

TEST(Journal, RateLimiterCapsTimingEventsPerKey) {
  Journal j;
  j.set_recording(true);
  // Zero refill: exactly `burst` tokens per key, deterministic.
  j.set_rate_limit(/*per_second=*/0.0, /*burst=*/3.0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.emit(MetricClass::kTiming, Severity::kInfo, "chatty", i, {{"i", i}});
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.emit(MetricClass::kTiming, Severity::kInfo, "other", i, {{"i", i}});
  }
  // Semantic events are exempt — the limiter is wall-clock-driven and
  // must never perturb the deterministic stream.
  for (std::uint64_t i = 0; i < 10; ++i) {
    j.emit(MetricClass::kSemantic, Severity::kInfo, "exempt", i,
           {{"i", i}});
  }
  j.commit();
  EXPECT_EQ(j.events_rate_limited(), 14u);  // 7 per timing key
  EXPECT_EQ(j.events_recorded(), 16u);      // 3 + 3 timing, 10 semantic
}

TEST(Journal, RateLimiterKeyMapIsBounded) {
  // A long-lived daemon emits timing events under an unbounded set of
  // names; the limiter map must stay bounded (oldest bucket evicted)
  // instead of growing for the life of the process.
  Journal j;
  j.set_recording(true);
  j.set_rate_limit(/*per_second=*/0.0, /*burst=*/2.0);
  for (int k = 0; k < 500; ++k) {
    const std::string name = "key_" + std::to_string(k);
    for (std::uint64_t i = 0; i < 4; ++i) {
      j.emit(MetricClass::kTiming, Severity::kInfo, name, i, {{"i", i}});
    }
  }
  EXPECT_LE(j.rate_limiter_key_count(), Journal::kMaxLimiterKeys);
  // Eviction only ever under-limits (an evicted key re-enters with a full
  // burst); the keys still resident keep limiting normally.
  j.commit();
  EXPECT_GT(j.events_rate_limited(), 0u);
  EXPECT_GE(j.events_recorded(), 2u * 500u);
}

TEST(Journal, FullArenaDropsAndCountsInsteadOfBlocking) {
  Journal j;
  j.set_arena_capacity(256);  // a handful of events per thread
  j.set_recording(true);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    j.emit(MetricClass::kTiming, Severity::kInfo, "flood", i, {{"i", i}});
  }
  EXPECT_GT(j.events_dropped(), 0u);
  j.commit();
  // Drained events plus drops account for every emit.
  EXPECT_EQ(j.events_recorded() + j.events_dropped(), 1000u);
}

TEST(Journal, FlushMidStreamPreservesSemanticOrdering) {
  // flush() (what the heartbeat calls) stages semantic events without
  // cutting a commit batch: late-but-lower-order events still sort first.
  Journal j;
  j.set_recording(true);
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 5, {{"vp", 5u}});
  j.flush();
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 1, {{"vp", 1u}});
  j.commit();
  const std::string text = j.semantic_text();
  EXPECT_LT(text.find("\"order\":1"), text.find("\"order\":5"));
}

TEST(Journal, OpenFailsFastOnUnwritablePath) {
  Journal j;
  EXPECT_FALSE(j.open("/nonexistent-dir/journal.jsonl"));
  EXPECT_FALSE(j.recording());
}

TEST(Journal, FileSinkReceivesCommittedLines) {
  const fs::path path =
      fs::temp_directory_path() /
      ("anycast_journal_test_" + std::to_string(::getpid()) + ".jsonl");
  Journal j;
  ASSERT_TRUE(j.open(path));
  EXPECT_TRUE(j.recording());
  j.emit(MetricClass::kSemantic, Severity::kInfo, "walk", 0, {{"vp", 0u}});
  j.emit(MetricClass::kTiming, Severity::kInfo, "tick", 0, {{"n", 1u}});
  j.close();
  std::ifstream in(path);
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  fs::remove(path);
  EXPECT_NE(text.find("\"key\":\"walk\""), std::string::npos);
  EXPECT_NE(text.find("\"key\":\"tick\""), std::string::npos);
  // The file is a consistent prefix of complete lines.
  EXPECT_EQ(obs::journal_consistent_prefix(text), text);
}

TEST(Journal, ConsistentPrefixCutsAtLastNewline) {
  EXPECT_EQ(obs::journal_consistent_prefix(""), "");
  EXPECT_EQ(obs::journal_consistent_prefix("{\"a\":1}\n"), "{\"a\":1}\n");
  EXPECT_EQ(obs::journal_consistent_prefix("{\"a\":1}\n{\"b\""),
            "{\"a\":1}\n");
  EXPECT_EQ(obs::journal_consistent_prefix("torn"), "");
}

// --- Journal determinism through the census pipeline ----------------------

net::WorldConfig tiny_world_config() {
  net::WorldConfig config;
  config.seed = 21;
  config.unicast_alive_slash24 = 400;
  config.unicast_dead_slash24 = 300;
  return config;
}

const net::SimulatedInternet& tiny_world() {
  static const net::SimulatedInternet world(tiny_world_config());
  return world;
}

const Hitlist& tiny_hitlist() {
  static const Hitlist hitlist =
      Hitlist::from_world(tiny_world()).without_dead();
  return hitlist;
}

FastPingConfig loaded_config() {
  FastPingConfig config;
  config.seed = 90;
  config.vp_availability = 0.8;
  config.retry_max_attempts = 2;
  config.retry_probe_budget = 64;
  config.vp_deadline_hours = 10.0;
  config.quarantine_drop_rate = 0.5;
  return config;
}

net::FaultPlan stormy_plan() {
  net::FaultSpec spec;
  spec.crash_rate = 0.4;
  spec.outage_rate = 0.4;
  spec.storm_rate = 0.4;
  spec.straggler_rate = 0.4;
  return net::FaultPlan(spec);
}

/// Runs one census with the global journal capturing (no file sink) and
/// returns the committed semantic text.
std::string census_journal(ThreadPool* pool, const net::FaultPlan* plan) {
  obs::journal().reset();
  obs::journal().set_recording(true);
  obs::metrics().reset();
  Greylist blacklist;
  const auto vps = net::make_planetlab({.node_count = 12, .seed = 91});
  (void)census::run_census(tiny_world(), vps, tiny_hitlist(), blacklist,
                           loaded_config(), plan, pool);
  std::string text = obs::journal().semantic_text();
  EXPECT_EQ(obs::journal().events_dropped(), 0u);
  obs::journal().set_recording(false);
  obs::journal().reset();
  return text;
}

TEST(JournalDeterminism, SemanticTextIdenticalAcrossThreadCounts) {
  std::string clean_serial;
  for (const bool chaos : {false, true}) {
    const net::FaultPlan plan = stormy_plan();
    const net::FaultPlan* faults = chaos ? &plan : nullptr;
    const std::string serial = census_journal(nullptr, faults);
    ASSERT_NE(serial.find("census.walk"), std::string::npos);
    ASSERT_NE(serial.find("census.summary"), std::string::npos);
    ASSERT_NE(serial.find("greylist.merge"), std::string::npos);
    for (const std::size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(census_journal(&pool, faults), serial)
          << "chaos=" << chaos << " threads=" << threads;
    }
    if (!chaos) {
      clean_serial = serial;
    } else {
      // The journal actually sees the chaos (crashed walks change
      // outcomes); it is not a constant string.
      EXPECT_NE(serial, clean_serial);
    }
  }
}

class JournalResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("anycast_flight_recorder_test_" + std::to_string(::getpid()) +
            "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    obs::journal().set_recording(false);
    obs::journal().reset();
    fs::remove_all(dir_);
  }

  fs::path dir_;
};

TEST_F(JournalResumeTest, SemanticTextSurvivesCrashAndResume) {
  // Same shape as the metrics twin in concurrency_test: a crashed census
  // resumed to completion must journal the exact same semantic events as
  // an uninterrupted run. Retries stay off — a replayed checkpoint
  // cannot distinguish retry probes from first attempts.
  const auto vps = net::make_planetlab({.node_count = 8, .seed = 91});
  FastPingConfig config;
  config.seed = 90;

  obs::journal().reset();
  obs::journal().set_recording(true);
  obs::metrics().reset();
  Greylist blacklist_clean;
  (void)census::resume_census(tiny_world(), vps, tiny_hitlist(),
                              blacklist_clean, config, dir_ / "clean",
                              /*census_id=*/1);
  const std::string clean_text = obs::journal().semantic_text();
  ASSERT_NE(clean_text.find("census.walk"), std::string::npos);

  net::FaultSpec spec;
  spec.crash_rate = 0.5;
  const net::FaultPlan plan(spec);
  const fs::path crash_dir = dir_ / "crashed";
  ThreadPool pool(8);
  obs::journal().reset();
  obs::journal().set_recording(true);
  Greylist blacklist_crash;
  const census::ResumeReport crashed = census::resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_crash, config, crash_dir,
      /*census_id=*/1, &plan, &pool);
  ASSERT_GT(
      crashed.output.summary.outcome_count(census::VpOutcome::kCrashed), 0u);

  obs::journal().reset();
  obs::journal().set_recording(true);
  obs::metrics().reset();
  Greylist blacklist_resume;
  const census::ResumeReport resumed = census::resume_census(
      tiny_world(), vps, tiny_hitlist(), blacklist_resume, config, crash_dir,
      /*census_id=*/1, /*faults=*/nullptr, &pool);
  EXPECT_GT(resumed.vps_reused, 0u);
  EXPECT_EQ(obs::journal().semantic_text(), clean_text);
}

// --- Drift diff -----------------------------------------------------------

TEST(JournalDrift, IdenticalStreamsReportZeroDrift) {
  const std::string a =
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":0,\"vp\":0}\n"
      "{\"class\":\"timing\",\"sev\":\"info\",\"key\":\"tick\",\"order\":1,"
      "\"t_ms\":1.5}\n"
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":1,\"vp\":1}\n";
  // Timing lines differ but are filtered from the comparison.
  std::string b = a;
  const std::size_t t = b.find("1.5");
  b.replace(t, 3, "9.9");
  const analysis::Divergence drift = analysis::journal_drift(a, b);
  EXPECT_FALSE(drift.diverged);
  EXPECT_EQ(drift.left_count, 2u);
  EXPECT_EQ(drift.right_count, 2u);
}

TEST(JournalDrift, FirstDivergingSemanticLineIsReported) {
  const std::string walk0 =
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":0,\"vp\":0,\"echo\":100}\n";
  const std::string walk1a =
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":1,\"vp\":1,\"echo\":200}\n";
  const std::string walk1b =
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":1,\"vp\":1,\"echo\":201}\n";
  const analysis::Divergence drift =
      analysis::journal_drift(walk0 + walk1a, walk0 + walk1b);
  ASSERT_TRUE(drift.diverged);
  EXPECT_EQ(drift.index, 1u);
  EXPECT_NE(drift.left.find("\"echo\":200"), std::string::npos);
  EXPECT_NE(drift.right.find("\"echo\":201"), std::string::npos);
}

TEST(JournalDrift, LengthMismatchDivergesAtStreamEnd) {
  const std::string walk =
      "{\"class\":\"semantic\",\"sev\":\"info\",\"key\":\"census.walk\","
      "\"order\":0,\"vp\":0}\n";
  const analysis::Divergence drift =
      analysis::journal_drift(walk + walk, walk);
  ASSERT_TRUE(drift.diverged);
  EXPECT_EQ(drift.index, 1u);
  EXPECT_FALSE(drift.left.empty());
  EXPECT_TRUE(drift.right.empty());
}

TEST(JournalSummary, CountsClassesKeysAndSeverities) {
  obs::Journal j;
  j.set_recording(true);
  j.emit(MetricClass::kSemantic, Severity::kInfo, "census.walk", 0,
         {{"vp", 0u}});
  j.emit(MetricClass::kSemantic, Severity::kWarn, "census.walk", 1,
         {{"vp", 1u}});
  j.emit(MetricClass::kTiming, Severity::kInfo, "tick", 0, {});
  j.emit(MetricClass::kSemantic, Severity::kInfo, "census.summary",
         Journal::kReductionOrderBase, {{"probes", 42u}});
  j.commit();
  const analysis::JournalSummary summary = analysis::summarize_journal(
      j.semantic_text() + "not an event line\n");
  EXPECT_EQ(summary.total_events, 3u);  // semantic_text: timing excluded
  EXPECT_EQ(summary.semantic_events, 3u);
  EXPECT_EQ(summary.malformed_lines, 1u);
  EXPECT_EQ(summary.by_key.at("census.walk"), 2u);
  EXPECT_EQ(summary.by_severity.at("warn"), 1u);
  EXPECT_NE(summary.last_census_summary.find("\"probes\":42"),
            std::string::npos);
}

// --- Chrome trace export --------------------------------------------------

/// Minimal JSON validity checker (objects, arrays, strings, numbers,
/// true/false/null). Returns true when `text` is one complete JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return at_ == text_.size();
  }

 private:
  bool value() {
    if (at_ >= text_.size()) return false;
    switch (text_[at_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++at_;  // {
    skip_ws();
    if (peek() == '}') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++at_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == '}') { ++at_; return true; }
      return false;
    }
  }
  bool array() {
    ++at_;  // [
    skip_ws();
    if (peek() == ']') { ++at_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++at_; continue; }
      if (peek() == ']') { ++at_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++at_;
    while (at_ < text_.size() && text_[at_] != '"') {
      if (text_[at_] == '\\') ++at_;
      ++at_;
    }
    if (at_ >= text_.size()) return false;
    ++at_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = at_;
    if (peek() == '-') ++at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) != 0 ||
            text_[at_] == '.' || text_[at_] == 'e' || text_[at_] == 'E' ||
            text_[at_] == '+' || text_[at_] == '-')) {
      ++at_;
    }
    return at_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(at_, word.size()) != word) return false;
    at_ += word.size();
    return true;
  }
  char peek() const { return at_ < text_.size() ? text_[at_] : '\0'; }
  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_])) != 0) {
      ++at_;
    }
  }

  std::string_view text_;
  std::size_t at_ = 0;
};

TEST(TraceExport, ChromeTraceJsonIsValidAndPairsSpans) {
  std::vector<obs::SpanRecord> spans;
  obs::SpanRecord root;
  root.id = 1;
  root.name = "resume_census";
  root.start_ns = 1000;
  root.duration_ns = 9000;
  obs::SpanRecord child;
  child.id = 2;
  child.parent = 1;
  child.name = "vp_walk";
  child.label = 7;
  child.adopted = true;
  child.start_ns = 2000;
  child.duration_ns = 3000;
  spans = {root, child};
  std::vector<obs::CounterSample> samples;
  samples.push_back({.t_ns = 1500, .name = "census_probes_sent",
                     .value = 123.0});
  const std::string json = obs::chrome_trace_json(spans, samples, 4, 1);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // One async begin and one async end per span, same id.
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"vp_walk[7]\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("census_probes_sent"), std::string::npos);
  // Drop accounting is surfaced, not silent.
  EXPECT_NE(json.find("\"dropped_spans\":4"), std::string::npos);
  EXPECT_NE(json.find("\"orphan_spans\":1"), std::string::npos);
  // Timestamps are microseconds: 2000 ns -> 2.000.
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);
}

TEST(TraceExport, EmptyInputsStillProduceValidJson) {
  const std::string json = obs::chrome_trace_json({}, {}, 0, 0);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, CounterSamplerIsBoundedAndCountsDrops) {
  obs::CounterSampler sampler;
  obs::MetricsRegistry registry;
  registry.counter("c", MetricClass::kSemantic).add(5);
  sampler.set_capacity(3);
  for (int i = 0; i < 5; ++i) {
    sampler.sample(registry, static_cast<std::int64_t>(i) * 1000);
  }
  EXPECT_EQ(sampler.samples().size(), 3u);
  EXPECT_EQ(sampler.dropped(), 2u);
  sampler.reset();
  EXPECT_TRUE(sampler.samples().empty());
  EXPECT_EQ(sampler.dropped(), 0u);
}

TEST(TraceExport, WriteChromeTraceRoundTripsThroughAFile) {
  const fs::path path =
      fs::temp_directory_path() /
      ("anycast_trace_test_" + std::to_string(::getpid()) + ".json");
  {
    const obs::Span span("export_test");
    (void)span;
  }
  ASSERT_TRUE(obs::write_chrome_trace(path));
  std::ifstream in(path);
  const std::string json{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  fs::remove(path);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("export_test"), std::string::npos);
  EXPECT_FALSE(obs::write_chrome_trace("/nonexistent-dir/trace.json"));
}

// --- Progress heartbeat ---------------------------------------------------

TEST(Progress, TickFormatsRatesAndEta) {
  obs::MetricsRegistry registry;
  registry.counter("census_probes_sent", MetricClass::kSemantic).add(1000);
  registry.counter("census_replies_echo", MetricClass::kSemantic).add(800);
  registry.counter("census_timeouts_organic", MetricClass::kSemantic)
      .add(150);
  registry.counter("census_timeouts_injected", MetricClass::kTiming)
      .add(50);
  registry.counter("census_greylist_new", MetricClass::kSemantic).add(3);
  obs::ProgressConfig config;
  config.registry = &registry;
  config.phase = "census";
  obs::ProgressTracker tracker(config);
  // 5 of 10 VPs after 30 s -> another 30 s to go.
  const std::string line = tracker.tick(5, 10, 30.0);
  EXPECT_NE(line.find("[census] 5/10 VPs (50.0%)"), std::string::npos);
  EXPECT_NE(line.find("probes 1000"), std::string::npos);
  EXPECT_NE(line.find("echo 80.0%"), std::string::npos);
  EXPECT_NE(line.find("timeout 20.0%"), std::string::npos);
  EXPECT_NE(line.find("greylist +3"), std::string::npos);
  EXPECT_NE(line.find("ETA 30.0s"), std::string::npos);
  // Completed phases report elapsed, not ETA.
  const std::string done = tracker.tick(10, 10, 60.0);
  EXPECT_NE(done.find("(100.0%)"), std::string::npos);
  EXPECT_NE(done.find("elapsed 60.0s"), std::string::npos);
  EXPECT_EQ(done.find("ETA"), std::string::npos);
  EXPECT_EQ(tracker.ticks(), 2u);
}

TEST(Progress, TickJournalsHeartbeatAndSamplesCounters) {
  obs::MetricsRegistry registry;
  registry.counter("census_probes_sent", MetricClass::kSemantic).add(10);
  obs::Journal j;
  j.set_recording(true);
  obs::CounterSampler sampler;
  obs::ProgressConfig config;
  config.registry = &registry;
  config.journal = &j;
  config.sampler = &sampler;
  obs::ProgressTracker tracker(config);
  (void)tracker.tick(1, 4, 2.0);
  (void)tracker.tick(2, 4, 4.0);
  // Heartbeats are kTiming: recorded (post-flush), not in semantic text.
  EXPECT_EQ(j.events_recorded(), 2u);
  EXPECT_TRUE(j.semantic_text().empty());
  EXPECT_EQ(sampler.samples().size(), 2u);
  EXPECT_EQ(sampler.samples().front().name, "census_probes_sent");
}

TEST(Progress, ZeroTotalsDoNotDivide) {
  obs::MetricsRegistry registry;
  obs::ProgressConfig config;
  config.registry = &registry;
  obs::ProgressTracker tracker(config);
  const std::string line = tracker.tick(0, 0, 0.0);
  EXPECT_NE(line.find("0/0 VPs (0.0%)"), std::string::npos);
  EXPECT_NE(line.find("probes 0"), std::string::npos);
}

}  // namespace
