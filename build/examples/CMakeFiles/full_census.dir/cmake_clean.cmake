file(REMOVE_RECURSE
  "CMakeFiles/full_census.dir/full_census.cpp.o"
  "CMakeFiles/full_census.dir/full_census.cpp.o.d"
  "full_census"
  "full_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
