# Empty compiler generated dependencies file for full_census.
# This may be replaced when dependencies are built.
