# Empty dependencies file for portscan_services.
# This may be replaced when dependencies are built.
