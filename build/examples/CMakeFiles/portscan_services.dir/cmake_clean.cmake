file(REMOVE_RECURSE
  "CMakeFiles/portscan_services.dir/portscan_services.cpp.o"
  "CMakeFiles/portscan_services.dir/portscan_services.cpp.o.d"
  "portscan_services"
  "portscan_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portscan_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
