file(REMOVE_RECURSE
  "CMakeFiles/bgp_hijack_detection.dir/bgp_hijack_detection.cpp.o"
  "CMakeFiles/bgp_hijack_detection.dir/bgp_hijack_detection.cpp.o.d"
  "bgp_hijack_detection"
  "bgp_hijack_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_hijack_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
