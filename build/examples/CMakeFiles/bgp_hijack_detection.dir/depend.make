# Empty dependencies file for bgp_hijack_detection.
# This may be replaced when dependencies are built.
