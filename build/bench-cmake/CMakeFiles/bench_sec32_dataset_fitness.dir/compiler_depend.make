# Empty compiler generated dependencies file for bench_sec32_dataset_fitness.
# This may be replaced when dependencies are built.
