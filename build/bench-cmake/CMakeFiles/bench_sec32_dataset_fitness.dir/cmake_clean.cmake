file(REMOVE_RECURSE
  "../bench/bench_sec32_dataset_fitness"
  "../bench/bench_sec32_dataset_fitness.pdb"
  "CMakeFiles/bench_sec32_dataset_fitness.dir/bench_sec32_dataset_fitness.cpp.o"
  "CMakeFiles/bench_sec32_dataset_fitness.dir/bench_sec32_dataset_fitness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_dataset_fitness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
