file(REMOVE_RECURSE
  "../bench/bench_geoloc_policy"
  "../bench/bench_geoloc_policy.pdb"
  "CMakeFiles/bench_geoloc_policy.dir/bench_geoloc_policy.cpp.o"
  "CMakeFiles/bench_geoloc_policy.dir/bench_geoloc_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geoloc_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
