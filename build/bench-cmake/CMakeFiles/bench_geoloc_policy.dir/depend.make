# Empty dependencies file for bench_geoloc_policy.
# This may be replaced when dependencies are built.
