# Empty compiler generated dependencies file for bench_fig13_ip24_per_as.
# This may be replaced when dependencies are built.
