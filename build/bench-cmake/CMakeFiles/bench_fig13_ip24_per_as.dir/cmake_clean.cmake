file(REMOVE_RECURSE
  "../bench/bench_fig13_ip24_per_as"
  "../bench/bench_fig13_ip24_per_as.pdb"
  "CMakeFiles/bench_fig13_ip24_per_as.dir/bench_fig13_ip24_per_as.cpp.o"
  "CMakeFiles/bench_fig13_ip24_per_as.dir/bench_fig13_ip24_per_as.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_ip24_per_as.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
