file(REMOVE_RECURSE
  "../bench/bench_fig16_software"
  "../bench/bench_fig16_software.pdb"
  "CMakeFiles/bench_fig16_software.dir/bench_fig16_software.cpp.o"
  "CMakeFiles/bench_fig16_software.dir/bench_fig16_software.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
