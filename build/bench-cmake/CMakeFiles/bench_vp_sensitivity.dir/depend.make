# Empty dependencies file for bench_vp_sensitivity.
# This may be replaced when dependencies are built.
