file(REMOVE_RECURSE
  "../bench/bench_vp_sensitivity"
  "../bench/bench_vp_sensitivity.pdb"
  "CMakeFiles/bench_vp_sensitivity.dir/bench_vp_sensitivity.cpp.o"
  "CMakeFiles/bench_vp_sensitivity.dir/bench_vp_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vp_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
