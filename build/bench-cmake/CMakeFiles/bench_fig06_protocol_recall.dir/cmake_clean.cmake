file(REMOVE_RECURSE
  "../bench/bench_fig06_protocol_recall"
  "../bench/bench_fig06_protocol_recall.pdb"
  "CMakeFiles/bench_fig06_protocol_recall.dir/bench_fig06_protocol_recall.cpp.o"
  "CMakeFiles/bench_fig06_protocol_recall.dir/bench_fig06_protocol_recall.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_protocol_recall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
