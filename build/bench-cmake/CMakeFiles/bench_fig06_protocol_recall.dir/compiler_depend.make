# Empty compiler generated dependencies file for bench_fig06_protocol_recall.
# This may be replaced when dependencies are built.
