
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fault_matrix.cpp" "bench-cmake/CMakeFiles/bench_fault_matrix.dir/bench_fault_matrix.cpp.o" "gcc" "bench-cmake/CMakeFiles/bench_fault_matrix.dir/bench_fault_matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-cmake/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/anycast_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/census/CMakeFiles/anycast_census.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anycast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/portscan/CMakeFiles/anycast_portscan.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/anycast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/anycast_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/geodesy/CMakeFiles/anycast_geodesy.dir/DependInfo.cmake"
  "/root/repo/build/src/ipaddr/CMakeFiles/anycast_ipaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/anycast_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
