file(REMOVE_RECURSE
  "../bench/bench_fault_matrix"
  "../bench/bench_fault_matrix.pdb"
  "CMakeFiles/bench_fault_matrix.dir/bench_fault_matrix.cpp.o"
  "CMakeFiles/bench_fault_matrix.dir/bench_fault_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fault_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
