# Empty dependencies file for bench_baseline_chaos.
# This may be replaced when dependencies are built.
