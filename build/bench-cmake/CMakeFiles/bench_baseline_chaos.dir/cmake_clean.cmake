file(REMOVE_RECURSE
  "../bench/bench_baseline_chaos"
  "../bench/bench_baseline_chaos.pdb"
  "CMakeFiles/bench_baseline_chaos.dir/bench_baseline_chaos.cpp.o"
  "CMakeFiles/bench_baseline_chaos.dir/bench_baseline_chaos.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
