file(REMOVE_RECURSE
  "../bench/bench_fig08_completion_time"
  "../bench/bench_fig08_completion_time.pdb"
  "CMakeFiles/bench_fig08_completion_time.dir/bench_fig08_completion_time.cpp.o"
  "CMakeFiles/bench_fig08_completion_time.dir/bench_fig08_completion_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_completion_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
