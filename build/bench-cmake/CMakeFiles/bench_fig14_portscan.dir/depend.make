# Empty dependencies file for bench_fig14_portscan.
# This may be replaced when dependencies are built.
