file(REMOVE_RECURSE
  "../bench/bench_fig14_portscan"
  "../bench/bench_fig14_portscan.pdb"
  "CMakeFiles/bench_fig14_portscan.dir/bench_fig14_portscan.cpp.o"
  "CMakeFiles/bench_fig14_portscan.dir/bench_fig14_portscan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_portscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
