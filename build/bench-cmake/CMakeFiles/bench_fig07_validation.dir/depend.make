# Empty dependencies file for bench_fig07_validation.
# This may be replaced when dependencies are built.
