# Empty compiler generated dependencies file for bench_fig04_census_funnel.
# This may be replaced when dependencies are built.
