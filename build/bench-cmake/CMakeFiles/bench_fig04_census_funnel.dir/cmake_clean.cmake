file(REMOVE_RECURSE
  "../bench/bench_fig04_census_funnel"
  "../bench/bench_fig04_census_funnel.pdb"
  "CMakeFiles/bench_fig04_census_funnel.dir/bench_fig04_census_funnel.cpp.o"
  "CMakeFiles/bench_fig04_census_funnel.dir/bench_fig04_census_funnel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_census_funnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
