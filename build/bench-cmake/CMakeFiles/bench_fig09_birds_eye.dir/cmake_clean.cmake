file(REMOVE_RECURSE
  "../bench/bench_fig09_birds_eye"
  "../bench/bench_fig09_birds_eye.pdb"
  "CMakeFiles/bench_fig09_birds_eye.dir/bench_fig09_birds_eye.cpp.o"
  "CMakeFiles/bench_fig09_birds_eye.dir/bench_fig09_birds_eye.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_birds_eye.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
