# Empty dependencies file for bench_fig09_birds_eye.
# This may be replaced when dependencies are built.
