# Empty compiler generated dependencies file for bench_sec34_opendns.
# This may be replaced when dependencies are built.
