file(REMOVE_RECURSE
  "../bench/bench_sec34_opendns"
  "../bench/bench_sec34_opendns.pdb"
  "CMakeFiles/bench_sec34_opendns.dir/bench_sec34_opendns.cpp.o"
  "CMakeFiles/bench_sec34_opendns.dir/bench_sec34_opendns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec34_opendns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
