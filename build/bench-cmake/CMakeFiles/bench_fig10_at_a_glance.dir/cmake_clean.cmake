file(REMOVE_RECURSE
  "../bench/bench_fig10_at_a_glance"
  "../bench/bench_fig10_at_a_glance.pdb"
  "CMakeFiles/bench_fig10_at_a_glance.dir/bench_fig10_at_a_glance.cpp.o"
  "CMakeFiles/bench_fig10_at_a_glance.dir/bench_fig10_at_a_glance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_at_a_glance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
