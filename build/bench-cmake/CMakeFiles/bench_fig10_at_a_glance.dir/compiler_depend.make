# Empty compiler generated dependencies file for bench_fig10_at_a_glance.
# This may be replaced when dependencies are built.
