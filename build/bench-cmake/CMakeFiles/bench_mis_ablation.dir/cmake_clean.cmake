file(REMOVE_RECURSE
  "../bench/bench_mis_ablation"
  "../bench/bench_mis_ablation.pdb"
  "CMakeFiles/bench_mis_ablation.dir/bench_mis_ablation.cpp.o"
  "CMakeFiles/bench_mis_ablation.dir/bench_mis_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
