# Empty dependencies file for bench_fig05_platform_recall.
# This may be replaced when dependencies are built.
