file(REMOVE_RECURSE
  "../bench/bench_fig15_ports_ccdf"
  "../bench/bench_fig15_ports_ccdf.pdb"
  "CMakeFiles/bench_fig15_ports_ccdf.dir/bench_fig15_ports_ccdf.cpp.o"
  "CMakeFiles/bench_fig15_ports_ccdf.dir/bench_fig15_ports_ccdf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ports_ccdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
