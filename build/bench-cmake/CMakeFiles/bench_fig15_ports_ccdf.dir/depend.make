# Empty dependencies file for bench_fig15_ports_ccdf.
# This may be replaced when dependencies are built.
