# Empty dependencies file for bench_sec31_granularity.
# This may be replaced when dependencies are built.
