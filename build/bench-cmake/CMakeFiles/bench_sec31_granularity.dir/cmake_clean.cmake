file(REMOVE_RECURSE
  "../bench/bench_sec31_granularity"
  "../bench/bench_sec31_granularity.pdb"
  "CMakeFiles/bench_sec31_granularity.dir/bench_sec31_granularity.cpp.o"
  "CMakeFiles/bench_sec31_granularity.dir/bench_sec31_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
