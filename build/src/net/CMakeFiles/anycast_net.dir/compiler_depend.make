# Empty compiler generated dependencies file for anycast_net.
# This may be replaced when dependencies are built.
