
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/catalog.cpp" "src/net/CMakeFiles/anycast_net.dir/catalog.cpp.o" "gcc" "src/net/CMakeFiles/anycast_net.dir/catalog.cpp.o.d"
  "/root/repo/src/net/fault.cpp" "src/net/CMakeFiles/anycast_net.dir/fault.cpp.o" "gcc" "src/net/CMakeFiles/anycast_net.dir/fault.cpp.o.d"
  "/root/repo/src/net/internet.cpp" "src/net/CMakeFiles/anycast_net.dir/internet.cpp.o" "gcc" "src/net/CMakeFiles/anycast_net.dir/internet.cpp.o.d"
  "/root/repo/src/net/platform.cpp" "src/net/CMakeFiles/anycast_net.dir/platform.cpp.o" "gcc" "src/net/CMakeFiles/anycast_net.dir/platform.cpp.o.d"
  "/root/repo/src/net/services.cpp" "src/net/CMakeFiles/anycast_net.dir/services.cpp.o" "gcc" "src/net/CMakeFiles/anycast_net.dir/services.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/anycast_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/geodesy/CMakeFiles/anycast_geodesy.dir/DependInfo.cmake"
  "/root/repo/build/src/ipaddr/CMakeFiles/anycast_ipaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/anycast_rng.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
