file(REMOVE_RECURSE
  "CMakeFiles/anycast_net.dir/catalog.cpp.o"
  "CMakeFiles/anycast_net.dir/catalog.cpp.o.d"
  "CMakeFiles/anycast_net.dir/fault.cpp.o"
  "CMakeFiles/anycast_net.dir/fault.cpp.o.d"
  "CMakeFiles/anycast_net.dir/internet.cpp.o"
  "CMakeFiles/anycast_net.dir/internet.cpp.o.d"
  "CMakeFiles/anycast_net.dir/platform.cpp.o"
  "CMakeFiles/anycast_net.dir/platform.cpp.o.d"
  "CMakeFiles/anycast_net.dir/services.cpp.o"
  "CMakeFiles/anycast_net.dir/services.cpp.o.d"
  "libanycast_net.a"
  "libanycast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
