file(REMOVE_RECURSE
  "libanycast_net.a"
)
