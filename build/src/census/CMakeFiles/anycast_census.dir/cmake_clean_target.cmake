file(REMOVE_RECURSE
  "libanycast_census.a"
)
