file(REMOVE_RECURSE
  "CMakeFiles/anycast_census.dir/census.cpp.o"
  "CMakeFiles/anycast_census.dir/census.cpp.o.d"
  "CMakeFiles/anycast_census.dir/fastping.cpp.o"
  "CMakeFiles/anycast_census.dir/fastping.cpp.o.d"
  "CMakeFiles/anycast_census.dir/greylist.cpp.o"
  "CMakeFiles/anycast_census.dir/greylist.cpp.o.d"
  "CMakeFiles/anycast_census.dir/hitlist.cpp.o"
  "CMakeFiles/anycast_census.dir/hitlist.cpp.o.d"
  "CMakeFiles/anycast_census.dir/record.cpp.o"
  "CMakeFiles/anycast_census.dir/record.cpp.o.d"
  "CMakeFiles/anycast_census.dir/resume.cpp.o"
  "CMakeFiles/anycast_census.dir/resume.cpp.o.d"
  "CMakeFiles/anycast_census.dir/storage.cpp.o"
  "CMakeFiles/anycast_census.dir/storage.cpp.o.d"
  "libanycast_census.a"
  "libanycast_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
