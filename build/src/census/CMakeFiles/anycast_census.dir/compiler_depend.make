# Empty compiler generated dependencies file for anycast_census.
# This may be replaced when dependencies are built.
