
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/census/census.cpp" "src/census/CMakeFiles/anycast_census.dir/census.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/census.cpp.o.d"
  "/root/repo/src/census/fastping.cpp" "src/census/CMakeFiles/anycast_census.dir/fastping.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/fastping.cpp.o.d"
  "/root/repo/src/census/greylist.cpp" "src/census/CMakeFiles/anycast_census.dir/greylist.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/greylist.cpp.o.d"
  "/root/repo/src/census/hitlist.cpp" "src/census/CMakeFiles/anycast_census.dir/hitlist.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/hitlist.cpp.o.d"
  "/root/repo/src/census/record.cpp" "src/census/CMakeFiles/anycast_census.dir/record.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/record.cpp.o.d"
  "/root/repo/src/census/resume.cpp" "src/census/CMakeFiles/anycast_census.dir/resume.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/resume.cpp.o.d"
  "/root/repo/src/census/storage.cpp" "src/census/CMakeFiles/anycast_census.dir/storage.cpp.o" "gcc" "src/census/CMakeFiles/anycast_census.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/anycast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/anycast_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/anycast_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/geodesy/CMakeFiles/anycast_geodesy.dir/DependInfo.cmake"
  "/root/repo/build/src/ipaddr/CMakeFiles/anycast_ipaddr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
