file(REMOVE_RECURSE
  "libanycast_core.a"
)
