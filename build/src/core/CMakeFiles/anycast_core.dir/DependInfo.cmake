
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/igreedy.cpp" "src/core/CMakeFiles/anycast_core.dir/igreedy.cpp.o" "gcc" "src/core/CMakeFiles/anycast_core.dir/igreedy.cpp.o.d"
  "/root/repo/src/core/mis.cpp" "src/core/CMakeFiles/anycast_core.dir/mis.cpp.o" "gcc" "src/core/CMakeFiles/anycast_core.dir/mis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/anycast_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/geodesy/CMakeFiles/anycast_geodesy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
