# Empty compiler generated dependencies file for anycast_core.
# This may be replaced when dependencies are built.
