file(REMOVE_RECURSE
  "CMakeFiles/anycast_core.dir/igreedy.cpp.o"
  "CMakeFiles/anycast_core.dir/igreedy.cpp.o.d"
  "CMakeFiles/anycast_core.dir/mis.cpp.o"
  "CMakeFiles/anycast_core.dir/mis.cpp.o.d"
  "libanycast_core.a"
  "libanycast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
