
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipaddr/aggregate.cpp" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/aggregate.cpp.o" "gcc" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/aggregate.cpp.o.d"
  "/root/repo/src/ipaddr/ipv4.cpp" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/ipv4.cpp.o" "gcc" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/ipv4.cpp.o.d"
  "/root/repo/src/ipaddr/prefix.cpp" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/prefix.cpp.o" "gcc" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/prefix.cpp.o.d"
  "/root/repo/src/ipaddr/prefix_table.cpp" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/prefix_table.cpp.o" "gcc" "src/ipaddr/CMakeFiles/anycast_ipaddr.dir/prefix_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
