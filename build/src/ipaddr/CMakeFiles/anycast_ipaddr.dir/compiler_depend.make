# Empty compiler generated dependencies file for anycast_ipaddr.
# This may be replaced when dependencies are built.
