file(REMOVE_RECURSE
  "libanycast_ipaddr.a"
)
