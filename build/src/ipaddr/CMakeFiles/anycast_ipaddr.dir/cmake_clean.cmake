file(REMOVE_RECURSE
  "CMakeFiles/anycast_ipaddr.dir/aggregate.cpp.o"
  "CMakeFiles/anycast_ipaddr.dir/aggregate.cpp.o.d"
  "CMakeFiles/anycast_ipaddr.dir/ipv4.cpp.o"
  "CMakeFiles/anycast_ipaddr.dir/ipv4.cpp.o.d"
  "CMakeFiles/anycast_ipaddr.dir/prefix.cpp.o"
  "CMakeFiles/anycast_ipaddr.dir/prefix.cpp.o.d"
  "CMakeFiles/anycast_ipaddr.dir/prefix_table.cpp.o"
  "CMakeFiles/anycast_ipaddr.dir/prefix_table.cpp.o.d"
  "libanycast_ipaddr.a"
  "libanycast_ipaddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_ipaddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
