file(REMOVE_RECURSE
  "libanycast_geodesy.a"
)
