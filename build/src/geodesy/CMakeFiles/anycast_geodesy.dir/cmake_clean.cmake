file(REMOVE_RECURSE
  "CMakeFiles/anycast_geodesy.dir/disk.cpp.o"
  "CMakeFiles/anycast_geodesy.dir/disk.cpp.o.d"
  "CMakeFiles/anycast_geodesy.dir/geopoint.cpp.o"
  "CMakeFiles/anycast_geodesy.dir/geopoint.cpp.o.d"
  "libanycast_geodesy.a"
  "libanycast_geodesy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_geodesy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
