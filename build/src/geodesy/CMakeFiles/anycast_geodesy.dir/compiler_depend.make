# Empty compiler generated dependencies file for anycast_geodesy.
# This may be replaced when dependencies are built.
