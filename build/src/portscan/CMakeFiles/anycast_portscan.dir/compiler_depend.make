# Empty compiler generated dependencies file for anycast_portscan.
# This may be replaced when dependencies are built.
