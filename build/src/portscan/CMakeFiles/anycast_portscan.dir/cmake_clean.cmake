file(REMOVE_RECURSE
  "CMakeFiles/anycast_portscan.dir/scanner.cpp.o"
  "CMakeFiles/anycast_portscan.dir/scanner.cpp.o.d"
  "libanycast_portscan.a"
  "libanycast_portscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_portscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
