file(REMOVE_RECURSE
  "libanycast_portscan.a"
)
