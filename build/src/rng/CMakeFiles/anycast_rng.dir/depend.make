# Empty dependencies file for anycast_rng.
# This may be replaced when dependencies are built.
