file(REMOVE_RECURSE
  "CMakeFiles/anycast_rng.dir/distributions.cpp.o"
  "CMakeFiles/anycast_rng.dir/distributions.cpp.o.d"
  "CMakeFiles/anycast_rng.dir/lfsr.cpp.o"
  "CMakeFiles/anycast_rng.dir/lfsr.cpp.o.d"
  "libanycast_rng.a"
  "libanycast_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
