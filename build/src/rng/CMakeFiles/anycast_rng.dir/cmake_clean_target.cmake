file(REMOVE_RECURSE
  "libanycast_rng.a"
)
