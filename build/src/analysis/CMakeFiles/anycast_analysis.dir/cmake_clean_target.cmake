file(REMOVE_RECURSE
  "libanycast_analysis.a"
)
