
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/analyzer.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/analyzer.cpp.o.d"
  "/root/repo/src/analysis/baselines.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/baselines.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/baselines.cpp.o.d"
  "/root/repo/src/analysis/diff.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/diff.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/diff.cpp.o.d"
  "/root/repo/src/analysis/geojson.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/geojson.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/geojson.cpp.o.d"
  "/root/repo/src/analysis/hijack.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/hijack.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/hijack.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/stats.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/stats.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/stats.cpp.o.d"
  "/root/repo/src/analysis/validation.cpp" "src/analysis/CMakeFiles/anycast_analysis.dir/validation.cpp.o" "gcc" "src/analysis/CMakeFiles/anycast_analysis.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/census/CMakeFiles/anycast_census.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/anycast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/anycast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ipaddr/CMakeFiles/anycast_ipaddr.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/anycast_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/anycast_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/geodesy/CMakeFiles/anycast_geodesy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
