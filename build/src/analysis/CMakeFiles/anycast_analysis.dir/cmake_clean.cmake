file(REMOVE_RECURSE
  "CMakeFiles/anycast_analysis.dir/analyzer.cpp.o"
  "CMakeFiles/anycast_analysis.dir/analyzer.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/baselines.cpp.o"
  "CMakeFiles/anycast_analysis.dir/baselines.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/diff.cpp.o"
  "CMakeFiles/anycast_analysis.dir/diff.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/geojson.cpp.o"
  "CMakeFiles/anycast_analysis.dir/geojson.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/hijack.cpp.o"
  "CMakeFiles/anycast_analysis.dir/hijack.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/report.cpp.o"
  "CMakeFiles/anycast_analysis.dir/report.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/stats.cpp.o"
  "CMakeFiles/anycast_analysis.dir/stats.cpp.o.d"
  "CMakeFiles/anycast_analysis.dir/validation.cpp.o"
  "CMakeFiles/anycast_analysis.dir/validation.cpp.o.d"
  "libanycast_analysis.a"
  "libanycast_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
