# Empty dependencies file for anycast_analysis.
# This may be replaced when dependencies are built.
