# Empty compiler generated dependencies file for anycast_geo.
# This may be replaced when dependencies are built.
