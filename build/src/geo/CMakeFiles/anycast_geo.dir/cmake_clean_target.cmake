file(REMOVE_RECURSE
  "libanycast_geo.a"
)
