file(REMOVE_RECURSE
  "CMakeFiles/anycast_geo.dir/city.cpp.o"
  "CMakeFiles/anycast_geo.dir/city.cpp.o.d"
  "CMakeFiles/anycast_geo.dir/city_data.cpp.o"
  "CMakeFiles/anycast_geo.dir/city_data.cpp.o.d"
  "CMakeFiles/anycast_geo.dir/city_index.cpp.o"
  "CMakeFiles/anycast_geo.dir/city_index.cpp.o.d"
  "libanycast_geo.a"
  "libanycast_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
