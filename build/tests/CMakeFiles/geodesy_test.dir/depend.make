# Empty dependencies file for geodesy_test.
# This may be replaced when dependencies are built.
