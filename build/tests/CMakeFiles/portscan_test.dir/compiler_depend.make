# Empty compiler generated dependencies file for portscan_test.
# This may be replaced when dependencies are built.
