file(REMOVE_RECURSE
  "CMakeFiles/portscan_test.dir/portscan_test.cpp.o"
  "CMakeFiles/portscan_test.dir/portscan_test.cpp.o.d"
  "portscan_test"
  "portscan_test.pdb"
  "portscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
