# Empty compiler generated dependencies file for hijack_test.
# This may be replaced when dependencies are built.
