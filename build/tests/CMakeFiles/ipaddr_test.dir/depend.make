# Empty dependencies file for ipaddr_test.
# This may be replaced when dependencies are built.
