file(REMOVE_RECURSE
  "CMakeFiles/ipaddr_test.dir/ipaddr_test.cpp.o"
  "CMakeFiles/ipaddr_test.dir/ipaddr_test.cpp.o.d"
  "ipaddr_test"
  "ipaddr_test.pdb"
  "ipaddr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipaddr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
