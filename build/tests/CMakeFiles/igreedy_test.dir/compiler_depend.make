# Empty compiler generated dependencies file for igreedy_test.
# This may be replaced when dependencies are built.
