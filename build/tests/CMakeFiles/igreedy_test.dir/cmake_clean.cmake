file(REMOVE_RECURSE
  "CMakeFiles/igreedy_test.dir/igreedy_test.cpp.o"
  "CMakeFiles/igreedy_test.dir/igreedy_test.cpp.o.d"
  "igreedy_test"
  "igreedy_test.pdb"
  "igreedy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igreedy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
