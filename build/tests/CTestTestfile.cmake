# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ipaddr_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/geodesy_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/mis_test[1]_include.cmake")
include("/root/repo/build/tests/igreedy_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/census_test[1]_include.cmake")
include("/root/repo/build/tests/portscan_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/hijack_test[1]_include.cmake")
include("/root/repo/build/tests/diff_test[1]_include.cmake")
include("/root/repo/build/tests/geojson_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
add_test(anycastd_cli_roundtrip "/usr/bin/cmake" "-DANYCASTD=/root/repo/build/tools/anycastd" "-DWORK_DIR=/root/repo/build/cli_smoke" "-P" "/root/repo/tests/cli_smoke.cmake")
set_tests_properties(anycastd_cli_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
