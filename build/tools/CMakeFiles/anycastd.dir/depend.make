# Empty dependencies file for anycastd.
# This may be replaced when dependencies are built.
