file(REMOVE_RECURSE
  "CMakeFiles/anycastd.dir/anycastd.cpp.o"
  "CMakeFiles/anycastd.dir/anycastd.cpp.o.d"
  "anycastd"
  "anycastd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycastd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
