file(REMOVE_RECURSE
  "CMakeFiles/anycast_flags.dir/flags.cpp.o"
  "CMakeFiles/anycast_flags.dir/flags.cpp.o.d"
  "libanycast_flags.a"
  "libanycast_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anycast_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
