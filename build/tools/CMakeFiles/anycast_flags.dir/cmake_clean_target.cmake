file(REMOVE_RECURSE
  "libanycast_flags.a"
)
