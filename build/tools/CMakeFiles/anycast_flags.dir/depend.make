# Empty dependencies file for anycast_flags.
# This may be replaced when dependencies are built.
