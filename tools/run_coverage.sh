#!/usr/bin/env bash
# Line-coverage gate: builds the tree with -DANYCAST_COVERAGE=ON (gcov
# instrumentation), runs the full ctest suite, and prints per-target line
# coverage for every library under src/. The build tree lives in
# <repo>/build-coverage (gitignored).
#
#   tools/run_coverage.sh              # full suite
#   tools/run_coverage.sh -R Metrics   # extra args go to ctest
#   tools/run_coverage.sh -R 'Journal|Progress|Trace'  # flight recorder only
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-coverage"

cmake -S "$repo" -B "$build" -DANYCAST_COVERAGE=ON \
  -DCMAKE_BUILD_TYPE=Debug
cmake --build "$build" -j "$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "$build" -name '*.gcda' -delete

ctest --test-dir "$build" --output-on-failure "$@"

echo
echo "per-target line coverage (src/ libraries):"
printf '  %-22s %10s %10s %8s\n' "target" "lines" "covered" "pct"

total_lines=0
total_covered=0
for target_dir in "$build"/src/*/CMakeFiles/*.dir; do
  [ -d "$target_dir" ] || continue
  target="$(basename "$target_dir" .dir)"
  lines=0
  covered=0
  # gcov prints "Lines executed:P% of N" per source file; sum the
  # per-file tallies so headers shared between targets are not skipped.
  while IFS= read -r gcda; do
    summary="$(gcov -n -o "$(dirname "$gcda")" "$gcda" 2>/dev/null |
               grep '^Lines executed:' | head -1)" || continue
    [ -n "$summary" ] || continue
    pct="$(printf '%s' "$summary" | sed 's/Lines executed:\([0-9.]*\)% of.*/\1/')"
    n="$(printf '%s' "$summary" | sed 's/.* of //')"
    c="$(awk -v p="$pct" -v n="$n" 'BEGIN { printf "%d", p * n / 100 + 0.5 }')"
    lines=$((lines + n))
    covered=$((covered + c))
  done < <(find "$target_dir" -name '*.gcda')
  [ "$lines" -gt 0 ] || continue
  printf '  %-22s %10d %10d %7.1f%%\n' "$target" "$lines" "$covered" \
    "$(awk -v c="$covered" -v l="$lines" 'BEGIN { print 100 * c / l }')"
  total_lines=$((total_lines + lines))
  total_covered=$((total_covered + covered))
done

if [ "$total_lines" -gt 0 ]; then
  printf '  %-22s %10d %10d %7.1f%%\n' "TOTAL" "$total_lines" \
    "$total_covered" \
    "$(awk -v c="$total_covered" -v l="$total_lines" 'BEGIN { print 100 * c / l }')"
else
  echo "no .gcda files found — did the instrumented tests run?" >&2
  exit 1
fi
