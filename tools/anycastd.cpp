// anycastd — command-line front end to the census library.
//
// Subcommands mirror the paper's workflow (Fig. 1):
//
//   anycastd world    [--seed N] [--unicast N]
//       print the simulated world's deployment inventory
//   anycastd census   --out DIR [--vps N] [--rate PPS] [--census-id N]
//       run one census; write one checkpoint file per VP into DIR.
//       --chaos injects deterministic faults (crashes, outages, reply
//       storms, stragglers); --resume reuses complete checkpoints and
//       re-runs only missing/crashed VPs
//   anycastd resume   --out DIR [...census flags]
//       alias for `census --resume`: recover a killed census
//   anycastd analyze  --in DIR [--geojson FILE] [--top N]
//       collate per-VP files (salvaging damaged ones), detect/enumerate/
//       geolocate, print the characterisation; optionally export replicas
//       as GeoJSON
//   anycastd serve    --in DIR [--queries FILE] [--against DIR]
//       publish DIR's census as an immutable snapshot and answer
//       point/replicas/batch/nearest/diff queries from a request file or
//       stdin; refuses snapshots that fail checksum validation unless
//       --allow-salvage
//   anycastd portscan [--top N]
//       TCP portscan of the top anycast ASes (Sec. 4.3)
//   anycastd diff     --out DIR
//       run two censuses and print the landscape changes (Sec. 5)
//   anycastd report   --in DIR [--journal FILE] [--format md|json]
//       render a Markdown/JSON run report joining the journal, the
//       metrics, and the re-analyzed checkpoints; with
//       --diff A --against B, compare two journals' semantic event
//       streams instead and print the first divergence (exit 3 on drift)
//   anycastd top      --metrics FILE [--interval S] [--iterations N]
//       live terminal dashboard over the telemetry document another
//       anycastd flushes via --metrics-interval: latency histograms,
//       per-second serving / per-round census series, SLO burn rates
//
// All commands are deterministic in --seed (and --chaos-seed). The
// telemetry plane (--slo, --metrics-interval, the serve verbs
// stats/slo/metricsdump) reports live wall-clock state and is kTiming
// class throughout — it never feeds the semantic contract.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/diff.hpp"
#include "anycast/analysis/geojson.hpp"
#include "anycast/analysis/report.hpp"
#include "anycast/analysis/run_report.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/resume.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/daemon/watch.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/net/fault.hpp"
#include "anycast/net/platform.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/progress.hpp"
#include "anycast/obs/slo.hpp"
#include "anycast/obs/telemetry.hpp"
#include "anycast/obs/trace.hpp"
#include "anycast/obs/trace_export.hpp"
#include "anycast/portscan/scanner.hpp"
#include "anycast/serving/query.hpp"
#include "anycast/serving/snapshot.hpp"
#include "anycast/serving/store.hpp"
#include "flags.hpp"

namespace {

namespace fs = std::filesystem;
using namespace anycast;
using tools::Flags;

constexpr tools::FlagHelp kCommonFlags[] = {
    {"seed", "N", "world/census seed (default 2015)"},
    {"unicast", "N", "unicast /24s per liveness class (default 6000)"},
    {"vps", "N", "PlanetLab vantage points (default 200)"},
    {"threads", "N",
     "worker threads for census/analyze/diff (default: all cores; "
     "1 = serial; output is identical for any value)"},
    {"metrics-out", "FILE",
     "write the telemetry document on exit (JSON metrics + latency + "
     "series + slo, or Prometheus text when FILE ends in .prom); FILE "
     "must be writable up front"},
    {"metrics-interval", "S",
     "also flush the telemetry document to --metrics-out every S seconds "
     "(atomic tmp+rename, so `anycastd top` can tail it mid-run)"},
    {"slo", "SPEC",
     "SLO objectives, e.g. \"p99_lookup_us=50,availability=0.999\"; "
     "multi-window burn rates tracked live (watch journals availability "
     "transitions as semantic events)"},
    {"journal-out", "FILE",
     "record the flight-recorder event journal (JSONL; semantic events "
     "deterministic, fsynced at census boundaries); writable up front"},
    {"trace-out", "FILE",
     "write a Chrome-trace/Perfetto JSON of spans + counter tracks on "
     "exit (load in ui.perfetto.dev); FILE must be writable up front"},
    {"progress", "",
     "print live heartbeat lines (VPs done, rates, ETA) to stderr"},
    {"verbose", "", "print a metrics summary table and span tree on exit"},
};

constexpr tools::FlagHelp kCensusFlags[] = {
    {"out", "DIR", "checkpoint directory (required)"},
    {"rate", "PPS", "probing rate (default 1000; 10000 overdrives VPs)"},
    {"census-id", "N", "census number, also offsets the seed (default 1)"},
    {"availability", "F", "P(VP is up for this census) (default 1.0)"},
    {"retries", "N", "retry passes over timed-out targets (default 0)"},
    {"retry-backoff", "S", "base backoff before retry pass k: S*2^k (1.0)"},
    {"retry-budget", "N", "max retry probes per VP, 0 = unlimited (0)"},
    {"deadline-hours", "H", "cut off VPs exceeding this wall clock (off)"},
    {"quarantine-drop", "F", "quarantine VPs with timeout rate > F (off)"},
    {"resume", "", "reuse complete checkpoints; re-run the rest"},
};

constexpr tools::FlagHelp kDataPlaneFlags[] = {
    {"shard-targets", "N",
     "targets per census shard (0 = one monolithic shard); any value "
     "yields identical output"},
    {"rss-budget-mb", "MB",
     "resident-value budget; frozen shards beyond it spill to "
     "<dir>/spill and fault back on access (0 = never spill)"},
};

constexpr tools::FlagHelp kWatchFlags[] = {
    {"rounds", "N", "census rounds the campaign should reach (default 3)"},
    {"chaos", "SCENARIO",
     "flaps|regional|hijack|outages|storm|churn|mixed, or bare --chaos "
     "for the classic per-VP faults"},
    {"coverage-floor", "F",
     "completed/active VP floor below which a round is degraded (0.8)"},
    {"hijack-round", "N", "round a staged hijack starts (default 3)"},
    {"churn", "", "grow/shrink/move one replica set between rounds"},
    {"churn-seed", "N", "world-churn seed (default 77)"},
    {"die-at-round", "N",
     "watchdog drill: abort round N mid-way (half the platform "
     "checkpointed, no state commit) and exit 70; restart resumes"},
    {"serve-queries", "FILE",
     "serve this query batch continuously during the campaign (each "
     "round's snapshot swapped in atomically) and print the final-round "
     "answers on exit"},
};

constexpr tools::FlagHelp kTopFlags[] = {
    {"metrics", "FILE",
     "telemetry document another anycastd flushes via --metrics-interval "
     "(required)"},
    {"interval", "S", "refresh period in seconds (default 2)"},
    {"iterations", "N", "exit after N renders (0 = until interrupted)"},
    {"plain", "", "append renders instead of clearing the screen (for "
     "logs and tests)"},
};

constexpr tools::FlagHelp kChaosFlags[] = {
    {"chaos", "", "inject deterministic faults into the census"},
    {"chaos-seed", "N", "fault-plan seed (default 42)"},
    {"crash-rate", "F", "P(VP crashes mid-walk) (default 0.15)"},
    {"outage-rate", "F", "P(VP has a transient outage window) (0.15)"},
    {"storm-rate", "F", "P(VP suffers a reply-loss storm) (0.15)"},
    {"storm-drop", "F", "extra reply-drop probability in a storm (0.5)"},
    {"straggler-rate", "F", "P(VP stalls like an overloaded node) (0.15)"},
    {"stall-factor", "X", "slowdown inside a stall window (8.0)"},
};

int usage() {
  std::fprintf(stderr,
               "usage: anycastd "
               "<world|census|resume|watch|analyze|serve|portscan|diff|"
               "report|top> [flags]\n"
               "  common flags:\n");
  tools::print_flag_help(stderr, kCommonFlags);
  std::fprintf(stderr, "  census / resume:\n");
  tools::print_flag_help(stderr, kCensusFlags);
  tools::print_flag_help(stderr, kChaosFlags);
  std::fprintf(stderr, "  data plane (census / resume / watch / analyze):\n");
  tools::print_flag_help(stderr, kDataPlaneFlags);
  std::fprintf(stderr, "  watch (supervised multi-round daemon):\n");
  tools::print_flag_help(stderr, kWatchFlags);
  std::fprintf(stderr, "  top (dashboard over a --metrics-interval file):\n");
  tools::print_flag_help(stderr, kTopFlags);
  std::fprintf(stderr,
               "  analyze:  --in DIR [--geojson FILE] [--top N]\n"
               "  serve:    --in DIR [--queries FILE] [--against DIR]\n"
               "            [--allow-salvage]  answer point/replicas/batch/\n"
               "            nearest/diff/stats/slo/metricsdump queries\n"
               "            (file or stdin) from the frozen snapshot;\n"
               "            strict checksums by default\n"
               "  portscan: [--top N]\n"
               "  diff:     [--epochs N] [--availability F]\n"
               "  report:   --in DIR [--journal FILE] [--format md|json] "
               "[--top N]\n"
               "            --diff JOURNAL_A --against JOURNAL_B "
               "(exit 3 on drift)\n");
  return 2;
}

net::WorldConfig world_config_from(const Flags& flags) {
  net::WorldConfig config;
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2015));
  const auto unicast =
      static_cast<std::uint32_t>(flags.get_int("unicast", 6000));
  config.unicast_alive_slash24 = unicast;
  config.unicast_silent_slash24 = unicast;
  config.unicast_dead_slash24 = unicast;
  return config;
}

std::vector<net::VantagePoint> platform_from(const Flags& flags) {
  return net::make_planetlab(
      {.node_count = static_cast<int>(flags.get_int("vps", 200)),
       .seed = static_cast<std::uint64_t>(flags.get_int("seed", 2015)) ^
               0xF1E1D});
}

/// The --threads pool: default (0) uses every core; 1 is the exact
/// serial path. Results never depend on the value (merge order is fixed).
concurrency::ThreadPool pool_from(const Flags& flags) {
  return concurrency::ThreadPool(
      static_cast<std::size_t>(std::max<std::int64_t>(
          0, flags.get_int("threads", 0))));
}

/// Attaches the --progress heartbeat to a pool for one phase and, on
/// destruction, stops it and emits one final tick — so even a run shorter
/// than the heartbeat interval prints at least one snapshot line.
struct ProgressGuard {
  concurrency::ThreadPool* pool = nullptr;
  std::shared_ptr<obs::ProgressTracker> tracker;
  ~ProgressGuard() {
    if (pool == nullptr || tracker == nullptr) return;
    pool->stop_heartbeat();
    const auto [done, total] = pool->progress();
    tracker->tick(done, total);
  }
};

ProgressGuard maybe_start_progress(concurrency::ThreadPool& pool,
                                   const Flags& flags, const char* phase) {
  if (!flags.get_bool("progress")) return {};
  obs::ProgressConfig config;
  config.journal = obs::journal().recording() ? &obs::journal() : nullptr;
  config.sampler = &obs::counter_sampler();
  config.sink = stderr;
  config.phase = phase;
  auto tracker = std::make_shared<obs::ProgressTracker>(std::move(config));
  pool.start_heartbeat(std::chrono::milliseconds(100),
                       [tracker](std::size_t done, std::size_t total) {
                         tracker->tick(done, total);
                       });
  return ProgressGuard{&pool, std::move(tracker)};
}

int reject_unknown(const Flags& flags) {
  const auto unknown = flags.unknown();
  if (unknown.empty()) return 0;
  for (const std::string& name : unknown) {
    std::fprintf(stderr, "unknown flag: --%s\n", name.c_str());
  }
  return 2;
}

std::optional<std::string> slurp_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

int cmd_world(const Flags& flags) {
  const net::SimulatedInternet internet(world_config_from(flags));
  std::size_t anycast_prefixes = 0;
  for (const net::Deployment& deployment : internet.deployments()) {
    anycast_prefixes += deployment.prefixes.size();
  }
  (void)flags.get_int("threads", 0);  // accepted everywhere, unused here
  std::printf("world seed %lld: %zu routed /24 (%zu anycast in %zu ASes)\n",
              static_cast<long long>(flags.get_int("seed", 2015)),
              internet.targets().size(), anycast_prefixes,
              internet.deployments().size());
  std::printf("\n%-18s %-9s %6s %6s %7s %6s\n", "AS", "category", "sites",
              "IP/24", "ports", "DNS");
  const auto top = static_cast<std::size_t>(flags.get_int("top", 20));
  if (const int rc = reject_unknown(flags)) return rc;
  for (std::size_t d = 0; d < top && d < internet.deployments().size();
       ++d) {
    const net::Deployment& deployment = internet.deployments()[d];
    std::printf("%-18s %-9s %6zu %6zu %7zu %6s\n",
                deployment.whois_name.c_str(),
                std::string(net::to_string(deployment.category)).c_str(),
                deployment.sites.size(), deployment.prefixes.size(),
                deployment.tcp_services.size(),
                deployment.serves_dns ? "yes" : "no");
  }
  return 0;
}

/// Census prober configuration from the kCensusFlags knobs.
census::FastPingConfig fastping_config_from(const Flags& flags) {
  census::FastPingConfig fastping;
  fastping.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2015)) +
                  static_cast<std::uint64_t>(flags.get_int("census-id", 1));
  fastping.probe_rate_pps = flags.get_double("rate", 1000.0);
  fastping.vp_availability = flags.get_double("availability", 1.0);
  fastping.retry_max_attempts =
      static_cast<int>(flags.get_int("retries", 0));
  fastping.retry_backoff_s = flags.get_double("retry-backoff", 1.0);
  fastping.retry_probe_budget =
      static_cast<std::uint64_t>(flags.get_int("retry-budget", 0));
  fastping.vp_deadline_hours = flags.get_double("deadline-hours", 0.0);
  fastping.quarantine_drop_rate = flags.get_double("quarantine-drop", 1.0);
  return fastping;
}

/// Data-plane shape from the kDataPlaneFlags knobs. Spill files land
/// under the command's own directory (checkpoint/out dir + "/spill"), so
/// a wiped run directory also wipes its spill tier.
census::DataPlaneConfig data_plane_from(const Flags& flags,
                                        const fs::path& base_dir) {
  census::DataPlaneConfig plane;
  plane.shard_targets = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("shard-targets", 0)));
  plane.rss_budget_mb = static_cast<std::size_t>(
      std::max<std::int64_t>(0, flags.get_int("rss-budget-mb", 0)));
  plane.spill_dir = (base_dir / "spill").string();
  return plane;
}

/// The classic four-fault spec from the kChaosFlags knobs.
net::FaultSpec chaos_spec_from(const Flags& flags) {
  net::FaultSpec spec;
  spec.seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 42));
  spec.crash_rate = flags.get_double("crash-rate", 0.15);
  spec.outage_rate = flags.get_double("outage-rate", 0.15);
  spec.storm_rate = flags.get_double("storm-rate", 0.15);
  spec.storm_drop = flags.get_double("storm-drop", 0.5);
  spec.straggler_rate = flags.get_double("straggler-rate", 0.15);
  spec.stall_factor = flags.get_double("stall-factor", 8.0);
  return spec;
}

/// Fault plan from the kChaosFlags knobs; nullopt without --chaos.
std::optional<net::FaultPlan> fault_plan_from(const Flags& flags) {
  const net::FaultSpec spec = chaos_spec_from(flags);
  if (!flags.get_bool("chaos")) return std::nullopt;
  return net::FaultPlan(spec);
}

int cmd_census(const Flags& flags, bool resume) {
  const auto out_dir = flags.get("out");
  if (!out_dir.has_value()) {
    std::fprintf(stderr, "census: --out DIR is required\n");
    return 2;
  }
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  const census::FastPingConfig fastping = fastping_config_from(flags);
  const auto plan = fault_plan_from(flags);
  const auto census_id =
      static_cast<std::uint32_t>(flags.get_int("census-id", 1));
  resume = resume || flags.get_bool("resume");
  const census::DataPlaneConfig plane = data_plane_from(flags, *out_dir);
  concurrency::ThreadPool pool = pool_from(flags);
  if (const int rc = reject_unknown(flags)) return rc;

  if (resume) {
    // A resume with nothing to resume is a mis-typed directory or census
    // id, not a request for a fresh census — silently starting one would
    // hide the mistake behind hours of probing.
    const bool any_checkpoint = std::any_of(
        vps.begin(), vps.end(), [&](const net::VantagePoint& vp) {
          return fs::exists(
              census::census_checkpoint_path(*out_dir, census_id, vp.id));
        });
    if (!any_checkpoint) {
      std::fprintf(stderr,
                   "resume: no checkpoint for census %u in %s — nothing to "
                   "resume (run `anycastd census` first)\n",
                   census_id, out_dir->c_str());
      return 1;
    }
  }
  if (!resume) {
    // A fresh census owns its checkpoints: drop leftovers so stale
    // complete files from an earlier run cannot masquerade as this one's.
    for (const net::VantagePoint& vp : vps) {
      fs::remove(census::census_checkpoint_path(*out_dir, census_id, vp.id));
    }
  }
  census::Greylist blacklist;
  census::ShardedResumeReport report;
  {
    const ProgressGuard progress =
        maybe_start_progress(pool, flags, "census");
    report = census::resume_census_sharded(
        internet, vps, hitlist, blacklist, fastping, *out_dir, census_id,
        plane, plan.has_value() ? &*plan : nullptr, &pool);
  }
  const census::CensusSummary& summary = report.output.summary;

  std::printf(
      "census %u: %zu VPs x %zu targets -> %llu echo replies, %llu ICMP "
      "errors (%zu greylisted)\n",
      census_id, vps.size(), hitlist.size(),
      static_cast<unsigned long long>(summary.echo_replies),
      static_cast<unsigned long long>(summary.errors),
      summary.greylist_new);
  using census::VpOutcome;
  std::printf(
      "VP outcomes: %zu completed, %zu crashed, %zu cut off, %zu "
      "quarantined, %zu skipped\n",
      summary.outcome_count(VpOutcome::kCompleted),
      summary.outcome_count(VpOutcome::kCrashed),
      summary.outcome_count(VpOutcome::kCutOff),
      summary.outcome_count(VpOutcome::kQuarantined),
      summary.outcome_count(VpOutcome::kSkipped));
  if (summary.retry_probes > 0) {
    std::printf("retries: %llu probes recovered %llu targets\n",
                static_cast<unsigned long long>(summary.retry_probes),
                static_cast<unsigned long long>(summary.retry_recovered));
  }
  if (resume) {
    std::printf("resume: %zu checkpoints reused, %zu VPs re-run, %zu "
                "salvaged\n",
                report.vps_reused, report.vps_rerun, report.files_salvaged);
  }
  std::printf("wrote %zu files to %s\n",
              report.vps_reused + report.vps_rerun, out_dir->c_str());
  return 0;
}

int cmd_watch(const Flags& flags) {
  const auto out_dir = flags.get("out");
  if (!out_dir.has_value()) {
    std::fprintf(stderr, "watch: --out DIR is required\n");
    return 2;
  }
  // Non-const: watch-mode worlds churn replicas between rounds.
  net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  daemon::WatchConfig config;
  config.rounds = static_cast<int>(flags.get_int("rounds", 3));
  config.out_dir = *out_dir;
  config.fastping = fastping_config_from(flags);
  config.supervisor.coverage_floor = flags.get_double("coverage-floor", 0.8);
  config.hijack_from_round =
      static_cast<int>(flags.get_int("hijack-round", 3));
  config.die_at_round = static_cast<int>(flags.get_int("die-at-round", 0));
  config.churn = flags.get_bool("churn");
  config.churn_seed =
      static_cast<std::uint64_t>(flags.get_int("churn-seed", 77));
  config.data_plane = data_plane_from(flags, *out_dir);
  if (const auto slo_spec = flags.get("slo")) {
    // Already validated in main (a bad spec exited before dispatch); the
    // daemon re-installs these at run() start so availability transitions
    // land in the journal as semantic round events.
    std::string slo_error;
    if (auto objectives = obs::parse_slo_spec(*slo_spec, &slo_error)) {
      config.slo = std::move(*objectives);
    }
  }

  if (const auto chaos = flags.get("chaos")) {
    net::FaultSpec spec;
    spec.seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 42));
    config.chaos_enabled = true;
    if (*chaos == "true") {  // bare --chaos: the classic per-VP faults
      spec = chaos_spec_from(flags);
    } else if (*chaos == "flaps") {
      spec.flap_rate = 0.5;
    } else if (*chaos == "regional") {
      spec.regional_rate = 0.9;
      spec.regional_fraction = 0.35;
      spec.regional_span = 0.5;
    } else if (*chaos == "hijack") {
      spec.hijack_vp_fraction = 0.6;
      // Eight victims spread across the hitlist; the monitor only alarms
      // on the ones its reference round classified as unicast.
      for (std::size_t i = 1; i <= 8 && hitlist.size() > 9; ++i) {
        spec.hijack_targets.push_back(
            static_cast<std::uint32_t>(i * hitlist.size() / 9));
      }
    } else if (*chaos == "outages") {
      spec.outage_rate = 0.30;
      spec.crash_rate = 0.05;
    } else if (*chaos == "storm") {
      spec.storm_rate = 0.40;
    } else if (*chaos == "churn") {
      config.chaos_enabled = false;  // pure world churn, no probe faults
      config.churn = true;
    } else if (*chaos == "mixed") {
      spec.flap_rate = 0.25;
      spec.outage_rate = 0.15;
      spec.storm_rate = 0.15;
      config.churn = true;
    } else {
      std::fprintf(stderr, "watch: unknown --chaos scenario: %s\n",
                   chaos->c_str());
      return 2;
    }
    config.chaos = spec;
  }
  concurrency::ThreadPool pool = pool_from(flags);

  // --serve-queries FILE: serve the request batch continuously DURING the
  // campaign from whatever snapshot is current (epoch swaps never stall
  // the reader), then answer it once more against the final round for a
  // deterministic stdout.
  const auto serve_queries = flags.get("serve-queries");
  std::string serve_text;
  if (serve_queries.has_value()) {
    const auto text = slurp_text(*serve_queries);
    if (!text.has_value()) {
      std::fprintf(stderr, "watch: cannot read --serve-queries %s\n",
                   serve_queries->c_str());
      return 2;
    }
    serve_text = *text;
  }
  if (const int rc = reject_unknown(flags)) return rc;

  serving::SnapshotStore store;
  if (serve_queries.has_value()) config.serve_store = &store;

  daemon::WatchDaemon watcher(internet, vps, geo::world_index(), hitlist,
                              config);
  std::atomic<bool> serve_stop{false};
  std::atomic<std::uint64_t> serve_batches{0};
  std::atomic<std::uint64_t> serve_swaps{0};
  std::thread serve_thread;
  if (serve_queries.has_value()) {
    serve_thread = std::thread([&] {
      std::uint64_t last_id = ~std::uint64_t{0};
      while (!serve_stop.load(std::memory_order_relaxed)) {
        {
          serving::ReadGuard snapshot_guard = store.acquire();
          if (snapshot_guard) {
            if (snapshot_guard->id() != last_id) {
              last_id = snapshot_guard->id();
              serve_swaps.fetch_add(1, std::memory_order_relaxed);
            }
            std::string scratch;
            const serving::QueryContext context{&snapshot_guard.view(),
                                                nullptr};
            (void)serving::answer_queries(context, serve_text, scratch);
            serve_batches.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Rotate the per-second telemetry window and evaluate latency
        // SLOs; cheap (clock read + compare) when under a second.
        obs::telemetry().tick();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  daemon::WatchResult result;
  {
    const ProgressGuard progress = maybe_start_progress(pool, flags, "watch");
    result = watcher.run(&pool);
  }
  if (serve_thread.joinable()) {
    serve_stop.store(true, std::memory_order_relaxed);
    serve_thread.join();
  }
  if (!result.error.empty()) {
    std::fprintf(stderr, "watch: %s\n", result.error.c_str());
    return result.exit_code == 0 ? 1 : result.exit_code;
  }
  for (const daemon::RoundRecord& record : result.rounds) {
    const daemon::RoundVerdict& v = record.verdict;
    std::printf(
        "round %d: %s, coverage %.1f%% (%zu/%zu VPs, escalation %d)%s — "
        "%zu dirty rows, %zu anycast /24, %zu churn events, %zu hijack "
        "alarms\n",
        v.round, std::string(daemon::to_string(v.health)).c_str(),
        100.0 * v.coverage, v.completed, v.active, v.escalation,
        record.resumed ? " [resumed]" : "", record.dirty, record.anycast,
        record.churn_events, record.hijack_alarms);
  }
  if (result.exit_code == daemon::kAbortedExitCode) {
    std::printf("watch: watchdog abort drill fired — restart with the same "
                "--out to resume\n");
  } else {
    std::printf("watch: campaign at %d/%d rounds in %s\n",
                result.rounds_completed, config.rounds, out_dir->c_str());
  }

  if (serve_queries.has_value() && result.exit_code == 0) {
    // Final-epoch answers: deterministic for a given campaign, so smoke
    // tests can pin them (in-campaign batch/swap counts go to stderr —
    // they are timing).
    serving::ReadGuard snapshot_guard = store.acquire();
    if (snapshot_guard) {
      std::string answers;
      const serving::QueryContext context{&snapshot_guard.view(), nullptr};
      const serving::QueryBatchResult served =
          serving::answer_queries(context, serve_text, answers);
      if (!served.ok()) {
        std::fprintf(stderr, "watch: bad query at line %zu: %s\n",
                     served.error_line, served.error.c_str());
        return 2;
      }
      std::fwrite(answers.data(), 1, answers.size(), stdout);
      std::fprintf(
          stderr,
          "serve: %llu in-campaign batches across %llu snapshot(s), final "
          "round %llu\n",
          static_cast<unsigned long long>(serve_batches.load()),
          static_cast<unsigned long long>(serve_swaps.load()),
          static_cast<unsigned long long>(snapshot_guard->id()));
    }
  }
  return result.exit_code;
}

int cmd_analyze(const Flags& flags) {
  const auto in_dir = flags.get("in");
  if (!in_dir.has_value()) {
    std::fprintf(stderr, "analyze: --in DIR is required\n");
    return 2;
  }
  // The same world/platform parameters must be supplied as at census time.
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();

  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(*in_dir)) {
    if (entry.path().extension() == ".anc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "analyze: no .anc files in %s\n", in_dir->c_str());
    return 1;
  }

  census::CollateStats stats;
  const census::ShardedCensusMatrix data = census::collate_census_files_sharded(
      files, hitlist.size(), data_plane_from(flags, *in_dir), &stats);
  std::printf(
      "collated %zu files (%zu salvaged, %zu skipped), %zu responsive "
      "targets\n",
      files.size(), stats.files_salvaged, stats.files_skipped,
      data.responsive_targets(2));

  concurrency::ThreadPool pool = pool_from(flags);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  std::vector<analysis::TargetOutcome> outcomes;
  {
    const ProgressGuard progress =
        maybe_start_progress(pool, flags, "analyze");
    outcomes = analyzer.analyze(data, hitlist, /*min_vps=*/2, &pool);
  }
  analysis::CensusReport report(internet, std::move(outcomes));
  const analysis::GlanceRow all = report.glance_all();
  std::printf(
      "anycast: %zu /24 in %zu ASes, %llu replicas, %zu cities, %zu "
      "countries\n",
      all.ip24, all.ases, static_cast<unsigned long long>(all.replicas),
      all.cities, all.countries);

  const auto top = static_cast<std::size_t>(flags.get_int("top", 15));
  std::printf("\n%-18s %-9s %14s %6s\n", "AS", "category", "replicas//24",
              "IP/24");
  for (std::size_t i = 0; i < top && i < report.ases().size(); ++i) {
    const analysis::AsReport& as_report = report.ases()[i];
    std::printf("%-18s %-9s %8.1f±%-4.1f %6zu\n",
                as_report.deployment->whois_name.c_str(),
                std::string(net::to_string(as_report.deployment->category))
                    .c_str(),
                as_report.mean_replicas, as_report.stddev_replicas,
                as_report.detected_ip24);
  }

  if (const auto geojson_path = flags.get("geojson")) {
    std::ofstream out(*geojson_path);
    out << analysis::census_geojson(report);
    std::printf("\nwrote GeoJSON to %s\n", geojson_path->c_str());
  }
  return reject_unknown(flags);
}

/// Loads one checkpoint directory into a served snapshot: collate,
/// analyze, freeze. Strict by default — a serving plane must not silently
/// answer from a snapshot whose files failed their checksums; pass
/// `allow_salvage` to serve the recovered prefix anyway.
std::optional<serving::SnapshotView> load_snapshot(
    const census::DataPlaneConfig& plane, const std::string& dir,
    std::uint64_t id, bool allow_salvage,
    std::span<const net::VantagePoint> vps, const census::Hitlist& hitlist,
    concurrency::ThreadPool* pool) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".anc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "serve: no .anc files in %s\n", dir.c_str());
    return std::nullopt;
  }
  census::CollateStats stats;
  census::ShardedCensusMatrix data = census::collate_census_files_sharded(
      files, hitlist.size(), plane, &stats, /*salvage=*/allow_salvage);
  if (!allow_salvage && (stats.files_salvaged > 0 || stats.files_skipped > 0)) {
    std::fprintf(stderr,
                 "serve: refusing snapshot %s: %zu of %zu files failed "
                 "checksum validation (--allow-salvage serves the "
                 "recoverable prefix)\n",
                 dir.c_str(), stats.files_salvaged + stats.files_skipped,
                 files.size());
    return std::nullopt;
  }
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  std::vector<analysis::TargetOutcome> outcomes =
      analyzer.analyze(data, hitlist, /*min_vps=*/2, pool);
  return serving::SnapshotView::build(std::move(data), std::move(outcomes),
                                      id, &hitlist);
}

int cmd_serve(const Flags& flags) {
  const auto in_dir = flags.get("in");
  if (!in_dir.has_value()) {
    std::fprintf(stderr, "serve: --in DIR is required\n");
    return 2;
  }
  const auto against = flags.get("against");
  const auto queries_path = flags.get("queries");
  const bool allow_salvage = flags.get_bool("allow-salvage");
  concurrency::ThreadPool pool = pool_from(flags);

  // The request text is read before the (expensive) snapshot load so a
  // mistyped path fails in milliseconds, not after a full analysis.
  std::string query_text;
  if (queries_path.has_value()) {
    const auto text = slurp_text(*queries_path);
    if (!text.has_value()) {
      std::fprintf(stderr, "serve: cannot read --queries %s\n",
                   queries_path->c_str());
      return 2;
    }
    query_text = *text;
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    query_text = std::move(buffer).str();
  }

  // Same world/platform parameters as at census time (as `analyze`).
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const census::DataPlaneConfig plane = data_plane_from(flags, *in_dir);
  if (const int rc = reject_unknown(flags)) return rc;

  auto current = load_snapshot(plane, *in_dir, /*id=*/1, allow_salvage, vps,
                               hitlist, &pool);
  if (!current.has_value()) return 1;
  std::optional<serving::SnapshotView> previous;
  if (against.has_value()) {
    previous = load_snapshot(data_plane_from(flags, *against), *against,
                             /*id=*/0, allow_salvage, vps, hitlist, &pool);
    if (!previous.has_value()) return 1;
  }

  // Queries go through the real publication path — publish + pinned
  // guard — not a bare view, so the one-shot CLI exercises exactly what
  // a long-lived server would.
  serving::SnapshotStore store;
  store.publish(std::move(*current));
  serving::ReadGuard guard = store.acquire();
  serving::QueryContext context{&guard.view(),
                                previous.has_value() ? &*previous : nullptr};
  std::string answers;
  const serving::QueryBatchResult result =
      serving::answer_queries(context, query_text, answers);
  if (!result.ok()) {
    std::fprintf(stderr, "serve: bad query at line %zu: %s\n",
                 result.error_line, result.error.c_str());
    return 2;
  }
  std::fwrite(answers.data(), 1, answers.size(), stdout);
  std::fprintf(stderr,
               "serve: answered %zu queries from snapshot %llu "
               "(%zu targets, %zu anycast)\n",
               result.answered,
               static_cast<unsigned long long>(guard->id()),
               guard->target_count(), guard->anycast_count());
  return 0;
}

// ---------------------------------------------------------------------
// `anycastd top`: a terminal dashboard over the telemetry document a
// sibling anycastd flushes via --metrics-interval. The document shape is
// our own (obs::TelemetryPlane::document_json), so a small scan-based
// reader is enough — no JSON library dependency. Strings in the document
// never contain brackets, so bracket depth-matching is exact.

/// Bracket-matched body of the array following `"key": [`, without the
/// outer brackets; empty when the key is missing.
std::string_view json_array_after(std::string_view doc, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  std::size_t at = doc.find(needle);
  if (at == std::string_view::npos) return {};
  at = doc.find('[', at + needle.size());
  if (at == std::string_view::npos) return {};
  int depth = 0;
  for (std::size_t i = at; i < doc.size(); ++i) {
    if (doc[i] == '[') ++depth;
    if (doc[i] == ']' && --depth == 0) return doc.substr(at + 1, i - at - 1);
  }
  return {};
}

/// Splits an array body into its top-level `{...}` object bodies.
std::vector<std::string_view> json_objects(std::string_view array) {
  std::vector<std::string_view> out;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < array.size(); ++i) {
    if (array[i] == '{' && depth++ == 0) start = i;
    if (array[i] == '}' && --depth == 0) {
      out.push_back(array.substr(start, i - start + 1));
    }
  }
  return out;
}

/// Scalar after `"key":` inside one object: the raw token for numbers and
/// booleans, the unquoted text for strings; empty when missing.
std::string json_scalar(std::string_view object, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  std::size_t at = object.find(needle);
  if (at == std::string_view::npos) return {};
  at += needle.size();
  while (at < object.size() && object[at] == ' ') ++at;
  if (at >= object.size()) return {};
  if (object[at] == '"') {
    const std::size_t end = object.find('"', at + 1);
    if (end == std::string_view::npos) return {};
    return std::string(object.substr(at + 1, end - at - 1));
  }
  std::size_t end = at;
  while (end < object.size() && object[end] != ',' && object[end] != '}' &&
         object[end] != ']' && object[end] != '\n') {
    ++end;
  }
  while (end > at && object[end - 1] == ' ') --end;
  return std::string(object.substr(at, end - at));
}

/// Newest value of one series field: the last element of the field's
/// array, or "-" when the window is still empty.
std::string series_last(std::string_view series_object, std::string_view field) {
  const std::string_view array = json_array_after(series_object, field);
  const std::size_t comma = array.rfind(',');
  std::string_view tail =
      comma == std::string_view::npos ? array : array.substr(comma + 1);
  while (!tail.empty() && (tail.front() == ' ' || tail.front() == '\n')) {
    tail.remove_prefix(1);
  }
  while (!tail.empty() && (tail.back() == ' ' || tail.back() == '\n')) {
    tail.remove_suffix(1);
  }
  return tail.empty() ? "-" : std::string(tail);
}

void render_top(std::string_view doc, const std::string& source, bool plain) {
  if (!plain) std::printf("\x1b[2J\x1b[H");  // clear + home, like top(1)
  std::printf("anycastd top — %s\n\n", source.c_str());

  const auto histos = json_objects(json_array_after(doc, "latency"));
  std::printf("  %-20s %-4s %12s %10s %10s %10s %10s\n", "latency", "unit",
              "count", "p50", "p99", "p999", "max");
  for (const std::string_view h : histos) {
    std::printf("  %-20s %-4s %12s %10s %10s %10s %10s\n",
                json_scalar(h, "name").c_str(), json_scalar(h, "unit").c_str(),
                json_scalar(h, "count").c_str(), json_scalar(h, "p50").c_str(),
                json_scalar(h, "p99").c_str(), json_scalar(h, "p999").c_str(),
                json_scalar(h, "max").c_str());
  }
  if (histos.empty()) std::printf("  (no latency samples yet)\n");

  for (const std::string_view s : json_objects(json_array_after(doc, "series"))) {
    const std::string name = json_scalar(s, "name");
    if (name == "serving_per_second") {
      std::printf(
          "\n  serving (last 1s window): qps %s  errors/s %s  p50 %s us  "
          "p99 %s us  p999 %s us\n",
          series_last(s, "qps").c_str(), series_last(s, "errors_per_s").c_str(),
          series_last(s, "p50_us").c_str(), series_last(s, "p99_us").c_str(),
          series_last(s, "p999_us").c_str());
    } else if (name == "census_per_round") {
      std::printf(
          "\n  census (last round): coverage %s  completed %s/%s  probes %s  "
          "echo rate %s  dirty %s  anycast %s  round %s ms\n",
          series_last(s, "coverage").c_str(),
          series_last(s, "completed").c_str(), series_last(s, "active").c_str(),
          series_last(s, "probes").c_str(), series_last(s, "echo_rate").c_str(),
          series_last(s, "dirty").c_str(), series_last(s, "anycast").c_str(),
          series_last(s, "round_ms").c_str());
    }
  }

  const auto slos = json_objects(json_array_after(doc, "slo"));
  if (slos.empty()) {
    std::printf("\n  slo: none configured\n");
  } else {
    std::printf("\n  slo:\n");
    for (const std::string_view o : slos) {
      std::printf(
          "    %-20s target %-10s burn %s/%s permille (short/long)  %s  "
          "[%s violations / %s windows]\n",
          json_scalar(o, "objective").c_str(),
          json_scalar(o, "threshold").c_str(),
          json_scalar(o, "burn_short_permille").c_str(),
          json_scalar(o, "burn_long_permille").c_str(),
          json_scalar(o, "violating") == "true" ? "VIOLATING" : "ok",
          json_scalar(o, "violations").c_str(),
          json_scalar(o, "windows").c_str());
    }
  }
}

int cmd_top(const Flags& flags) {
  const auto metrics = flags.get("metrics");
  const double interval = flags.get_double("interval", 2.0);
  const auto iterations = flags.get_int("iterations", 0);
  const bool plain = flags.get_bool("plain");
  if (!metrics.has_value()) {
    std::fprintf(stderr,
                 "top: --metrics FILE is required (point it at the file a "
                 "daemon writes via --metrics-interval)\n");
    return 2;
  }
  if (const int rc = reject_unknown(flags)) return rc;
  for (std::int64_t iter = 0; iterations == 0 || iter < iterations; ++iter) {
    if (iter > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(0.1, interval)));
    }
    // The flusher writes via tmp+rename, so this read never sees a torn
    // document — at worst a whole previous one.
    const auto text = slurp_text(*metrics);
    if (!text.has_value()) {
      std::fprintf(stderr, "top: cannot read %s\n", metrics->c_str());
      return 1;
    }
    render_top(*text, *metrics, plain);
    std::fflush(stdout);
  }
  return 0;
}

int cmd_portscan(const Flags& flags) {
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto top = static_cast<std::size_t>(flags.get_int("top", 100));
  (void)flags.get_int("threads", 0);  // accepted everywhere, unused here
  if (const int rc = reject_unknown(flags)) return rc;
  const portscan::PortScanner scanner(internet);
  const auto scans = scanner.scan_all(
      internet.deployments().subspan(0, std::min<std::size_t>(
                                            top,
                                            internet.deployments().size())));
  const portscan::ScanStatistics stats = portscan::summarize(scans);
  std::printf(
      "scanned %zu ASes: %llu responsive IPs, %llu ASes with open ports,\n"
      "%llu distinct ports (%llu SSL), %llu well-known services, %llu "
      "software packages\n",
      scans.size(), static_cast<unsigned long long>(stats.ips_responsive),
      static_cast<unsigned long long>(stats.ases_with_open_port),
      static_cast<unsigned long long>(stats.distinct_open_ports),
      static_cast<unsigned long long>(stats.ssl_ports),
      static_cast<unsigned long long>(stats.well_known),
      static_cast<unsigned long long>(stats.software_packages));
  std::printf("\ntop ports by AS:");
  const auto ranking = portscan::rank_ports_by_as(scans);
  for (std::size_t i = 0; i < 10 && i < ranking.size(); ++i) {
    std::printf(" %u(%u)", ranking[i].first, ranking[i].second);
  }
  std::printf("\n");
  return 0;
}

int cmd_diff(const Flags& flags) {
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const auto epochs = static_cast<int>(flags.get_int("epochs", 2));
  const double availability = flags.get_double("availability", 0.85);
  concurrency::ThreadPool pool = pool_from(flags);
  if (const int rc = reject_unknown(flags)) return rc;
  const ProgressGuard progress = maybe_start_progress(pool, flags, "diff");

  analysis::CensusSnapshot previous;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    census::Greylist blacklist;
    census::FastPingConfig fastping;
    fastping.seed = 5000 + static_cast<std::uint64_t>(epoch);
    fastping.vp_availability = availability;
    const auto output = run_census(internet, vps, hitlist, blacklist,
                                   fastping, /*faults=*/nullptr, &pool);
    analysis::CensusSnapshot snapshot(
        analyzer.analyze(output.data, hitlist, /*min_vps=*/2, &pool));
    std::printf("epoch %d: %zu anycast /24\n", epoch, snapshot.size());
    if (epoch > 1) {
      const analysis::CensusDiff diff =
          diff_censuses(previous, snapshot, /*min_replica_delta=*/3);
      std::printf(
          "  vs previous: %zu appeared, %zu disappeared, %zu grew, %zu "
          "shrank\n",
          diff.count(analysis::PrefixChange::Kind::kAppeared),
          diff.count(analysis::PrefixChange::Kind::kDisappeared),
          diff.count(analysis::PrefixChange::Kind::kGrew),
          diff.count(analysis::PrefixChange::Kind::kShrank));
    }
    previous = std::move(snapshot);
  }
  return 0;
}

int cmd_report(const Flags& flags) {
  // Drift-diff mode: compare two journals' semantic event streams.
  if (const auto diff_a = flags.get("diff")) {
    const auto diff_b = flags.get("against");
    if (!diff_b.has_value()) {
      std::fprintf(stderr,
                   "report: --diff JOURNAL_A needs --against JOURNAL_B\n");
      return 2;
    }
    const auto text_a = slurp_text(*diff_a);
    const auto text_b = slurp_text(*diff_b);
    if (!text_a.has_value() || !text_b.has_value()) {
      std::fprintf(stderr, "report: cannot read %s\n",
                   (!text_a.has_value() ? *diff_a : *diff_b).c_str());
      return 2;
    }
    if (const int rc = reject_unknown(flags)) return rc;
    // Trim to complete lines first: a crash-interrupted journal is
    // guaranteed consistent only up to its last newline.
    const analysis::Divergence drift = analysis::journal_drift(
        obs::journal_consistent_prefix(*text_a),
        obs::journal_consistent_prefix(*text_b));
    if (!drift.diverged) {
      std::printf("zero drift: %zu semantic events identical\n",
                  drift.left_count);
      return 0;
    }
    std::printf("DRIFT at semantic event %zu (A has %zu, B has %zu):\n",
                drift.index, drift.left_count, drift.right_count);
    std::printf("  A: %s\n",
                drift.left.empty() ? "<stream ended>" : drift.left.c_str());
    std::printf("  B: %s\n",
                drift.right.empty() ? "<stream ended>" : drift.right.c_str());
    return 3;
  }

  const auto in_dir = flags.get("in");
  if (!in_dir.has_value()) {
    std::fprintf(stderr,
                 "report: --in DIR is required (or --diff A --against B)\n");
    return 2;
  }
  const std::string format(flags.get_or("format", "md"));
  if (format != "md" && format != "json") {
    std::fprintf(stderr, "report: --format must be md or json\n");
    return 2;
  }

  // Re-analyze the checkpoint directory, as `analyze` would.
  const net::SimulatedInternet internet(world_config_from(flags));
  const auto vps = platform_from(flags);
  const census::Hitlist hitlist =
      census::Hitlist::from_world(internet).without_dead();
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(*in_dir)) {
    if (entry.path().extension() == ".anc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "report: no .anc files in %s\n", in_dir->c_str());
    return 1;
  }
  const census::CensusMatrix data = census::collate_census_files(
      files, hitlist.size(), static_cast<census::CollateStats*>(nullptr));
  concurrency::ThreadPool pool = pool_from(flags);
  const analysis::CensusAnalyzer analyzer(vps, geo::world_index());
  const analysis::CensusReport census_report(
      internet, analyzer.analyze(data, hitlist, /*min_vps=*/2, &pool));

  analysis::JournalSummary journal_summary;
  bool have_journal = false;
  if (const auto journal_path = flags.get("journal")) {
    const auto text = slurp_text(*journal_path);
    if (!text.has_value()) {
      std::fprintf(stderr, "report: cannot read journal %s\n",
                   journal_path->c_str());
      return 2;
    }
    journal_summary =
        analysis::summarize_journal(obs::journal_consistent_prefix(*text));
    have_journal = true;
  }
  const auto top = static_cast<std::size_t>(flags.get_int("top", 10));
  if (const int rc = reject_unknown(flags)) return rc;

  analysis::RunReportInputs inputs;
  inputs.census = &census_report;
  inputs.journal = have_journal ? &journal_summary : nullptr;
  inputs.registry = &obs::metrics();
  inputs.top_ases = top;
  const std::string body = format == "json"
                               ? analysis::render_run_report_json(inputs)
                               : analysis::render_run_report_markdown(inputs);
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

/// Proves an output path is writable before any probing starts: a census
/// that runs for hours and then cannot save its scrape/journal/trace is
/// the worst failure mode. Truncates/creates the file; the real payload
/// overwrites it on exit.
int validate_out_path(const char* flag_name, const std::string& path) {
  std::FILE* probe = std::fopen(path.c_str(), "wb");
  if (probe == nullptr) {
    std::fprintf(stderr,
                 "anycastd: cannot open %s path for writing: %s\n",
                 flag_name, path.c_str());
    return 2;
  }
  std::fclose(probe);
  return 0;
}

bool prometheus_path(const std::string& path) {
  return path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
}

/// One telemetry document: the metrics scrape extended with latency,
/// series, and slo sections (the `metrics` array keeps its exact legacy
/// shape, so scrape-file consumers keep working).
std::string metrics_document(const std::string& path) {
  return prometheus_path(path) ? obs::telemetry().document_prometheus()
                               : obs::telemetry().document_json();
}

int write_metrics_out(const std::string& path) {
  if (!obs::write_file_atomic(path, metrics_document(path))) {
    std::fprintf(stderr, "anycastd: failed writing metrics to %s\n",
                 path.c_str());
    return 1;
  }
  return 0;
}

void print_verbose_summary() {
  std::printf("\n-- metrics %s\n", std::string(48, '-').c_str());
  for (const obs::MetricValue& v : obs::metrics().scrape()) {
    switch (v.kind) {
      case obs::MetricKind::kCounter:
        std::printf("%-34s %20llu\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.value));
        break;
      case obs::MetricKind::kGauge:
        std::printf("%-34s %20.3f\n", v.name.c_str(), v.gauge);
        break;
      case obs::MetricKind::kHistogram:
        std::printf("%-34s %12llu obs, sum %.1f\n", v.name.c_str(),
                    static_cast<unsigned long long>(v.count),
                    static_cast<double>(v.sum_milli) / 1000.0);
        break;
    }
  }
  // render_tree's footer reports drops/orphans itself, so nothing is
  // silently missing even when the span buffer filled up.
  const std::string tree = obs::trace().render_tree();
  if (!tree.empty()) {
    std::printf("-- trace spans %s\n%s", std::string(44, '-').c_str(),
                tree.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const auto flags = Flags::parse(argc, argv, 2);
  if (!flags.has_value()) return usage();

  // Observability flags apply to every subcommand. Output paths are
  // validated before any work starts: a census that runs for hours and
  // then cannot save its journal or trace is the worst failure mode.
  const auto metrics_out = flags->get("metrics-out");
  const auto journal_out = flags->get("journal-out");
  const auto trace_out = flags->get("trace-out");
  const bool verbose = flags->get_bool("verbose");
  (void)flags->get_bool("progress");  // consumed per-phase after dispatch
  if (metrics_out.has_value()) {
    if (const int rc = validate_out_path("--metrics-out", *metrics_out)) {
      return rc;
    }
  }
  if (trace_out.has_value()) {
    if (const int rc = validate_out_path("--trace-out", *trace_out)) {
      return rc;
    }
  }
  if (journal_out.has_value()) {
    // open() is the validation: it holds the file handle for the run so
    // events stream out as they commit rather than all at exit.
    if (!obs::journal().open(*journal_out)) {
      std::fprintf(stderr,
                   "anycastd: cannot open --journal-out path for writing: "
                   "%s\n",
                   journal_out->c_str());
      return 2;
    }
  }

  // --slo is validated up front for every subcommand (a campaign that
  // runs for hours and then reports a spec typo is as bad as an
  // unwritable journal) and installed into the global telemetry plane;
  // cmd_watch additionally threads it into the daemon config so
  // availability transitions reach the semantic journal.
  if (const auto slo_spec = flags->get("slo")) {
    std::string slo_error;
    auto objectives = obs::parse_slo_spec(*slo_spec, &slo_error);
    if (!objectives.has_value()) {
      std::fprintf(stderr, "anycastd: bad --slo spec: %s\n",
                   slo_error.c_str());
      return 2;
    }
    obs::telemetry().set_slo(std::move(*objectives));
  }

  // --metrics-interval: a background flusher writes the live telemetry
  // document to --metrics-out every S seconds (tmp+rename, so a reader —
  // `anycastd top` — never sees a torn file). First flush is immediate.
  const double metrics_interval = flags->get_double("metrics-interval", 0.0);
  if (flags->has("metrics-interval") && metrics_interval <= 0.0) {
    std::fprintf(stderr, "anycastd: --metrics-interval must be > 0\n");
    return 2;
  }
  if (metrics_interval > 0.0 && !metrics_out.has_value()) {
    std::fprintf(stderr,
                 "anycastd: --metrics-interval needs --metrics-out FILE to "
                 "flush into\n");
    return 2;
  }
  // Reject unknown commands before the flusher thread exists: the late
  // `return usage()` below must never destroy a joinable thread.
  constexpr std::string_view kCommands[] = {
      "world", "census", "resume",   "watch", "analyze",
      "serve", "portscan", "diff",   "report", "top"};
  if (std::find(std::begin(kCommands), std::end(kCommands), command) ==
      std::end(kCommands)) {
    return usage();
  }
  std::thread flusher;
  std::mutex flusher_mutex;
  std::condition_variable flusher_cv;
  bool flusher_stop = false;
  std::uint64_t flushes = 0;
  if (metrics_interval > 0.0) {
    flusher = std::thread([&] {
      std::unique_lock<std::mutex> lock(flusher_mutex);
      for (;;) {
        lock.unlock();
        obs::telemetry().tick();  // rotate windows + evaluate latency SLOs
        const bool ok =
            obs::write_file_atomic(*metrics_out, metrics_document(*metrics_out));
        lock.lock();
        if (ok) ++flushes;
        if (flusher_cv.wait_for(
                lock, std::chrono::duration<double>(metrics_interval),
                [&] { return flusher_stop; })) {
          return;
        }
      }
    });
  }

  int rc = 0;
  if (command == "world") rc = cmd_world(*flags);
  else if (command == "census") rc = cmd_census(*flags, /*resume=*/false);
  else if (command == "resume") rc = cmd_census(*flags, /*resume=*/true);
  else if (command == "watch") rc = cmd_watch(*flags);
  else if (command == "analyze") rc = cmd_analyze(*flags);
  else if (command == "serve") rc = cmd_serve(*flags);
  else if (command == "portscan") rc = cmd_portscan(*flags);
  else if (command == "diff") rc = cmd_diff(*flags);
  else if (command == "report") rc = cmd_report(*flags);
  else if (command == "top") rc = cmd_top(*flags);
  else return usage();

  if (flusher.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(flusher_mutex);
      flusher_stop = true;
    }
    flusher_cv.notify_one();
    flusher.join();
    std::fprintf(stderr, "metrics-interval: wrote %llu periodic scrape(s)\n",
                 static_cast<unsigned long long>(flushes));
  }
  if (metrics_out.has_value()) {
    const int write_rc = write_metrics_out(*metrics_out);
    if (rc == 0) rc = write_rc;
  }
  if (trace_out.has_value()) {
    if (!obs::write_chrome_trace(*trace_out)) {
      std::fprintf(stderr, "anycastd: failed writing trace to %s\n",
                   trace_out->c_str());
      if (rc == 0) rc = 1;
    } else if (verbose) {
      std::fprintf(stderr, "wrote Perfetto trace to %s\n",
                   trace_out->c_str());
    }
  }
  obs::journal().close();  // flush + commit any tail, fsync, release
  if (verbose) print_verbose_summary();
  return rc;
}
