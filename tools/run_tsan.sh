#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel census/analysis engine.
#
# Configures a dedicated build tree with -DANYCAST_SANITIZE=thread, builds
# the concurrency-sensitive tests, and runs them under TSAN. Run it from
# anywhere; the build tree lives in <repo>/build-tsan (gitignored).
#
#   tools/run_tsan.sh             # concurrency + census + fault tests
#   tools/run_tsan.sh -R Census   # any extra args are passed to ctest
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-tsan"

cmake -S "$repo" -B "$build" -DANYCAST_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build" -j "$(nproc)" \
  --target concurrency_test census_test fault_test integration_test

# halt_on_error: a single race fails the gate instead of scrolling past.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

if [ "$#" -gt 0 ]; then
  ctest --test-dir "$build" --output-on-failure "$@"
else
  ctest --test-dir "$build" --output-on-failure \
    -R 'ThreadPool|ShardRanges|Parallel|Census|Resume|Fault'
fi
echo "TSAN gate passed."
