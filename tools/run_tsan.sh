#!/usr/bin/env bash
# ThreadSanitizer gate — thin wrapper kept for muscle memory and CI
# configs; the general driver handles thread/address/undefined.
exec "$(dirname "$0")/run_sanitizers.sh" thread "$@"
