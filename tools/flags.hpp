// Minimal command-line flag parsing for the anycastd tool.
//
// Supports "--name value", "--name=value", and bare positional arguments.
// No external dependencies; unknown flags are reported as errors so typos
// fail loudly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace anycast::tools {

/// One documented flag, for `print_flag_help` usage tables.
struct FlagHelp {
  std::string_view name;   // without the leading "--"
  std::string_view value;  // value hint, e.g. "N", "DIR"; empty = boolean
  std::string_view help;   // one-line description (may mention default)
};

/// Renders an aligned "--name VALUE  help" table to `out`.
void print_flag_help(std::FILE* out, std::span<const FlagHelp> flags);

class Flags {
 public:
  /// Parses argv[first..argc). Returns nullopt and prints a diagnostic on
  /// malformed input (e.g. trailing "--flag" without a value).
  static std::optional<Flags> parse(int argc, char** argv, int first = 1);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name,
                                   std::string fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// Boolean flag: present without a value (or "true"/"1"/"yes") -> true;
  /// "false"/"0"/"no" -> false; absent -> fallback.
  [[nodiscard]] bool get_bool(const std::string& name,
                              bool fallback = false) const;
  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name);
  }

  /// Names that were provided but never queried — call after reading all
  /// known flags to reject typos.
  [[nodiscard]] std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace anycast::tools
