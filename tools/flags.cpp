#include "flags.hpp"

#include <cstdio>
#include <cstdlib>

namespace anycast::tools {

std::optional<Flags> Flags::parse(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" — also allow boolean "--name" at end / before another
    // flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::optional<std::string> Flags::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& name,
                          std::string fallback) const {
  const auto value = get(name);
  return value.has_value() ? *value : std::move(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  return std::strtod(value->c_str(), nullptr);
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace anycast::tools
