#include "flags.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace anycast::tools {

std::optional<Flags> Flags::parse(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--name value" — also allow boolean "--name" at end / before another
    // flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[++i];
    } else {
      flags.values_[body] = "true";
    }
  }
  return flags;
}

std::optional<std::string> Flags::get(const std::string& name) const {
  queried_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_or(const std::string& name,
                          std::string fallback) const {
  const auto value = get(name);
  return value.has_value() ? *value : std::move(fallback);
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  return std::strtoll(value->c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  return std::strtod(value->c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value.has_value()) return fallback;
  return !(*value == "false" || *value == "0" || *value == "no");
}

void print_flag_help(std::FILE* out, std::span<const FlagHelp> flags) {
  std::size_t widest = 0;
  for (const FlagHelp& flag : flags) {
    widest = std::max(widest, flag.name.size() + 2 +
                                  (flag.value.empty()
                                       ? 0
                                       : flag.value.size() + 1));
  }
  for (const FlagHelp& flag : flags) {
    std::string left = "--" + std::string(flag.name);
    if (!flag.value.empty()) {
      left += ' ';
      left += flag.value;
    }
    std::fprintf(out, "    %-*s  %.*s\n", static_cast<int>(widest),
                 left.c_str(), static_cast<int>(flag.help.size()),
                 flag.help.data());
  }
}

std::vector<std::string> Flags::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    if (!queried_.contains(name)) out.push_back(name);
  }
  return out;
}

}  // namespace anycast::tools
