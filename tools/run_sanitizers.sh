#!/usr/bin/env bash
# Sanitizer gate for the census/analysis engine.
#
# Configures a dedicated build tree per sanitizer (-DANYCAST_SANITIZE=...),
# builds the concurrency-sensitive tests, and runs them under that
# sanitizer. Run it from anywhere; build trees live in
# <repo>/build-<sanitizer> (gitignored).
#
#   tools/run_sanitizers.sh                 # thread, address, undefined
#   tools/run_sanitizers.sh thread          # one sanitizer
#   tools/run_sanitizers.sh address -R Census  # extra args go to ctest
#
# The first argument selects the sanitizer when it is one of
# thread|address|undefined|all; everything after it is passed to ctest
# verbatim (replacing the default test selection).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

selection="all"
case "${1:-}" in
  thread|address|undefined|all)
    selection="$1"
    shift
    ;;
esac

if [ "$selection" = "all" ]; then
  sanitizers=(thread address undefined)
else
  sanitizers=("$selection")
fi

run_gate() {
  local sanitizer="$1"
  shift
  local build="$repo/build-$sanitizer"

  cmake -S "$repo" -B "$build" -DANYCAST_SANITIZE="$sanitizer" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$build" -j "$(nproc)" \
    --target concurrency_test census_test fault_test integration_test \
             obs_test flight_recorder_test headline_test serving_test \
             telemetry_test

  # halt_on_error: a single finding fails the gate instead of scrolling
  # past. UBSAN reports are non-fatal by default, so ask for aborts too.
  local prefix=()
  case "$sanitizer" in
    thread)
      prefix=(env TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}")
      ;;
    address)
      prefix=(env ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}")
      ;;
    undefined)
      prefix=(env UBSAN_OPTIONS="halt_on_error=1 abort_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}")
      ;;
  esac

  if [ "$#" -gt 0 ]; then
    "${prefix[@]}" ctest --test-dir "$build" --output-on-failure "$@"
  else
    "${prefix[@]}" ctest --test-dir "$build" --output-on-failure \
      -R 'ThreadPool|ShardRanges|Parallel|Census|Resume|Fault|Metrics|Trace|Headline|Journal|Progress|Serving|Telemetry|LatencyHisto|TimeSeries|Slo'
  fi
  echo "$sanitizer sanitizer gate passed."
}

for sanitizer in "${sanitizers[@]}"; do
  run_gate "$sanitizer" "$@"
done
echo "Sanitizer gate passed: ${sanitizers[*]}."
