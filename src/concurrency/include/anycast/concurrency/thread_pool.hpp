// Fixed-size thread pool with fork-join helpers.
//
// The census and the analysis are embarrassingly parallel with clean
// merge points: per-VP walks are independent (each VP carries its own
// RNG, fault schedule, and greylist) and per-target iGreedy runs are
// independent. This pool supplies the only concurrency primitive those
// hot paths need — a blocking `parallel_for` over an index space with
// dynamic work claiming — and nothing else. No external dependencies.
//
// Determinism contract: the pool never changes *what* is computed, only
// *where*. Callers must produce results indexed by input position and
// reduce them in input order on the calling thread; every user in this
// repository does exactly that, which is why census and analysis output
// is byte-identical for any thread count (asserted by
// tests/concurrency_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace anycast::concurrency {

/// The hardware's concurrency, never less than 1 (the standard allows
/// `hardware_concurrency()` to return 0 when unknown).
std::size_t default_thread_count();

/// A fixed-size pool. `ThreadPool(n)` provides `n` lanes of execution:
/// the calling thread participates in every `parallel_for`, so `n - 1`
/// worker threads are spawned. `ThreadPool(1)` spawns no threads at all —
/// every helper runs inline on the caller, the exact legacy serial path.
/// `ThreadPool(0)` resolves to `default_thread_count()`.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread; always >= 1.
  [[nodiscard]] std::size_t thread_count() const {
    return workers_.size() + 1;
  }

  /// Runs `fn(i)` for every i in [0, n), blocking until all complete.
  /// Indices are claimed dynamically (one at a time), so heterogeneous
  /// task costs balance; the caller participates. The first exception
  /// thrown by any `fn(i)` stops new claims and is rethrown here after
  /// in-flight tasks drain. Not reentrant from inside `fn`.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// `parallel_for` that collects `fn(i)` into a vector indexed by i —
  /// the result is position-stable regardless of execution order.
  ///
  /// Requires the result type to be default-constructible and
  /// move-assignable: the output vector is value-initialized up front and
  /// each slot is assigned when its index completes. Wrap a
  /// non-default-constructible result in `std::optional<T>` (and unwrap
  /// after) to use it here; serial callers should impose the same shape
  /// so the two paths stay interchangeable.
  template <typename Fn>
  auto parallel_map(std::size_t n, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    std::vector<decltype(fn(std::size_t{0}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

  /// Work units (loop indices) completed and submitted so far, summed
  /// over every `parallel_for` this pool has run — including the serial
  /// inline path, so progress reporting is identical at any lane count.
  /// Cheap enough to poll: two relaxed loads.
  [[nodiscard]] std::pair<std::size_t, std::size_t> progress() const {
    return {op_done_.load(std::memory_order_relaxed),
            op_total_.load(std::memory_order_relaxed)};
  }

  /// Starts a dedicated ticker thread invoking `on_tick(done, total)`
  /// every `interval` until `stop_heartbeat()` (or destruction). The
  /// ticker never runs pipeline work and only observes the progress
  /// counters, so it cannot perturb what the lanes compute — the
  /// determinism contract is untouched. One heartbeat at a time; calling
  /// again replaces the previous one.
  void start_heartbeat(std::chrono::milliseconds interval,
                       std::function<void(std::size_t, std::size_t)> on_tick);

  /// Stops and joins the ticker, if one is running. Idempotent.
  void stop_heartbeat();

 private:
  void worker_loop();
  void post(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;

  std::atomic<std::size_t> op_done_{0};
  std::atomic<std::size_t> op_total_{0};
  std::thread heartbeat_;
  std::mutex heartbeat_mutex_;
  std::condition_variable heartbeat_cv_;
  bool heartbeat_stop_ = false;  // guarded by heartbeat_mutex_
};

/// Contiguous [begin, end) shards covering [0, n), at most `max_shards`
/// of them, sized within one item of each other. Shard boundaries never
/// affect results (reductions are index-ordered); they only set task
/// granularity.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n, std::size_t max_shards);

/// Contiguous [begin, end) shards covering [0, n) where n =
/// `cumulative.size() - 1`, balanced by *weight* instead of item count:
/// `cumulative` is a non-decreasing prefix-weight array (item i weighs
/// `cumulative[i + 1] - cumulative[i]`, e.g. a CSR row-offset array), and
/// each shard covers as close to `total / shards` weight as item
/// boundaries allow. At most `max_shards` non-empty shards are returned;
/// with all-zero weights this degrades to `shard_ranges`. As with
/// `shard_ranges`, boundaries never affect results, only load balance.
std::vector<std::pair<std::size_t, std::size_t>> shard_ranges_weighted(
    std::span<const std::uint64_t> cumulative, std::size_t max_shards);

}  // namespace anycast::concurrency
