#include "anycast/concurrency/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "anycast/obs/metrics.hpp"

namespace anycast::concurrency {
namespace {

/// Pool instruments. All kTiming class: how indices distribute over lanes
/// and how long each lane stays busy is scheduling-dependent by nature.
struct PoolInstruments {
  obs::Counter parallel_ops = obs::metrics().counter(
      "pool_parallel_ops", obs::MetricClass::kTiming,
      "parallel_for/parallel_map invocations that fanned out");
  obs::Counter helper_dispatches = obs::metrics().counter(
      "pool_helper_dispatches", obs::MetricClass::kTiming,
      "helper tasks posted to worker lanes");
  obs::Counter indices_by_caller = obs::metrics().counter(
      "pool_indices_by_caller", obs::MetricClass::kTiming,
      "loop indices the calling thread claimed itself");
  obs::Counter indices_by_helpers = obs::metrics().counter(
      "pool_indices_by_helpers", obs::MetricClass::kTiming,
      "loop indices claimed by worker lanes");
  obs::Histogram lane_busy_ms = obs::metrics().histogram(
      "pool_lane_busy_ms", obs::MetricClass::kTiming,
      {1.0, 10.0, 100.0, 1000.0, 10000.0},
      "per-lane busy time inside one parallel op");
};

const PoolInstruments& pool_instruments() {
  static const PoolInstruments instruments;
  return instruments;
}

}  // namespace

std::size_t default_thread_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) thread_count = default_thread_count();
  workers_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop_heartbeat();
  {
    const std::lock_guard lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::start_heartbeat(
    std::chrono::milliseconds interval,
    std::function<void(std::size_t, std::size_t)> on_tick) {
  stop_heartbeat();
  {
    const std::lock_guard lock(heartbeat_mutex_);
    heartbeat_stop_ = false;
  }
  heartbeat_ = std::thread([this, interval, tick = std::move(on_tick)] {
    std::unique_lock lock(heartbeat_mutex_);
    while (true) {
      if (heartbeat_cv_.wait_for(lock, interval,
                                 [this] { return heartbeat_stop_; })) {
        return;
      }
      // Tick outside the lock: a slow sink delays the next tick, never
      // the stop/join handshake.
      lock.unlock();
      tick(op_done_.load(std::memory_order_relaxed),
           op_total_.load(std::memory_order_relaxed));
      lock.lock();
    }
  });
}

void ThreadPool::stop_heartbeat() {
  {
    const std::lock_guard lock(heartbeat_mutex_);
    heartbeat_stop_ = true;
  }
  heartbeat_cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  {
    const std::lock_guard lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  op_total_.fetch_add(n, std::memory_order_relaxed);
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
      op_done_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }

  // Shared fork-join state, alive until the last helper signals done.
  struct Join {
    std::atomic<std::size_t> next{0};
    std::size_t limit = 0;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t helpers_left = 0;  // guarded by done_mutex
    std::mutex error_mutex;
    std::exception_ptr first_error;
  } join;
  join.limit = n;

  // Returns the indices this lane claimed; the lane flushes its own tally
  // once, so per-index work never touches a shared metrics counter. (The
  // progress counter is bumped per index — it feeds the live heartbeat,
  // and at per-VP/per-shard granularity one relaxed add is noise.)
  const auto claim_loop = [this, &fn, &join] {
    std::uint64_t claimed = 0;
    while (true) {
      const std::size_t i = join.next.fetch_add(1);
      if (i >= join.limit) break;
      ++claimed;
      try {
        fn(i);
        op_done_.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        {
          const std::lock_guard lock(join.error_mutex);
          if (!join.first_error) join.first_error = std::current_exception();
        }
        // Poison the counter so no further index is claimed.
        join.next.store(join.limit);
      }
    }
    return claimed;
  };
  const PoolInstruments& in = pool_instruments();
  in.parallel_ops.inc();
  const auto lane_start = std::chrono::steady_clock::now();
  const auto lane_busy_ms = [lane_start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - lane_start)
        .count();
  };

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  join.helpers_left = helpers;
  in.helper_dispatches.add(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    post([&claim_loop, &join, &in, lane_busy_ms] {
      in.indices_by_helpers.add(claim_loop());
      in.lane_busy_ms.observe(lane_busy_ms());
      // Decrement, check, and notify all under done_mutex: the caller's
      // predicate cannot observe helpers_left == 0 (and destroy Join)
      // until this helper has released the lock — its last touch of Join.
      const std::lock_guard lock(join.done_mutex);
      if (--join.helpers_left == 0) join.done_cv.notify_one();
    });
  }

  in.indices_by_caller.add(claim_loop());  // the caller is a lane too
  in.lane_busy_ms.observe(lane_busy_ms());
  {
    std::unique_lock lock(join.done_mutex);
    join.done_cv.wait(lock, [&join] { return join.helpers_left == 0; });
  }
  if (join.first_error) std::rethrow_exception(join.first_error);
}

std::vector<std::pair<std::size_t, std::size_t>> shard_ranges(
    std::size_t n, std::size_t max_shards) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (n == 0 || max_shards == 0) return ranges;
  const std::size_t shards = std::min(n, max_shards);
  ranges.reserve(shards);
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;  // first `extra` shards get +1
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t end = begin + base + (s < extra ? 1 : 0);
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

std::vector<std::pair<std::size_t, std::size_t>> shard_ranges_weighted(
    std::span<const std::uint64_t> cumulative, std::size_t max_shards) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  if (cumulative.size() <= 1 || max_shards == 0) return ranges;
  const std::size_t n = cumulative.size() - 1;
  const std::uint64_t total = cumulative[n] - cumulative[0];
  if (total == 0) return shard_ranges(n, max_shards);
  const std::size_t shards = std::min(n, max_shards);
  ranges.reserve(shards);
  std::size_t begin = 0;
  for (std::size_t s = 1; s <= shards && begin < n; ++s) {
    std::size_t end = n;
    if (s < shards) {
      // First boundary whose cumulative weight reaches this shard's
      // quantile; heavy single rows may swallow several quantiles, which
      // simply yields fewer (non-empty) shards.
      const std::uint64_t quantile =
          cumulative[0] + (total / shards) * s + (total % shards) * s / shards;
      end = static_cast<std::size_t>(
          std::lower_bound(cumulative.begin() + 1, cumulative.end(),
                           quantile) -
          cumulative.begin());
      end = std::min(std::max(end, begin + 1), n);
    }
    ranges.emplace_back(begin, end);
    begin = end;
  }
  if (!ranges.empty()) ranges.back().second = n;
  return ranges;
}

}  // namespace anycast::concurrency
