// nmap-style TCP portscan over anycast deployments (Sec. 4.3).
//
// The paper complements the census with a portscan of the top-100 anycast
// ASes: one representative IP per anycast /24, all 2^16 TCP ports at low
// rate, then service classification against the well-known registry and
// software fingerprinting. Results are conservative: different IPs of one
// /24 can expose different ports, and on-path filtering hides some —
// both effects are modelled.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "anycast/net/internet.hpp"
#include "anycast/net/services.hpp"

namespace anycast::portscan {

/// One open port found on a deployment.
struct PortHit {
  std::uint16_t port = 0;
  bool ssl = false;
  std::string_view service;   // well-known name, empty when unregistered
  std::string_view software;  // fingerprint, empty when unidentified
};

/// Scan result for one AS (aggregated over its anycast /24s).
struct DeploymentScan {
  const net::Deployment* deployment = nullptr;
  std::uint32_t ips_scanned = 0;      // one per /24
  std::uint32_t ips_responsive = 0;   // >= 1 open port
  std::vector<PortHit> open_ports;    // distinct ports, ascending
  /// Per-/24 port sets (parallel to deployment->prefixes): the per-IP/24
  /// view needed for the class-imbalance analysis of Fig. 14.
  std::vector<std::vector<std::uint16_t>> per_prefix_ports;
};

struct ScanConfig {
  /// Probability that a port open at the deployment is actually observed
  /// on a given /24's representative IP (per-IP diversity + on-path
  /// filtering — the reasons Sec. 4.3 calls its results conservative).
  double per_prefix_visibility = 0.80;
  std::uint64_t seed = 1;
};

class PortScanner {
 public:
  explicit PortScanner(const net::SimulatedInternet& internet,
                       ScanConfig config = {})
      : internet_(&internet), config_(config) {}

  /// Scans all /24s of one deployment.
  [[nodiscard]] DeploymentScan scan(const net::Deployment& deployment) const;

  /// Scans a set of deployments (typically the top-100 by footprint).
  [[nodiscard]] std::vector<DeploymentScan> scan_all(
      std::span<const net::Deployment> deployments) const;

 private:
  const net::SimulatedInternet* internet_;
  ScanConfig config_;
};

/// Aggregate portscan statistics — the header row of Fig. 14.
struct ScanStatistics {
  std::uint64_t ips_responsive = 0;
  std::uint64_t ases_with_open_port = 0;
  std::uint64_t distinct_open_ports = 0;  // union across deployments
  std::uint64_t ssl_ports = 0;            // of those, SSL services
  std::uint64_t well_known = 0;           // mapping to registry names
  std::uint64_t software_packages = 0;    // distinct fingerprints
};

ScanStatistics summarize(std::span<const DeploymentScan> scans);

/// Port frequency ranking: how many ASes (or /24s) expose each port.
/// Returns (port, count) pairs sorted by descending count — the Fig. 14
/// top-10 plots.
std::vector<std::pair<std::uint16_t, std::uint32_t>> rank_ports_by_as(
    std::span<const DeploymentScan> scans);
std::vector<std::pair<std::uint16_t, std::uint32_t>> rank_ports_by_prefix(
    std::span<const DeploymentScan> scans);

}  // namespace anycast::portscan
