#include "anycast/portscan/scanner.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "anycast/obs/metrics.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::portscan {
namespace {

/// Port-scan instruments, flushed once per deployment scan.
struct ScanInstruments {
  obs::Counter deployments = obs::metrics().counter(
      "portscan_deployments", obs::MetricClass::kSemantic,
      "anycast deployments scanned");
  obs::Counter prefixes_scanned = obs::metrics().counter(
      "portscan_prefixes_scanned", obs::MetricClass::kSemantic,
      "prefixes probed across all deployments");
  obs::Counter prefixes_responsive = obs::metrics().counter(
      "portscan_prefixes_responsive", obs::MetricClass::kSemantic,
      "prefixes with at least one visible open port");
  obs::Counter open_ports = obs::metrics().counter(
      "portscan_open_ports", obs::MetricClass::kSemantic,
      "distinct open ports summed over deployments");
};

const ScanInstruments& scan_instruments() {
  static const ScanInstruments instruments;
  return instruments;
}

bool port_visible(std::uint64_t seed, std::uint32_t slash24,
                  std::uint16_t port, double probability) {
  rng::SplitMix64 mixer(seed ^ (std::uint64_t{slash24} << 16) ^ port);
  mixer.next();
  const double u = static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  return u < probability;
}

}  // namespace

DeploymentScan PortScanner::scan(const net::Deployment& deployment) const {
  DeploymentScan result;
  result.deployment = &deployment;
  result.ips_scanned = static_cast<std::uint32_t>(deployment.prefixes.size());
  result.per_prefix_ports.resize(deployment.prefixes.size());

  std::set<std::uint16_t> union_ports;
  for (std::size_t p = 0; p < deployment.prefixes.size(); ++p) {
    const std::uint32_t slash24 =
        deployment.prefixes[p].network().slash24_index();
    auto& prefix_ports = result.per_prefix_ports[p];
    for (const net::ServicePort& service : deployment.tcp_services) {
      if (!port_visible(config_.seed, slash24, service.port,
                        config_.per_prefix_visibility)) {
        continue;
      }
      prefix_ports.push_back(service.port);
      union_ports.insert(service.port);
    }
    std::sort(prefix_ports.begin(), prefix_ports.end());
    if (!prefix_ports.empty()) ++result.ips_responsive;
  }

  result.open_ports.reserve(union_ports.size());
  for (const std::uint16_t port : union_ports) {
    PortHit hit;
    hit.port = port;
    const auto known = net::classify_port(port);
    if (known) {
      hit.service = known->name;
      hit.ssl = known->commonly_ssl;
    }
    const auto it = std::find_if(
        deployment.tcp_services.begin(), deployment.tcp_services.end(),
        [port](const net::ServicePort& s) { return s.port == port; });
    if (it != deployment.tcp_services.end()) {
      hit.software = it->software;
      // TLS detection works on any port, registered or not.
      hit.ssl = hit.ssl || it->ssl;
    }
    result.open_ports.push_back(hit);
  }
  const ScanInstruments& in = scan_instruments();
  in.deployments.inc();
  in.prefixes_scanned.add(result.ips_scanned);
  in.prefixes_responsive.add(result.ips_responsive);
  in.open_ports.add(result.open_ports.size());
  return result;
}

std::vector<DeploymentScan> PortScanner::scan_all(
    std::span<const net::Deployment> deployments) const {
  std::vector<DeploymentScan> out;
  out.reserve(deployments.size());
  for (const net::Deployment& deployment : deployments) {
    out.push_back(scan(deployment));
  }
  return out;
}

ScanStatistics summarize(std::span<const DeploymentScan> scans) {
  ScanStatistics stats;
  std::set<std::uint16_t> distinct_ports;
  std::set<std::uint16_t> ssl_ports;
  std::set<std::string_view> services;
  std::set<std::string_view> software;
  for (const DeploymentScan& scan : scans) {
    stats.ips_responsive += scan.ips_responsive;
    if (!scan.open_ports.empty()) ++stats.ases_with_open_port;
    for (const PortHit& hit : scan.open_ports) {
      distinct_ports.insert(hit.port);
      if (hit.ssl) ssl_ports.insert(hit.port);
      if (!hit.service.empty()) services.insert(hit.service);
      if (!hit.software.empty()) software.insert(hit.software);
    }
  }
  stats.distinct_open_ports = distinct_ports.size();
  stats.ssl_ports = ssl_ports.size();
  stats.well_known = services.size();
  stats.software_packages = software.size();
  return stats;
}

namespace {

std::vector<std::pair<std::uint16_t, std::uint32_t>> sorted_counts(
    const std::map<std::uint16_t, std::uint32_t>& counts) {
  std::vector<std::pair<std::uint16_t, std::uint32_t>> out(counts.begin(),
                                                           counts.end());
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  return out;
}

}  // namespace

std::vector<std::pair<std::uint16_t, std::uint32_t>> rank_ports_by_as(
    std::span<const DeploymentScan> scans) {
  std::map<std::uint16_t, std::uint32_t> counts;
  for (const DeploymentScan& scan : scans) {
    for (const PortHit& hit : scan.open_ports) ++counts[hit.port];
  }
  return sorted_counts(counts);
}

std::vector<std::pair<std::uint16_t, std::uint32_t>> rank_ports_by_prefix(
    std::span<const DeploymentScan> scans) {
  std::map<std::uint16_t, std::uint32_t> counts;
  for (const DeploymentScan& scan : scans) {
    for (const auto& ports : scan.per_prefix_ports) {
      for (const std::uint16_t port : ports) ++counts[port];
    }
  }
  return sorted_counts(counts);
}

}  // namespace anycast::portscan
