#include "anycast/serving/store.hpp"

#include <algorithm>
#include <thread>

#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::serving {
namespace {

/// Serving instruments. All kTiming: swap cadence and reclaim depth are
/// scheduling details that legitimately vary run to run while query
/// answers stay byte-identical, so none of these may perturb the pinned
/// semantic snapshot (concurrency_test's allowlist names each one).
struct ServingInstruments {
  obs::Counter publishes = obs::metrics().counter(
      "serving_publishes", obs::MetricClass::kTiming,
      "snapshots published into the serving store");
  obs::Counter retired = obs::metrics().counter(
      "serving_snapshots_retired", obs::MetricClass::kTiming,
      "displaced snapshots queued for reclamation");
  obs::Counter freed = obs::metrics().counter(
      "serving_snapshots_freed", obs::MetricClass::kTiming,
      "retired snapshots reclaimed after readers drained");
  obs::Gauge retired_depth = obs::metrics().gauge(
      "serving_retired_depth", obs::MetricClass::kTiming,
      "snapshots retired but not yet reclaimed");
};

const ServingInstruments& serving_instruments() {
  static const ServingInstruments instruments;
  return instruments;
}

// Spreads slot claims so 8 readers don't all CAS-fight over slot 0.
thread_local std::size_t slot_hint = 0;

}  // namespace

void ReadGuard::release() {
  if (store_ != nullptr) {
    store_->release_slot(slot_);
    store_ = nullptr;
  }
  view_ = nullptr;
}

SnapshotStore::~SnapshotStore() {
  drain();
  Node* last = current_.exchange(nullptr, std::memory_order_seq_cst);
  delete last;
}

void SnapshotStore::publish(SnapshotView view) {
  Node* fresh = new Node(std::move(view));
  const std::uint64_t id = fresh->view.id();
  std::lock_guard<std::mutex> lock(writer_mutex_);
  Node* old = current_.exchange(fresh, std::memory_order_seq_cst);
  const std::uint64_t stamp =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  serving_instruments().publishes.inc();
  if (old != nullptr) {
    retired_.push_back(Retired{old, stamp});
    serving_instruments().retired.inc();
  }
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kInfo,
                      "serving.publish", 0,
                      {{"snapshot_id", id}, {"epoch", stamp}});
  reclaim_locked();
}

ReadGuard SnapshotStore::acquire() {
  const std::size_t start = slot_hint % kMaxReaderSlots;
  for (;;) {
    for (std::size_t probe = 0; probe < kMaxReaderSlots; ++probe) {
      const std::size_t s = (start + probe) % kMaxReaderSlots;
      std::uint64_t announce = epoch_.load(std::memory_order_seq_cst);
      std::uint64_t expected = kFreeSlot;
      if (!slots_[s].epoch.compare_exchange_strong(
              expected, announce, std::memory_order_seq_cst)) {
        continue;
      }
      // Re-announce until the slot carries the epoch we last observed:
      // keeps announcements fresh so reclamation makes progress. A stale
      // LOW announcement is merely conservative (protects more); the loop
      // exits as soon as one verify sees no movement.
      for (;;) {
        const std::uint64_t now = epoch_.load(std::memory_order_seq_cst);
        if (now == announce) break;
        announce = now;
        slots_[s].epoch.store(announce, std::memory_order_seq_cst);
      }
      Node* node = current_.load(std::memory_order_seq_cst);
      if (node == nullptr) {
        release_slot(s);
        return ReadGuard{};
      }
      slot_hint = s + 1;
      return ReadGuard(this, s, &node->view);
    }
    std::this_thread::yield();  // all 64 slots pinned: wait one out
  }
}

void SnapshotStore::release_slot(std::size_t slot) {
  slots_[slot].epoch.store(kFreeSlot, std::memory_order_seq_cst);
}

void SnapshotStore::reclaim_locked() {
  std::uint64_t min_announced = kFreeSlot;
  for (const Slot& slot : slots_) {
    const std::uint64_t e = slot.epoch.load(std::memory_order_seq_cst);
    min_announced = std::min(min_announced, e);  // kFreeSlot = no pin
  }
  std::size_t freed_now = 0;
  auto keep = retired_.begin();
  for (Retired& r : retired_) {
    if (r.stamp <= min_announced) {
      delete r.node;
      ++freed_now;
    } else {
      *keep++ = r;
    }
  }
  retired_.erase(keep, retired_.end());
  if (freed_now > 0) {
    freed_.fetch_add(freed_now, std::memory_order_seq_cst);
    serving_instruments().freed.add(freed_now);
  }
  serving_instruments().retired_depth.set(static_cast<double>(retired_.size()));
}

void SnapshotStore::drain() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(writer_mutex_);
      reclaim_locked();
      if (retired_.empty()) return;
    }
    std::this_thread::yield();
  }
}

std::size_t SnapshotStore::retired_count() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return retired_.size();
}

}  // namespace anycast::serving
