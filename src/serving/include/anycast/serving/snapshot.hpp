// The census query plane's unit of publication: one frozen census epoch.
//
// A census is only useful if it can be asked questions — "is this /24
// anycast, where are its replicas, what changed since last week" — and at
// paper scale those questions arrive as serving traffic, not as offline
// analysis jobs. A SnapshotView binds one frozen (sharded or monolithic)
// CSR census matrix to its analysis outcomes and answers point, batch,
// and diff queries over them with zero mutation: every field is written
// once at build() time and only ever read afterwards, which is what lets
// SnapshotStore hand the same view to any number of concurrent readers
// with no locks (store.hpp).
//
// Query cost model:
//   - is_anycast / outcome / replicas: one bounds check + one load in the
//     dense target->outcome index, then (for replicas) the outcome row.
//   - lookup_batch: the same lookup unrolled over a span of targets into
//     a caller-owned answer buffer — the millions-of-QPS path, one pin
//     per batch instead of one per question.
//   - nearest_replica: chord-space scan over the target's replica list
//     (unit vectors precomputed per city by the PR 7 kernels).
//   - changed_since: the daemon's dirty-row machinery (analysis/
//     incremental.hpp) prunes the prefix set, then the restricted
//     landscape diff is element-identical to the full analysis::diff
//     oracle — the invariant tests/serving_test.cpp pins.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/analysis/diff.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/geodesy/chord.hpp"

namespace anycast::serving {

/// One batch-API answer cell: plain data, sized for vectorized fills.
struct PointAnswer {
  std::uint8_t anycast = 0;        // 1 when the target is anycast
  std::uint8_t responsive = 0;     // 1 when the target has any row
  std::uint16_t vp_count = 0;      // measurements in the row (capped)
  std::uint32_t replica_count = 0; // enumerated replicas (0 for unicast)
};

/// What `changed_since` produced: the dirty rows that were compared plus
/// the landscape delta, element-identical to the full-diff oracle.
struct SnapshotDelta {
  std::vector<std::uint32_t> dirty;  // rows whose RTT vectors differ
  analysis::CensusDiff diff;
};

class SnapshotView {
 public:
  static constexpr std::uint32_t kNoOutcome =
      std::numeric_limits<std::uint32_t>::max();

  SnapshotView() = default;

  /// Freezes `matrix` + `outcomes` (the analyzer's output for exactly
  /// that matrix, sorted by target_index as analyze() returns it) into an
  /// immutable view. `id` names the epoch (watch round, census id) for
  /// answer attribution. When `hitlist` is non-null an address index is
  /// built so queries can be keyed by dotted /24 as well as dense index.
  static SnapshotView build(census::ShardedCensusMatrix matrix,
                            std::vector<analysis::TargetOutcome> outcomes,
                            std::uint64_t id,
                            const census::Hitlist* hitlist = nullptr);

  /// Monolithic convenience: wraps the matrix into a single-shard plane.
  static SnapshotView build(census::CensusMatrix matrix,
                            std::vector<analysis::TargetOutcome> outcomes,
                            std::uint64_t id,
                            const census::Hitlist* hitlist = nullptr);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::size_t target_count() const {
    return matrix_.target_count();
  }
  [[nodiscard]] std::size_t anycast_count() const { return outcomes_.size(); }
  [[nodiscard]] const census::ShardedCensusMatrix& matrix() const {
    return matrix_;
  }
  [[nodiscard]] std::span<const analysis::TargetOutcome> outcomes() const {
    return outcomes_;
  }

  /// Point lookups. Out-of-range targets answer "not anycast"/nullptr —
  /// a serving plane must never crash on a hostile query.
  [[nodiscard]] bool is_anycast(std::uint32_t target) const {
    return target < outcome_of_.size() && outcome_of_[target] != kNoOutcome;
  }
  [[nodiscard]] const analysis::TargetOutcome* outcome(
      std::uint32_t target) const {
    if (target >= outcome_of_.size() || outcome_of_[target] == kNoOutcome) {
      return nullptr;
    }
    return &outcomes_[outcome_of_[target]];
  }
  /// The geolocated replica set of an anycast target (empty for unicast
  /// or unknown targets).
  [[nodiscard]] std::span<const core::Replica> replicas(
      std::uint32_t target) const {
    const analysis::TargetOutcome* hit = outcome(target);
    if (hit == nullptr) return {};
    return hit->result.replicas;
  }

  /// Resolves a dotted-quad query key to the dense target index of its
  /// covering /24 (nullopt when no hitlist index was built or the /24 is
  /// not in the hitlist).
  [[nodiscard]] std::optional<std::uint32_t> target_of_address(
      std::uint32_t slash24_index) const;

  /// The batch API: answers `targets.size()` point lookups into `out`
  /// (caller-sized). One epoch pin amortizes over the whole span; the
  /// fill itself is branch-light array indexing.
  void lookup_batch(std::span<const std::uint32_t> targets,
                    PointAnswer* out) const;

  /// The replica of `target` nearest to (lat, lon), by chord-space
  /// comparison (one unit-vector dot per replica, no libm in the loop).
  /// nullptr when the target has no replicas. `distance_km`, when
  /// non-null, receives the haversine distance of the winner only.
  [[nodiscard]] const core::Replica* nearest_replica(
      std::uint32_t target, double lat_deg, double lon_deg,
      double* distance_km = nullptr) const;

  /// Everything that changed between `prev` and this snapshot: dirty rows
  /// from the CSR diff, and the landscape delta restricted to prefixes
  /// those rows can have touched. When both snapshots were produced by
  /// the same analyzer configuration (the serving plane's invariant —
  /// analysis is per-row pure, so a clean row cannot change its verdict)
  /// the delta is element-identical to
  /// `analysis::diff_censuses(CensusSnapshot(prev), CensusSnapshot(this))`.
  [[nodiscard]] SnapshotDelta changed_since(
      const SnapshotView& prev, std::size_t min_replica_delta = 1,
      concurrency::ThreadPool* pool = nullptr) const;

 private:
  std::uint64_t id_ = 0;
  census::ShardedCensusMatrix matrix_;
  std::vector<analysis::TargetOutcome> outcomes_;  // sorted by target_index
  std::vector<std::uint32_t> outcome_of_;  // target -> outcomes_ index
  // Unit vectors of every replica location, concatenated in outcome order;
  // replica_units_[replica_unit_offset_[i] + k] is replica k of outcome i.
  // Precomputed once so nearest_replica runs libm-free dot products.
  std::vector<geodesy::Unit3> replica_units_;
  std::vector<std::uint32_t> replica_unit_offset_;
  // Sorted (slash24_index, target_index) pairs for address-keyed queries;
  // empty when built without a hitlist.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> address_index_;
};

}  // namespace anycast::serving
