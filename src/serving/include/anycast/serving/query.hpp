// The serving line protocol: text queries in, deterministic text out.
//
// One query per line, `#` comments and blank lines skipped:
//
//   point <key>                 anycast verdict + row stats for one target
//   replicas <key>              enumerated, geolocated replica set
//   batch <key> <key> ...       vectorized point lookups, aggregate answer
//   nearest <key> <lat> <lon>   closest replica to a client coordinate
//   diff                        landscape delta vs. the previous snapshot
//   stats                       live telemetry: snapshot id, query count,
//                               qps (last per-second window), p50/p99/p999
//                               end-to-end latency in us (HDR in-process
//                               quantiles, <=1/128 relative error)
//   slo                         per-objective burn-rate state ("slo none"
//                               when no --slo objectives are configured)
//   metricsdump                 the full telemetry JSON document (metrics
//                               + latency + series + slo sections)
//
// `<key>` is either a dense target index or a dotted-quad IPv4 address
// (resolved through the snapshot's hitlist /24 index). Answers are
// byte-deterministic for a given snapshot pair — cli_smoke greps them and
// the watch serve loop compares final-epoch answers across runs — so all
// floating-point output is fixed-precision and iteration order is the
// snapshot's own. The telemetry verbs (stats/slo/metricsdump) report live
// wall-clock state and are exempt from that byte contract; the watch
// serve loop's cross-run answer comparison therefore must not include
// them.
//
// Every query is recorded into the per-stage LatencyHisto set
// (serving_parse_ns, serving_{lookup,nearest,diff}_ns, serving_query_ns)
// unless obs::set_latency_recording(false); malformed lines additionally
// bump serving_errors and the telemetry error window.
//
// Used by `anycastd serve` (file or stdin batch loop) and by the watch
// daemon's in-campaign serve thread; tests drive it directly.
#pragma once

#include <string>
#include <string_view>

#include "anycast/serving/snapshot.hpp"

namespace anycast::serving {

/// What a batch of queries runs against. `previous` may be null; `diff`
/// queries then answer an error.
struct QueryContext {
  const SnapshotView* current = nullptr;
  const SnapshotView* previous = nullptr;
};

/// Appends the answer for one query line to `out` (one or more lines,
/// each '\n'-terminated). Returns false on a malformed query, filling
/// `error` instead; `out` is untouched in that case. Unknown keys are NOT
/// errors — they answer `... unknown` (a serving plane must keep serving
/// hostile input).
bool answer_query(const QueryContext& context, std::string_view line,
                  std::string& out, std::string& error);

/// Result of answering a whole request text.
struct QueryBatchResult {
  std::size_t answered = 0;  // query lines answered (comments not counted)
  std::size_t error_line = 0;  // 1-based line of the first malformed query
  std::string error;           // empty on success
  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Answers every query line in `text` into `out`. Parse-then-answer:
/// `text` is validated in full first, so a malformed line anywhere means
/// NO answers are produced (batch atomicity — a half-answered request
/// file cannot be mistaken for a complete one).
QueryBatchResult answer_queries(const QueryContext& context,
                                std::string_view text, std::string& out);

}  // namespace anycast::serving
