// Atomic epoch-swap publication of census snapshots (RCU-style).
//
// The serving plane's contract: a census build (seconds) must never stall
// a query (microseconds), and a query must never observe a half-swapped
// snapshot. SnapshotStore gives both with a lock-free read path:
//
//   Reader:  claim a slot (CAS kFree -> epoch), re-announce until the
//            announced epoch is the one last observed, load `current_`,
//            answer queries against that view, store kFree to unpin.
//   Writer:  exchange `current_` to the fresh snapshot, bump `epoch_`,
//            push the old node onto the retired list stamped with the new
//            epoch, then reclaim every retired node whose stamp is <= the
//            minimum epoch announced across claimed slots.
//
// Why this is safe (the memory-order contract, DESIGN.md §16): all shared
// atomics (`slots_`, `epoch_`, `current_`) use seq_cst, so every claim,
// bump, exchange, and scan falls into one total order. A reader announces
// BEFORE loading `current_`; a writer exchanges BEFORE bumping and bumps
// BEFORE scanning. If the writer's reclaim scan reads a slot before the
// reader's announce lands, then — by the total order — the exchange also
// preceded the reader's `current_` load, so the reader can only see the
// NEW snapshot, never the node being reclaimed. If the announce lands
// first, the scan sees it and the node survives. Announced epochs are
// conservative (a stale-low announcement only widens protection), and a
// node obtained after announcing epoch e always carries a retire stamp
// > e, so the "free iff stamp <= min announced" rule can never free a
// node a pinned reader holds. No standalone fences, no hazard-pointer
// validation loop, no locks anywhere a reader runs — the writer-side
// mutex only serialises publishers against each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "anycast/serving/snapshot.hpp"

namespace anycast::serving {

class SnapshotStore;

/// RAII pin on one published snapshot. While alive, the view (and every
/// arena behind it) is guaranteed resident; queries through it are
/// wait-free. Invalid (falsey) when nothing was published yet.
class ReadGuard {
 public:
  ReadGuard() = default;
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;
  ReadGuard(ReadGuard&& other) noexcept { move_from(other); }
  ReadGuard& operator=(ReadGuard&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  ~ReadGuard() { release(); }

  [[nodiscard]] bool valid() const { return view_ != nullptr; }
  explicit operator bool() const { return valid(); }
  [[nodiscard]] const SnapshotView& view() const { return *view_; }
  const SnapshotView* operator->() const { return view_; }

  /// Unpins early (idempotent).
  void release();

 private:
  friend class SnapshotStore;
  ReadGuard(SnapshotStore* store, std::size_t slot, const SnapshotView* view)
      : store_(store), slot_(slot), view_(view) {}
  void move_from(ReadGuard& other) {
    store_ = other.store_;
    slot_ = other.slot_;
    view_ = other.view_;
    other.store_ = nullptr;
    other.view_ = nullptr;
  }

  SnapshotStore* store_ = nullptr;
  std::size_t slot_ = 0;
  const SnapshotView* view_ = nullptr;
};

class SnapshotStore {
 public:
  /// Concurrent pinned readers supported; a 65th reader spins until a
  /// slot frees. Sized for "threads on one host", not "clients" — one
  /// slot pins one epoch for a whole batch of queries.
  static constexpr std::size_t kMaxReaderSlots = 64;

  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;
  ~SnapshotStore();

  /// Publishes `view` as the current snapshot. Lock-free for readers:
  /// in-flight guards keep answering from the snapshot they pinned, new
  /// acquires see `view`. The displaced snapshot is retired and freed
  /// once the last reader that could hold it drains. Thread-safe against
  /// concurrent publishers.
  void publish(SnapshotView view);

  /// Pins the current snapshot. Returns an invalid guard when nothing
  /// has been published.
  [[nodiscard]] ReadGuard acquire();

  /// Blocks until every retired snapshot has been reclaimed (readers of
  /// old epochs drained). Current snapshot stays published.
  void drain();

  /// Monotone swap count: 0 before the first publish.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }
  /// Retired-but-not-yet-freed snapshots (test observability).
  [[nodiscard]] std::size_t retired_count();
  /// Snapshots freed by reclamation since construction.
  [[nodiscard]] std::uint64_t snapshots_freed() const {
    return freed_.load(std::memory_order_seq_cst);
  }

 private:
  struct Node {
    explicit Node(SnapshotView v) : view(std::move(v)) {}
    SnapshotView view;
  };
  struct Retired {
    Node* node = nullptr;
    std::uint64_t stamp = 0;  // epoch at which the node became unreachable
  };
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kFreeSlot};
  };
  static constexpr std::uint64_t kFreeSlot = ~std::uint64_t{0};

  friend class ReadGuard;
  void release_slot(std::size_t slot);
  /// Frees every retired node whose stamp is <= the minimum announced
  /// epoch. Caller holds writer_mutex_.
  void reclaim_locked();

  Slot slots_[kMaxReaderSlots];
  std::atomic<Node*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> freed_{0};
  std::mutex writer_mutex_;        // publishers + reclaim bookkeeping only
  std::vector<Retired> retired_;   // guarded by writer_mutex_
};

}  // namespace anycast::serving
