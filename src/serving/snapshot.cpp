#include "anycast/serving/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "anycast/analysis/incremental.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::serving {

SnapshotView SnapshotView::build(census::ShardedCensusMatrix matrix,
                                 std::vector<analysis::TargetOutcome> outcomes,
                                 std::uint64_t id,
                                 const census::Hitlist* hitlist) {
  SnapshotView view;
  view.id_ = id;
  view.matrix_ = std::move(matrix);
  view.outcomes_ = std::move(outcomes);

  view.outcome_of_.assign(view.matrix_.target_count(), kNoOutcome);
  view.replica_unit_offset_.reserve(view.outcomes_.size() + 1);
  std::size_t total_replicas = 0;
  for (const analysis::TargetOutcome& outcome : view.outcomes_) {
    total_replicas += outcome.result.replicas.size();
  }
  view.replica_units_.reserve(total_replicas);
  for (std::size_t i = 0; i < view.outcomes_.size(); ++i) {
    const analysis::TargetOutcome& outcome = view.outcomes_[i];
    if (outcome.target_index < view.outcome_of_.size()) {
      view.outcome_of_[outcome.target_index] = static_cast<std::uint32_t>(i);
    }
    view.replica_unit_offset_.push_back(
        static_cast<std::uint32_t>(view.replica_units_.size()));
    for (const core::Replica& replica : outcome.result.replicas) {
      view.replica_units_.push_back(geodesy::unit_vector(replica.location));
    }
  }
  view.replica_unit_offset_.push_back(
      static_cast<std::uint32_t>(view.replica_units_.size()));

  if (hitlist != nullptr) {
    const std::size_t indexed =
        std::min(hitlist->size(), view.matrix_.target_count());
    view.address_index_.reserve(indexed);
    for (std::size_t t = 0; t < indexed; ++t) {
      view.address_index_.emplace_back(
          (*hitlist)[t].representative.slash24_index(),
          static_cast<std::uint32_t>(t));
    }
    std::sort(view.address_index_.begin(), view.address_index_.end());
  }
  return view;
}

SnapshotView SnapshotView::build(census::CensusMatrix matrix,
                                 std::vector<analysis::TargetOutcome> outcomes,
                                 std::uint64_t id,
                                 const census::Hitlist* hitlist) {
  // Wrap the monolithic matrix into a single-shard plane (shard_targets 0
  // means "one shard spanning everything"), so every downstream consumer
  // sees one matrix type.
  census::ShardedCensusMatrix sharded(matrix.target_count(),
                                      census::DataPlaneConfig{});
  if (sharded.shard_count() > 0) sharded.shard(0) = std::move(matrix);
  return build(std::move(sharded), std::move(outcomes), id, hitlist);
}

std::optional<std::uint32_t> SnapshotView::target_of_address(
    std::uint32_t slash24_index) const {
  const auto it = std::lower_bound(
      address_index_.begin(), address_index_.end(),
      std::make_pair(slash24_index, std::uint32_t{0}));
  if (it == address_index_.end() || it->first != slash24_index) {
    return std::nullopt;
  }
  return it->second;
}

void SnapshotView::lookup_batch(std::span<const std::uint32_t> targets,
                                PointAnswer* out) const {
  const std::size_t known = outcome_of_.size();
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::uint32_t t = targets[i];
    PointAnswer answer;
    if (t < known) {
      const std::span<const census::VpRtt> row = matrix_.measurements(t);
      answer.responsive = row.empty() ? 0 : 1;
      answer.vp_count = static_cast<std::uint16_t>(
          std::min<std::size_t>(row.size(), 0xFFFF));
      const std::uint32_t oi = outcome_of_[t];
      if (oi != kNoOutcome) {
        answer.anycast = 1;
        answer.replica_count =
            static_cast<std::uint32_t>(outcomes_[oi].result.replicas.size());
      }
    }
    out[i] = answer;
  }
}

const core::Replica* SnapshotView::nearest_replica(std::uint32_t target,
                                                   double lat_deg,
                                                   double lon_deg,
                                                   double* distance_km) const {
  if (target >= outcome_of_.size()) return nullptr;
  const std::uint32_t oi = outcome_of_[target];
  if (oi == kNoOutcome) return nullptr;
  const analysis::TargetOutcome& outcome = outcomes_[oi];
  if (outcome.result.replicas.empty()) return nullptr;

  const geodesy::GeoPoint query(lat_deg, lon_deg);
  const geodesy::Unit3 uq = geodesy::unit_vector(query);
  const std::uint32_t base = replica_unit_offset_[oi];
  std::size_t best = 0;
  double best_chord2 = geodesy::chord2(uq, replica_units_[base]);
  for (std::size_t k = 1; k < outcome.result.replicas.size(); ++k) {
    const double c2 = geodesy::chord2(uq, replica_units_[base + k]);
    if (c2 < best_chord2) {
      best_chord2 = c2;
      best = k;
    }
  }
  const core::Replica* winner = &outcome.result.replicas[best];
  if (distance_km != nullptr) {
    *distance_km = geodesy::distance_km(query, winner->location);
  }
  return winner;
}

SnapshotDelta SnapshotView::changed_since(const SnapshotView& prev,
                                          std::size_t min_replica_delta,
                                          concurrency::ThreadPool* pool) const {
  SnapshotDelta delta;
  delta.dirty = analysis::dirty_rows(prev.matrix_, matrix_, pool);

  // Candidate prefixes: everything a dirty row can have touched, on either
  // side. Clean rows are per-row pure — same RTT vector, same analyzer,
  // same verdict — so restricting the landscape diff to these prefixes
  // loses nothing (the invariant serving_test pins against the full
  // oracle). Incomparable layouts make every prefix a candidate: dirty
  // enumerates rows of *this* matrix, which misses prev-only targets.
  std::vector<std::uint32_t> candidates;
  if (prev.matrix_.target_count() != matrix_.target_count()) {
    candidates.reserve(prev.outcomes_.size() + outcomes_.size());
    for (const analysis::TargetOutcome& o : prev.outcomes_) {
      candidates.push_back(o.slash24_index);
    }
    for (const analysis::TargetOutcome& o : outcomes_) {
      candidates.push_back(o.slash24_index);
    }
  } else {
    candidates.reserve(delta.dirty.size() * 2);
    for (const std::uint32_t t : delta.dirty) {
      if (const analysis::TargetOutcome* o = prev.outcome(t)) {
        candidates.push_back(o->slash24_index);
      }
      if (const analysis::TargetOutcome* o = outcome(t)) {
        candidates.push_back(o->slash24_index);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  const auto restrict_to = [&candidates](
                               std::span<const analysis::TargetOutcome> all) {
    std::vector<analysis::TargetOutcome> sub;
    for (const analysis::TargetOutcome& o : all) {
      if (std::binary_search(candidates.begin(), candidates.end(),
                             o.slash24_index)) {
        sub.push_back(o);
      }
    }
    return sub;
  };
  const std::vector<analysis::TargetOutcome> before = restrict_to(prev.outcomes_);
  const std::vector<analysis::TargetOutcome> after = restrict_to(outcomes_);
  delta.diff = analysis::diff_censuses(analysis::CensusSnapshot(before),
                                       analysis::CensusSnapshot(after),
                                       min_replica_delta);
  return delta;
}

}  // namespace anycast::serving
