#include "anycast/serving/query.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "anycast/ipaddr/ipv4.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/telemetry.hpp"

namespace anycast::serving {
namespace {

struct QueryInstruments {
  obs::Counter queries = obs::metrics().counter(
      "serving_queries", obs::MetricClass::kTiming,
      "query lines answered by the serving plane");
  obs::Counter unknown_keys = obs::metrics().counter(
      "serving_unknown_keys", obs::MetricClass::kTiming,
      "queries naming a target outside the snapshot");
  obs::Counter errors = obs::metrics().counter(
      "serving_errors", obs::MetricClass::kTiming,
      "malformed query lines rejected by the serving plane");
};

const QueryInstruments& query_instruments() {
  static const QueryInstruments instruments;
  return instruments;
}

/// Per-stage HDR latency histograms for the telemetry plane. Stage names
/// line up with the SLO spec grammar (p99_<stage>_us): parse covers
/// tokenisation, lookup covers point/replicas/batch, and query is the
/// whole answer including output formatting.
struct StageHistos {
  obs::LatencyHisto& parse = obs::LatencyHisto::get(
      "serving_parse_ns", "ns", "serving query tokenise+dispatch latency");
  obs::LatencyHisto& lookup = obs::LatencyHisto::get(
      "serving_lookup_ns", "ns", "point/replicas/batch answer latency");
  obs::LatencyHisto& nearest = obs::LatencyHisto::get(
      "serving_nearest_ns", "ns", "nearest-replica answer latency");
  obs::LatencyHisto& diff = obs::LatencyHisto::get(
      "serving_diff_ns", "ns", "diff answer latency");
  obs::LatencyHisto& query = obs::LatencyHisto::get(
      "serving_query_ns", "ns", "end-to-end serving query latency");
};

StageHistos& stage_histos() {
  static StageHistos histos;
  return histos;
}

/// RAII per-query recorder: two clock reads when recording is on (start
/// and destructor; `parsed()` adds one more), none when off. Destructor
/// placement makes every return path — including malformed rejects —
/// record the end-to-end sample.
class QueryTimer {
  using Clock = std::chrono::steady_clock;

 public:
  QueryTimer() : enabled_(obs::latency_recording()) {
    if (enabled_) start_ = Clock::now();
  }
  QueryTimer(const QueryTimer&) = delete;
  QueryTimer& operator=(const QueryTimer&) = delete;

  /// Call once, right after tokenisation: closes the parse stage.
  void parsed() {
    if (enabled_) parse_end_ = Clock::now();
  }
  /// Attribute the answer stage to one of the stage histograms.
  void attribute(obs::LatencyHisto& stage) { stage_ = &stage; }

  ~QueryTimer() {
    if (!enabled_) return;
    const Clock::time_point end = Clock::now();
    const auto ns = [](Clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
    };
    StageHistos& histos = stage_histos();
    if (parse_end_ != Clock::time_point{}) {
      histos.parse.record(ns(parse_end_ - start_));
      if (stage_ != nullptr) stage_->record(ns(end - parse_end_));
    }
    histos.query.record(ns(end - start_));
  }

 private:
  bool enabled_;
  Clock::time_point start_{};
  Clock::time_point parse_end_{};
  obs::LatencyHisto* stage_ = nullptr;
};

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

std::optional<std::uint64_t> parse_u64(std::string_view token) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_f64(std::string_view token) {
  // std::from_chars<double> is still spotty across libstdc++ versions in
  // the field; strtod on a bounded copy is equivalent here.
  char buf[64];
  if (token.empty() || token.size() >= sizeof(buf)) return std::nullopt;
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  if (end != buf + token.size()) return std::nullopt;
  return value;
}

/// A query key resolves to a target index, to "unknown" (valid syntax,
/// not in the snapshot), or to malformed.
enum class KeyStatus { kResolved, kUnknown, kMalformed };

KeyStatus resolve_key(const SnapshotView& view, std::string_view token,
                      std::uint32_t& target) {
  if (const std::optional<std::uint64_t> index = parse_u64(token)) {
    if (*index >= view.target_count()) return KeyStatus::kUnknown;
    target = static_cast<std::uint32_t>(*index);
    return KeyStatus::kResolved;
  }
  const auto address = ipaddr::IPv4Address::parse(token);
  if (!address) return KeyStatus::kMalformed;
  const std::optional<std::uint32_t> hit =
      view.target_of_address(address->slash24_index());
  if (!hit) return KeyStatus::kUnknown;
  target = *hit;
  return KeyStatus::kResolved;
}

void append_fmt(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

void answer_point(const SnapshotView& view, std::string_view key,
                  std::uint32_t target, std::string& out) {
  PointAnswer answer;
  const std::uint32_t one[1] = {target};
  view.lookup_batch(one, &answer);
  append_fmt(out, "point %.*s target=%u anycast=%u responsive=%u vps=%u replicas=%u\n",
             static_cast<int>(key.size()), key.data(), target, answer.anycast,
             answer.responsive, answer.vp_count, answer.replica_count);
}

void answer_replicas(const SnapshotView& view, std::string_view key,
                     std::uint32_t target, std::string& out) {
  const std::span<const core::Replica> replicas = view.replicas(target);
  append_fmt(out, "replicas %.*s target=%u count=%zu\n",
             static_cast<int>(key.size()), key.data(), target,
             replicas.size());
  for (const core::Replica& replica : replicas) {
    const std::string city =
        replica.city != nullptr ? replica.city->display() : "-";
    append_fmt(out, "  replica vp=%u city=\"%s\" lat=%.4f lon=%.4f\n",
               replica.vp_id, city.c_str(), replica.location.latitude(),
               replica.location.longitude());
  }
}

}  // namespace

bool answer_query(const QueryContext& context, std::string_view line,
                  std::string& out, std::string& error) {
  if (context.current == nullptr) {
    error = "no snapshot published";
    return false;
  }
  const SnapshotView& view = *context.current;
  QueryTimer timer;
  const std::vector<std::string_view> tokens = split_tokens(line);
  timer.parsed();
  if (tokens.empty()) return true;  // caller filters blanks; be lenient
  const std::string_view verb = tokens[0];
  std::string answer;

  const auto unknown = [&](std::string_view key) {
    query_instruments().unknown_keys.inc();
    answer.append(std::string(verb) + " " + std::string(key) + " unknown\n");
  };
  const auto malformed = [&](const std::string& why) {
    query_instruments().errors.inc();
    obs::telemetry().note_query_error();
    error = why;
    return false;
  };

  if (verb == "point" || verb == "replicas") {
    timer.attribute(stage_histos().lookup);
    if (tokens.size() != 2) {
      return malformed("expected: " + std::string(verb) + " <target|a.b.c.d>");
    }
    std::uint32_t target = 0;
    switch (resolve_key(view, tokens[1], target)) {
      case KeyStatus::kMalformed:
        return malformed("bad target key '" + std::string(tokens[1]) + "'");
      case KeyStatus::kUnknown:
        unknown(tokens[1]);
        break;
      case KeyStatus::kResolved:
        if (verb == "point") {
          answer_point(view, tokens[1], target, answer);
        } else {
          answer_replicas(view, tokens[1], target, answer);
        }
        break;
    }
  } else if (verb == "batch") {
    timer.attribute(stage_histos().lookup);
    if (tokens.size() < 2) return malformed("expected: batch <key> <key> ...");
    std::vector<std::uint32_t> targets;
    targets.reserve(tokens.size() - 1);
    std::size_t unknown_count = 0;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      std::uint32_t target = 0;
      switch (resolve_key(view, tokens[i], target)) {
        case KeyStatus::kMalformed:
          return malformed("bad target key '" + std::string(tokens[i]) + "'");
        case KeyStatus::kUnknown:
          ++unknown_count;
          break;
        case KeyStatus::kResolved:
          targets.push_back(target);
          break;
      }
    }
    if (unknown_count > 0) query_instruments().unknown_keys.add(unknown_count);
    std::vector<PointAnswer> answers(targets.size());
    view.lookup_batch(targets, answers.data());
    std::size_t anycast = 0;
    std::size_t responsive = 0;
    std::size_t replicas = 0;
    for (const PointAnswer& a : answers) {
      anycast += a.anycast;
      responsive += a.responsive;
      replicas += a.replica_count;
    }
    append_fmt(answer,
               "batch n=%zu unknown=%zu anycast=%zu responsive=%zu replicas=%zu\n",
               targets.size(), unknown_count, anycast, responsive, replicas);
  } else if (verb == "nearest") {
    timer.attribute(stage_histos().nearest);
    if (tokens.size() != 4) {
      return malformed("expected: nearest <target|a.b.c.d> <lat> <lon>");
    }
    const std::optional<double> lat = parse_f64(tokens[2]);
    const std::optional<double> lon = parse_f64(tokens[3]);
    if (!lat || !lon || *lat < -90.0 || *lat > 90.0 || *lon < -180.0 ||
        *lon > 180.0) {
      return malformed("bad coordinate");
    }
    std::uint32_t target = 0;
    switch (resolve_key(view, tokens[1], target)) {
      case KeyStatus::kMalformed:
        return malformed("bad target key '" + std::string(tokens[1]) + "'");
      case KeyStatus::kUnknown:
        unknown(tokens[1]);
        break;
      case KeyStatus::kResolved: {
        double km = 0.0;
        const core::Replica* hit =
            view.nearest_replica(target, *lat, *lon, &km);
        if (hit == nullptr) {
          append_fmt(answer, "nearest %.*s target=%u none\n",
                     static_cast<int>(tokens[1].size()), tokens[1].data(),
                     target);
        } else {
          const std::string city =
              hit->city != nullptr ? hit->city->display() : "-";
          append_fmt(answer,
                     "nearest %.*s target=%u vp=%u city=\"%s\" km=%.1f\n",
                     static_cast<int>(tokens[1].size()), tokens[1].data(),
                     target, hit->vp_id, city.c_str(), km);
        }
        break;
      }
    }
  } else if (verb == "diff") {
    timer.attribute(stage_histos().diff);
    if (tokens.size() != 1) return malformed("expected: diff");
    if (context.previous == nullptr) {
      return malformed("diff needs a previous snapshot (--against)");
    }
    const SnapshotDelta delta = view.changed_since(*context.previous);
    using Kind = analysis::PrefixChange::Kind;
    append_fmt(answer,
               "diff dirty=%zu changes=%zu appeared=%zu disappeared=%zu "
               "grew=%zu shrank=%zu moved=%zu\n",
               delta.dirty.size(), delta.diff.changes.size(),
               delta.diff.count(Kind::kAppeared),
               delta.diff.count(Kind::kDisappeared),
               delta.diff.count(Kind::kGrew), delta.diff.count(Kind::kShrank),
               delta.diff.count(Kind::kMoved));
    for (const analysis::PrefixChange& change : delta.diff.changes) {
      append_fmt(answer, "  %.*s slash24=%u before=%zu after=%zu\n",
                 static_cast<int>(analysis::to_string(change.kind).size()),
                 analysis::to_string(change.kind).data(),
                 change.slash24_index, change.replicas_before,
                 change.replicas_after);
    }
  } else if (verb == "stats") {
    if (tokens.size() != 1) return malformed("expected: stats");
    const obs::LatencyHisto::Snapshot snap = stage_histos().query.snapshot();
    // qps is the last per-second window (0 until a ticker has run — the
    // one-shot `serve` command has no ticker; watch --serve-queries does).
    const double qps = obs::telemetry().per_second().stats(0, 1).last;
    append_fmt(answer,
               "stats snapshot=%llu targets=%zu anycast=%zu queries=%llu "
               "errors=%llu qps=%.1f p50_us=%.1f p99_us=%.1f p999_us=%.1f\n",
               static_cast<unsigned long long>(view.id()), view.target_count(),
               view.anycast_count(),
               static_cast<unsigned long long>(snap.count),
               static_cast<unsigned long long>(
                   obs::telemetry().query_errors()),
               qps, snap.quantile(0.5) / 1e3, snap.quantile(0.99) / 1e3,
               snap.quantile(0.999) / 1e3);
  } else if (verb == "slo") {
    if (tokens.size() != 1) return malformed("expected: slo");
    const std::vector<obs::SloTracker::State> states =
        obs::telemetry().slo_states();
    if (states.empty()) {
      answer += "slo none\n";
    } else {
      append_fmt(answer, "slo objectives=%zu\n", states.size());
      for (const obs::SloTracker::State& s : states) {
        append_fmt(answer,
                   "  slo %s target=%.6g burn_short_permille=%llu "
                   "burn_long_permille=%llu windows=%llu violations=%llu "
                   "state=%s\n",
                   s.objective.name.c_str(), s.objective.threshold,
                   static_cast<unsigned long long>(s.burn_short_permille),
                   static_cast<unsigned long long>(s.burn_long_permille),
                   static_cast<unsigned long long>(s.windows),
                   static_cast<unsigned long long>(s.violations),
                   s.violating ? "violating" : "ok");
      }
    }
  } else if (verb == "metricsdump") {
    if (tokens.size() != 1) return malformed("expected: metricsdump");
    answer += obs::telemetry().document_json();
  } else {
    return malformed("unknown verb '" + std::string(verb) + "'");
  }

  query_instruments().queries.inc();
  out += answer;
  return true;
}

QueryBatchResult answer_queries(const QueryContext& context,
                                std::string_view text, std::string& out) {
  QueryBatchResult result;
  // Answers accumulate in `scratch` and flush to `out` only when the
  // whole batch parsed clean — a malformed line anywhere suppresses ALL
  // output, so a half-answered request file cannot pass for a full one.
  std::string scratch;
  std::string error;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string_view::npos ? text.size() : eol;
    std::string_view line = text.substr(pos, end - pos);
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line = line.substr(0, line.size() - 1);
    }
    const bool skip = line.empty() || line[0] == '#';
    if (!skip && !answer_query(context, line, scratch, error)) {
      result.error = error;
      result.error_line = line_no;
      return result;
    }
    if (!skip) ++result.answered;
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  out += scratch;
  return result;
}

}  // namespace anycast::serving
