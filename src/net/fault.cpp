#include "anycast/net/fault.hpp"

#include <algorithm>
#include <cmath>

#include "anycast/rng/distributions.hpp"

namespace anycast::net {
namespace {

/// Distinct sub-stream tags so adding a fault kind never perturbs the
/// draws of another (same discipline as Xoshiro256::split).
enum Stream : std::uint64_t {
  kCrashCoin = 1,
  kCrashWhere = 2,
  kOutageCoin = 3,
  kOutageWhere = 4,
  kStormCoin = 5,
  kStormWhere = 6,
  kStallCoin = 7,
  kStallWhere = 8,
};

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

VpFaultSchedule FaultPlan::schedule_for(std::uint32_t vp_id) const {
  const auto draw = [&](std::uint64_t tag) {
    return rng::hash_uniform01(rng::hash_key(spec_.seed, vp_id, tag));
  };
  const auto window = [&](std::uint64_t tag, double span, double& begin,
                          double& end) {
    const double width = clamp01(span);
    begin = draw(tag) * (1.0 - width);
    end = begin + width;
  };

  VpFaultSchedule s;
  if (draw(kCrashCoin) < spec_.crash_rate) {
    // Die somewhere in the middle 90% of the walk: a crash at 0% is a
    // skipped VP, at 100% a completed one — neither is interesting.
    s.crash_fraction = 0.05 + 0.90 * draw(kCrashWhere);
  }
  if (draw(kOutageCoin) < spec_.outage_rate) {
    window(kOutageWhere, spec_.outage_span, s.outage_begin, s.outage_end);
  }
  if (draw(kStormCoin) < spec_.storm_rate) {
    window(kStormWhere, spec_.storm_span, s.storm_begin, s.storm_end);
    s.storm_drop = clamp01(spec_.storm_drop);
  }
  if (draw(kStallCoin) < spec_.straggler_rate) {
    window(kStallWhere, spec_.stall_span, s.stall_begin, s.stall_end);
    s.stall_factor = std::max(1.0, spec_.stall_factor);
  }
  return s;
}

FaultInjector::FaultInjector(const VpFaultSchedule& schedule,
                             std::uint64_t walk_length)
    : active_(schedule.any()) {
  if (!active_) return;
  const auto index_of = [walk_length](double fraction) {
    return static_cast<std::uint64_t>(clamp01(fraction) *
                                      static_cast<double>(walk_length));
  };
  if (schedule.crash_fraction < 1.0) {
    crash_at_ = index_of(schedule.crash_fraction);
  }
  outage_begin_ = index_of(schedule.outage_begin);
  outage_end_ = index_of(schedule.outage_end);
  storm_begin_ = index_of(schedule.storm_begin);
  storm_end_ = index_of(schedule.storm_end);
  storm_drop_ = schedule.storm_drop;
  stall_begin_ = index_of(schedule.stall_begin);
  stall_end_ = index_of(schedule.stall_end);
  stall_factor_ = std::max(1.0, schedule.stall_factor);
}

}  // namespace anycast::net
