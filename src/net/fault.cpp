#include "anycast/net/fault.hpp"

#include <algorithm>
#include <cmath>

#include "anycast/rng/distributions.hpp"

namespace anycast::net {
namespace {

/// Distinct sub-stream tags so adding a fault kind never perturbs the
/// draws of another (same discipline as Xoshiro256::split).
enum Stream : std::uint64_t {
  kCrashCoin = 1,
  kCrashWhere = 2,
  kOutageCoin = 3,
  kOutageWhere = 4,
  kStormCoin = 5,
  kStormWhere = 6,
  kStallCoin = 7,
  kStallWhere = 8,
  // Longitudinal scenarios. Tags never overlap the classic four, so a plan
  // with scenarios disabled draws exactly what it always drew.
  kFlapCoin = 9,
  kRegionMember = 11,
  kHijackCoin = 12,
  kHijackJitter = 13,
  kRegionCoin = 14,   // census-wide draws: vp slot holds kCensusWide
  kRegionWhere = 15,  // census-wide
  kFlapWhereBase = 32,  // flap window f draws tag kFlapWhereBase + f
};

/// Stand-in for the vp_id slot in census-wide draws, so every VP agrees on
/// whether (and where) a regional outage happens.
constexpr std::uint32_t kCensusWide = 0xA17Cu;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

VpFaultSchedule FaultPlan::schedule_for(std::uint32_t vp_id) const {
  const auto draw = [&](std::uint64_t tag) {
    return rng::hash_uniform01(rng::hash_key(spec_.seed, vp_id, tag));
  };
  const auto window = [&](std::uint64_t tag, double span, double& begin,
                          double& end) {
    const double width = clamp01(span);
    begin = draw(tag) * (1.0 - width);
    end = begin + width;
  };

  VpFaultSchedule s;
  if (draw(kCrashCoin) < spec_.crash_rate) {
    // Die somewhere in the middle 90% of the walk: a crash at 0% is a
    // skipped VP, at 100% a completed one — neither is interesting.
    s.crash_fraction = 0.05 + 0.90 * draw(kCrashWhere);
  }
  if (draw(kOutageCoin) < spec_.outage_rate) {
    window(kOutageWhere, spec_.outage_span, s.outage_begin, s.outage_end);
  }
  if (draw(kStormCoin) < spec_.storm_rate) {
    window(kStormWhere, spec_.storm_span, s.storm_begin, s.storm_end);
    s.storm_drop = clamp01(spec_.storm_drop);
  }
  if (draw(kStallCoin) < spec_.straggler_rate) {
    window(kStallWhere, spec_.stall_span, s.stall_begin, s.stall_end);
    s.stall_factor = std::max(1.0, spec_.stall_factor);
  }
  if (draw(kFlapCoin) < spec_.flap_rate) {
    s.flap_count = std::clamp(spec_.flap_count, 0, VpFaultSchedule::kMaxFlaps);
    for (int f = 0; f < s.flap_count; ++f) {
      window(kFlapWhereBase + static_cast<std::uint64_t>(f), spec_.flap_span,
             s.flap_begin[f], s.flap_end[f]);
    }
    s.flap_extra_ms = std::max(0.0, spec_.flap_extra_ms);
  }
  if (spec_.regional_rate > 0.0) {
    // Census-wide coin and window: every VP evaluates the same draws, then
    // decides membership with its own kRegionMember stream — giving one
    // correlated dark window over a seeded cohort.
    const auto census_draw = [&](std::uint64_t tag) {
      return rng::hash_uniform01(rng::hash_key(spec_.seed, kCensusWide, tag));
    };
    if (census_draw(kRegionCoin) < spec_.regional_rate &&
        draw(kRegionMember) < spec_.regional_fraction) {
      const double width = clamp01(spec_.regional_span);
      s.regional_begin = census_draw(kRegionWhere) * (1.0 - width);
      s.regional_end = s.regional_begin + width;
    }
  }
  if (!spec_.hijack_targets.empty() &&
      draw(kHijackCoin) < spec_.hijack_vp_fraction) {
    s.hijack_captured = true;
    s.hijack_rtt_ms = std::max(0.0, spec_.hijack_rtt_ms);
    s.hijack_salt = rng::hash_key(spec_.seed, vp_id, kHijackJitter);
    s.hijack_targets = &spec_.hijack_targets;
  }
  return s;
}

FaultInjector::FaultInjector(const VpFaultSchedule& schedule,
                             std::uint64_t walk_length)
    : active_(schedule.any()) {
  if (!active_) return;
  const auto index_of = [walk_length](double fraction) {
    return static_cast<std::uint64_t>(clamp01(fraction) *
                                      static_cast<double>(walk_length));
  };
  if (schedule.crash_fraction < 1.0) {
    crash_at_ = index_of(schedule.crash_fraction);
  }
  outage_begin_ = index_of(schedule.outage_begin);
  outage_end_ = index_of(schedule.outage_end);
  storm_begin_ = index_of(schedule.storm_begin);
  storm_end_ = index_of(schedule.storm_end);
  storm_drop_ = schedule.storm_drop;
  stall_begin_ = index_of(schedule.stall_begin);
  stall_end_ = index_of(schedule.stall_end);
  stall_factor_ = std::max(1.0, schedule.stall_factor);
  flap_count_ = schedule.flap_count;
  for (int f = 0; f < flap_count_; ++f) {
    flap_begin_[f] = index_of(schedule.flap_begin[f]);
    flap_end_[f] = index_of(schedule.flap_end[f]);
  }
  flap_extra_ms_ = schedule.flap_extra_ms;
  regional_begin_ = index_of(schedule.regional_begin);
  regional_end_ = index_of(schedule.regional_end);
  if (schedule.hijack_captured) {
    hijack_base_rtt_ms_ = schedule.hijack_rtt_ms;
    hijack_salt_ = schedule.hijack_salt;
    hijack_targets_ = schedule.hijack_targets;
  }
}

double FaultInjector::hijack_rtt_ms(std::uint32_t target_index) const {
  const double jitter = rng::hash_uniform01(
      rng::hash_key(hijack_salt_, target_index, std::uint64_t{kHijackJitter}));
  return hijack_base_rtt_ms_ + 4.0 * jitter;
}

}  // namespace anycast::net
