#include "anycast/net/internet.hpp"

#include "anycast/net/platform.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "anycast/geo/city_data.hpp"
#include "anycast/ipaddr/aggregate.hpp"
#include "anycast/geo/city_index.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::net {
namespace {

// PoP city pool: where anycast replicas live. Weights reflect peering
// importance (major IXP metros host nearly every large deployment). The
// pool spans ~50 countries so the census-wide city/country counts land in
// the ballpark of Fig. 10's 77 cities / 38 countries.
struct PopCity {
  std::string_view name;
  double weight;
};

constexpr PopCity kPopPool[] = {
    // Tier-1 interconnection hubs.
    {"Amsterdam", 10}, {"Frankfurt", 10}, {"London", 10}, {"Paris", 8},
    {"Ashburn", 10},   {"New York", 9},   {"San Jose", 9}, {"Chicago", 8},
    {"Dallas", 8},     {"Los Angeles", 8}, {"Miami", 8},   {"Seattle", 6},
    {"Singapore", 9},  {"Tokyo", 9},      {"Hong Kong", 9}, {"Sydney", 7},
    {"Sao Paulo", 7},
    // Strong regional hubs.
    {"Stockholm", 5},  {"Milan", 5},      {"Madrid", 5},   {"Vienna", 5},
    {"Prague", 5},     {"Warsaw", 5},     {"Zurich", 5},   {"Brussels", 4},
    {"Dublin", 5},     {"Copenhagen", 4}, {"Oslo", 4},     {"Helsinki", 4},
    {"Lisbon", 3},     {"Bucharest", 3},  {"Sofia", 3},    {"Budapest", 3},
    {"Istanbul", 4},   {"Moscow", 4},     {"Kiev", 3},     {"Atlanta", 5},
    {"Denver", 5},     {"Toronto", 5},    {"Montreal", 4}, {"Vancouver", 4},
    {"Phoenix", 3},    {"Houston", 3},    {"Boston", 4},   {"Newark", 3},
    {"Washington", 3}, {"Mexico City", 4}, {"Osaka", 5},   {"Seoul", 5},
    {"Taipei", 4},     {"Mumbai", 5},     {"Delhi", 3},    {"Chennai", 4},
    {"Bangalore", 3},  {"Kuala Lumpur", 4}, {"Jakarta", 3}, {"Bangkok", 3},
    {"Manila", 3},     {"Dubai", 4},      {"Tel Aviv", 3}, {"Doha", 2},
    {"Melbourne", 4},  {"Auckland", 3},   {"Brisbane", 2}, {"Perth", 2},
    {"Rio de Janeiro", 3}, {"Buenos Aires", 3}, {"Santiago", 3},
    {"Bogota", 3},     {"Lima", 2},       {"Medellin", 2},
    {"Johannesburg", 4}, {"Cape Town", 3}, {"Nairobi", 2}, {"Lagos", 2},
    {"Cairo", 2},      {"Casablanca", 2}, {"Mombasa", 1},
    {"Marseille", 2},  {"Munich", 3},     {"Hamburg", 3},  {"Dusseldorf", 2},
    {"Barcelona", 3},  {"Rome", 3},       {"Manchester", 2},
    {"St. Louis", 2},  {"Minneapolis", 2}, {"Kansas City", 2},
    {"Salt Lake City", 2}, {"San Francisco", 4}, {"Palo Alto", 3},
};

/// /24 index where anycast allocations start: 104.0.0.0 (a block that in
/// the real Internet is indeed dense with anycast CDNs).
constexpr std::uint32_t kAnycastBase = 104u << 16;
/// /24 index where the unicast background starts: 16.0.0.0.
constexpr std::uint32_t kUnicastBase = 16u << 16;

double hash01(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return rng::hash_uniform01(rng::hash_key(a, b, c));
}

}  // namespace

SimulatedInternet::SimulatedInternet(const WorldConfig& config)
    : config_(config) {
  const geo::CityIndex& cities = geo::world_index();
  rng::Xoshiro256 gen(config.seed);

  // ---- Anycast deployments ----------------------------------------------
  std::vector<AsSpec> specs(top100_specs().begin(), top100_specs().end());
  const auto tail =
      tail_specs(config.tail_as_count, config.tail_ip24_total,
                 config.seed ^ 0x7A11ull);
  specs.insert(specs.end(), tail.begin(), tail.end());

  // Resolve the PoP pool against the city table once.
  std::vector<const geo::City*> pool;
  std::vector<double> pool_weights;
  for (const PopCity& pop : kPopPool) {
    const geo::City* city = cities.by_name(pop.name);
    if (city == nullptr) {
      throw std::logic_error("PoP pool city missing from city table: " +
                             std::string(pop.name));
    }
    pool.push_back(city);
    pool_weights.push_back(pop.weight);
  }

  std::uint32_t next_anycast_index = kAnycastBase;
  deployments_.reserve(specs.size());
  for (const AsSpec& spec : specs) {
    Deployment deployment;
    deployment.as_number = spec.as_number;
    deployment.whois_name = std::string(spec.whois);
    deployment.category = spec.category;
    deployment.tier1 = spec.tier1;
    deployment.caida_rank = spec.caida_rank;
    deployment.alexa_sites = spec.alexa_sites;
    deployment.tcp_services = make_services(spec, config.seed);
    deployment.serves_dns =
        profile_serves_dns(spec.profile) || spec.category == Category::kDns;
    if (spec.whois == "CLOUDFLARENET,US") {
      deployment.local_site_fraction_override = 0.15;  // uniform announcer
    } else if (spec.whois == "EDGECAST,US" || spec.whois == "EDGECAST-IR,") {
      deployment.local_site_fraction_override = 0.85;  // regional peering
    }
    // ECS adoption circa 2015: Google pioneered it; a handful of other
    // operators followed. The bulk of anycasters (and every
    // HTTP-redirection design) are invisible to ECS-based mapping.
    for (const std::string_view adopter :
         {"GOOGLE,US", "EDGECAST,US", "OPENDNS,US", "CDNETWORKSUS-"}) {
      if (spec.whois == adopter) deployment.ecs_capable = true;
    }

    // Pick `sites` distinct PoP cities, weighted by hub importance.
    // OpenDNS is pinned to start in Ashburn so the Sec. 3.4 population-bias
    // case study (Ashburn replica classified as a nearby metropolis) can be
    // reproduced deterministically.
    rng::Xoshiro256 site_gen = gen.split(spec.as_number);
    std::vector<double> weights = pool_weights;
    const int site_count =
        std::min<int>(spec.sites, static_cast<int>(pool.size()));
    std::vector<std::size_t> chosen;
    if (spec.whois == "OPENDNS,US") {
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (pool[i]->name == "Ashburn") {
          chosen.push_back(i);
          weights[i] = 0.0;
          break;
        }
      }
    }
    // Tail deployments are usually regional operators: their few sites
    // cluster in one region, which makes their disks overlap for most VPs
    // — the marginally-detectable population whose /24s flip in and out of
    // individual censuses and are only reliably caught by the combination
    // (Fig. 12's ~200-prefix gap).
    const bool is_tail = spec.as_number >= 200000;
    if (is_tail && rng::bernoulli(site_gen, 0.6)) {
      const std::size_t anchor = rng::weighted_index(site_gen, weights);
      const Region home = region_of(pool[anchor]->country);
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (region_of(pool[i]->country) != home) weights[i] = 0.0;
      }
    }
    while (static_cast<int>(chosen.size()) < site_count) {
      double remaining = 0.0;
      for (const double w : weights) remaining += w;
      if (remaining <= 0.0) break;  // region exhausted: fewer sites
      const std::size_t pick = rng::weighted_index(site_gen, weights);
      chosen.push_back(pick);
      weights[pick] = 0.0;
      if (is_tail) {
        // Anycast sites closer than ~400 km serve no purpose (their
        // catchments collapse); operators space them out, which also keeps
        // the deployment on the *marginally* detectable side rather than
        // the invisible one.
        for (std::size_t i = 0; i < pool.size(); ++i) {
          if (weights[i] > 0.0 &&
              geodesy::distance_km(pool[pick]->location(),
                                   pool[i]->location()) < 400.0) {
            weights[i] = 0.0;
          }
        }
      }
    }
    deployment.sites.reserve(chosen.size());
    for (const std::size_t pick : chosen) {
      ReplicaSite site;
      site.city = pool[pick];
      site.location = geodesy::destination(
          site.city->location(), rng::uniform(site_gen, 0.0, 360.0),
          rng::uniform(site_gen, 0.0, 20.0));
      deployment.sites.push_back(site);
    }

    // Allocate /24s and per-prefix announcement masks. Most prefixes are
    // announced everywhere; some from a subset of sites, producing the
    // per-/24 replica-count variance of Fig. 9's error bars.
    const std::uint64_t all_sites_mask =
        deployment.sites.size() >= 64
            ? ~std::uint64_t{0}
            : ((std::uint64_t{1} << deployment.sites.size()) - 1);
    deployment.prefixes.reserve(static_cast<std::size_t>(spec.ip24));
    for (int p = 0; p < spec.ip24; ++p) {
      deployment.prefixes.push_back(ipaddr::Prefix(
          ipaddr::IPv4Address::from_slash24_index(next_anycast_index, 0),
          24));
      ++next_anycast_index;
      std::uint64_t mask = all_sites_mask;
      if (deployment.sites.size() > 2 &&
          rng::bernoulli(site_gen, 0.3)) {
        // Announce from a random >= half subset.
        const auto min_sites =
            std::max<std::size_t>(1, deployment.sites.size() / 2);
        const auto keep = min_sites + rng::uniform_index(
            site_gen, deployment.sites.size() - min_sites + 1);
        mask = 0;
        std::size_t kept = 0;
        // Walk sites in a rotated order so subsets differ across prefixes.
        const auto start =
            rng::uniform_index(site_gen, deployment.sites.size());
        for (std::size_t s = 0; s < deployment.sites.size() && kept < keep;
             ++s) {
          const std::size_t idx = (start + s) % deployment.sites.size();
          mask |= std::uint64_t{1} << idx;
          ++kept;
        }
      }
      deployment.prefix_site_masks.push_back(mask);
    }
    deployments_.push_back(std::move(deployment));
  }

  // ---- Target universe ----------------------------------------------------
  // Anycast targets first (address order), then the unicast background.
  std::vector<ipaddr::Route> routes;
  for (std::size_t d = 0; d < deployments_.size(); ++d) {
    const Deployment& deployment = deployments_[d];
    for (std::size_t p = 0; p < deployment.prefixes.size(); ++p) {
      TargetInfo info;
      info.kind = TargetInfo::Kind::kAnycast;
      info.slash24_index = deployment.prefixes[p].network().slash24_index();
      info.deployment_index = static_cast<std::int32_t>(d);
      info.prefix_index = static_cast<std::int32_t>(p);
      info.alive = true;
      targets_.push_back(info);
    }
    // Deployments announce their contiguous /24 run as the minimal CIDR
    // aggregate (Sec. 3.1: announced prefixes are often shorter than /24;
    // the census probes each covered /24 and re-aggregates a posteriori).
    if (!deployment.prefixes.empty()) {
      for (const ipaddr::Prefix& aggregate : ipaddr::aggregate_slash24_range(
               deployment.prefixes.front().network().slash24_index(),
               static_cast<std::uint32_t>(deployment.prefixes.size()))) {
        routes.push_back(ipaddr::Route{aggregate, deployment.as_number});
      }
    }
  }

  const std::uint32_t unicast_total = config.unicast_alive_slash24 +
                                      config.unicast_silent_slash24 +
                                      config.unicast_dead_slash24;
  const double dead_fraction =
      unicast_total == 0
          ? 0.0
          : static_cast<double>(config.unicast_dead_slash24) / unicast_total;
  const std::uint32_t live_total =
      config.unicast_alive_slash24 + config.unicast_silent_slash24;
  const double silent_fraction =
      live_total == 0 ? 0.0
                      : static_cast<double>(config.unicast_silent_slash24) /
                            live_total;
  std::vector<double> city_pop_weights;
  const auto all_cities = geo::world_cities();
  city_pop_weights.reserve(all_cities.size());
  for (const geo::City& city : all_cities) {
    city_pop_weights.push_back(static_cast<double>(city.population));
  }
  rng::Xoshiro256 unicast_gen = gen.split(0xC0FFEE);
  for (std::uint32_t i = 0; i < unicast_total; ++i) {
    TargetInfo info;
    info.kind = TargetInfo::Kind::kUnicast;
    info.slash24_index = kUnicastBase + i;
    const geo::City& city =
        all_cities[rng::weighted_index(unicast_gen, city_pop_weights)];
    info.unicast_location = geodesy::destination(
        city.location(), rng::uniform(unicast_gen, 0.0, 360.0),
        rng::exponential(unicast_gen, 60.0));
    if (rng::bernoulli(unicast_gen, dead_fraction)) {
      info.kind = TargetInfo::Kind::kDead;
      info.alive = false;
    } else if (rng::bernoulli(unicast_gen, silent_fraction)) {
      // Routed but currently unresponsive: stays in the hitlist (positive
      // score) yet answers nothing, so less than half the probed targets
      // send a reply (Fig. 4).
      info.alive = false;
    } else if (rng::bernoulli(unicast_gen, config.prohibited_fraction)) {
      // Split of prohibited codes per Sec. 3.3: 98.5% administratively
      // filtered (type 3 code 13), 1.3% host (code 10), 0.2% net (code 9).
      const double split = rng::uniform01(unicast_gen);
      info.error_kind = split < 0.985 ? ReplyKind::kAdminProhibited
                        : split < 0.998 ? ReplyKind::kHostProhibited
                                        : ReplyKind::kNetProhibited;
    }
    info.unicast_web = rng::bernoulli(unicast_gen, 0.12);
    info.unicast_dns = rng::bernoulli(unicast_gen, 0.015);
    targets_.push_back(info);
    routes.push_back(ipaddr::Route{
        ipaddr::Prefix(
            ipaddr::IPv4Address::from_slash24_index(info.slash24_index, 0),
            24),
        64512 + i % 20000});
  }

  by_slash24_.reserve(targets_.size());
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    by_slash24_.emplace(targets_[i].slash24_index, i);
  }
  route_table_ = ipaddr::PrefixTable(std::move(routes));
}

const Deployment* SimulatedInternet::deployment_by_name(
    std::string_view whois) const {
  for (const Deployment& deployment : deployments_) {
    if (deployment.whois_name == whois) return &deployment;
  }
  return nullptr;
}

const TargetInfo* SimulatedInternet::target_for(
    ipaddr::IPv4Address addr) const {
  const auto it = by_slash24_.find(addr.slash24_index());
  return it == by_slash24_.end() ? nullptr : &targets_[it->second];
}

double SimulatedInternet::path_inflation(const VantagePoint& vp,
                                         std::uint32_t slash24_index) const {
  // Deterministic per (VP, /24): the path is fixed, only queueing varies.
  // 1 + lognormal keeps inflation strictly above 1 so a measured RTT can
  // never violate physics (iGreedy's no-false-positive precondition).
  const double u1 = hash01(config_.seed, vp.id, slash24_index);
  const double u2 = hash01(config_.seed ^ 1, vp.id, slash24_index);
  const double z = std::sqrt(-2.0 * std::log(std::max(u1, 0x1.0p-53))) *
                   std::cos(6.283185307179586 * u2);
  return 1.0 +
         std::exp(config_.inflation_mu + config_.inflation_sigma * z);
}

double SimulatedInternet::base_rtt_ms(const VantagePoint& vp,
                                      const geodesy::GeoPoint& where,
                                      std::uint32_t slash24_index) const {
  const double distance = geodesy::distance_km(vp.location, where);
  const double propagation = geodesy::distance_to_min_rtt_ms(distance);
  const double vp_access =
      hash01(config_.seed ^ 2, vp.id, 0) * config_.vp_access_ms_max;
  const double target_access =
      hash01(config_.seed ^ 3, slash24_index, 0) * config_.target_access_ms_max;
  return propagation * path_inflation(vp, slash24_index) + vp_access +
         target_access;
}

const ReplicaSite* SimulatedInternet::ecs_query(
    std::size_t deployment_index,
    const geodesy::GeoPoint& client_location) const {
  const Deployment& deployment = deployments_[deployment_index];
  if (!deployment.ecs_capable) return nullptr;
  // L7 user-mapping: the operator assigns the client to its geographically
  // nearest PoP — finer-grained than BGP, with none of its detours.
  const ReplicaSite* best = nullptr;
  double best_km = 0.0;
  for (const ReplicaSite& site : deployment.sites) {
    const double km = geodesy::distance_km(client_location, site.location);
    if (best == nullptr || km < best_km) {
      best = &site;
      best_km = km;
    }
  }
  return best;
}

std::optional<std::string> SimulatedInternet::chaos_query(
    const VantagePoint& vp, ipaddr::IPv4Address dst,
    rng::Xoshiro256& gen) const {
  const TargetInfo* info = target_for(dst);
  if (info == nullptr || !info->alive ||
      info->error_kind != ReplyKind::kEchoReply) {
    return std::nullopt;
  }
  if (rng::bernoulli(gen, config_.base_loss)) return std::nullopt;
  if (info->kind == TargetInfo::Kind::kUnicast) {
    if (!info->unicast_dns) return std::nullopt;
    return "ns1.host" + std::to_string(info->slash24_index) + ".example";
  }
  const Deployment& deployment =
      deployments_[static_cast<std::size_t>(info->deployment_index)];
  if (!deployment.serves_dns) return std::nullopt;
  const ReplicaSite* site =
      catchment(vp, static_cast<std::size_t>(info->deployment_index),
                static_cast<std::size_t>(info->prefix_index));
  if (site == nullptr) return std::nullopt;
  const auto site_index =
      static_cast<std::size_t>(site - deployment.sites.data());
  // Operator-style id: "s03.ams.as13335".
  std::string code(site->city->name.substr(0, 3));
  for (char& c : code) c = static_cast<char>(std::tolower(c));
  return "s" + std::to_string(site_index) + "." + code + ".as" +
         std::to_string(deployment.as_number);
}

const ReplicaSite* SimulatedInternet::catchment(
    const VantagePoint& vp, std::size_t deployment_index,
    std::size_t prefix_index) const {
  const Deployment& deployment = deployments_[deployment_index];
  const std::uint64_t mask = deployment.prefix_site_masks[prefix_index];
  const ReplicaSite* best = nullptr;
  double best_score = 0.0;
  for (std::size_t s = 0; s < deployment.sites.size(); ++s) {
    if ((mask >> s & 1u) == 0) continue;
    const ReplicaSite& site = deployment.sites[s];
    const double distance =
        geodesy::distance_km(vp.location, site.location);
    // BGP prefers short AS paths, not short distances: model the gap with
    // a deterministic per-(VP, AS, site) detour factor.
    const double detour =
        1.0 + config_.bgp_detour_spread *
                  hash01(config_.seed ^ 4,
                         (std::uint64_t{vp.id} << 32) | deployment.as_number,
                         s);
    // Poorly-peered sites only attract nearby networks (deterministic per
    // (AS, site)): the source of the sparse-platform recall gap (Fig. 5).
    const double local_fraction =
        deployment.local_site_fraction_override >= 0.0
            ? deployment.local_site_fraction_override
            : config_.local_site_fraction;
    const double locality =
        hash01(config_.seed ^ 5, deployment.as_number, s) < local_fraction
            ? config_.local_site_penalty
            : 1.0;
    const double score =
        (distance + 50.0) * detour * locality;  // +50km: peering floor
    if (best == nullptr || score < best_score) {
      best = &site;
      best_score = score;
    }
  }
  return best;
}

std::vector<const ReplicaSite*> SimulatedInternet::reachable_sites(
    std::span<const VantagePoint> vps, std::size_t deployment_index,
    std::size_t prefix_index) const {
  std::vector<const ReplicaSite*> out;
  for (const VantagePoint& vp : vps) {
    const ReplicaSite* site = catchment(vp, deployment_index, prefix_index);
    if (site != nullptr &&
        std::find(out.begin(), out.end(), site) == out.end()) {
      out.push_back(site);
    }
  }
  return out;
}

std::uint64_t SimulatedInternet::set_prefix_site_mask(
    std::size_t deployment_index, std::size_t prefix_index,
    std::uint64_t mask) {
  Deployment& deployment = deployments_.at(deployment_index);
  std::uint64_t& slot = deployment.prefix_site_masks.at(prefix_index);
  const std::uint64_t previous = slot;
  const std::size_t sites = deployment.sites.size();
  const std::uint64_t valid =
      sites >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << sites) - 1;
  slot = mask & valid;
  return previous;
}

ProbeReply SimulatedInternet::probe(const VantagePoint& vp,
                                    ipaddr::IPv4Address dst,
                                    Protocol protocol, rng::Xoshiro256& gen,
                                    double extra_drop_probability) const {
  const TargetInfo* info = target_for(dst);
  if (info == nullptr || !info->alive ||
      info->kind == TargetInfo::Kind::kDead) {
    return {ReplyKind::kTimeout, 0.0};
  }
  if (info->error_kind != ReplyKind::kEchoReply) {
    // Filtering routers answer every protocol with the same prohibition.
    return {info->error_kind, 0.0};
  }

  // Does anything answer this protocol?
  geodesy::GeoPoint where;
  if (info->kind == TargetInfo::Kind::kAnycast) {
    const Deployment& deployment =
        deployments_[static_cast<std::size_t>(info->deployment_index)];
    const bool open53 = std::any_of(
        deployment.tcp_services.begin(), deployment.tcp_services.end(),
        [](const ServicePort& s) { return s.port == 53; });
    const bool open80 = std::any_of(
        deployment.tcp_services.begin(), deployment.tcp_services.end(),
        [](const ServicePort& s) { return s.port == 80; });
    const bool answers = protocol == Protocol::kIcmpEcho ||
                         (protocol == Protocol::kTcpSyn53 && open53) ||
                         (protocol == Protocol::kTcpSyn80 && open80) ||
                         ((protocol == Protocol::kDnsUdp ||
                           protocol == Protocol::kDnsTcp) &&
                          deployment.serves_dns);
    if (!answers) return {ReplyKind::kTimeout, 0.0};
    const ReplicaSite* site =
        catchment(vp, static_cast<std::size_t>(info->deployment_index),
                  static_cast<std::size_t>(info->prefix_index));
    if (site == nullptr) return {ReplyKind::kTimeout, 0.0};
    where = site->location;
  } else {
    const bool answers =
        protocol == Protocol::kIcmpEcho ||
        (protocol == Protocol::kTcpSyn80 && info->unicast_web) ||
        ((protocol == Protocol::kTcpSyn53 || protocol == Protocol::kDnsUdp ||
          protocol == Protocol::kDnsTcp) &&
         info->unicast_dns);
    if (!answers) return {ReplyKind::kTimeout, 0.0};
    where = info->unicast_location;
  }

  // Loss: floor + the census prober's self-inflicted reply aggregation
  // drops (Sec. 3.5).
  if (rng::bernoulli(gen, config_.base_loss) ||
      rng::bernoulli(gen, extra_drop_probability)) {
    return {ReplyKind::kTimeout, 0.0};
  }

  double rtt = base_rtt_ms(vp, where, info->slash24_index);
  rtt += rng::exponential(gen, config_.jitter_mean_ms);
  if (rng::bernoulli(gen, config_.spike_probability)) {
    rtt += rng::exponential(gen, config_.spike_mean_ms);
  }
  return {ReplyKind::kEchoReply, rtt};
}

}  // namespace anycast::net
