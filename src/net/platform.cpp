#include "anycast/net/platform.hpp"

#include <array>
#include <cmath>
#include <string>

#include "anycast/geo/city_data.hpp"
#include "anycast/geodesy/geopoint.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::net {
namespace {

struct RegionWeights {
  double north_america, europe, asia, oceania, south_america, africa,
      middle_east;
  [[nodiscard]] double weight(Region region) const {
    switch (region) {
      case Region::kNorthAmerica: return north_america;
      case Region::kEurope: return europe;
      case Region::kAsia: return asia;
      case Region::kOceania: return oceania;
      case Region::kSouthAmerica: return south_america;
      case Region::kAfrica: return africa;
      case Region::kMiddleEast: return middle_east;
    }
    return 0.0;
  }
};

// PlanetLab skew: academic networks concentrated in NA/EU (Sec. 3.2 notes
// poor coverage elsewhere makes footprints conservative).
constexpr RegionWeights kPlanetLabWeights{0.45, 0.35, 0.12, 0.03,
                                          0.02, 0.01, 0.02};
// RIPE Atlas: denser and EU-centric, but with real presence everywhere.
constexpr RegionWeights kRipeWeights{0.20, 0.50, 0.12, 0.04,
                                     0.05, 0.04, 0.05};

std::vector<VantagePoint> make_platform(const PlatformConfig& config,
                                        const RegionWeights& weights,
                                        std::string_view name_prefix,
                                        double min_offset_km,
                                        double max_offset_km) {
  const auto cities = geo::world_cities();
  // Build per-city sampling weights: region skew x sqrt(population), so
  // hosting universities/probes concentrate in (but are not confined to)
  // large cities.
  std::vector<double> city_weights;
  city_weights.reserve(cities.size());
  for (const geo::City& city : cities) {
    const double region_w = weights.weight(region_of(city.country));
    city_weights.push_back(
        region_w * std::sqrt(static_cast<double>(city.population)));
  }

  rng::Xoshiro256 gen(config.seed);
  std::vector<VantagePoint> nodes;
  nodes.reserve(static_cast<std::size_t>(config.node_count));
  for (int i = 0; i < config.node_count; ++i) {
    const geo::City& city = cities[rng::weighted_index(gen, city_weights)];
    // Place the node relative to the host city: RIPE probes sit in town,
    // PlanetLab nodes live on campuses up to a couple hundred km out —
    // which is precisely why PL misses locally-peered replicas (Fig. 5).
    const double bearing = rng::uniform(gen, 0.0, 360.0);
    const double offset_km = rng::uniform(gen, min_offset_km, max_offset_km);
    const geodesy::GeoPoint location =
        geodesy::destination(city.location(), bearing, offset_km);

    VantagePoint vp;
    vp.id = static_cast<std::uint32_t>(i);
    vp.name = std::string(name_prefix) + std::to_string(i + 1) + "." +
              std::string(city.name) + "." + std::string(city.country);
    vp.location = location;
    vp.believed_location =
        config.location_error_km <= 0.0
            ? location
            : geodesy::destination(
                  location, rng::uniform(gen, 0.0, 360.0),
                  std::abs(rng::normal(gen, 0.0, config.location_error_km)));
    // Host load >= 1; the lognormal tail reproduces Fig. 8: at 1,000 pps a
    // 6.6M-target census takes 1.83 h on an idle node, ~40% of nodes stay
    // within ~2 h, 95% within 5 h, stragglers run to ~16 h.
    vp.host_load = 1.0 + rng::lognormal(gen, -2.08, 1.3);
    nodes.push_back(std::move(vp));
  }
  return nodes;
}

}  // namespace

Region region_of(std::string_view country) {
  // North America (incl. Caribbean & Central America).
  for (std::string_view cc :
       {"US", "CA", "MX", "PR", "CU", "DO", "HT", "JM", "GT", "SV", "HN",
        "NI", "CR", "PA", "BS", "BB", "TT", "CW", "AG", "BM"}) {
    if (country == cc) return Region::kNorthAmerica;
  }
  for (std::string_view cc :
       {"GB", "FR", "DE", "IT", "ES", "PT", "NL", "BE", "LU", "IE", "AT",
        "CH", "SE", "NO", "DK", "FI", "IS", "PL", "CZ", "SK", "HU", "RO",
        "BG", "GR", "RS", "HR", "SI", "BA", "MK", "AL", "EE", "LV", "LT",
        "BY", "UA", "MD", "RU", "MT", "CY", "LI", "MC"}) {
    if (country == cc) return Region::kEurope;
  }
  for (std::string_view cc :
       {"AU", "NZ", "FJ", "NC", "PG", "PF", "GU"}) {
    if (country == cc) return Region::kOceania;
  }
  for (std::string_view cc :
       {"BR", "AR", "CL", "CO", "PE", "VE", "EC", "UY", "PY", "BO", "SR",
        "GY", "GF"}) {
    if (country == cc) return Region::kSouthAmerica;
  }
  for (std::string_view cc :
       {"EG", "NG", "CD", "ZA", "AO", "TZ", "SD", "CI", "KE", "MA", "ET",
        "GH", "DZ", "UG", "SN", "ZM", "ZW", "TN", "MZ", "ML", "BF", "MG",
        "CM", "LY", "RW", "TG", "GN", "MU", "DJ", "BW", "NA"}) {
    if (country == cc) return Region::kAfrica;
  }
  for (std::string_view cc :
       {"TR", "IR", "IQ", "SA", "AE", "KW", "JO", "IL", "LB", "SY", "QA",
        "BH", "OM", "YE", "AZ", "GE", "AM"}) {
    if (country == cc) return Region::kMiddleEast;
  }
  return Region::kAsia;
}

std::vector<VantagePoint> make_planetlab(const PlatformConfig& config) {
  return make_platform(config, kPlanetLabWeights, "planetlab", 5.0, 250.0);
}

std::vector<VantagePoint> make_ripe_atlas(const PlatformConfig& config) {
  // RIPE hosts probes in (a superset of) the networks that host PlanetLab
  // nodes, so with a shared seed we embed a PlanetLab-sized platform and
  // extend it: Fig. 5's "PL replicas are a subset of RIPE replicas" then
  // holds by construction, as it does in the real measurement.
  constexpr int kEmbeddedPlanetLab = 300;
  if (config.node_count <= kEmbeddedPlanetLab) {
    return make_platform(config, kPlanetLabWeights, "ripe-probe", 5.0,
                         250.0);
  }
  PlatformConfig base_config = config;
  base_config.node_count = kEmbeddedPlanetLab;
  auto nodes = make_platform(base_config, kPlanetLabWeights, "ripe-probe",
                             5.0, 250.0);
  PlatformConfig extra_config = config;
  extra_config.node_count = config.node_count - kEmbeddedPlanetLab;
  extra_config.seed = config.seed ^ 0xA71A5ull;
  auto extras =
      make_platform(extra_config, kRipeWeights, "ripe-probe", 0.0, 15.0);
  for (VantagePoint& vp : extras) {
    vp.id += static_cast<std::uint32_t>(kEmbeddedPlanetLab);
    nodes.push_back(std::move(vp));
  }
  return nodes;
}

}  // namespace anycast::net
