#include "anycast/net/catalog.hpp"

#include <algorithm>

#include "anycast/net/services.hpp"
#include <deque>
#include <map>
#include <mutex>
#include <tuple>

#include "anycast/rng/distributions.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::net {
namespace {

using enum Category;
using enum PortProfile;

// The Fig. 9 top-100 table, ordered by decreasing geographic footprint.
// `sites` is the deployment's true number of PoPs (the census detects a
// subset); `ip24` counts anycast /24s (sums to 897 as in Fig. 10);
// `caida_rank` marks the 8 ASes in the CAIDA top-100 (their ip24 sums to
// 19); `alexa_sites` marks the 15 ASes hosting Alexa-100k front pages
// (~240 sites, ~one /24 each).
constexpr AsSpec kTop100[] = {
    // asn, whois, category, tier1, sites, ip24, caida, alexa, profile
    {13335, "CLOUDFLARENET,US", kCdn, false, 45, 328, 0, 188, kCloudflare},
    {1280, "ISC-AS,US", kDns, false, 40, 10, 0, 0, kDnsSsh},
    {6939, "HURRICANE,US", kIsp, false, 38, 5, 4, 0, kIspBgp},
    {36408, "CDNETWORKSUS-", kCdn, false, 34, 8, 0, 0, kCdnStandard},
    {32934, "FACEBOOK,US", kSocialNetwork, false, 32, 6, 0, 1, kWebBasic},
    {42909, "COMMUNITYDNS,", kDns, false, 30, 6, 0, 0, kDnsOnly},
    {36621, "XGTLD,US", kDns, false, 29, 4, 0, 0, kDnsOnly},
    {20144, "L-ROOT,US", kDns, false, 28, 1, 0, 0, kDnsOnly},
    // Microsoft's true footprint is far larger than what a sparse platform
    // can see (Fig. 5: 21 replicas from PlanetLab vs 54 from RIPE); many of
    // its sites are regionally peered, so the measured Fig. 9 rank is 9th.
    {8075, "MICROSOFT,US", kCloud, false, 56, 13, 0, 0, kMicrosoft},
    {29216, "I-ROOT,SE", kDns, false, 26, 1, 0, 0, kDnsOnly},
    {7342, "VERISIGN-INC", kDns, false, 25, 16, 0, 0, kDnsOnly},
    {22822, "LLNW,US", kCdn, false, 24, 12, 0, 0, kCdnExtended},
    {33480, "ARYAKA-ARIN,", kCloud, false, 23, 4, 0, 0, kWebBasic},
    {714, "APPLE-ENGINE", kCdn, false, 22, 6, 0, 0, kWebDns},
    {30670, "CEDEXIS,US", kSecurity, false, 21, 4, 0, 0, kWebDns},
    {20446, "HIGHWINDS3,U", kCdn, false, 21, 7, 0, 1, kCdnStandard},
    {8674, "NETNOD-IX,SE", kDns, false, 20, 4, 0, 0, kDnsOnly},
    {36692, "OPENDNS,US", kSecurity, false, 20, 6, 0, 0, kWebDns},
    {42, "WOODYNET-1,U", kDns, false, 19, 18, 0, 0, kDnsOnly},
    {39837, "LGTLD,US", kDns, false, 19, 4, 0, 0, kDnsOnly},
    {35208, "LIECHTENSTEI", kUnknown, false, 18, 1, 0, 0, kNone},
    {54113, "FASTLY,US", kCdn, false, 18, 8, 0, 5, kCdnStandard},
    {30637, "CACHENETWORK", kCdn, false, 17, 5, 0, 1, kCdnStandard},
    {33047, "INSTART,US", kCdn, false, 17, 4, 0, 1, kWebBasic},
    {55195, "DNSCAST-AS,U", kDns, false, 16, 20, 0, 0, kDnsOnly},
    {15169, "GOOGLE,US", kCloud, false, 16, 102, 0, 11, kGoogle},
    {14153, "EDGECAST-IR,", kCdn, false, 15, 6, 0, 0, kEdgecast},
    {27, "UMDNET,US", kUnknown, false, 15, 1, 0, 0, kNone},
    {33517, "DYNDNS,US", kDns, false, 14, 12, 0, 0, kDnsOnly},
    {62597, "NSONE,US", kDns, false, 14, 6, 0, 0, kDnsOnly},
    {26608, "EASYLINK4,US", kOther, false, 13, 2, 0, 0, kMail},
    {34010, "YAHOO-AN2,US", kWebPortal, false, 13, 5, 0, 2, kWebDns},
    {12008, "ULTRADNS,US", kDns, false, 13, 16, 0, 0, kDnsOnly},
    {16276, "OVH,FR", kCloud, false, 12, 8, 0, 0, kOvh},
    {35236, "LIECHTENSTEI", kUnknown, false, 12, 1, 0, 0, kNone},
    {12041, "AS-AFILIAS1,", kDns, false, 12, 8, 0, 0, kDnsOnly},
    {2635, "AUTOMATTIC,U", kOther, false, 12, 12, 0, 4, kWebBasic},
    {3257, "TINET-BACKBO", kIsp, true, 11, 4, 9, 0, kIspMgmt},
    {6461, "ABOVENET-CUS", kIsp, false, 11, 3, 0, 0, kNone},
    {16509, "AMAZON-02,US", kCloud, false, 11, 12, 0, 3, kWebDns},
    {1273, "CW,GB", kIsp, false, 10, 1, 12, 0, kNone},
    {3356, "LEVEL3,US", kIsp, true, 10, 2, 1, 0, kIspMgmt},
    // EdgeCast peers regionally: its true footprint is ~2.4x what a sparse
    // platform can measure (Fig. 7's low GT/PAI), so the measured Fig. 9
    // rank stays ~43rd despite 24 sites.
    {15133, "EDGECAST,US", kCdn, false, 24, 37, 0, 10, kEdgecast},
    {13414, "TWITTER-NETW", kSocialNetwork, false, 10, 3, 0, 1, kWebBasic},
    {19551, "INCAPSULA,US", kCdn, false, 10, 6, 0, 1, kIncapsula},
    {21775, "AGTLD,US", kDns, false, 9, 4, 0, 0, kDnsOnly},
    {18366, "AUSREGISTRY-", kDns, false, 9, 5, 0, 0, kDnsOnly},
    {60890, "CENTRALNIC-A", kDns, false, 9, 2, 0, 0, kDnsOnly},
    {174, "COGENT-2149,", kIsp, false, 9, 2, 2, 0, kNone},
    {30131, "HGTLD,US", kDns, false, 9, 4, 0, 0, kDnsOnly},
    {33438, "HIGHWINDS4,U", kCdn, false, 8, 3, 0, 0, kCdnStandard},
    {25152, "K-ROOT-SERVE", kDns, false, 8, 1, 0, 0, kDnsOnly},
    {23393, "NETRIPLEX01,", kDns, false, 8, 2, 0, 0, kDnsOnly},
    {15224, "OMNITURE,US", kOther, false, 8, 2, 0, 0, kWebBasic},
    {36351, "SOFTLAYER,US", kCloud, false, 8, 6, 0, 0, kHostingLarge},
    {63727, "WANGSU-US,US", kCdn, false, 8, 5, 0, 0, kCdnStandard},
    {34082, "YAHOO-FC,US", kWebPortal, false, 8, 2, 0, 0, kWebBasic},
    {40009, "BITGRAVITY,U", kCdn, false, 7, 12, 0, 1, kCdnExtended},
    {11537, "ABILENE,US", kOther, false, 7, 1, 0, 0, kNone},
    {62713, "ADVAN-CAST,U", kUnknown, false, 7, 1, 0, 0, kNone},
    {39570, "ASATTLDSE", kDns, false, 7, 2, 0, 0, kDnsOnly},
    {8100, "AS-QUADRANET", kCloud, false, 7, 4, 0, 0, kHostingLarge},
    {6453, "AS6453,US", kIsp, true, 7, 3, 7, 0, kIspBgp},
    {2686, "ATT,EU", kIsp, false, 7, 1, 15, 0, kIspMgmt},
    {29869, "CENTRALNIC-A", kDns, false, 6, 2, 0, 0, kDnsOnly},
    {209, "CENTURYLINK-", kIsp, true, 6, 3, 0, 0, kIspMgmt},
    {38880, "CONEXIM-AS-A", kCloud, false, 6, 1, 0, 0, kNone},
    {21622, "EGTLD,US", kDns, false, 6, 1, 0, 0, kDnsOnly},
    {42671, "KGTLD,US", kDns, false, 6, 1, 0, 0, kDnsOnly},
    {43516, "MNS-AS,NO", kOther, false, 6, 4, 0, 0, kMedia},
    {1921, "NICAT,AT", kDns, false, 6, 4, 0, 0, kDnsOnly},
    {23708, "VITAL-DNS,US", kDns, false, 6, 1, 0, 0, kDnsOnly},
    {62715, "WHS-ANYCAST-", kSecurity, false, 6, 1, 0, 0, kWebDns},
    {21313, "ZGTLD,US", kDns, false, 6, 1, 0, 0, kDnsOnly},
    {10910, "INTERNAP-BLK", kCloud, false, 6, 4, 0, 0, kHostingLarge},
    {63408, "NETAPP-ANYCA", kOther, false, 5, 1, 0, 0, kNone},
    {1239, "SPRINTLINK,U", kIsp, true, 5, 1, 6, 0, kNone},
    {32770, "AUSREGISTRY-", kDns, false, 5, 2, 0, 0, kDnsOnly},
    {3561, "CENTURYLINK-", kIsp, false, 5, 1, 0, 0, kNone},
    {61129, "DNSIMPLE,US", kDns, false, 5, 2, 0, 0, kDnsOnly},
    {33070, "DYN-HC,US", kDns, false, 5, 5, 0, 0, kDnsOnly},
    {26609, "EASYLINK2,US", kOther, false, 5, 1, 0, 0, kMail},
    {62698, "EDNS,CA", kDns, false, 5, 1, 0, 0, kNone},
    {61337, "ESGOB-ANYCAS", kDns, false, 5, 1, 0, 0, kNone},
    {12824, "HOMEPL-AS,PL", kCloud, false, 5, 1, 0, 0, kNone},
    {14413, "LINKEDIN,US", kSocialNetwork, false, 5, 1, 0, 0, kWebBasic},
    {18608, "MASERGY,US", kCloud, false, 5, 1, 0, 0, kNone},
    {31792, "MEDIAMATH-IN", kOther, false, 5, 1, 0, 0, kNone},
    {29550, "MII-2,GB", kCdn, false, 5, 4, 0, 0, kCdnStandard},
    {40824, "MII-XPC,US", kCdn, false, 5, 1, 0, 0, kCdnStandard},
    {13768, "PEER1,US", kCloud, false, 5, 4, 0, 0, kHostingLarge},
    {34309, "PHH-AS,DE", kCdn, false, 5, 1, 0, 0, kCdnStandard},
    {62874, "PRETECS,CA", kCdn, false, 5, 1, 0, 0, kNone},
    {32787, "PROLEXIC,US", kSecurity, false, 5, 21, 0, 10, kWebDns},
    {7819, "QUANTCAST,US", kOther, false, 5, 1, 0, 0, kWebBasic},
    {18705, "RIMBLACKBERR", kOther, false, 5, 2, 0, 0, kMail},
    {39392, "SUPERNETWORK", kCloud, false, 5, 4, 0, 0, kHostingLarge},
    {62838, "UNOVA-1,CA", kDns, false, 5, 1, 0, 0, kDnsOnly},
    {39743, "VOXILITY,RO", kCloud, false, 5, 4, 0, 0, kHostingLarge},
    {60721, "ZVONKOVA-AS", kUnknown, false, 5, 1, 0, 0, kNone},
};

// Software fingerprints keyed by (whois, port). Absent entries mean nmap
// could not identify the daemon ("44 of 67 port-53 ASes unknown").
std::string_view software_for(std::string_view whois, std::uint16_t port) {
  const bool http = port == 80 || port == 8080;
  const bool https = port == 443 || port == 8443;
  // DNS daemons on 53.
  if (port == 53) {
    for (std::string_view bind_user :
         {"ISC-AS,US", "VERISIGN-INC", "COMMUNITYDNS,", "WOODYNET-1,U",
          "ULTRADNS,US", "DNSCAST-AS,U", "NSONE,US", "AS-AFILIAS1,",
          "NICAT,AT", "DYN-HC,US", "DNSIMPLE,US", "NETRIPLEX01,",
          "I-ROOT,SE", "DYNDNS,US", "NETNOD-IX,SE"}) {
      if (whois == bind_user) return "ISC BIND";
    }
    if (whois == "K-ROOT-SERVE" || whois == "L-ROOT,US" ||
        whois == "APPLE-ENGINE") {
      return "NLnet Labs NSD";
    }
    if (whois == "OPENDNS,US") return "OpenDNS";
    if (whois == "MICROSOFT,US") return "Microsoft DNS";
    return {};
  }
  if (whois == "CLOUDFLARENET,US" && (http || https)) {
    return "cloudflare-nginx";
  }
  if (whois == "EDGECAST,US" || whois == "EDGECAST-IR,") {
    if (http) return "ECAcc/ECS";
    if (https) return "ECD";
  }
  if (whois == "GOOGLE,US") {
    if (http || https) return "Google httpd";
    if (port == 25 || port == 587) return "Google gsmtp";
    if (port == 143 || port == 993) return "Gmail imapd";
    if (port == 110 || port == 995) return "Gmail pop3d";
  }
  if (whois == "MICROSOFT,US") {
    if (port == 80) return "Microsoft HTTP";
    if (port == 443) return "Microsoft IIS";
    if (port == 135) return "Microsoft RPC";
    if (port == 1433) return "Microsoft SQL";
  }
  if (port == 22) return "OpenSSH";
  if (port == 3306) return "MySQL";
  if (port == 5252) return "movaz-ssc";
  if (http || https) {
    for (std::string_view nginx_user :
         {"OPENDNS,US", "AUTOMATTIC,U", "CDNETWORKSUS-", "HIGHWINDS3,U",
          "HIGHWINDS4,U", "WANGSU-US,US", "AMAZON-02,US"}) {
      if (whois == nginx_user) return "nginx";
    }
    for (std::string_view apache_user :
         {"APPLE-ENGINE", "OMNITURE,US", "OVH,FR", "AS-QUADRANET"}) {
      if (whois == apache_user) return "Apache httpd";
    }
    for (std::string_view lighttpd_user :
         {"YAHOO-AN2,US", "YAHOO-FC,US", "MII-2,GB", "MII-XPC,US"}) {
      if (whois == lighttpd_user) return "lighttpd";
    }
    if (whois == "FASTLY,US" || whois == "CACHENETWORK") return "Varnish";
    if (whois == "BITGRAVITY,U") return "bitasicv2";
    if (whois == "CEDEXIS,US") return "CFS 0213";
    if (whois == "INSTART,US") return "instart/160";
    if (whois == "PHH-AS,DE") return "thttpd";
    if (whois == "SUPERNETWORK") return "cPanel httpd";
    if (whois == "SOFTLAYER,US") return "Apache Tomcat";
    if (whois == "INCAPSULA,US") return "sslstrip";
  }
  return {};
}

void add_ports(std::vector<ServicePort>& out, const AsSpec& spec,
               std::initializer_list<std::uint16_t> ports) {
  for (std::uint16_t port : ports) {
    const auto known = classify_port(port);
    out.push_back(ServicePort{port, known && known->commonly_ssl,
                              software_for(spec.whois, port)});
  }
}

}  // namespace

std::string_view to_string(Category category) {
  switch (category) {
    case kDns: return "DNS";
    case kCdn: return "CDN";
    case kCloud: return "Cloud";
    case kIsp: return "ISP";
    case kSecurity: return "Security";
    case kSocialNetwork: return "Social";
    case kWebPortal: return "Portal";
    case kOther: return "Other";
    case kUnknown: return "Unknown";
  }
  return "?";
}

std::string_view to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kIcmpEcho: return "ICMP";
    case Protocol::kTcpSyn53: return "TCP-53";
    case Protocol::kTcpSyn80: return "TCP-80";
    case Protocol::kDnsUdp: return "DNS/UDP";
    case Protocol::kDnsTcp: return "DNS/TCP";
  }
  return "?";
}

std::span<const AsSpec> top100_specs() {
  return {std::begin(kTop100), std::end(kTop100)};
}

bool profile_serves_dns(PortProfile profile) {
  // Having TCP/53 open (for zone transfers etc.) is not the same as
  // answering DNS queries: HTTP CDNs like EdgeCast expose the port but run
  // no resolver, which is exactly the "binary recall" effect of Fig. 6.
  switch (profile) {
    case kDnsOnly:
    case kDnsSsh:
    case kWebDns:
    case kCloudflare:
    case kGoogle:
    case kMicrosoft:
      return true;
    default:
      return false;
  }
}

std::vector<ServicePort> make_services(const AsSpec& spec,
                                       std::uint64_t seed) {
  std::vector<ServicePort> out;
  switch (spec.profile) {
    case kNone:
      break;
    case kDnsOnly:
      add_ports(out, spec, {53});
      break;
    case kDnsSsh:
      add_ports(out, spec, {53, 22});
      break;
    case kWebBasic:
      add_ports(out, spec, {80, 443});
      break;
    case kWebDns:
      add_ports(out, spec, {53, 80, 443});
      break;
    case kCdnStandard:
      add_ports(out, spec, {53, 80, 443, 8080});
      break;
    case kCdnExtended:
      add_ports(out, spec, {53, 80, 443, 8080, 8443, 1935});
      break;
    case kCloudflare:
      // CloudFlare's published set: web, DNS, and the cPanel-style
      // alternate HTTP(S) ports — the hatched per-/24 bars of Fig. 14.
      add_ports(out, spec,
                {53, 80, 443, 8080, 8443, 2052, 2053, 2082, 2083, 2086, 2087,
                 2095, 2096, 8880, 2030, 2040, 2222, 5222, 5228, 8000, 8008,
                 8088});
      break;
    case kEdgecast:
      add_ports(out, spec, {53, 80, 443, 8080, 1935});
      break;
    case kGoogle:
      add_ports(out, spec, {25, 53, 80, 110, 143, 443, 587, 993, 995});
      break;
    case kMicrosoft:
      add_ports(out, spec, {53, 80, 135, 443, 445, 1433, 3389});
      break;
    case kIspBgp:
      add_ports(out, spec, {179, 22});
      break;
    case kIspMgmt:
      add_ports(out, spec, {22, 80, 179, 443});
      break;
    case kMedia:
      add_ports(out, spec, {80, 443, 1935, 5252, 6565});
      break;
    case kGaming:
      add_ports(out, spec, {80, 25565});
      break;
    case kHostingLarge: {
      add_ports(out, spec,
                {21, 22, 25, 53, 80, 110, 143, 443, 465, 587, 993, 995, 3306,
                 5432, 8080, 8083, 8443, 2082, 2083, 2086, 2087, 2095, 2096});
      if (spec.whois == "AS-QUADRANET") add_ports(out, spec, {25565});
      break;
    }
    case kOvh: {
      // OVH's seedbox ecosystem (Sec. 4.3): essentially the whole
      // registered/ephemeral band answers, ~10^4 distinct ports.
      add_ports(out, spec, {21, 22, 25, 53, 80, 443, 3306});
      out.reserve(out.size() + 10148);
      rng::Xoshiro256 ssl_gen(seed ^ 0x0F0F0F);
      // The rented-server band: customers bind anything from registered
      // ports up through the low ephemeral range.
      for (std::uint32_t port = 2800; port < 2800 + 10148; ++port) {
        if (port == 3306) continue;  // already added with fingerprint
        const auto known = classify_port(static_cast<std::uint16_t>(port));
        // ~1.7% of the seedbox band speaks TLS on arbitrary ports
        // (Fig. 14: 185 SSL services among 10,499 open ports).
        const bool ssl = (known && known->commonly_ssl) ||
                         rng::bernoulli(ssl_gen, 0.017);
        out.push_back(
            ServicePort{static_cast<std::uint16_t>(port), ssl, {}});
      }
      break;
    }
    case kIncapsula: {
      // A proxying DDoS-mitigation service forwards customers' ports:
      // a few hundred assorted ones beyond the web/DNS base.
      add_ports(out, spec, {53, 80, 443, 8080, 8443});
      rng::Xoshiro256 gen(seed ^ 0x1235813);
      std::uint16_t port = 2000;
      for (int i = 0; i < 308; ++i) {
        port = static_cast<std::uint16_t>(
            port + 1 + rng::uniform_index(gen, 20));
        const auto known = classify_port(port);
        out.push_back(ServicePort{port, known && known->commonly_ssl, {}});
      }
      break;
    }
    case kMail:
      add_ports(out, spec, {25, 110, 143, 465, 587, 993, 995});
      break;
  }
  // Deduplicate by port (profiles plus special cases may overlap).
  std::sort(out.begin(), out.end(),
            [](const ServicePort& a, const ServicePort& b) {
              return a.port < b.port;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const ServicePort& a, const ServicePort& b) {
                          return a.port == b.port;
                        }),
            out.end());
  return out;
}

std::vector<AsSpec> tail_specs(int count, int total_ip24,
                               std::uint64_t seed) {
  // Names must outlive the returned specs: keep them in a process-lifetime
  // store, cached per parameter triple so repeated calls are stable.
  static std::mutex mutex;
  static std::map<std::tuple<int, int, std::uint64_t>,
                  std::pair<std::deque<std::string>, std::vector<AsSpec>>>
      cache;
  std::lock_guard lock(mutex);
  auto [it, inserted] =
      cache.try_emplace(std::make_tuple(count, total_ip24, seed));
  if (!inserted) return it->second.second;

  auto& [names, specs] = it->second;
  rng::Xoshiro256 gen(seed);
  specs.reserve(static_cast<std::size_t>(count));

  // Half the tail has exactly one /24 (Fig. 13); the rest draws from a
  // heavy-tailed size palette, then the last entries are padded/trimmed so
  // the total is exact.
  constexpr int kSizes[] = {2, 2, 2, 2, 3, 3, 3, 4, 4, 6, 8, 12, 20, 30};
  std::vector<int> ip24_counts;
  ip24_counts.reserve(static_cast<std::size_t>(count));
  int allocated = 0;
  for (int i = 0; i < count; ++i) {
    int size = 1;
    if (i >= count / 2) {
      size = kSizes[rng::uniform_index(gen, std::size(kSizes))];
    }
    ip24_counts.push_back(size);
    allocated += size;
  }
  // Fix up the total by nudging non-single entries.
  for (std::size_t i = ip24_counts.size(); allocated != total_ip24;) {
    i = (i == 0) ? ip24_counts.size() - 1 : i - 1;
    int& size = ip24_counts[i];
    if (allocated < total_ip24) {
      ++size;
      ++allocated;
    } else if (size > 1) {
      --size;
      --allocated;
    }
  }

  constexpr Category kTailCategories[] = {kDns, kDns, kDns,     kDns, kUnknown,
                                          kUnknown, kCloud, kCdn, kIsp, kOther};
  constexpr PortProfile kTailProfiles[] = {kDnsOnly, kDnsOnly, kDnsOnly,
                                           kNone,    kNone,    kWebBasic,
                                           kWebBasic, kWebDns};
  constexpr std::string_view kTailCc[] = {"US", "DE", "GB", "FR", "NL", "RU",
                                          "BR", "JP", "AU", "CA", "SE", "IT"};
  for (int i = 0; i < count; ++i) {
    const Category category =
        kTailCategories[rng::uniform_index(gen, std::size(kTailCategories))];
    const PortProfile profile =
        category == kDns
            ? kDnsOnly
            : kTailProfiles[rng::uniform_index(gen, std::size(kTailProfiles))];
    names.push_back(
        "ANYCAST-T" + std::to_string(i + 1) + "," +
        std::string(kTailCc[rng::uniform_index(gen, std::size(kTailCc))]));
    AsSpec spec{};
    spec.as_number = 200000 + static_cast<std::uint32_t>(i);
    spec.whois = names.back();
    spec.category = category;
    spec.tier1 = false;
    spec.sites = 2 + static_cast<int>(rng::uniform_index(gen, 3));  // 2..4
    spec.ip24 = ip24_counts[static_cast<std::size_t>(i)];
    spec.caida_rank = 0;
    spec.alexa_sites = 0;
    spec.profile = profile;
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace anycast::net
