// Well-known TCP service classification, nmap-style.
//
// The portscan of Sec. 4.3 classifies open ports against the IANA
// well-known service registry ("10,499 open ports, that map to about 500
// well-known services") and fingerprints server software. This module
// embeds the registry subset the scanner uses.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace anycast::net {

/// One registry row.
struct ServiceName {
  std::uint16_t port = 0;
  std::string_view name;  // e.g. "domain", "http"
  bool commonly_ssl = false;
};

/// The embedded registry, sorted by port.
std::span<const ServiceName> well_known_services();

/// Service name for a port, or nullopt when the port is not registered
/// (nmap would print "unknown").
std::optional<ServiceName> classify_port(std::uint16_t port);

/// Software category of Fig. 16.
enum class SoftwareClass { kDns, kWeb, kMail, kOther };

/// Maps a fingerprint string (e.g. "ISC BIND", "cloudflare-nginx") to its
/// Fig. 16 category. Unknown strings map to kOther.
SoftwareClass classify_software(std::string_view software);

}  // namespace anycast::net
