// The simulated IPv4 Internet.
//
// Builds a world from the deployment catalog: anycast deployments with
// replica sites placed in PoP cities, a unicast background population, and
// dead address space. Answers probes with BGP-like nearest-replica routing
// and a realistic RTT model (propagation at 2/3 c, deterministic per-path
// inflation, per-probe jitter, loss). The census pipeline and iGreedy see
// only (VP, target, protocol) -> ProbeReply, exactly the interface the real
// Internet gave the paper's fastping prober.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "anycast/geodesy/geopoint.hpp"
#include "anycast/ipaddr/ipv4.hpp"
#include "anycast/ipaddr/prefix_table.hpp"
#include "anycast/net/catalog.hpp"
#include "anycast/net/types.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::net {

/// World-building parameters. Defaults produce a 1:66-scale universe
/// (~100k routed /24s vs the paper's 6.6M) with the paper's anycast
/// population at full size, so anycast-side statistics are directly
/// comparable while unicast-side counts scale linearly.
struct WorldConfig {
  std::uint64_t seed = 1;

  // Anycast side (full size by default; see catalog.hpp).
  int tail_as_count = 246;
  int tail_ip24_total = 799;

  // Unicast background: routed-and-alive, routed-but-silent (the hitlist
  // still carries them with a positive score, but nothing answers — why
  // "less than half send a reply" in Fig. 4), and confirmed-dead /24s
  // (hitlist score <= -2, dropped after the first census).
  std::uint32_t unicast_alive_slash24 = 47000;
  std::uint32_t unicast_silent_slash24 = 0;
  std::uint32_t unicast_dead_slash24 = 51000;

  // Fraction of alive unicast targets whose routers return prohibited
  // ICMP errors instead of echo replies (greylist feed, Sec. 3.3).
  double prohibited_fraction = 0.022;

  // RTT model.
  double vp_access_ms_max = 1.5;      // last-mile at the vantage point
  double target_access_ms_max = 2.0;  // last-mile at the target
  double inflation_sigma = 0.18;      // lognormal sigma of path stretch
  double inflation_mu = 0.22;         // lognormal mu (mean stretch ~1.27)
  double jitter_mean_ms = 0.4;        // per-probe queueing jitter
  double spike_probability = 0.01;    // occasional congestion spikes
  double spike_mean_ms = 25.0;
  double base_loss = 0.008;           // per-probe loss floor

  // BGP catchment imperfection: replica choice minimises
  // distance x (1 + bgp_detour_spread x U) with U deterministic per
  // (VP, AS, site); larger values mean worse user-replica mapping.
  double bgp_detour_spread = 0.35;

  // Fraction of replica sites that are poorly peered ("local-only"): their
  // catchment score is multiplied by `local_site_penalty`, so only nearby
  // VPs reach them. This is what makes a sparse platform's footprint
  // conservative (Fig. 5: PlanetLab sees 21 Microsoft replicas, RIPE 54).
  double local_site_fraction = 0.5;
  double local_site_penalty = 12.0;
};

/// What a /24-granularity target really is (ground truth for validation).
struct TargetInfo {
  enum class Kind { kAnycast, kUnicast, kDead };
  Kind kind = Kind::kDead;
  std::uint32_t slash24_index = 0;  // dense /24 index of the prefix
  // Anycast targets:
  std::int32_t deployment_index = -1;
  std::int32_t prefix_index = -1;
  // Unicast targets:
  geodesy::GeoPoint unicast_location;
  bool alive = true;
  ReplyKind error_kind = ReplyKind::kEchoReply;  // != kEchoReply when the
                                                 // path answers with an
                                                 // ICMP prohibition
  bool unicast_web = false;  // answers TCP/80
  bool unicast_dns = false;  // answers port 53 / DNS queries
};

/// The simulated Internet. Thread-compatible: concurrent probes require
/// external synchronisation (the census runner is single-threaded, like
/// one fastping process).
class SimulatedInternet {
 public:
  explicit SimulatedInternet(const WorldConfig& config = {});

  [[nodiscard]] const WorldConfig& config() const { return config_; }
  [[nodiscard]] std::span<const Deployment> deployments() const {
    return deployments_;
  }
  [[nodiscard]] const Deployment* deployment_by_name(
      std::string_view whois) const;

  /// Every routed /24 in the world (anycast + unicast + dead), in address
  /// order: the raw material for the hitlist.
  [[nodiscard]] std::span<const TargetInfo> targets() const {
    return targets_;
  }
  [[nodiscard]] const TargetInfo* target_for(ipaddr::IPv4Address addr) const;

  /// The announced-prefix table (deployment prefixes are announced as the
  /// aggregates they form; unicast /24s individually), for the a-posteriori
  /// /24 -> origin-AS mapping of Sec. 3.1.
  [[nodiscard]] const ipaddr::PrefixTable& route_table() const {
    return route_table_;
  }

  /// Sends one probe. `gen` supplies per-probe noise (jitter, loss);
  /// routing and path inflation are deterministic so repeated probes
  /// to the same target from the same VP measure the same path.
  /// `extra_drop_probability` models reply aggregation loss near an
  /// overdriven VP (the Sec. 3.5 rate-limit effect); the census prober
  /// derives it from its sending rate.
  [[nodiscard]] ProbeReply probe(const VantagePoint& vp,
                                 ipaddr::IPv4Address dst, Protocol protocol,
                                 rng::Xoshiro256& gen,
                                 double extra_drop_probability = 0.0) const;

  /// A CHAOS-class TXT query ("hostname.bind" / "id.server"), the
  /// DNS-specific enumeration side channel of Fan et al. [25]: DNS servers
  /// reveal a per-replica server id. Returns that id when the target
  /// answers DNS queries, nullopt otherwise (the technique is not
  /// applicable beyond DNS — Sec. 2.2). Subject to the same loss model as
  /// other probes.
  [[nodiscard]] std::optional<std::string> chaos_query(
      const VantagePoint& vp, ipaddr::IPv4Address dst,
      rng::Xoshiro256& gen) const;

  /// An edns-client-subnet query: "which PoP would serve a client at
  /// `client_location`?" — the technique of [15, 45]. A single vantage
  /// point can sweep millions of client subnets; but only ECS-capable
  /// deployments answer (nullopt otherwise), and the reply describes the
  /// operator's *L7* user-mapping, not BGP catchments.
  [[nodiscard]] const ReplicaSite* ecs_query(
      std::size_t deployment_index,
      const geodesy::GeoPoint& client_location) const;

  /// The replica site a probe from `vp` reaches for a given deployment
  /// prefix — BGP ground truth for recall/geolocation validation.
  [[nodiscard]] const ReplicaSite* catchment(const VantagePoint& vp,
                                             std::size_t deployment_index,
                                             std::size_t prefix_index) const;

  /// All sites of `deployment_index` reached by at least one VP in `vps`:
  /// the best recall any RTT-based method could achieve from that platform.
  [[nodiscard]] std::vector<const ReplicaSite*> reachable_sites(
      std::span<const VantagePoint> vps, std::size_t deployment_index,
      std::size_t prefix_index) const;

  /// Rewrites which sites announce a deployment prefix (bit i => site i)
  /// and returns the previous mask. Bits beyond the deployment's site
  /// count are ignored; a zero mask withdraws the prefix entirely (probes
  /// to it time out). `catchment` and `probe` read the mask live, so this
  /// is how watch-mode worlds grow, shrink, and move replicas between
  /// rounds. Unsynchronised — mutate only between censuses.
  std::uint64_t set_prefix_site_mask(std::size_t deployment_index,
                                     std::size_t prefix_index,
                                     std::uint64_t mask);

 private:
  double path_inflation(const VantagePoint& vp,
                        std::uint32_t slash24_index) const;
  double base_rtt_ms(const VantagePoint& vp, const geodesy::GeoPoint& where,
                     std::uint32_t slash24_index) const;

  WorldConfig config_;
  std::vector<Deployment> deployments_;
  std::vector<TargetInfo> targets_;
  std::unordered_map<std::uint32_t, std::size_t> by_slash24_;
  ipaddr::PrefixTable route_table_;
};

}  // namespace anycast::net
