// The anycast deployment catalog.
//
// The paper's census finds 1,696 anycast /24s in 346 ASes, of which 897
// /24s in 100 ASes show >= 5 replicas (the "top-100", Fig. 9). The
// simulator seeds its world from this catalog: the top-100 ASes are encoded
// by name with their category, geographic footprint, /24 footprint, service
// profile, and CAIDA/Alexa standing as reported in Figs. 9-16; the
// remaining ~246 small deployments ("tail") are generated with the
// heavy-tailed /24 and replica distributions of Figs. 12-13.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/net/types.hpp"

namespace anycast::net {

/// Service profile shorthands expanded by `make_services`.
enum class PortProfile {
  kNone,          // all probes filtered: no open TCP port found
  kDnsOnly,       // {53}
  kDnsSsh,        // {53, 22}
  kWebBasic,      // {80, 443}
  kWebDns,        // {53, 80, 443}
  kCdnStandard,   // {53, 80, 443, 8080}
  kCdnExtended,   // + 8443, 1935 (RTMP)
  kCloudflare,    // CF's 22-port set incl. 2052..2096 alternates
  kEdgecast,      // {53, 80, 443, 8080, 1935}
  kGoogle,        // 9 ports: web + mail suite
  kMicrosoft,     // IIS/RPC/SQL stack
  kIspBgp,        // {179, 22} — routers answering on the anycast /24
  kIspMgmt,       // {22, 80, 179, 443} — tier-1s with management surfaces
  kMedia,         // RTMP, Simplify Media, MythTV (the "unpopular" services)
  kGaming,        // Minecraft et al.
  kHostingLarge,  // tens of assorted ports (generic hosting)
  kOvh,           // ~10^4 open ports (seedbox ecosystem, Sec. 4.3)
  kIncapsula,     // ~313 open ports (proxying security service)
  kMail,          // SMTP/IMAP/POP suite
};

/// Static description of one top-100 anycast AS (Fig. 9 row).
struct AsSpec {
  std::uint32_t as_number;
  std::string_view whois;  // WHOIS name as printed in Fig. 9
  Category category;
  bool tier1;
  int sites;        // true geographic replica sites (census detects <=)
  int ip24;         // anycast /24 prefixes
  int caida_rank;   // 1..100 if in CAIDA top-100, else 0
  int alexa_sites;  // Alexa-100k front pages hosted
  PortProfile profile;
};

/// The encoded top-100 table, ordered by decreasing geographic footprint
/// (the x-axis order of Fig. 9).
std::span<const AsSpec> top100_specs();

/// Generates the catalog tail: `count` small deployments (2..4 sites)
/// whose /24 counts sum to `total_ip24`, half of them single-/24
/// (Fig. 13's left mass). Deterministic in `seed`.
std::vector<AsSpec> tail_specs(int count, int total_ip24, std::uint64_t seed);

/// Names generated for tail ASes own their storage; this returns the
/// backing store for the string_views used by tail specs. Call once per
/// process before `tail_specs` views are dereferenced (handled internally).
/// Expands an AsSpec's service profile into concrete open ports with
/// software fingerprints (Fig. 14/16 data). Deterministic in `seed`.
std::vector<ServicePort> make_services(const AsSpec& spec, std::uint64_t seed);

/// True when the profile implies an authoritative/recursive DNS service
/// answering DNS/UDP and DNS/TCP queries (Fig. 6 protocols).
bool profile_serves_dns(PortProfile profile);

}  // namespace anycast::net
