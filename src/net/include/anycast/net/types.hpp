// Common value types for the simulated Internet.
//
// The simulator replaces the paper's measurement substrate (the real IPv4
// Internet probed from PlanetLab): it hosts anycast deployments (sets of
// replica sites sharing /24 prefixes), a unicast background population, and
// answers probes with BGP-like nearest-replica routing plus a realistic RTT
// model. Everything downstream — iGreedy, the census pipeline, the
// portscan, the analysis — consumes only these types.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/geo/city.hpp"
#include "anycast/geodesy/geopoint.hpp"
#include "anycast/ipaddr/prefix.hpp"

namespace anycast::net {

/// Business category of an AS, after Fig. 9/11 of the paper. Only the most
/// prominent activity is kept when an AS has several.
enum class Category {
  kDns,
  kCdn,
  kCloud,
  kIsp,       // includes tier-1s; `tier1` flag distinguishes them
  kSecurity,  // DDoS mitigation etc.
  kSocialNetwork,
  kWebPortal,
  kOther,  // blogging, marketing, conferencing, vendors, ...
  kUnknown,
};

std::string_view to_string(Category category);

/// One physical replica location of an anycast deployment.
struct ReplicaSite {
  const geo::City* city = nullptr;  // from the embedded city table
  geodesy::GeoPoint location;       // actual PoP position (near the city)
};

/// A TCP service exposed by a deployment.
struct ServicePort {
  std::uint16_t port = 0;
  bool ssl = false;
  std::string_view software;  // fingerprint, empty when nmap can't tell
};

/// An anycast deployment: one AS announcing one or more /24s from a set of
/// replica sites. A given /24 may be announced from only a subset of sites
/// (`site_mask` per prefix), which is what produces the per-/24 replica
/// variance the paper reports.
struct Deployment {
  std::uint32_t as_number = 0;
  std::string whois_name;  // e.g. "CLOUDFLARENET,US"
  Category category = Category::kUnknown;
  bool tier1 = false;

  std::vector<ReplicaSite> sites;
  std::vector<ipaddr::Prefix> prefixes;           // /24 each
  std::vector<std::uint64_t> prefix_site_masks;   // bit i => site i announces

  std::vector<ServicePort> tcp_services;
  bool serves_dns = false;  // answers DNS/UDP + DNS/TCP on 53

  /// True when the operator's authoritative DNS honours the
  /// edns-client-subnet extension (ECS), mapping a client subnet to its
  /// serving PoP — the side channel L7-mapping studies exploit (Sec. 2.2).
  /// ECS adoption was far from pervasive in 2015; most anycasters do not
  /// support it, and HTTP-redirection CDNs are invisible to it entirely.
  bool ecs_capable = false;

  int caida_rank = 0;   // 1..100 when in the CAIDA top-100, else 0
  int alexa_sites = 0;  // number of Alexa-100k front pages hosted here
                        // (hosted one per /24, on the first `alexa_sites`
                        // prefixes — the paper's ~1 site per /24)

  /// Per-deployment override of the world's local-site fraction
  /// (negative: use the WorldConfig default). CloudFlare announces all
  /// sites uniformly; EdgeCast peers regionally, which is why its
  /// PL-measurable ground truth covers little of its advertised footprint
  /// (Fig. 7's GT/PAI gap).
  double local_site_fraction_override = -1.0;

  /// True when prefix `p` hosts an Alexa-100k front page.
  [[nodiscard]] bool prefix_hosts_alexa(std::size_t p) const {
    return static_cast<int>(p) < alexa_sites;
  }

  /// Sites announcing prefix `p` (by index into `prefixes`).
  [[nodiscard]] std::vector<const ReplicaSite*> sites_for_prefix(
      std::size_t p) const {
    std::vector<const ReplicaSite*> out;
    for (std::size_t s = 0; s < sites.size(); ++s) {
      if (prefix_site_masks[p] >> s & 1u) out.push_back(&sites[s]);
    }
    return out;
  }
};

/// A measurement vantage point.
struct VantagePoint {
  std::uint32_t id = 0;
  std::string name;            // e.g. "planetlab1.cs.example.edu"
  geodesy::GeoPoint location;  // true position
  geodesy::GeoPoint believed_location;  // position used by analysis
  double host_load = 1.0;  // >=1; slows the prober (Fig. 8 tail)
};

/// Probe protocols of Fig. 6.
enum class Protocol {
  kIcmpEcho,
  kTcpSyn53,
  kTcpSyn80,
  kDnsUdp,
  kDnsTcp,
};

std::string_view to_string(Protocol protocol);

/// What came back from one probe.
enum class ReplyKind {
  kEchoReply,          // ICMP echo reply / TCP SYN-ACK / DNS answer
  kTimeout,            // nothing (dead host, filtered, or loss)
  kAdminProhibited,    // ICMP type 3 code 13 — greylisted
  kHostProhibited,     // ICMP type 3 code 10 — greylisted
  kNetProhibited,      // ICMP type 3 code 9  — greylisted
};

/// True for the ICMP error codes that the census greylists (Sec. 3.3).
constexpr bool is_prohibited(ReplyKind kind) {
  return kind == ReplyKind::kAdminProhibited ||
         kind == ReplyKind::kHostProhibited ||
         kind == ReplyKind::kNetProhibited;
}

struct ProbeReply {
  ReplyKind kind = ReplyKind::kTimeout;
  double rtt_ms = 0.0;  // valid only when kind == kEchoReply
};

}  // namespace anycast::net
