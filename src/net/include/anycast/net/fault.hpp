// Deterministic fault injection for the census pipeline.
//
// The paper's censuses ran on real PlanetLab, where nodes crash mid-run,
// suffer transient connectivity outages, drop reply storms when hosting
// networks rate-limit them, and straggle badly under host load (Sec. 3.5 /
// Fig. 8: the four censuses used 261/255/269/240 of 308 nodes, and
// completion time has a heavy per-VP tail). A `FaultPlan` reproduces that
// weather as a seeded, deterministic schedule: each VP draws — from the
// plan seed alone — whether it crashes after a fraction of its hitlist
// walk, goes dark for a window of it, suffers a reply-loss storm, or
// stalls like an overloaded node. The census prober consumes the schedule
// through a `FaultInjector` layered over `SimulatedInternet::probe`; with
// no plan supplied every probe path is bit-identical to the fault-free
// build, so existing call sites are untouched.
#pragma once

#include <cstdint>
#include <string_view>

namespace anycast::net {

/// Census-wide fault rates. All rates are per-VP probabilities; spans are
/// fractions of a VP's hitlist walk. Defaults inject nothing.
struct FaultSpec {
  /// P(VP crashes mid-census). A crashed VP keeps the observations it
  /// already collected (its checkpoint file is simply incomplete).
  double crash_rate = 0.0;

  /// P(VP has one transient outage window) during which every probe times
  /// out — the node lost connectivity but the process survived.
  double outage_rate = 0.0;
  double outage_span = 0.10;  // fraction of the walk an outage covers

  /// P(reply-loss storm): a window where the hosting network rate-limits
  /// the reply aggregate, adding `storm_drop` to the VP's drop probability.
  double storm_rate = 0.0;
  double storm_drop = 0.50;
  double storm_span = 0.20;

  /// P(clock-stall straggler): a window where each probe takes
  /// `stall_factor` times longer — the Fig. 8 completion-time tail.
  double straggler_rate = 0.0;
  double stall_factor = 8.0;
  double stall_span = 0.25;

  std::uint64_t seed = 42;
};

/// The faults one VP draws from a plan. Window positions are fractions of
/// the walk in [0, 1); an empty window (begin == end) means "none".
struct VpFaultSchedule {
  double crash_fraction = 2.0;  // >= 1: never crashes
  double outage_begin = 0.0, outage_end = 0.0;
  double storm_begin = 0.0, storm_end = 0.0;
  double storm_drop = 0.0;
  double stall_begin = 0.0, stall_end = 0.0;
  double stall_factor = 1.0;

  [[nodiscard]] bool any() const {
    return crash_fraction < 1.0 || outage_end > outage_begin ||
           storm_end > storm_begin || stall_end > stall_begin;
  }
};

/// A seeded schedule of faults for a whole census. Copyable and cheap: the
/// per-VP schedule is re-derived from (seed, vp) on demand, so the same
/// plan replays byte-identically on any subset of VPs — which is what lets
/// a resumed census re-run one crashed VP and still match the original.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] VpFaultSchedule schedule_for(std::uint32_t vp_id) const;

 private:
  FaultSpec spec_;
};

/// Per-VP runtime view of a schedule over a walk of `walk_length` probes:
/// the prober asks it, per probe index, whether the VP is dead, dark,
/// storm-lossy, or stalled. Default-constructed injectors inject nothing.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const VpFaultSchedule& schedule, std::uint64_t walk_length);

  [[nodiscard]] bool active() const { return active_; }

  /// True when the VP died before sending probe `index`.
  [[nodiscard]] bool crashed_before(std::uint64_t index) const {
    return index >= crash_at_;
  }
  /// True when probe `index` falls in the connectivity outage.
  [[nodiscard]] bool outage_at(std::uint64_t index) const {
    return index >= outage_begin_ && index < outage_end_;
  }
  /// Extra reply-drop probability in effect at probe `index`.
  [[nodiscard]] double extra_drop_at(std::uint64_t index) const {
    return (index >= storm_begin_ && index < storm_end_) ? storm_drop_ : 0.0;
  }
  /// Wall-clock multiplier for probe `index` (1.0 = healthy).
  [[nodiscard]] double dilation_at(std::uint64_t index) const {
    return (index >= stall_begin_ && index < stall_end_) ? stall_factor_
                                                         : 1.0;
  }

 private:
  bool active_ = false;
  std::uint64_t crash_at_ = ~std::uint64_t{0};
  std::uint64_t outage_begin_ = 0, outage_end_ = 0;
  std::uint64_t storm_begin_ = 0, storm_end_ = 0;
  double storm_drop_ = 0.0;
  std::uint64_t stall_begin_ = 0, stall_end_ = 0;
  double stall_factor_ = 1.0;
};

}  // namespace anycast::net
