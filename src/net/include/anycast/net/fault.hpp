// Deterministic fault injection for the census pipeline.
//
// The paper's censuses ran on real PlanetLab, where nodes crash mid-run,
// suffer transient connectivity outages, drop reply storms when hosting
// networks rate-limit them, and straggle badly under host load (Sec. 3.5 /
// Fig. 8: the four censuses used 261/255/269/240 of 308 nodes, and
// completion time has a heavy per-VP tail). A `FaultPlan` reproduces that
// weather as a seeded, deterministic schedule: each VP draws — from the
// plan seed alone — whether it crashes after a fraction of its hitlist
// walk, goes dark for a window of it, suffers a reply-loss storm, or
// stalls like an overloaded node. The census prober consumes the schedule
// through a `FaultInjector` layered over `SimulatedInternet::probe`; with
// no plan supplied every probe path is bit-identical to the fault-free
// build, so existing call sites are untouched.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <vector>

namespace anycast::net {

/// Census-wide fault rates. All rates are per-VP probabilities; spans are
/// fractions of a VP's hitlist walk. Defaults inject nothing.
struct FaultSpec {
  /// P(VP crashes mid-census). A crashed VP keeps the observations it
  /// already collected (its checkpoint file is simply incomplete).
  double crash_rate = 0.0;

  /// P(VP has one transient outage window) during which every probe times
  /// out — the node lost connectivity but the process survived.
  double outage_rate = 0.0;
  double outage_span = 0.10;  // fraction of the walk an outage covers

  /// P(reply-loss storm): a window where the hosting network rate-limits
  /// the reply aggregate, adding `storm_drop` to the VP's drop probability.
  double storm_rate = 0.0;
  double storm_drop = 0.50;
  double storm_span = 0.20;

  /// P(clock-stall straggler): a window where each probe takes
  /// `stall_factor` times longer — the Fig. 8 completion-time tail.
  double straggler_rate = 0.0;
  double stall_factor = 8.0;
  double stall_span = 0.25;

  std::uint64_t seed = 42;

  // --- Longitudinal scenarios (watch-mode chaos). Every field below
  // draws from sub-stream tags disjoint from the four classic faults, so
  // enabling a scenario never perturbs an existing plan's draws — an old
  // chaos census replays byte-identically under a new binary. ---

  /// P(VP sees BGP route flaps): up to `flap_count` short windows during
  /// which routes re-converge through a longer detour, adding
  /// `flap_extra_ms` to every echo RTT (applied after the probe, so the
  /// simulator's RNG draw sequence is untouched).
  double flap_rate = 0.0;
  int flap_count = 3;
  double flap_span = 0.04;      // per-flap window fraction of the walk
  double flap_extra_ms = 40.0;  // detour inflation while re-converging

  /// Regional outage: with probability `regional_rate` — a census-wide
  /// coin, not a per-VP one — a seeded cohort of roughly
  /// `regional_fraction` of all VPs goes dark together for one shared
  /// window of `regional_span` of the walk. The correlated loss is the
  /// point: it is what pushes a round below the supervisor's coverage
  /// floor, where independent per-VP outages rarely do.
  double regional_rate = 0.0;
  double regional_fraction = 0.25;
  double regional_span = 0.5;

  /// Staged hijack: the listed hitlist target indices (sorted ascending)
  /// are captured for roughly `hijack_vp_fraction` of VPs (drawn per VP).
  /// A captured VP's probes to a victim are answered by the attacker at
  /// `hijack_rtt_ms` (plus a small deterministic per-(VP, target) jitter)
  /// instead of the legitimate path — distant captured VPs then violate
  /// the speed of light, which is exactly what HijackMonitor alarms on.
  std::vector<std::uint32_t> hijack_targets;
  double hijack_vp_fraction = 0.0;
  double hijack_rtt_ms = 8.0;
};

/// The faults one VP draws from a plan. Window positions are fractions of
/// the walk in [0, 1); an empty window (begin == end) means "none".
struct VpFaultSchedule {
  static constexpr int kMaxFlaps = 4;

  double crash_fraction = 2.0;  // >= 1: never crashes
  double outage_begin = 0.0, outage_end = 0.0;
  double storm_begin = 0.0, storm_end = 0.0;
  double storm_drop = 0.0;
  double stall_begin = 0.0, stall_end = 0.0;
  double stall_factor = 1.0;

  // Route flaps: short detour windows that inflate echo RTTs.
  int flap_count = 0;
  double flap_begin[kMaxFlaps] = {}, flap_end[kMaxFlaps] = {};
  double flap_extra_ms = 0.0;

  // Regional outage: a second dark window, shared by the whole cohort.
  double regional_begin = 0.0, regional_end = 0.0;

  // Staged hijack: when captured, probes to any index in `hijack_targets`
  // (sorted, owned by the plan's spec — the plan must outlive injectors
  // built from this schedule) are answered by the attacker.
  bool hijack_captured = false;
  double hijack_rtt_ms = 0.0;
  std::uint64_t hijack_salt = 0;
  const std::vector<std::uint32_t>* hijack_targets = nullptr;

  [[nodiscard]] bool any() const {
    return crash_fraction < 1.0 || outage_end > outage_begin ||
           storm_end > storm_begin || stall_end > stall_begin ||
           flap_count > 0 || regional_end > regional_begin ||
           (hijack_captured && hijack_targets != nullptr &&
            !hijack_targets->empty());
  }
};

/// A seeded schedule of faults for a whole census. Copyable and cheap: the
/// per-VP schedule is re-derived from (seed, vp) on demand, so the same
/// plan replays byte-identically on any subset of VPs — which is what lets
/// a resumed census re-run one crashed VP and still match the original.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(const FaultSpec& spec) : spec_(spec) {}

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] VpFaultSchedule schedule_for(std::uint32_t vp_id) const;

 private:
  FaultSpec spec_;
};

/// Per-VP runtime view of a schedule over a walk of `walk_length` probes:
/// the prober asks it, per probe index, whether the VP is dead, dark,
/// storm-lossy, or stalled. Default-constructed injectors inject nothing.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const VpFaultSchedule& schedule, std::uint64_t walk_length);

  [[nodiscard]] bool active() const { return active_; }

  /// True when the VP died before sending probe `index`.
  [[nodiscard]] bool crashed_before(std::uint64_t index) const {
    return index >= crash_at_;
  }
  /// True when probe `index` falls in a connectivity outage — the VP's own
  /// transient one or the shared regional window.
  [[nodiscard]] bool outage_at(std::uint64_t index) const {
    return (index >= outage_begin_ && index < outage_end_) ||
           (index >= regional_begin_ && index < regional_end_);
  }
  /// Extra reply-drop probability in effect at probe `index`.
  [[nodiscard]] double extra_drop_at(std::uint64_t index) const {
    return (index >= storm_begin_ && index < storm_end_) ? storm_drop_ : 0.0;
  }
  /// Wall-clock multiplier for probe `index` (1.0 = healthy).
  [[nodiscard]] double dilation_at(std::uint64_t index) const {
    return (index >= stall_begin_ && index < stall_end_) ? stall_factor_
                                                         : 1.0;
  }
  /// Detour inflation (ms) a route flap adds to an echo at probe `index`;
  /// 0 outside every flap window. Applied to the simulator's reply after
  /// the fact so the probe's RNG draw sequence is untouched.
  [[nodiscard]] double flap_extra_ms_at(std::uint64_t index) const {
    for (int f = 0; f < flap_count_; ++f) {
      if (index >= flap_begin_[f] && index < flap_end_[f]) {
        return flap_extra_ms_;
      }
    }
    return 0.0;
  }
  /// True when the attacker intercepts this VP's probes to hitlist index
  /// `target_index` (staged hijack; valid for the whole walk).
  [[nodiscard]] bool hijacked(std::uint32_t target_index) const {
    return hijack_targets_ != nullptr &&
           std::binary_search(hijack_targets_->begin(),
                              hijack_targets_->end(), target_index);
  }
  /// The attacker's reply RTT for a hijacked target: the configured base
  /// plus a deterministic per-(VP, target) jitter so captured rows are not
  /// suspiciously uniform.
  [[nodiscard]] double hijack_rtt_ms(std::uint32_t target_index) const;

 private:
  bool active_ = false;
  std::uint64_t crash_at_ = ~std::uint64_t{0};
  std::uint64_t outage_begin_ = 0, outage_end_ = 0;
  std::uint64_t storm_begin_ = 0, storm_end_ = 0;
  double storm_drop_ = 0.0;
  std::uint64_t stall_begin_ = 0, stall_end_ = 0;
  double stall_factor_ = 1.0;
  int flap_count_ = 0;
  std::uint64_t flap_begin_[VpFaultSchedule::kMaxFlaps] = {};
  std::uint64_t flap_end_[VpFaultSchedule::kMaxFlaps] = {};
  double flap_extra_ms_ = 0.0;
  std::uint64_t regional_begin_ = 0, regional_end_ = 0;
  double hijack_base_rtt_ms_ = 0.0;
  std::uint64_t hijack_salt_ = 0;
  const std::vector<std::uint32_t>* hijack_targets_ = nullptr;
};

}  // namespace anycast::net
