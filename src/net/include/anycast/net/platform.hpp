// Measurement platforms: synthetic PlanetLab and RIPE Atlas VP sets.
//
// Sec. 3.2 discusses the platform trade-off: PlanetLab offers ~300 nodes
// with full software control; RIPE Atlas offers far more probes and better
// geographic diversity but little control. Fig. 5 shows PL results are a
// subset of RIPE results. We generate both kinds of VP set with the
// corresponding size and geographic skew so that recall differences emerge
// from geometry, as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "anycast/net/types.hpp"

namespace anycast::net {

enum class Region { kNorthAmerica, kEurope, kAsia, kOceania,
                    kSouthAmerica, kAfrica, kMiddleEast };

/// Maps an ISO country code to its coarse region.
Region region_of(std::string_view country);

struct PlatformConfig {
  int node_count = 300;
  std::uint64_t seed = 42;
  /// Standard deviation of the per-VP location error (km) applied to
  /// `believed_location`. PlanetLab metadata is usually good; a nonzero
  /// value exercises the false-positive discussion of Sec. 4.2.
  double location_error_km = 0.0;
};

/// A PlanetLab-like platform: ~300 nodes, heavily skewed to North American
/// and European universities, with heterogeneous host load (the Fig. 8
/// completion-time tail).
std::vector<VantagePoint> make_planetlab(const PlatformConfig& config);

/// A RIPE-Atlas-like platform: larger and geographically denser, with the
/// European bias of the real deployment. When built with the same seed as
/// a PlanetLab platform, the first `planetlab.size()` host cities overlap
/// so PL catchments are (approximately) a subset of RIPE's.
std::vector<VantagePoint> make_ripe_atlas(const PlatformConfig& config);

}  // namespace anycast::net
