#include "anycast/census/fastping.hpp"

#include <algorithm>

#include "anycast/rng/distributions.hpp"
#include "anycast/rng/lfsr.hpp"

namespace anycast::census {

double reply_drop_probability(double probe_rate_pps, double threshold_pps,
                              double slope) {
  if (probe_rate_pps <= threshold_pps || threshold_pps <= 0.0) return 0.0;
  return std::min(0.9, slope * (probe_rate_pps / threshold_pps - 1.0));
}

double vp_drop_threshold(const net::VantagePoint& vp,
                         const FastPingConfig& config) {
  rng::SplitMix64 mixer(config.seed ^ (0x9E3779B97F4A7C15ull * (vp.id + 1)));
  mixer.next();
  const double u = static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
  return config.min_drop_threshold_pps +
         u * (config.max_drop_threshold_pps - config.min_drop_threshold_pps);
}

FastPingResult run_fastping(const net::SimulatedInternet& internet,
                            const net::VantagePoint& vp,
                            const Hitlist& hitlist, const Greylist& blacklist,
                            Greylist& greylist,
                            const FastPingConfig& config) {
  FastPingResult result;
  if (hitlist.size() == 0) return result;
  result.drop_probability = reply_drop_probability(
      config.probe_rate_pps, vp_drop_threshold(vp, config),
      config.drop_slope);

  rng::Xoshiro256 gen(config.seed ^ (vp.id * 0xD1B54A32D192ED03ull));
  // LFSR-ordered walk: every VP visits the same cycle from a different
  // offset, so no target sees bursts from many VPs at once (Sec. 3.5).
  rng::LfsrPermutation order(static_cast<std::uint32_t>(hitlist.size()),
                             static_cast<std::uint32_t>(vp.id * 2654435761u +
                                                        1u));
  result.observations.reserve(hitlist.size());
  const double seconds_per_probe =
      vp.host_load / std::max(1.0, config.probe_rate_pps);
  double clock_s = 0.0;
  while (const auto index = order.next()) {
    const HitlistEntry& entry = hitlist[*index];
    const std::uint32_t slash24 = entry.representative.slash24_index();
    if (blacklist.contains(slash24)) continue;
    ++result.probes_sent;
    clock_s += seconds_per_probe;

    const net::ProbeReply reply =
        internet.probe(vp, entry.representative, net::Protocol::kIcmpEcho,
                       gen, result.drop_probability);
    Observation obs;
    obs.target_index = *index;
    obs.time_s = clock_s;
    obs.kind = reply.kind;
    obs.rtt_ms = reply.rtt_ms;
    result.observations.push_back(obs);

    switch (reply.kind) {
      case net::ReplyKind::kEchoReply:
        ++result.echo_replies;
        break;
      case net::ReplyKind::kTimeout:
        ++result.timeouts;
        break;
      default:
        ++result.errors;
        greylist.add(slash24, reply.kind);
        break;
    }
  }
  result.duration_hours = clock_s / 3600.0;
  return result;
}

}  // namespace anycast::census
