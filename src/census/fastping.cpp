#include "anycast/census/fastping.hpp"

#include <algorithm>

#include "anycast/net/fault.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/rng/distributions.hpp"
#include "anycast/rng/lfsr.hpp"

namespace anycast::census {
namespace {

/// The prober's instruments, registered once. Every count is flushed from
/// a finished walk's local tally (see flush_walk_metrics); the probe loop
/// itself never touches these.
struct WalkInstruments {
  obs::Counter walks = obs::metrics().counter(
      "census_walks", obs::MetricClass::kSemantic,
      "fastping walks flushed (live or replayed from checkpoint)");
  obs::Counter probes_sent = obs::metrics().counter(
      "census_probes_sent", obs::MetricClass::kSemantic,
      "probes sent across all walks, retries included");
  obs::Counter replies_echo = obs::metrics().counter(
      "census_replies_echo", obs::MetricClass::kSemantic,
      "ICMP echo replies received");
  obs::Counter replies_prohibited = obs::metrics().counter(
      "census_replies_prohibited", obs::MetricClass::kSemantic,
      "prohibited/error replies (greylist feed)");
  obs::Counter timeouts_organic = obs::metrics().counter(
      "census_timeouts_organic", obs::MetricClass::kSemantic,
      "probes that timed out on their own (not fault-injected)");
  obs::Counter timeouts_injected = obs::metrics().counter(
      "census_timeouts_injected", obs::MetricClass::kSemantic,
      "probes lost to injected outage windows");
  obs::Counter retry_probes = obs::metrics().counter(
      "census_retry_probes", obs::MetricClass::kSemantic,
      "probes spent in retry passes");
  obs::Counter retry_recovered = obs::metrics().counter(
      "census_retry_recovered", obs::MetricClass::kSemantic,
      "timed-out targets a retry pass recovered");
  obs::Histogram rtt_ms = obs::metrics().histogram(
      "census_rtt_ms", obs::MetricClass::kSemantic,
      {5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 400.0},
      "echo RTTs (codec-quantised, so live == replayed)");
  obs::Histogram vp_duration_hours = obs::metrics().histogram(
      "census_vp_duration_hours", obs::MetricClass::kTiming,
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0},
      "per-VP walk duration (coarser for replayed checkpoints)");
  obs::Counter blacklist_skips = obs::metrics().counter(
      "census_blacklist_skips", obs::MetricClass::kTiming,
      "walk positions skipped for blacklisted /24s (live walks only; a "
      "checkpoint replay records no trace of a skip)");
};

const WalkInstruments& walk_instruments() {
  static const WalkInstruments instruments;
  return instruments;
}

}  // namespace

double reply_drop_probability(double probe_rate_pps, double threshold_pps,
                              double slope) {
  if (probe_rate_pps <= threshold_pps || threshold_pps <= 0.0) return 0.0;
  return std::min(0.9, slope * (probe_rate_pps / threshold_pps - 1.0));
}

double vp_drop_threshold(const net::VantagePoint& vp,
                         const FastPingConfig& config) {
  const double u = rng::hash_uniform01(
      config.seed ^ (0x9E3779B97F4A7C15ull * (vp.id + 1)));
  return config.min_drop_threshold_pps +
         u * (config.max_drop_threshold_pps - config.min_drop_threshold_pps);
}

void flush_walk_metrics(const FastPingResult& result, std::uint64_t vp_id) {
  const WalkInstruments& in = walk_instruments();
  in.walks.inc();
  in.probes_sent.add(result.probes_sent);
  in.replies_echo.add(result.echo_replies);
  in.replies_prohibited.add(result.errors);
  in.timeouts_organic.add(result.timeouts - result.injected_timeouts);
  in.timeouts_injected.add(result.injected_timeouts);
  in.retry_probes.add(result.retry_probes);
  in.retry_recovered.add(result.retry_recovered);
  for (const Observation& obs : result.observations) {
    if (obs.kind == net::ReplyKind::kEchoReply) {
      in.rtt_ms.observe(quantised_rtt_ms(obs.rtt_ms));
    }
  }
  in.vp_duration_hours.observe(result.duration_hours);
  // The walk's semantic journal event mirrors exactly the values flushed
  // above (duration is wall-clock and stays out), so the event is as
  // deterministic as the metrics: byte-identical across thread counts,
  // and live == replayed through this same chokepoint.
  obs::journal().emit(
      obs::MetricClass::kSemantic,
      result.outcome == VpOutcome::kCompleted ? obs::Severity::kInfo
                                              : obs::Severity::kWarn,
      "census.walk", vp_id,
      {{"vp", vp_id},
       {"probes", result.probes_sent},
       {"echo", result.echo_replies},
       {"prohibited", result.errors},
       {"timeouts_organic", result.timeouts - result.injected_timeouts},
       {"timeouts_injected", result.injected_timeouts},
       {"retry_probes", result.retry_probes},
       {"retry_recovered", result.retry_recovered},
       {"outcome", to_string(result.outcome)}});
}

std::string_view to_string(VpOutcome outcome) {
  switch (outcome) {
    case VpOutcome::kCompleted: return "completed";
    case VpOutcome::kCrashed: return "crashed";
    case VpOutcome::kCutOff: return "cut_off";
    case VpOutcome::kQuarantined: return "quarantined";
    case VpOutcome::kSkipped: return "skipped";
  }
  return "unknown";
}

FastPingResult run_fastping(const net::SimulatedInternet& internet,
                            const net::VantagePoint& vp,
                            const Hitlist& hitlist, const Greylist& blacklist,
                            Greylist& greylist, const FastPingConfig& config,
                            const net::FaultPlan* faults) {
  FastPingResult result;
  if (hitlist.size() == 0) return result;
  result.drop_probability = reply_drop_probability(
      config.probe_rate_pps, vp_drop_threshold(vp, config),
      config.drop_slope);

  net::FaultInjector injector;
  if (faults != nullptr) {
    injector = net::FaultInjector(faults->schedule_for(vp.id),
                                  hitlist.size());
  }

  rng::Xoshiro256 gen(config.seed ^ (vp.id * 0xD1B54A32D192ED03ull));
  // LFSR-ordered walk: every VP visits the same cycle from a different
  // offset, so no target sees bursts from many VPs at once (Sec. 3.5).
  rng::LfsrPermutation order(static_cast<std::uint32_t>(hitlist.size()),
                             static_cast<std::uint32_t>(vp.id * 2654435761u +
                                                        1u));
  result.observations.reserve(hitlist.size());
  const double seconds_per_probe =
      vp.host_load / std::max(1.0, config.probe_rate_pps);
  const double deadline_s = config.vp_deadline_hours > 0.0
                                ? config.vp_deadline_hours * 3600.0
                                : 0.0;
  double clock_s = 0.0;

  // One probe to `target_index`, at fault-schedule position `step` (the
  // walk's LFSR step during the main pass, past-the-end during retries).
  const auto probe_once = [&](std::uint32_t target_index,
                              std::uint64_t step) {
    const HitlistEntry& entry = hitlist[target_index];
    ++result.probes_sent;
    clock_s += seconds_per_probe * injector.dilation_at(step);

    net::ProbeReply reply;
    if (injector.outage_at(step)) {
      // The node lost connectivity: the probe (or its reply) never made
      // it. No RNG draw — the simulated Internet never saw the packet.
      reply = net::ProbeReply{net::ReplyKind::kTimeout, 0.0};
      ++result.injected_timeouts;
    } else {
      reply = internet.probe(
          vp, entry.representative, net::Protocol::kIcmpEcho, gen,
          std::min(0.999,
                   result.drop_probability + injector.extra_drop_at(step)));
      if (injector.hijacked(target_index)) {
        // Staged hijack: the attacker's AS answers in place of the victim.
        // The probe above still runs — consuming the exact RNG draws the
        // legitimate path would — so every non-hijacked row stays
        // bit-identical and the hijack dirties only its own targets.
        reply = net::ProbeReply{net::ReplyKind::kEchoReply,
                                injector.hijack_rtt_ms(target_index)};
      } else if (reply.kind == net::ReplyKind::kEchoReply) {
        // Route flap in progress: replies detour through the re-converging
        // path. Applied after the probe so the RNG sequence is unchanged.
        reply.rtt_ms += injector.flap_extra_ms_at(step);
      }
    }
    Observation obs;
    obs.target_index = target_index;
    obs.time_s = clock_s;
    obs.kind = reply.kind;
    obs.rtt_ms = reply.rtt_ms;
    result.observations.push_back(obs);

    switch (reply.kind) {
      case net::ReplyKind::kEchoReply:
        ++result.echo_replies;
        break;
      case net::ReplyKind::kTimeout:
        ++result.timeouts;
        break;
      default:
        ++result.errors;
        greylist.add(entry.representative.slash24_index(), reply.kind);
        break;
    }
    return reply.kind;
  };

  // --- Main walk -----------------------------------------------------------
  std::uint64_t step = 0;
  std::uint64_t blacklist_skips = 0;  // walk-local tally, flushed once
  while (const auto index = order.next()) {
    if (injector.crashed_before(step)) {
      result.outcome = VpOutcome::kCrashed;
      break;
    }
    const std::uint64_t this_step = step++;
    const HitlistEntry& entry = hitlist[*index];
    if (blacklist.contains(entry.representative.slash24_index())) {
      ++blacklist_skips;
      continue;
    }
    probe_once(*index, this_step);
    if (deadline_s > 0.0 && clock_s > deadline_s) {
      result.outcome = VpOutcome::kCutOff;
      break;
    }
  }

  // --- Retry passes over timed-out targets ---------------------------------
  // Bounded and backed-off: transient outages recover, dead space does
  // not, and the budget keeps a broken VP from hammering the hitlist.
  if (config.retry_max_attempts > 0 &&
      result.outcome == VpOutcome::kCompleted && result.timeouts > 0) {
    std::vector<std::uint32_t> pending;
    for (const Observation& obs : result.observations) {
      if (obs.kind == net::ReplyKind::kTimeout) {
        pending.push_back(obs.target_index);
      }
    }
    // The main-walk reserve covered one probe per target; retry passes
    // append beyond it. Reserve the worst case up front (every pending
    // target re-probed every pass, clipped to the budget) so the retry
    // loop never reallocates the observation stream.
    std::size_t retry_worst_case =
        pending.size() * static_cast<std::size_t>(config.retry_max_attempts);
    if (config.retry_probe_budget != 0) {
      retry_worst_case = std::min(
          retry_worst_case,
          static_cast<std::size_t>(config.retry_probe_budget));
    }
    result.observations.reserve(result.observations.size() +
                                retry_worst_case);
    const std::uint64_t walk_end = hitlist.size();  // past every window
    double backoff_s = std::max(0.0, config.retry_backoff_s);
    bool out_of_time = false;
    for (int attempt = 0;
         attempt < config.retry_max_attempts && !pending.empty() &&
         !out_of_time;
         ++attempt, backoff_s *= 2.0) {
      clock_s += backoff_s;
      std::vector<std::uint32_t> still_pending;
      for (const std::uint32_t target : pending) {
        if (config.retry_probe_budget != 0 &&
            result.retry_probes >= config.retry_probe_budget) {
          still_pending.push_back(target);
          continue;
        }
        if (deadline_s > 0.0 && clock_s > deadline_s) {
          result.outcome = VpOutcome::kCutOff;
          out_of_time = true;
          break;
        }
        ++result.retry_probes;
        const net::ReplyKind kind = probe_once(target, walk_end);
        if (kind == net::ReplyKind::kTimeout) {
          still_pending.push_back(target);
        } else if (kind == net::ReplyKind::kEchoReply) {
          ++result.retry_recovered;
        }
      }
      pending = std::move(still_pending);
      if (config.retry_probe_budget != 0 &&
          result.retry_probes >= config.retry_probe_budget) {
        break;
      }
    }
  }

  result.duration_hours = clock_s / 3600.0;
  walk_instruments().blacklist_skips.add(blacklist_skips);
  return result;
}

}  // namespace anycast::census
