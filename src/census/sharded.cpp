#include "anycast/census/sharded.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "anycast/census/storage.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

/// Data-plane instruments. All kTiming: shard counts, flush schedules,
/// and spill traffic are layout/budget details that legitimately vary
/// with --shard-targets and --rss-budget-mb while the semantic output
/// stays byte-identical. Constructing the struct registers every name,
/// so one sharded operation makes the whole family visible to the
/// timing-allowlist test.
struct DataPlaneInstruments {
  obs::Counter flushes = obs::metrics().counter(
      "census_shard_flushes", obs::MetricClass::kTiming,
      "staged shard freezes combined into their accumulator");
  obs::Counter spills = obs::metrics().counter(
      "census_shard_spills", obs::MetricClass::kTiming,
      "frozen shards spilled to disk under the RSS budget");
  obs::Counter restores = obs::metrics().counter(
      "census_shard_restores", obs::MetricClass::kTiming,
      "spilled shards restored to anonymous memory");
  obs::Counter spill_salvages = obs::metrics().counter(
      "census_spill_salvages", obs::MetricClass::kTiming,
      "damaged spill files recovered as a whole-record prefix");
  obs::Gauge resident_bytes = obs::metrics().gauge(
      "census_shard_resident_bytes", obs::MetricClass::kTiming,
      "value bytes in anonymous (non-droppable) shard arenas");
  obs::Gauge spilled_bytes = obs::metrics().gauge(
      "census_shard_spilled_bytes", obs::MetricClass::kTiming,
      "value bytes currently backed by spill files");
};

const DataPlaneInstruments& data_plane_instruments() {
  static const DataPlaneInstruments instruments;
  return instruments;
}

std::size_t shard_size_for(std::size_t target_count,
                           const DataPlaneConfig& plane) {
  const std::size_t requested =
      plane.shard_targets == 0 ? target_count : plane.shard_targets;
  return std::max<std::size_t>(1, std::min(requested, std::max<std::size_t>(
                                                          target_count, 1)));
}

std::size_t shard_count_for(std::size_t target_count,
                            std::size_t shard_targets) {
  return target_count == 0 ? 0
                           : (target_count + shard_targets - 1) / shard_targets;
}

void publish_residency_gauges(std::size_t resident, std::size_t spilled) {
  data_plane_instruments().resident_bytes.set(static_cast<double>(resident));
  data_plane_instruments().spilled_bytes.set(static_cast<double>(spilled));
}

}  // namespace

ShardedCensusMatrix::ShardedCensusMatrix(std::size_t target_count,
                                         const DataPlaneConfig& plane)
    : target_count_(target_count),
      shard_targets_(shard_size_for(target_count, plane)),
      plane_(plane) {
  const std::size_t shards = shard_count_for(target_count, shard_targets_);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t base = s * shard_targets_;
    shards_.emplace_back(std::min(shard_targets_, target_count - base));
  }
}

std::size_t ShardedCensusMatrix::observation_count() const {
  std::size_t total = 0;
  for (const CensusMatrix& shard : shards_) total += shard.observation_count();
  return total;
}

std::size_t ShardedCensusMatrix::responsive_targets(
    std::size_t min_vps) const {
  std::size_t total = 0;
  for (const CensusMatrix& shard : shards_) {
    total += shard.responsive_targets(min_vps);
  }
  return total;
}

void ShardedCensusMatrix::combine_min(const ShardedCensusMatrix& other) {
  if (&other == this || other.target_count_ == 0) return;
  if (target_count_ == 0) {
    *this = other;  // the copy lands fully resident (anonymous arenas)
    enforce_rss_budget();
    return;
  }
  if (shard_targets_ != other.shard_targets_) {
    throw std::invalid_argument(
        "ShardedCensusMatrix::combine_min: shard sizes differ");
  }
  // Grow to cover `other` (per-shard combine_min handles the ragged last
  // shard: CensusMatrix::combine_min takes the max local target count).
  while (shards_.size() < other.shards_.size()) {
    const std::size_t base = shards_.size() * shard_targets_;
    shards_.emplace_back(
        std::min(shard_targets_, other.target_count_ - base));
  }
  target_count_ = std::max(target_count_, other.target_count_);
  for (std::size_t s = 0; s < other.shards_.size(); ++s) {
    shards_[s].combine_min(other.shards_[s]);  // restores if spilled
  }
  enforce_rss_budget();
}

std::string ShardedCensusMatrix::spill_path(std::size_t s) const {
  if (plane_.spill_dir.empty()) return {};
  return plane_.spill_dir + "/shard" + std::to_string(s) + ".ancs";
}

std::size_t ShardedCensusMatrix::spill_shard(std::size_t s) {
  CensusMatrix& shard = shards_[s];
  if (shard.values_spilled()) return shard.drop_resident_values();
  const std::string path = spill_path(s);
  if (path.empty() || shard.value_bytes() == 0) return 0;
  std::error_code ec;
  std::filesystem::create_directories(plane_.spill_dir, ec);
  if (!shard.spill_values(path)) return 0;
  const std::size_t dropped = shard.drop_resident_values();
  data_plane_instruments().spills.inc();
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kInfo,
                      "shard.spill", s,
                      {{"shard", s}, {"bytes", shard.value_bytes()}});
  return dropped;
}

void ShardedCensusMatrix::restore_shard(std::size_t s) {
  CensusMatrix& shard = shards_[s];
  if (!shard.values_spilled()) return;
  shard.restore_values();
  data_plane_instruments().restores.inc();
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kInfo,
                      "shard.restore", s,
                      {{"shard", s}, {"bytes", shard.value_bytes()}});
}

std::size_t ShardedCensusMatrix::resident_value_bytes() const {
  std::size_t total = 0;
  for (const CensusMatrix& shard : shards_) {
    if (!shard.values_spilled()) total += shard.value_bytes();
  }
  return total;
}

std::size_t ShardedCensusMatrix::total_value_bytes() const {
  std::size_t total = 0;
  for (const CensusMatrix& shard : shards_) total += shard.value_bytes();
  return total;
}

std::size_t ShardedCensusMatrix::enforce_rss_budget() {
  std::size_t resident = resident_value_bytes();
  if (plane_.rss_budget_mb == 0 || plane_.spill_dir.empty()) return resident;
  const std::size_t budget = plane_.rss_budget_mb * (std::size_t{1} << 20);
  for (std::size_t s = 0; s < shards_.size() && resident > budget; ++s) {
    if (shards_[s].values_spilled()) continue;
    const std::size_t bytes = shards_[s].value_bytes();
    if (spill_shard(s) != 0) resident -= bytes;
  }
  publish_residency_gauges(resident, total_value_bytes() - resident);
  return resident;
}

CensusMatrix ShardedCensusMatrix::to_monolithic() const {
  CensusMatrixBuilder builder(target_count_);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const CensusMatrix& shard = shards_[s];
    const std::size_t base = shard_base(s);
    for (std::uint32_t t = 0; t < shard.target_count(); ++t) {
      for (const VpRtt& sample : shard.measurements(t)) {
        builder.add(static_cast<std::uint32_t>(base + t), sample.vp,
                    sample.rtt_ms);
      }
    }
  }
  return builder.build_uncounted();
}

ShardedCensusMatrixBuilder::ShardedCensusMatrixBuilder(
    std::size_t target_count, const DataPlaneConfig& plane)
    : target_count_(target_count),
      shard_targets_(shard_size_for(target_count, plane)),
      shard_count_(shard_count_for(target_count, shard_targets_)),
      plane_(plane),
      result_(target_count, plane),
      has_frozen_(shard_count_, false) {
  stage_.reserve(shard_count_);
  stage_entry_bytes_.assign(shard_count_, 0);
  for (std::size_t s = 0; s < shard_count_; ++s) {
    const std::size_t base = s * shard_targets_;
    stage_.emplace_back(std::min(shard_targets_, target_count - base));
  }
  // Touch the instrument family so every data-plane metric is registered
  // the moment a sharded builder exists, not only once a flush happens.
  (void)data_plane_instruments();
}

void ShardedCensusMatrixBuilder::add(std::uint32_t target_index,
                                     std::uint16_t vp, float rtt_ms) {
  if (target_index >= target_count_) return;  // damaged record, as monolithic
  const std::size_t s = target_index / shard_targets_;
  stage_[s].add(static_cast<std::uint32_t>(target_index - s * shard_targets_),
                vp, rtt_ms);
  stage_entry_bytes_[s] += sizeof(TargetRtt);
  staged_bytes_ += sizeof(TargetRtt);
}

void ShardedCensusMatrixBuilder::add_fragment(std::uint16_t vp,
                                              std::vector<TargetRtt> fragment) {
  // Split by target range. Entries may arrive in any order (the builder
  // canonicalises), so route one by one; out-of-range entries are
  // dropped exactly as the monolithic builder drops them.
  std::vector<std::vector<TargetRtt>> split(shard_count_);
  for (const TargetRtt& entry : fragment) {
    if (entry.target_index >= target_count_) continue;
    const std::size_t s = entry.target_index / shard_targets_;
    split[s].push_back(TargetRtt{
        static_cast<std::uint32_t>(entry.target_index - s * shard_targets_),
        entry.rtt_ms});
  }
  fragment.clear();
  fragment.shrink_to_fit();
  for (std::size_t s = 0; s < shard_count_; ++s) {
    if (split[s].empty()) continue;
    const std::size_t bytes = split[s].size() * sizeof(TargetRtt);
    stage_[s].add_fragment(vp, std::move(split[s]));
    stage_entry_bytes_[s] += bytes;
    staged_bytes_ += bytes;
  }
  if (plane_.stage_budget_mb == 0) return;  // unlimited staging
  const std::size_t budget = plane_.stage_budget_mb * (std::size_t{1} << 20);
  while (staged_bytes_ > budget) flush_heaviest();
}

void ShardedCensusMatrixBuilder::flush_shard(std::size_t s) {
  if (stage_entry_bytes_[s] == 0) return;
  const std::size_t staged = stage_entry_bytes_[s];
  CensusMatrix frozen = stage_[s].build_uncounted();
  staged_bytes_ -= staged;
  stage_entry_bytes_[s] = 0;
  if (has_frozen_[s]) {
    // Associative fold: combining partial builds per (vp, target) minimum
    // gives the same rows as one build over all fragments, so the flush
    // schedule cannot change the final matrix.
    result_.shards_[s].combine_min(frozen);
  } else {
    result_.shards_[s] = std::move(frozen);
    has_frozen_[s] = true;
  }
  data_plane_instruments().flushes.inc();
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kInfo,
                      "shard.flush", s,
                      {{"shard", s},
                       {"staged_bytes", staged},
                       {"values", result_.shards_[s].observation_count()}});
  result_.enforce_rss_budget();
}

void ShardedCensusMatrixBuilder::flush_heaviest() {
  std::size_t heaviest = 0;
  for (std::size_t s = 1; s < shard_count_; ++s) {
    if (stage_entry_bytes_[s] > stage_entry_bytes_[heaviest]) heaviest = s;
  }
  if (stage_entry_bytes_[heaviest] == 0) return;
  flush_shard(heaviest);
}

ShardedCensusMatrix ShardedCensusMatrixBuilder::build() {
  for (std::size_t s = 0; s < shard_count_; ++s) flush_shard(s);
  detail::note_matrix_build(result_.observation_count());
  const std::size_t resident = result_.enforce_rss_budget();
  publish_residency_gauges(resident, result_.total_value_bytes() - resident);

  ShardedCensusMatrix out = std::move(result_);
  result_ = ShardedCensusMatrix(target_count_, plane_);
  has_frozen_.assign(shard_count_, false);
  stage_entry_bytes_.assign(shard_count_, 0);
  staged_bytes_ = 0;
  return out;
}

std::optional<SpillFileContents> read_spill_file(const std::string& path,
                                                 bool salvage) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::vector<std::uint8_t> buffer;
  std::uint8_t chunk[64 * 1024];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  std::fclose(f);
  if (buffer.size() < detail::kSpillHeaderBytes) return std::nullopt;
  std::uint32_t magic = 0;
  std::uint32_t stored_crc = 0;
  std::uint64_t count = 0;
  std::memcpy(&magic, buffer.data(), 4);
  std::memcpy(&stored_crc, buffer.data() + 4, 4);
  std::memcpy(&count, buffer.data() + 8, 8);
  if (magic != detail::kSpillMagic) return std::nullopt;

  const std::size_t available = buffer.size() - detail::kSpillHeaderBytes;
  const std::size_t declared_bytes = count * sizeof(VpRtt);
  const bool intact =
      available >= declared_bytes &&
      crc32(std::span<const std::uint8_t>(buffer.data() + detail::kSpillHeaderBytes,
                                          declared_bytes)) == stored_crc;
  std::size_t records = count;
  if (!intact) {
    if (!salvage) return std::nullopt;
    // Whole-record prefix, capped at the declared count: a truncated
    // file lost its tail, a bit-flipped one keeps its length.
    records = std::min<std::size_t>(count, available / sizeof(VpRtt));
  }
  SpillFileContents out;
  out.salvaged = !intact;
  out.values.resize(records);
  std::memcpy(out.values.data(), buffer.data() + detail::kSpillHeaderBytes,
              records * sizeof(VpRtt));
  if (out.salvaged) {
    data_plane_instruments().spill_salvages.inc();
    obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kWarn,
                        "spill.salvage", 0,
                        {{"path", path}, {"records", records}});
  }
  return out;
}

}  // namespace anycast::census
