#include "anycast/census/greylist.hpp"

#include <algorithm>

#include "anycast/obs/journal.hpp"

namespace anycast::census {

void Greylist::count(net::ReplyKind kind) {
  switch (kind) {
    case net::ReplyKind::kAdminProhibited: ++admin_filtered_; break;
    case net::ReplyKind::kHostProhibited: ++host_prohibited_; break;
    case net::ReplyKind::kNetProhibited: ++net_prohibited_; break;
    default: break;
  }
}

bool Greylist::add(std::uint32_t slash24_index, net::ReplyKind kind) {
  const bool inserted = members_.emplace(slash24_index, kind).second;
  if (inserted) count(kind);
  return inserted;
}

void Greylist::merge(const Greylist& other) {
  const std::size_t before = members_.size();
  for (const auto& [member, kind] : other.members_) {
    if (members_.emplace(member, kind).second) count(kind);
  }
  // In the pipeline every merge happens on the reduction thread in VP
  // order, so the reduction-sequence order key is deterministic.
  if (obs::journal().recording()) {
    obs::journal().emit(obs::MetricClass::kSemantic, obs::Severity::kInfo,
                        "greylist.merge", obs::journal().next_order(),
                        {{"added", members_.size() - before},
                         {"from", other.members_.size()},
                         {"size", members_.size()}});
  }
}

std::vector<std::pair<std::uint32_t, net::ReplyKind>> Greylist::entries()
    const {
  std::vector<std::pair<std::uint32_t, net::ReplyKind>> out(members_.begin(),
                                                            members_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace anycast::census
