#include "anycast/census/greylist.hpp"

namespace anycast::census {

bool Greylist::add(std::uint32_t slash24_index, net::ReplyKind kind) {
  const bool inserted = members_.insert(slash24_index).second;
  if (inserted) {
    switch (kind) {
      case net::ReplyKind::kAdminProhibited: ++admin_filtered_; break;
      case net::ReplyKind::kHostProhibited: ++host_prohibited_; break;
      case net::ReplyKind::kNetProhibited: ++net_prohibited_; break;
      default: break;
    }
  }
  return inserted;
}

void Greylist::merge(const Greylist& other) {
  members_.insert(other.members_.begin(), other.members_.end());
  admin_filtered_ += other.admin_filtered_;
  host_prohibited_ += other.host_prohibited_;
  net_prohibited_ += other.net_prohibited_;
}

}  // namespace anycast::census
