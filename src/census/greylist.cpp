#include "anycast/census/greylist.hpp"

namespace anycast::census {

void Greylist::count(net::ReplyKind kind) {
  switch (kind) {
    case net::ReplyKind::kAdminProhibited: ++admin_filtered_; break;
    case net::ReplyKind::kHostProhibited: ++host_prohibited_; break;
    case net::ReplyKind::kNetProhibited: ++net_prohibited_; break;
    default: break;
  }
}

bool Greylist::add(std::uint32_t slash24_index, net::ReplyKind kind) {
  const bool inserted = members_.emplace(slash24_index, kind).second;
  if (inserted) count(kind);
  return inserted;
}

void Greylist::merge(const Greylist& other) {
  for (const auto& [member, kind] : other.members_) {
    if (members_.emplace(member, kind).second) count(kind);
  }
}

}  // namespace anycast::census
