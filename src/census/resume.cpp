#include "anycast/census/resume.hpp"

#include <chrono>
#include <string>
#include <utility>

#include "anycast/census/fastping.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace.hpp"

namespace anycast::census {
namespace {

/// Resume-path instruments. These are run-history dependent — how many
/// checkpoints exist decides reused vs rerun — so they are kTiming class:
/// real operational data, deliberately outside the deterministic
/// snapshot (see DESIGN.md §10).
struct ResumeInstruments {
  obs::Counter vps_reused = obs::metrics().counter(
      "resume_vps_reused", obs::MetricClass::kTiming,
      "VPs whose complete checkpoint was reused as-is");
  obs::Counter vps_rerun = obs::metrics().counter(
      "resume_vps_rerun", obs::MetricClass::kTiming,
      "VPs re-walked (checkpoint missing, partial, or mislabelled)");
  obs::Counter files_salvaged = obs::metrics().counter(
      "resume_files_salvaged", obs::MetricClass::kTiming,
      "damaged checkpoints partially recovered");
};

const ResumeInstruments& resume_instruments() {
  static const ResumeInstruments instruments;
  return instruments;
}

/// Rebuilds a FastPingResult from a checkpoint's observation stream. The
/// funnel counters are exact (one observation per probe, retries
/// included); duration is coarse because the binary format quantises
/// timestamps to 64 s.
FastPingResult result_from_observations(std::vector<Observation> observations,
                                        const Hitlist& hitlist,
                                        Greylist& greylist) {
  FastPingResult result;
  result.observations = std::move(observations);
  for (const Observation& obs : result.observations) {
    ++result.probes_sent;
    switch (obs.kind) {
      case net::ReplyKind::kEchoReply:
        ++result.echo_replies;
        break;
      case net::ReplyKind::kTimeout:
        ++result.timeouts;
        break;
      default:
        ++result.errors;
        if (obs.target_index < hitlist.size()) {
          greylist.add(
              hitlist[obs.target_index].representative.slash24_index(),
              obs.kind);
        }
        break;
    }
  }
  if (!result.observations.empty()) {
    result.duration_hours = result.observations.back().time_s / 3600.0;
  }
  return result;
}

/// The binary checkpoint quantises RTTs to 1/50 ms; run the live stream
/// through the codec so in-memory rows are byte-identical to what a later
/// collation of the on-disk state would produce.
std::vector<Observation> quantised(
    const std::vector<Observation>& observations) {
  auto decoded = decode_binary(encode_binary(observations));
  return decoded.has_value() ? std::move(*decoded)
                             : std::vector<Observation>{};
}

/// One VP's recovered-or-reprobed walk: the per-VP task of a resume pass.
struct VpWork {
  bool ran = false;       // false: skipped by the availability coin
  bool reused = false;    // complete checkpoint kept as-is
  bool salvaged = false;  // damaged checkpoint partially recovered
  FastPingResult result;
  Greylist greylist;               // private; merged in VP order
  std::vector<TargetRtt> fragment; // per-target minima, merged in VP order
};

/// The whole resume flow, parameterized over the matrix builder and
/// report type (see run_census_reduce in census.cpp): both data planes
/// make identical recovery decisions in identical order, so everything
/// but the matrix layout — report counters, summary, checkpoint files,
/// journal stream, semantic metrics — is byte-identical between them.
template <typename Builder, typename Report>
void resume_census_reduce(const net::SimulatedInternet& internet,
                          std::span<const net::VantagePoint> vps,
                          const Hitlist& hitlist, Greylist& blacklist,
                          const FastPingConfig& config,
                          const std::filesystem::path& dir,
                          std::uint32_t census_id,
                          const net::FaultPlan* faults,
                          concurrency::ThreadPool* pool, Builder& builder,
                          Report& report) {
  std::filesystem::create_directories(dir);
  // Adoption point: per-VP recovery spans on worker threads attach here.
  const obs::Span resume_span(obs::Span::Root::kAdoptionPoint,
                              "resume_census");
  auto& out = report.output;
  out.summary.vp_duration_hours.reserve(vps.size());
  out.summary.vp_outcomes.reserve(vps.size());

  // Map: each available VP reuses its checkpoint or re-walks, touching
  // only its own file — tasks are independent, so the pool runs them on
  // every lane. All greylist feeding happens into the task's private list.
  const auto recover_vp = [&](std::size_t i) -> VpWork {
    VpWork work;
    const net::VantagePoint& vp = vps[i];
    if (!vp_available(vp, config)) return work;
    work.ran = true;
    const obs::Span recover_span("vp_recover", vp.id);

    const std::filesystem::path path =
        census_checkpoint_path(dir, census_id, vp.id);
    auto checkpoint = salvage_census_file(path);
    work.salvaged = checkpoint.has_value() && checkpoint->salvaged;
    work.reused = checkpoint.has_value() && checkpoint->header.complete() &&
                  checkpoint->header.vp_id == vp.id &&
                  checkpoint->header.census_id == census_id;
    if (work.reused) {
      work.result = result_from_observations(
          std::move(checkpoint->observations), hitlist, work.greylist);
    } else {
      // Missing, incomplete, salvaged, or mislabelled: pay for this VP
      // again. The walk is deterministic in (seed, vp), so the rewritten
      // checkpoint matches what an uninterrupted census would have saved.
      const auto walk_start = std::chrono::steady_clock::now();
      work.result = run_fastping(internet, vp, hitlist, blacklist,
                                 work.greylist, config, faults);
      obs::LatencyHisto::get("census_walk_us", "us",
                             "wall-clock per-VP census walk latency")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - walk_start)
                  .count()));
      CensusFileHeader header{vp.id, census_id, 0};
      if (work.result.outcome == VpOutcome::kCompleted) {
        header.flags |= kCensusFileComplete;
      }
      write_census_file(path, header, work.result.observations);
      work.result.observations = quantised(work.result.observations);
    }
    // The reuse-or-rerun decision is run-history dependent, so it is a
    // kTiming event — real operational data, outside the semantic
    // contract, exactly like the resume_* metrics below.
    obs::journal().emit(obs::MetricClass::kTiming,
                        work.salvaged ? obs::Severity::kWarn
                                      : obs::Severity::kInfo,
                        "resume.vp", vp.id,
                        {{"vp", vp.id},
                         {"reused", work.reused},
                         {"salvaged", work.salvaged}});
    // Reused and rerun walks alike flush through the same chokepoint as a
    // live census (RTTs quantised either way), so the semantic snapshot
    // of a resumed census matches its uninterrupted twin byte for byte.
    flush_walk_metrics(work.result, vp.id);
    work.fragment = vp_row_fragment(work.result, hitlist.size());
    // The reduction reads only the counters, the outcome, and the
    // fragment; drop the raw stream so the retained state per VP is the
    // compact fragment, not O(hitlist) observations held for every VP.
    work.result.observations = {};
    return work;
  };
  std::vector<VpWork> done;
  if (pool != nullptr && pool->thread_count() > 1) {
    done = pool->parallel_map(vps.size(), recover_vp);
  } else {
    done.reserve(vps.size());
    for (std::size_t i = 0; i < vps.size(); ++i) {
      done.push_back(recover_vp(i));
    }
  }

  // Reduce in VP order on this thread (see run_census): byte-identical
  // output for any thread count, including the resumed checkpoints.
  Greylist census_greylist;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const net::VantagePoint& vp = vps[i];
    VpWork& work = done[i];
    if (!work.ran) {
      out.summary.vp_outcomes.push_back({vp.id, VpOutcome::kSkipped});
      ++report.vps_skipped;
      continue;
    }
    ++out.summary.active_vps;
    if (work.salvaged) ++report.files_salvaged;
    if (work.reused) {
      ++report.vps_reused;
    } else {
      ++report.vps_rerun;
    }

    const FastPingResult& result = work.result;
    out.summary.probes_sent += result.probes_sent;
    out.summary.echo_replies += result.echo_replies;
    out.summary.errors += result.errors;
    out.summary.timeouts += result.timeouts;
    out.summary.injected_timeouts += result.injected_timeouts;
    out.summary.retry_probes += result.retry_probes;
    out.summary.retry_recovered += result.retry_recovered;
    out.summary.vp_duration_hours.push_back(result.duration_hours);
    const VpOutcome outcome = census_vp_outcome(result, config);
    out.summary.vp_outcomes.push_back({vp.id, outcome});
    census_greylist.merge(work.greylist);
    if (outcome == VpOutcome::kQuarantined) continue;
    builder.add_fragment(static_cast<std::uint16_t>(vp.id),
                         std::move(work.fragment));
  }
  out.data = builder.build();
  out.summary.greylist_new = census_greylist.size();
  blacklist.merge(census_greylist);
  flush_census_summary_metrics(out.summary);
  const ResumeInstruments& in = resume_instruments();
  in.vps_reused.add(report.vps_reused);
  in.vps_rerun.add(report.vps_rerun);
  in.files_salvaged.add(report.files_salvaged);
}

}  // namespace

std::filesystem::path census_checkpoint_path(const std::filesystem::path& dir,
                                             std::uint32_t census_id,
                                             std::uint32_t vp_id) {
  return dir / ("census" + std::to_string(census_id) + "_vp" +
                std::to_string(vp_id) + ".anc");
}

ResumeReport resume_census(const net::SimulatedInternet& internet,
                           std::span<const net::VantagePoint> vps,
                           const Hitlist& hitlist, Greylist& blacklist,
                           const FastPingConfig& config,
                           const std::filesystem::path& dir,
                           std::uint32_t census_id,
                           const net::FaultPlan* faults,
                           concurrency::ThreadPool* pool) {
  ResumeReport report;
  CensusMatrixBuilder builder(hitlist.size());
  resume_census_reduce(internet, vps, hitlist, blacklist, config, dir,
                       census_id, faults, pool, builder, report);
  return report;
}

ShardedResumeReport resume_census_sharded(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, const Hitlist& hitlist,
    Greylist& blacklist, const FastPingConfig& config,
    const std::filesystem::path& dir, std::uint32_t census_id,
    const DataPlaneConfig& plane, const net::FaultPlan* faults,
    concurrency::ThreadPool* pool) {
  ShardedResumeReport report;
  ShardedCensusMatrixBuilder builder(hitlist.size(), plane);
  resume_census_reduce(internet, vps, hitlist, blacklist, config, dir,
                       census_id, faults, pool, builder, report);
  return report;
}

}  // namespace anycast::census
