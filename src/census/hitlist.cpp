#include "anycast/census/hitlist.hpp"

#include "anycast/net/internet.hpp"

namespace anycast::census {

Hitlist Hitlist::from_world(const net::SimulatedInternet& internet) {
  std::vector<HitlistEntry> entries;
  entries.reserve(internet.targets().size());
  for (const net::TargetInfo& info : internet.targets()) {
    HitlistEntry entry;
    // Representative: host .1 of the /24 for live space; an arbitrary host
    // for never-responding /24s (as the provider's hitlist does).
    entry.representative =
        ipaddr::IPv4Address::from_slash24_index(info.slash24_index, 1);
    entry.score =
        info.kind == net::TargetInfo::Kind::kDead ? std::int8_t{-2}
                                                  : std::int8_t{3};
    entries.push_back(entry);
  }
  return Hitlist(std::move(entries));
}

Hitlist Hitlist::without_dead() const {
  std::vector<HitlistEntry> kept;
  kept.reserve(entries_.size());
  for (const HitlistEntry& entry : entries_) {
    if (entry.score > -2) kept.push_back(entry);
  }
  return Hitlist(std::move(kept));
}

}  // namespace anycast::census
