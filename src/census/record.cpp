#include "anycast/census/record.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstring>

#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

constexpr std::uint32_t kMagic = 0x414E4331;  // "ANC1"

/// Record-codec instruments. kTiming: how many damaged records a run
/// sees depends on which checkpoints exist and what corrupted them, not
/// on the pipeline's semantics.
struct RecordInstruments {
  obs::Counter dropped_oversized = obs::metrics().counter(
      "record_dropped_oversized", obs::MetricClass::kTiming,
      "records dropped at encode: target index beyond the 24-bit format");
};

const RecordInstruments& record_instruments() {
  static const RecordInstruments instruments;
  return instruments;
}

std::int16_t encode_ticks(double rtt_ms) {
  const double ticks = std::round(rtt_ms * 50.0);
  if (ticks >= 32767.0) return 32767;
  if (ticks < 1.0) return 1;  // sub-20us RTT still counts as a reply
  return static_cast<std::int16_t>(ticks);
}

std::int16_t encode_delay(const Observation& obs) {
  switch (obs.kind) {
    case net::ReplyKind::kEchoReply:
      // 1/50 ms units: 0.02 ms quantisation with range up to ~655 ms,
      // comfortably above the analysis's max useful RTT (600 ms disks
      // already cover most of the planet).
      return encode_ticks(obs.rtt_ms);
    case net::ReplyKind::kTimeout:
      return -1;
    case net::ReplyKind::kNetProhibited:
      return -9;
    case net::ReplyKind::kHostProhibited:
      return -10;
    case net::ReplyKind::kAdminProhibited:
      return -13;
  }
  return -1;
}

void decode_delay(std::int16_t delay, Observation& obs) {
  if (delay > 0) {
    obs.kind = net::ReplyKind::kEchoReply;
    obs.rtt_ms = delay / 50.0;
    return;
  }
  obs.rtt_ms = 0.0;
  switch (delay) {
    case -9: obs.kind = net::ReplyKind::kNetProhibited; break;
    case -10: obs.kind = net::ReplyKind::kHostProhibited; break;
    case -13: obs.kind = net::ReplyKind::kAdminProhibited; break;
    default: obs.kind = net::ReplyKind::kTimeout; break;
  }
}

int reply_code(net::ReplyKind kind) {
  switch (kind) {
    case net::ReplyKind::kEchoReply: return 0;
    case net::ReplyKind::kTimeout: return -1;
    case net::ReplyKind::kNetProhibited: return 9;
    case net::ReplyKind::kHostProhibited: return 10;
    case net::ReplyKind::kAdminProhibited: return 13;
  }
  return -1;
}

net::ReplyKind kind_from_code(int code) {
  switch (code) {
    case 0: return net::ReplyKind::kEchoReply;
    case 9: return net::ReplyKind::kNetProhibited;
    case 10: return net::ReplyKind::kHostProhibited;
    case 13: return net::ReplyKind::kAdminProhibited;
    default: return net::ReplyKind::kTimeout;
  }
}

}  // namespace

std::string encode_textual(std::span<const Observation> observations) {
  std::string out;
  out.reserve(observations.size() * 40);
  char buffer[96];
  for (const Observation& obs : observations) {
    // Census 0's wasteful layout: full-precision floats plus a redundant
    // human-readable reply column (Tab. 1's 270 MB/host).
    const char* kind_name = "echo-reply";
    switch (obs.kind) {
      case net::ReplyKind::kTimeout: kind_name = "timeout"; break;
      case net::ReplyKind::kNetProhibited: kind_name = "net-prohibited"; break;
      case net::ReplyKind::kHostProhibited:
        kind_name = "host-prohibited";
        break;
      case net::ReplyKind::kAdminProhibited:
        kind_name = "admin-prohibited";
        break;
      default: break;
    }
    const int written = std::snprintf(
        buffer, sizeof buffer, "%.9f,%u,%.9f,%d,%s\n", obs.time_s,
        obs.target_index, obs.rtt_ms, reply_code(obs.kind), kind_name);
    out.append(buffer, static_cast<std::size_t>(written));
  }
  return out;
}

std::vector<Observation> decode_textual(const std::string& text) {
  std::vector<Observation> out;
  const char* cursor = text.data();
  const char* const end = text.data() + text.size();
  while (cursor < end) {
    Observation obs;
    char* next = nullptr;
    obs.time_s = std::strtod(cursor, &next);
    if (next == cursor || next >= end || *next != ',') break;
    cursor = next + 1;
    unsigned long target = std::strtoul(cursor, &next, 10);
    if (next == cursor || next >= end || *next != ',') break;
    obs.target_index = static_cast<std::uint32_t>(target);
    cursor = next + 1;
    obs.rtt_ms = std::strtod(cursor, &next);
    if (next == cursor || next >= end || *next != ',') break;
    cursor = next + 1;
    const long code = std::strtol(cursor, &next, 10);
    obs.kind = kind_from_code(static_cast<int>(code));
    out.push_back(obs);
    cursor = next;
    // Skip the redundant trailing columns up to end of line.
    while (cursor < end && *cursor != '\n') ++cursor;
    while (cursor < end && (*cursor == '\n' || *cursor == '\r')) ++cursor;
  }
  return out;
}

std::vector<std::uint8_t> encode_binary(
    std::span<const Observation> observations,
    std::size_t* dropped_oversized) {
  // A target index needing more than the format's 24 bits cannot come
  // from a real hitlist (~14.7M routed /24s < 2^24): drop the corrupted
  // record and account for it, rather than wrapping the index into some
  // unrelated target's row.
  std::size_t dropped = 0;
  for (const Observation& obs : observations) {
    if (obs.target_index > 0xFFFFFF) ++dropped;
  }
  if (dropped_oversized != nullptr) *dropped_oversized = dropped;
  const std::size_t kept = observations.size() - dropped;
  // Register the instrument on every encode; count and journal only on
  // actual drops, so a corrupted record is visible in the flight
  // recorder, not just in an out-param most callers ignore.
  const RecordInstruments& in = record_instruments();
  if (dropped != 0) {
    in.dropped_oversized.add(dropped);
    obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kWarn,
                        "record.dropped_oversized", 0,
                        {{"dropped", dropped}, {"kept", kept}});
  }

  std::vector<std::uint8_t> out;
  out.reserve(8 + kept * binary_bytes_per_observation());
  const auto put32 = [&out](std::uint32_t value) {
    out.push_back(static_cast<std::uint8_t>(value));
    out.push_back(static_cast<std::uint8_t>(value >> 8));
    out.push_back(static_cast<std::uint8_t>(value >> 16));
    out.push_back(static_cast<std::uint8_t>(value >> 24));
  };
  put32(kMagic);
  put32(static_cast<std::uint32_t>(kept));
  for (const Observation& obs : observations) {
    if (obs.target_index > 0xFFFFFF) continue;
    const auto delay = static_cast<std::uint16_t>(encode_delay(obs));
    out.push_back(static_cast<std::uint8_t>(delay));
    out.push_back(static_cast<std::uint8_t>(delay >> 8));
    // 24-bit target index, 8-bit coarse time offset (in 64 s units,
    // saturating): enough to reconstruct probing order at census scale.
    const auto offset64 = static_cast<std::uint32_t>(
        std::min(255.0, std::max(0.0, obs.time_s / 64.0)));
    put32(obs.target_index | (offset64 << 24));
  }
  return out;
}

namespace {

std::uint32_t load32_at(std::span<const std::uint8_t> bytes,
                        std::size_t at) {
  return static_cast<std::uint32_t>(bytes[at]) |
         (static_cast<std::uint32_t>(bytes[at + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[at + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[at + 3]) << 24);
}

std::vector<Observation> decode_records(std::span<const std::uint8_t> bytes,
                                        std::size_t count) {
  std::vector<Observation> out;
  out.reserve(count);
  std::size_t at = 8;
  for (std::size_t i = 0; i < count; ++i, at += 6) {
    Observation obs;
    const auto delay = static_cast<std::int16_t>(
        static_cast<std::uint16_t>(bytes[at]) |
        (static_cast<std::uint16_t>(bytes[at + 1]) << 8));
    decode_delay(delay, obs);
    const std::uint32_t packed = load32_at(bytes, at + 2);
    obs.target_index = packed & 0xFFFFFF;
    obs.time_s = (packed >> 24) * 64.0;
    out.push_back(obs);
  }
  return out;
}

}  // namespace

std::optional<std::vector<Observation>> decode_binary(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8 || load32_at(bytes, 0) != kMagic) return std::nullopt;
  const std::uint32_t count = load32_at(bytes, 4);
  if (bytes.size() != 8 + static_cast<std::size_t>(count) *
                              binary_bytes_per_observation()) {
    return std::nullopt;
  }
  return decode_records(bytes, count);
}

std::optional<std::vector<Observation>> decode_binary_prefix(
    std::span<const std::uint8_t> bytes, std::size_t* declared_count) {
  if (bytes.size() < 8 || load32_at(bytes, 0) != kMagic) return std::nullopt;
  const std::uint32_t declared = load32_at(bytes, 4);
  if (declared_count != nullptr) *declared_count = declared;
  const std::size_t available =
      (bytes.size() - 8) / binary_bytes_per_observation();
  return decode_records(bytes,
                        std::min<std::size_t>(declared, available));
}

std::size_t textual_bytes(std::span<const Observation> observations) {
  return encode_textual(observations).size();
}

double quantised_rtt_ms(double rtt_ms) {
  return encode_ticks(rtt_ms) / 50.0;
}

}  // namespace anycast::census
