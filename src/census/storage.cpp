#include "anycast/census/storage.hpp"

#include <array>
#include <cstdio>
#include <stdexcept>

#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::census {
namespace {

/// Checkpoint I/O instruments. All kTiming class: what gets written,
/// read, or salvaged depends on the run's history (which checkpoints
/// already exist), not on the pipeline's semantics.
struct StorageInstruments {
  obs::Counter writes = obs::metrics().counter(
      "checkpoint_writes", obs::MetricClass::kTiming,
      "census checkpoint files published (atomic tmp+rename)");
  obs::Counter write_bytes = obs::metrics().counter(
      "checkpoint_write_bytes", obs::MetricClass::kTiming,
      "bytes written to checkpoints, header and trailer included");
  obs::Counter reads_ok = obs::metrics().counter(
      "checkpoint_reads_ok", obs::MetricClass::kTiming,
      "checkpoints read intact (magic, CRC, and codec all good)");
  obs::Counter read_failures = obs::metrics().counter(
      "checkpoint_read_failures", obs::MetricClass::kTiming,
      "strict checkpoint reads that failed (missing or damaged)");
  obs::Counter salvages = obs::metrics().counter(
      "checkpoint_salvages", obs::MetricClass::kTiming,
      "damaged checkpoints recovered as a valid record prefix");
};

const StorageInstruments& storage_instruments() {
  static const StorageInstruments instruments;
  return instruments;
}

constexpr std::uint32_t kFileMagicV1 = 0x46434E41;  // "ANCF" (no trailer)
constexpr std::uint32_t kFileMagicV2 = 0x32434E41;  // "ANC2" (CRC trailer)
constexpr std::size_t kHeaderBytesV1 = 12;  // magic, vp, census
constexpr std::size_t kHeaderBytesV2 = 16;  // magic, vp, census, flags
constexpr std::size_t kTrailerBytes = 4;    // CRC32 of everything before

void append32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t load32(const std::uint8_t* at) {
  return static_cast<std::uint32_t>(at[0]) |
         (static_cast<std::uint32_t>(at[1]) << 8) |
         (static_cast<std::uint32_t>(at[2]) << 16) |
         (static_cast<std::uint32_t>(at[3]) << 24);
}

/// RAII stdio handle: good enough for bulk binary I/O without iostream's
/// locale machinery on the hot path.
struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::filesystem::path& path, const char* mode)
      : handle(std::fopen(path.string().c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

std::optional<std::vector<std::uint8_t>> slurp(
    const std::filesystem::path& path) {
  const File file(path, "rb");
  if (file.handle == nullptr) return std::nullopt;
  std::vector<std::uint8_t> buffer;
  std::uint8_t chunk[64 * 1024];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file.handle)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  return buffer;
}

/// Parses the version-dependent header. Returns the payload offset, or 0
/// when the magic is unknown or the buffer too short for its header.
std::size_t parse_header(const std::vector<std::uint8_t>& buffer,
                         CensusFileHeader& header, bool& has_trailer) {
  if (buffer.size() >= kHeaderBytesV2 &&
      load32(buffer.data()) == kFileMagicV2) {
    header.vp_id = load32(buffer.data() + 4);
    header.census_id = load32(buffer.data() + 8);
    header.flags = load32(buffer.data() + 12);
    has_trailer = true;
    return kHeaderBytesV2;
  }
  if (buffer.size() >= kHeaderBytesV1 &&
      load32(buffer.data()) == kFileMagicV1) {
    header.vp_id = load32(buffer.data() + 4);
    header.census_id = load32(buffer.data() + 8);
    header.flags = kCensusFileComplete;  // v1 had no notion of partial files
    has_trailer = false;
    return kHeaderBytesV1;
  }
  return 0;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void write_census_file(const std::filesystem::path& path,
                       const CensusFileHeader& header,
                       std::span<const Observation> observations) {
  std::vector<std::uint8_t> buffer;
  buffer.reserve(kHeaderBytesV2 +
                 observations.size() * binary_bytes_per_observation() + 8 +
                 kTrailerBytes);
  append32(buffer, kFileMagicV2);
  append32(buffer, header.vp_id);
  append32(buffer, header.census_id);
  append32(buffer, header.flags);
  const auto payload = encode_binary(observations);
  buffer.insert(buffer.end(), payload.begin(), payload.end());
  append32(buffer, crc32(buffer));

  // Atomic publication: a crash mid-write leaves at worst a stale .tmp,
  // never a half-written checkpoint under the real name.
  std::filesystem::path tmp = path;
  tmp += ".tmp";
  {
    const File file(tmp, "wb");
    if (file.handle == nullptr) {
      throw std::runtime_error("cannot open census file for writing: " +
                               tmp.string());
    }
    if (std::fwrite(buffer.data(), 1, buffer.size(), file.handle) !=
        buffer.size()) {
      throw std::runtime_error("short write on census file: " + tmp.string());
    }
    if (std::fflush(file.handle) != 0) {
      throw std::runtime_error("flush failed on census file: " +
                               tmp.string());
    }
  }
  std::filesystem::rename(tmp, path);
  storage_instruments().writes.inc();
  storage_instruments().write_bytes.add(buffer.size());
  // kTiming: which checkpoints get (re)written depends on run history.
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kInfo,
                      "checkpoint.write", header.vp_id,
                      {{"vp", header.vp_id},
                       {"census", header.census_id},
                       {"bytes", buffer.size()},
                       {"complete", (header.flags & kCensusFileComplete) != 0}});
}

std::optional<CensusFile> read_census_file(
    const std::filesystem::path& path) {
  const auto buffer = slurp(path);
  if (!buffer.has_value()) return std::nullopt;
  CensusFile out;
  bool has_trailer = false;
  const std::size_t payload_at = parse_header(*buffer, out.header,
                                              has_trailer);
  if (payload_at == 0) return std::nullopt;
  std::size_t payload_end = buffer->size();
  if (has_trailer) {
    if (buffer->size() < payload_at + kTrailerBytes) return std::nullopt;
    payload_end -= kTrailerBytes;
    const std::uint32_t stored = load32(buffer->data() + payload_end);
    const std::uint32_t actual =
        crc32(std::span<const std::uint8_t>(buffer->data(), payload_end));
    if (stored != actual) return std::nullopt;
  }
  auto decoded = decode_binary(std::span<const std::uint8_t>(
      buffer->data() + payload_at, payload_end - payload_at));
  if (!decoded.has_value()) return std::nullopt;
  out.observations = std::move(*decoded);
  storage_instruments().reads_ok.inc();
  return out;
}

std::optional<CensusFile> salvage_census_file(
    const std::filesystem::path& path) {
  auto strict = read_census_file(path);
  if (strict.has_value()) return strict;
  storage_instruments().read_failures.inc();

  const auto buffer = slurp(path);
  if (!buffer.has_value()) return std::nullopt;
  CensusFile out;
  bool has_trailer = false;
  const std::size_t payload_at = parse_header(*buffer, out.header,
                                              has_trailer);
  if (payload_at == 0) return std::nullopt;
  // Whatever follows the header is a genuine record-stream prefix: the
  // trailer only ever exists at the very end of an intact file, so a
  // truncated file lost it along with the tail. decode_binary_prefix caps
  // at the declared count, which also drops a dangling trailer when only
  // the payload was damaged.
  auto decoded = decode_binary_prefix(std::span<const std::uint8_t>(
      buffer->data() + payload_at, buffer->size() - payload_at));
  if (!decoded.has_value()) return std::nullopt;
  out.observations = std::move(*decoded);
  out.salvaged = true;
  // A salvaged checkpoint is by definition not a complete walk.
  out.header.flags &= ~kCensusFileComplete;
  storage_instruments().salvages.inc();
  obs::journal().emit(obs::MetricClass::kTiming, obs::Severity::kWarn,
                      "checkpoint.salvage", out.header.vp_id,
                      {{"vp", out.header.vp_id},
                       {"census", out.header.census_id},
                       {"records", out.observations.size()}});
  return out;
}

namespace {

/// The collation walk, parameterized over the matrix builder so the
/// monolithic and sharded planes share one code path (identical file
/// order, salvage decisions, and accounting).
template <typename Builder>
auto collate_into(Builder& builder,
                  std::span<const std::filesystem::path> paths,
                  std::size_t target_count, CollateStats* stats,
                  bool salvage) {
  CollateStats local;
  for (const std::filesystem::path& path : paths) {
    const auto file =
        salvage ? salvage_census_file(path) : read_census_file(path);
    if (!file.has_value()) {
      ++local.files_skipped;
      continue;
    }
    if (file->salvaged) {
      ++local.files_salvaged;
    } else {
      ++local.files_ok;
    }
    // One upload becomes one row fragment; the builder places all
    // fragments into the contiguous matrix in two passes.
    std::size_t echo_in_range = 0;
    builder.add_fragment(
        static_cast<std::uint16_t>(file->header.vp_id),
        vp_row_fragment(std::span<const Observation>(file->observations),
                        target_count, &echo_in_range));
    local.observations += echo_in_range;
  }
  if (stats != nullptr) *stats = local;
  return builder.build();
}

}  // namespace

CensusMatrix collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    CollateStats* stats, bool salvage) {
  CensusMatrixBuilder builder(target_count);
  return collate_into(builder, paths, target_count, stats, salvage);
}

ShardedCensusMatrix collate_census_files_sharded(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    const DataPlaneConfig& plane, CollateStats* stats, bool salvage) {
  ShardedCensusMatrixBuilder builder(target_count, plane);
  return collate_into(builder, paths, target_count, stats, salvage);
}

CensusMatrix collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    std::size_t* skipped_files) {
  CollateStats stats;
  CensusMatrix data =
      collate_census_files(paths, target_count, &stats, /*salvage=*/false);
  if (skipped_files != nullptr) *skipped_files = stats.files_skipped;
  return data;
}

}  // namespace anycast::census
