#include "anycast/census/storage.hpp"

#include <cstdio>
#include <stdexcept>

namespace anycast::census {
namespace {

constexpr std::uint32_t kFileMagic = 0x46434E41;  // "ANCF"

void append32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t load32(const std::uint8_t* at) {
  return static_cast<std::uint32_t>(at[0]) |
         (static_cast<std::uint32_t>(at[1]) << 8) |
         (static_cast<std::uint32_t>(at[2]) << 16) |
         (static_cast<std::uint32_t>(at[3]) << 24);
}

/// RAII stdio handle: good enough for bulk binary I/O without iostream's
/// locale machinery on the hot path.
struct File {
  std::FILE* handle = nullptr;
  explicit File(const std::filesystem::path& path, const char* mode)
      : handle(std::fopen(path.string().c_str(), mode)) {}
  ~File() {
    if (handle != nullptr) std::fclose(handle);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

}  // namespace

void write_census_file(const std::filesystem::path& path,
                       const CensusFileHeader& header,
                       std::span<const Observation> observations) {
  std::vector<std::uint8_t> buffer;
  buffer.reserve(12 + observations.size() * binary_bytes_per_observation() +
                 8);
  append32(buffer, kFileMagic);
  append32(buffer, header.vp_id);
  append32(buffer, header.census_id);
  const auto payload = encode_binary(observations);
  buffer.insert(buffer.end(), payload.begin(), payload.end());

  const File file(path, "wb");
  if (file.handle == nullptr) {
    throw std::runtime_error("cannot open census file for writing: " +
                             path.string());
  }
  if (std::fwrite(buffer.data(), 1, buffer.size(), file.handle) !=
      buffer.size()) {
    throw std::runtime_error("short write on census file: " + path.string());
  }
}

std::optional<CensusFile> read_census_file(
    const std::filesystem::path& path) {
  const File file(path, "rb");
  if (file.handle == nullptr) return std::nullopt;
  std::vector<std::uint8_t> buffer;
  std::uint8_t chunk[64 * 1024];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, file.handle)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
  if (buffer.size() < 12 || load32(buffer.data()) != kFileMagic) {
    return std::nullopt;
  }
  CensusFile out;
  out.header.vp_id = load32(buffer.data() + 4);
  out.header.census_id = load32(buffer.data() + 8);
  const std::span<const std::uint8_t> payload(buffer.data() + 12,
                                              buffer.size() - 12);
  auto decoded = decode_binary(payload);
  if (!decoded.has_value()) return std::nullopt;
  out.observations = std::move(*decoded);
  return out;
}

CensusData collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    std::size_t* skipped_files) {
  CensusData data(target_count);
  std::size_t skipped = 0;
  for (const std::filesystem::path& path : paths) {
    const auto file = read_census_file(path);
    if (!file.has_value()) {
      ++skipped;
      continue;
    }
    for (const Observation& obs : file->observations) {
      if (obs.kind != net::ReplyKind::kEchoReply) continue;
      if (obs.target_index >= target_count) continue;  // damaged record
      data.record(obs.target_index,
                  static_cast<std::uint16_t>(file->header.vp_id),
                  static_cast<float>(obs.rtt_ms));
    }
  }
  if (skipped_files != nullptr) *skipped_files = skipped;
  return data;
}

}  // namespace anycast::census
