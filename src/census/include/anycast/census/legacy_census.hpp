// Legacy row-of-vectors census container — TEST/BENCH ORACLE ONLY.
//
// This is the pre-CSR `CensusData` layout (one heap-allocated vp-sorted
// vector per hitlist target), kept verbatim so tests can cross-check
// `CensusMatrix`/`CensusMatrixBuilder` against the original semantics and
// so the columnar bench can measure the layout win instead of asserting
// it. Nothing in the library links against this header; new code must use
// `CensusMatrix`.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "anycast/census/census.hpp"

namespace anycast::census {

class LegacyCensusData {
 public:
  LegacyCensusData() = default;
  explicit LegacyCensusData(std::size_t target_count) : rows_(target_count) {}

  /// Records a measurement, keeping the minimum per (target, vp).
  void record(std::uint32_t target_index, std::uint16_t vp, float rtt_ms) {
    auto& row = rows_[target_index];
    // Fast path: VP results are reduced in ascending id order, so nearly
    // every record appends past the current maximum.
    if (row.empty() || row.back().vp < vp) {
      row.push_back(VpRtt{vp, rtt_ms});
      return;
    }
    if (row.back().vp == vp) {
      row.back().rtt_ms = std::min(row.back().rtt_ms, rtt_ms);
      return;
    }
    const auto it = std::lower_bound(
        row.begin(), row.end(), vp,
        [](const VpRtt& entry, std::uint16_t v) { return entry.vp < v; });
    if (it != row.end() && it->vp == vp) {
      it->rtt_ms = std::min(it->rtt_ms, rtt_ms);
    } else {
      row.insert(it, VpRtt{vp, rtt_ms});
    }
  }

  /// Records one VP's whole row fragment (per-target minima, any order).
  void record_fragment(std::uint16_t vp,
                       std::span<const TargetRtt> fragment) {
    for (const TargetRtt& entry : fragment) {
      record(entry.target_index, vp, entry.rtt_ms);
    }
  }

  [[nodiscard]] std::span<const VpRtt> measurements(
      std::uint32_t target_index) const {
    return rows_[target_index];
  }
  [[nodiscard]] std::size_t target_count() const { return rows_.size(); }

  [[nodiscard]] std::size_t responsive_targets(
      std::size_t min_vps = 1) const {
    std::size_t count = 0;
    for (const auto& row : rows_) {
      if (row.size() >= min_vps) ++count;
    }
    return count;
  }

  /// Point-wise minimum with `other` (same hitlist required).
  void combine_min(const LegacyCensusData& other) {
    if (rows_.size() < other.rows_.size()) rows_.resize(other.rows_.size());
    std::vector<VpRtt> merged;  // reused across rows
    for (std::size_t t = 0; t < other.rows_.size(); ++t) {
      const auto& theirs = other.rows_[t];
      auto& ours = rows_[t];
      if (theirs.empty()) continue;
      if (ours.empty()) {
        ours = theirs;
        continue;
      }
      merged.clear();
      merged.reserve(ours.size() + theirs.size());
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < ours.size() && j < theirs.size()) {
        if (ours[i].vp < theirs[j].vp) {
          merged.push_back(ours[i++]);
        } else if (theirs[j].vp < ours[i].vp) {
          merged.push_back(theirs[j++]);
        } else {
          merged.push_back(
              VpRtt{ours[i].vp, std::min(ours[i].rtt_ms, theirs[j].rtt_ms)});
          ++i;
          ++j;
        }
      }
      for (; i < ours.size(); ++i) merged.push_back(ours[i]);
      for (; j < theirs.size(); ++j) merged.push_back(theirs[j]);
      ours.assign(merged.begin(), merged.end());
    }
  }

 private:
  std::vector<std::vector<VpRtt>> rows_;
};

}  // namespace anycast::census
