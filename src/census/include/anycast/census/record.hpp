// Census record formats: textual CSV vs stripped-down binary.
//
// Tab. 1: the first census was logged as CSV (270 MB/node, 79 GB total,
// >3 days to analyse, partly due to disk fragmentation); later censuses use
// a binary format carrying only a timestamp offset, the delay, and an ICMP
// flag whose *sign* encodes the greylist return codes (9, 10, 13) — about
// 20 MB/node, 6 GB/census, 3 h analysis. Both formats are implemented so
// the bench can regenerate the table's size ratios from identical data.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "anycast/net/types.hpp"

namespace anycast::census {

/// One probe outcome as the prober emits it.
struct Observation {
  std::uint32_t target_index = 0;  // dense hitlist index
  double time_s = 0.0;             // seconds since census start
  net::ReplyKind kind = net::ReplyKind::kTimeout;
  double rtt_ms = 0.0;             // valid when kind == kEchoReply
};

/// CSV: "time_s,target_index,rtt_ms,code\n" with full floating precision —
/// the wasteful format of Census 0.
std::string encode_textual(std::span<const Observation> observations);
std::vector<Observation> decode_textual(const std::string& text);

/// Binary: 8-byte header (magic + count) then 6 bytes per observation:
///   int16  delay field — RTT in 1/100 ms when positive; when negative,
///          the ICMP code with flipped sign (-9/-10/-13), or -1 = timeout;
///   uint32 target index : 24 bits | time offset in ~seconds : 8 bits.
/// RTTs above int16 range saturate (anything that far is a useless disk).
///
/// The 24-bit target field caps the format at 2^24 (~16.8M) targets — the
/// whole routed IPv4 space holds ~14.7M /24s, so a valid hitlist index
/// always fits. An index >= 2^24 can therefore only be a corrupted
/// observation: it is DROPPED from the output (never silently wrapped
/// into some other target's row) and counted into `*dropped_oversized`
/// when that is non-null. The header count reflects the records actually
/// written.
std::vector<std::uint8_t> encode_binary(
    std::span<const Observation> observations,
    std::size_t* dropped_oversized = nullptr);

/// Decodes a binary buffer. Returns nullopt on a malformed buffer
/// (bad magic, truncated payload).
std::optional<std::vector<Observation>> decode_binary(
    std::span<const std::uint8_t> bytes);

/// Salvage decoder: recovers as many complete records as the buffer
/// actually holds, capped by the declared count — the valid prefix of a
/// truncated upload instead of nothing. Returns nullopt only when even
/// the 8-byte payload header is missing or carries the wrong magic. When
/// non-null, `declared_count` receives the header's record count so
/// callers can tell how much was lost.
std::optional<std::vector<Observation>> decode_binary_prefix(
    std::span<const std::uint8_t> bytes,
    std::size_t* declared_count = nullptr);

/// Bytes per observation in each format (for the Tab. 1 size accounting).
std::size_t textual_bytes(std::span<const Observation> observations);
constexpr std::size_t binary_bytes_per_observation() { return 6; }

/// The RTT an echo observation carries after a round trip through the
/// binary codec (1/50 ms ticks, clamped to [1, 32767]). Metrics observed
/// through this on a live stream match a checkpoint replay exactly, so
/// RTT histograms stay byte-identical across crash+resume.
double quantised_rtt_ms(double rtt_ms);

}  // namespace anycast::census
