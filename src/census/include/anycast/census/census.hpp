// Census orchestration: run all VPs, collect RTTs, combine censuses.
//
// A census probes every hitlist target from every VP (unlike unicast
// censuses, targets cannot be split across VPs — Sec. 2.2). The collected
// per-(VP, target) minimum RTTs are the input to the iGreedy analysis;
// multiple censuses are combined by taking the per-pair minimum, which
// pushes each measurement toward the propagation delay and raises recall
// (Sec. 4.1, Fig. 12: the combination finds ~200 more anycast /24s than an
// average individual census).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/census/fastping.hpp"
#include "anycast/census/greylist.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::concurrency {
class ThreadPool;
}

namespace anycast::census {

/// One RTT sample: which VP, and the minimum RTT it saw to the target.
struct VpRtt {
  std::uint16_t vp = 0;
  float rtt_ms = 0.0F;
};

/// One row fragment entry: the minimum RTT one VP saw to one target.
/// A whole `FastPingResult` reduces to a per-target-sorted vector of
/// these (see `vp_row_fragment`), merged into `CensusData` in one call
/// instead of one sorted insert per observation.
struct TargetRtt {
  std::uint32_t target_index = 0;
  float rtt_ms = 0.0F;
};

/// Per-target collected measurements for one census (or a combination).
/// Indexed by dense hitlist target id; each row is sorted by VP id.
class CensusData {
 public:
  CensusData() = default;
  explicit CensusData(std::size_t target_count) : rows_(target_count) {}

  /// Records a measurement, keeping the minimum per (target, vp).
  void record(std::uint32_t target_index, std::uint16_t vp, float rtt_ms);

  /// Records one VP's whole row fragment (per-target minima, any order).
  /// Equivalent to calling `record` per entry; rows stay canonical
  /// (vp-sorted, per-pair minimum) whatever the merge order.
  void record_fragment(std::uint16_t vp, std::span<const TargetRtt> fragment);

  [[nodiscard]] std::span<const VpRtt> measurements(
      std::uint32_t target_index) const {
    return rows_[target_index];
  }
  [[nodiscard]] std::size_t target_count() const { return rows_.size(); }

  /// Number of targets with at least `min_vps` measurements.
  [[nodiscard]] std::size_t responsive_targets(std::size_t min_vps = 1) const;

  /// Point-wise minimum with `other` (same hitlist required): the
  /// censuses-combination step.
  void combine_min(const CensusData& other);

 private:
  std::vector<std::vector<VpRtt>> rows_;
  std::vector<VpRtt> merge_scratch_;  // combine_min's reusable row buffer
};

/// Reduces one VP's observation stream to its per-target minimum echo
/// RTTs, sorted by target index. Entries at or beyond `target_limit`
/// (damaged checkpoint records) are dropped. This is the per-VP half of
/// the census merge; it runs inside the VP's task when a thread pool is
/// in use.
std::vector<TargetRtt> vp_row_fragment(const FastPingResult& result,
                                       std::size_t target_limit);

/// How one VP fared in a census (one entry per configured VP).
struct VpStatus {
  std::uint32_t vp_id = 0;
  VpOutcome outcome = VpOutcome::kCompleted;
};

/// Aggregate census accounting (the Fig. 4 funnel and Fig. 8 inputs).
struct CensusSummary {
  std::uint64_t probes_sent = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  std::size_t greylist_new = 0;    // targets newly greylisted this census
  std::size_t active_vps = 0;      // VPs that were up for this census
  std::vector<double> vp_duration_hours;  // one entry per active VP
  std::vector<VpStatus> vp_outcomes;      // one entry per configured VP
  std::uint64_t injected_timeouts = 0;  // probes lost to injected outages
  std::uint64_t retry_probes = 0;       // probes spent in retry passes
  std::uint64_t retry_recovered = 0;    // targets recovered by retries

  /// VPs that ended with `outcome`.
  [[nodiscard]] std::size_t outcome_count(VpOutcome outcome) const;
};

/// Deterministic per-census availability coin: whether `vp` is up for the
/// census seeded by `config.seed` (PlanetLab node churn). Shared by the
/// runner and the resume path so both agree on who was ever expected.
bool vp_available(const net::VantagePoint& vp, const FastPingConfig& config);

/// Final outcome for a VP's fastping run under `config`: applies the
/// quarantine drop-rate check on top of the prober-reported outcome.
VpOutcome census_vp_outcome(const FastPingResult& result,
                            const FastPingConfig& config);

/// Runs one full census: every VP probes every non-blacklisted target,
/// new offenders land in the greylist which is merged into `blacklist`
/// afterwards (the Sec. 3.3 workflow). Deterministic in config.seed; when
/// `faults` is non-null, also deterministic in the plan's seed (VPs may
/// crash, straggle, or get quarantined — see `VpOutcome`). Quarantined
/// VPs keep their summary counters but contribute no rows to `data`.
///
/// When `pool` is non-null with more than one lane, the per-VP walks run
/// concurrently (each with a private greylist) and their results are
/// reduced in VP order on the calling thread, so the output — rows,
/// summary counters, outcome order, greylist membership and per-code
/// counters — is byte-identical to the serial run for any thread count.
struct CensusOutput {
  CensusData data;
  CensusSummary summary;
};

CensusOutput run_census(const net::SimulatedInternet& internet,
                        std::span<const net::VantagePoint> vps,
                        const Hitlist& hitlist, Greylist& blacklist,
                        const FastPingConfig& config,
                        const net::FaultPlan* faults = nullptr,
                        concurrency::ThreadPool* pool = nullptr);

}  // namespace anycast::census
