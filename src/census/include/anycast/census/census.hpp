// Census orchestration: run all VPs, collect RTTs, combine censuses.
//
// A census probes every hitlist target from every VP (unlike unicast
// censuses, targets cannot be split across VPs — Sec. 2.2). The collected
// per-(VP, target) minimum RTTs are the input to the iGreedy analysis;
// multiple censuses are combined by taking the per-pair minimum, which
// pushes each measurement toward the propagation delay and raises recall
// (Sec. 4.1, Fig. 12: the combination finds ~200 more anycast /24s than an
// average individual census).
//
// The collected RTTs live in a compressed-sparse-row matrix: one
// contiguous VpRtt buffer plus a per-target offset array, rows sorted by
// VP id. This is the in-memory continuation of the paper's own Tab. 1
// layout story (CSV → 6-byte binary records took analysis from >3 days to
// 3 hours): a census at hitlist scale is a large sparse matrix, and one
// allocation-free arena beats millions of per-target row vectors on cache
// misses and peak RSS alike.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

#include "anycast/census/fastping.hpp"
#include "anycast/census/greylist.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::concurrency {
class ThreadPool;
}

namespace anycast::census {

/// One RTT sample: which VP, and the minimum RTT it saw to the target.
struct VpRtt {
  std::uint16_t vp = 0;
  float rtt_ms = 0.0F;
};

/// One row fragment entry: the minimum RTT one VP saw to one target.
/// A whole `FastPingResult` reduces to a per-target-sorted vector of
/// these (see `vp_row_fragment`), handed to a `CensusMatrixBuilder` in
/// one move instead of one sorted insert per observation.
struct TargetRtt {
  std::uint32_t target_index = 0;
  float rtt_ms = 0.0F;
};

namespace detail {

/// Out-of-line metrics hook (defined in census.cpp) so this header does
/// not pull in the obs registry: counts one mmap/mremap-backed arena
/// resize into `census_arena_remaps`.
void note_arena_remap(bool fresh_mapping);

/// Counts one logical matrix build of `value_count` canonical samples
/// into `census_matrix_builds`/`census_matrix_values`. The sharded
/// builder calls this exactly once per assembled matrix — however many
/// per-shard `build_uncounted` passes it took — so the semantic counters
/// are invariant to the shard size.
void note_matrix_build(std::size_t value_count);

/// Growable buffer of (trivially copyable) VpRtt for census-scale value
/// arenas. std::vector growth must allocate-copy-free — transiently
/// doubling resident memory on a buffer this large — so the arena
/// resizes in place instead: mmap/mremap/munmap directly on Linux (no
/// copy on growth, pages returned to the kernel the moment the buffer
/// dies, residency independent of allocator history), realloc elsewhere.
///
/// On top of the anonymous growth path the arena has an explicit spill
/// tier (Linux only): `spill()` freezes the contents into a checksummed
/// file and swaps the anonymous mapping for a read-only file-backed one,
/// `drop_resident()` returns the resident pages to the kernel (reads
/// transparently fault them back from the file), and `restore()` copies
/// the contents back into a private anonymous mapping before any
/// mutation. `resize()` restores automatically, so mutating callers
/// never observe the spilled state.
class VpRttArena {
 public:
  VpRttArena() = default;
  VpRttArena(const VpRttArena& other) { assign(other); }
  VpRttArena& operator=(const VpRttArena& other) {
    if (this != &other) assign(other);
    return *this;
  }
  VpRttArena(VpRttArena&& other) noexcept
      : data_(other.data_),
        size_(other.size_),
        map_base_(other.map_base_),
        map_len_(other.map_len_),
        spilled_(other.spilled_) {
    other.data_ = nullptr;
    other.size_ = 0;
    other.map_base_ = nullptr;
    other.map_len_ = 0;
    other.spilled_ = false;
  }
  VpRttArena& operator=(VpRttArena&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      size_ = other.size_;
      map_base_ = other.map_base_;
      map_len_ = other.map_len_;
      spilled_ = other.spilled_;
      other.data_ = nullptr;
      other.size_ = 0;
      other.map_base_ = nullptr;
      other.map_len_ = 0;
      other.spilled_ = false;
    }
    return *this;
  }
  ~VpRttArena() { release(); }

  [[nodiscard]] const VpRtt* data() const { return data_; }
  /// Mutable access restores a spilled arena first — the file-backed
  /// mapping is read-only by contract.
  [[nodiscard]] VpRtt* data() {
    if (spilled_) restore();
    return data_;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  VpRtt& operator[](std::size_t i) { return data()[i]; }
  const VpRtt& operator[](std::size_t i) const { return data_[i]; }

  /// Exact-size resize: contents up to min(old, new) are preserved, new
  /// slots are zero pages on Linux and uninitialised otherwise — either
  /// way every caller writes them all before reading. A spilled arena is
  /// restored to anonymous memory first.
  void resize(std::size_t count) {
    if (spilled_) restore();
    if (count == 0) {
      release();
      return;
    }
#if defined(__linux__)
    void* grown =
        data_ == nullptr
            ? ::mmap(nullptr, count * sizeof(VpRtt), PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0)
            : ::mremap(data_, size_ * sizeof(VpRtt), count * sizeof(VpRtt),
                       MREMAP_MAYMOVE);
    if (grown == MAP_FAILED) throw std::bad_alloc();
#else
    void* grown = std::realloc(data_, count * sizeof(VpRtt));
    if (grown == nullptr) throw std::bad_alloc();
#endif
    note_arena_remap(data_ == nullptr);
    data_ = static_cast<VpRtt*>(grown);
    size_ = count;
  }

  /// Spills the arena to `path` (checksummed "ANCS" file) and swaps the
  /// anonymous mapping for a read-only file-backed one. Returns false —
  /// with the arena unchanged — on non-Linux builds, empty arenas, or
  /// any I/O failure. Defined in census.cpp.
  bool spill(const std::string& path);

  /// Returns the resident pages of a spilled arena to the kernel
  /// (`madvise(MADV_DONTNEED)` on the file-backed mapping); subsequent
  /// reads fault them back from the spill file transparently. Returns
  /// the number of bytes dropped (0 when not spilled).
  std::size_t drop_resident();

  /// Copies a spilled arena back into a private anonymous mapping (the
  /// spill file stays on disk for its owner to reclaim). No-op when not
  /// spilled.
  void restore();

  /// Whether the contents currently live in a file-backed mapping.
  [[nodiscard]] bool spilled() const { return spilled_; }

  /// Bytes of value payload (excludes the spill-file header).
  [[nodiscard]] std::size_t byte_size() const {
    return size_ * sizeof(VpRtt);
  }

 private:
  void release() {
#if defined(__linux__)
    if (spilled_) {
      if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
    } else if (data_ != nullptr) {
      ::munmap(data_, size_ * sizeof(VpRtt));
    }
#else
    std::free(data_);
#endif
    data_ = nullptr;
    size_ = 0;
    map_base_ = nullptr;
    map_len_ = 0;
    spilled_ = false;
  }

  void assign(const VpRttArena& other) {
    resize(other.size_);
    if (size_ != 0) std::memcpy(data(), other.data_, size_ * sizeof(VpRtt));
  }

  VpRtt* data_ = nullptr;
  std::size_t size_ = 0;
  // When spilled: the whole file mapping (header included); data_ points
  // at the payload inside it.
  void* map_base_ = nullptr;
  std::size_t map_len_ = 0;
  bool spilled_ = false;
};

/// Spill-file layout constants ("ANCS": magic, crc32 of payload, record
/// count, then the raw VpRtt payload with zeroed struct padding).
inline constexpr std::uint32_t kSpillMagic = 0x53434E41;  // "ANCS"
inline constexpr std::size_t kSpillHeaderBytes = 16;

}  // namespace detail

/// Per-target collected measurements for one census (or a combination),
/// frozen in CSR form: `values_` holds every row back to back, and
/// `offsets_[t] .. offsets_[t+1]` delimits target t's row. Rows are
/// vp-sorted with one entry per VP (the per-pair minimum). Instances are
/// immutable once built — construction goes through `CensusMatrixBuilder`
/// (or `combine_min`, which produces a fresh matrix in place).
class CensusMatrix {
 public:
  CensusMatrix() = default;
  /// A matrix of `target_count` empty rows.
  explicit CensusMatrix(std::size_t target_count)
      : offsets_(target_count + 1, 0) {}

  [[nodiscard]] std::span<const VpRtt> measurements(
      std::uint32_t target_index) const {
    const std::uint64_t begin = offsets_[target_index];
    return {values_.data() + begin, offsets_[target_index + 1] - begin};
  }
  [[nodiscard]] std::size_t target_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Total stored (vp, target) samples across all rows.
  [[nodiscard]] std::size_t observation_count() const {
    return values_.size();
  }
  /// The CSR offset array: `target_count() + 1` cumulative row ends (or
  /// empty for a default-constructed matrix). Exposed so sweeps can shard
  /// targets into ranges of balanced *measurement* weight, not just
  /// balanced row counts.
  [[nodiscard]] std::span<const std::uint64_t> row_offsets() const {
    return offsets_;
  }

  /// Number of targets with at least `min_vps` measurements.
  [[nodiscard]] std::size_t responsive_targets(std::size_t min_vps = 1) const;

  /// Point-wise minimum with `other` (same hitlist required): the
  /// censuses-combination step. A linear two-matrix merge — each output
  /// row is the vp-sorted union of the input rows with minima on common
  /// VPs — performed in place: the arena grows once to the exact union
  /// size and rows are merged back-to-front, so there is no per-row
  /// allocation and no second value buffer whatever the row count.
  void combine_min(const CensusMatrix& other);

  // -- Spill tier (ShardedCensusMatrix's RSS-budget lever) ------------------

  /// Freezes the value arena into the "ANCS" spill file at `path` and
  /// remaps it read-only file-backed. Reads (`measurements`) keep
  /// working; mutation restores first. Returns false (matrix unchanged)
  /// when spilling is unavailable or fails.
  bool spill_values(const std::string& path) { return values_.spill(path); }
  /// Returns a spilled matrix's resident value pages to the kernel;
  /// reads fault them back from the spill file. Bytes dropped (0 when
  /// not spilled).
  std::size_t drop_resident_values() { return values_.drop_resident(); }
  /// Copies spilled values back into anonymous memory.
  void restore_values() { values_.restore(); }
  [[nodiscard]] bool values_spilled() const { return values_.spilled(); }
  /// Value-arena payload bytes (resident upper bound when not dropped).
  [[nodiscard]] std::size_t value_bytes() const { return values_.byte_size(); }

 private:
  friend class CensusMatrixBuilder;
  detail::VpRttArena values_;           // all rows, back to back
  std::vector<std::uint64_t> offsets_;  // per-target row boundaries
};

/// Assembles a `CensusMatrix` in two passes from per-VP row fragments
/// (and/or loose observations): pass one counts each target's row, pass
/// two places every entry straight into its final slot of the contiguous
/// buffer. A final linear sweep canonicalises rows — vp-sorted, duplicate
/// (vp, target) pairs collapsed to their minimum — so the result is
/// identical whatever the insertion order. Entries at or beyond
/// `target_count` (damaged checkpoint records) are dropped.
class CensusMatrixBuilder {
 public:
  explicit CensusMatrixBuilder(std::size_t target_count)
      : target_count_(target_count) {}

  /// Adds one observation (used when no per-VP fragment exists, e.g.
  /// ad-hoc matrices in tests and studies).
  void add(std::uint32_t target_index, std::uint16_t vp, float rtt_ms);

  /// Adds one VP's whole row fragment (per-target minima, any order),
  /// taking ownership — the builder iterates fragments twice (count,
  /// place) without copying entries around.
  void add_fragment(std::uint16_t vp, std::vector<TargetRtt> fragment);

  [[nodiscard]] std::size_t target_count() const { return target_count_; }

  /// Freezes the accumulated input into a matrix and resets the builder.
  [[nodiscard]] CensusMatrix build();

  /// `build()` minus the `census_matrix_builds`/`census_matrix_values`
  /// instrument bumps. Internal per-shard builds go through this so a
  /// sharded assembly counts exactly one logical build — keeping the
  /// semantic metric snapshot invariant across shard sizes.
  [[nodiscard]] CensusMatrix build_uncounted();

 private:
  struct Fragment {
    std::uint16_t vp = 0;
    std::vector<TargetRtt> entries;
  };

  std::size_t target_count_ = 0;
  std::vector<Fragment> fragments_;
  // Loose observations from add(), as parallel arrays (entry i pairs
  // loose_[i] with loose_vps_[i]).
  std::vector<TargetRtt> loose_;
  std::vector<std::uint16_t> loose_vps_;
};

/// Reduces one VP's observation stream to its per-target minimum echo
/// RTTs, sorted by target index. Entries at or beyond `target_limit`
/// (damaged checkpoint records) are dropped. This is the per-VP half of
/// the census merge; it runs inside the VP's task when a thread pool is
/// in use. When `echo_in_range` is non-null it receives the number of
/// echo replies within `target_limit` *before* per-target deduplication
/// (the collation accounting unit).
std::vector<TargetRtt> vp_row_fragment(std::span<const Observation>
                                           observations,
                                       std::size_t target_limit,
                                       std::size_t* echo_in_range = nullptr);
std::vector<TargetRtt> vp_row_fragment(const FastPingResult& result,
                                       std::size_t target_limit);

/// How one VP fared in a census (one entry per configured VP).
struct VpStatus {
  std::uint32_t vp_id = 0;
  VpOutcome outcome = VpOutcome::kCompleted;
};

/// Aggregate census accounting (the Fig. 4 funnel and Fig. 8 inputs).
struct CensusSummary {
  std::uint64_t probes_sent = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t errors = 0;
  std::uint64_t timeouts = 0;
  std::size_t greylist_new = 0;    // targets newly greylisted this census
  std::size_t active_vps = 0;      // VPs that were up for this census
  std::vector<double> vp_duration_hours;  // one entry per active VP
  std::vector<VpStatus> vp_outcomes;      // one entry per configured VP
  std::uint64_t injected_timeouts = 0;  // probes lost to injected outages
  std::uint64_t retry_probes = 0;       // probes spent in retry passes
  std::uint64_t retry_recovered = 0;    // targets recovered by retries

  /// VPs that ended with `outcome`.
  [[nodiscard]] std::size_t outcome_count(VpOutcome outcome) const;
};

/// Flushes one census's reduction-level tallies (active/skipped VPs,
/// per-outcome counts, newly greylisted /24s) into obs::metrics(). Runs on
/// the reduction thread; run_census and resume_census both call it, so a
/// live census and its resumed twin report identical semantics.
void flush_census_summary_metrics(const CensusSummary& summary);

/// Deterministic per-census availability coin: whether `vp` is up for the
/// census seeded by `config.seed` (PlanetLab node churn). Shared by the
/// runner and the resume path so both agree on who was ever expected.
bool vp_available(const net::VantagePoint& vp, const FastPingConfig& config);

/// Final outcome for a VP's fastping run under `config`: applies the
/// quarantine drop-rate check on top of the prober-reported outcome.
VpOutcome census_vp_outcome(const FastPingResult& result,
                            const FastPingConfig& config);

/// Runs one full census: every VP probes every non-blacklisted target,
/// new offenders land in the greylist which is merged into `blacklist`
/// afterwards (the Sec. 3.3 workflow). Deterministic in config.seed; when
/// `faults` is non-null, also deterministic in the plan's seed (VPs may
/// crash, straggle, or get quarantined — see `VpOutcome`). Quarantined
/// VPs keep their summary counters but contribute no rows to `data`.
///
/// When `pool` is non-null with more than one lane, the per-VP walks run
/// concurrently (each with a private greylist) and their results are
/// reduced in VP order on the calling thread into a `CensusMatrixBuilder`,
/// so the output — rows, summary counters, outcome order, greylist
/// membership and per-code counters — is byte-identical to the serial run
/// for any thread count.
struct CensusOutput {
  CensusMatrix data;
  CensusSummary summary;
};

CensusOutput run_census(const net::SimulatedInternet& internet,
                        std::span<const net::VantagePoint> vps,
                        const Hitlist& hitlist, Greylist& blacklist,
                        const FastPingConfig& config,
                        const net::FaultPlan* faults = nullptr,
                        concurrency::ThreadPool* pool = nullptr);

}  // namespace anycast::census
