// Sharded census data plane: the paper-scale continuation of the CSR
// matrix story (census.hpp). One monolithic arena for 6.6M targets x
// 1000 VPs is ~50 GB resident — so the matrix is split into fixed-size
// target-range shards, each its own CSR arena, assembled by streaming
// per-VP row fragments through a bounded-memory combine that finalizes
// one shard at a time, and kept under an explicit RSS budget by spilling
// frozen shards to checksummed disk files ("ANCS") whose pages the
// kernel faults back transparently on access.
//
// Invariants:
//  - Element identity: for ANY shard size and flush/spill schedule, the
//    assembled matrix is element-identical to the monolithic
//    CensusMatrixBuilder fed the same fragments. Both paths canonicalise
//    per-(vp, target) minima, and combine_min is associative, so the
//    staged partial builds commute with the one-shot build.
//  - Semantic invariance: the sharded path bumps the kSemantic matrix
//    counters exactly once per assembled matrix (note_matrix_build) and
//    emits only kTiming shard/spill events, so the semantic metric
//    snapshot and committed journal stream are invariant to shard size.
//  - Durability boundary: a spill file is published atomically
//    (tmp+rename) and checksummed; a truncated file salvages to its
//    whole-record prefix (read_spill_file).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "anycast/census/census.hpp"

namespace anycast::concurrency {
class ThreadPool;
}

namespace anycast::census {

/// Data-plane shape knobs, threaded from the CLI (`--shard-targets`,
/// `--rss-budget-mb`) down to the builder. The defaults reproduce the
/// monolithic plane exactly: one shard, no spilling.
struct DataPlaneConfig {
  /// Targets per shard; 0 = a single shard spanning the whole hitlist.
  std::size_t shard_targets = 0;
  /// Resident-value budget in MiB; 0 = never spill. When exceeded,
  /// frozen shards are spilled to `spill_dir` and their pages dropped,
  /// coldest (lowest index) first.
  std::size_t rss_budget_mb = 0;
  /// Where spill files land (`shard<N>.ancs`). Required for spilling.
  std::string spill_dir;
  /// Staged-fragment bytes the builder holds before flushing the
  /// heaviest shard into its frozen accumulator.
  std::size_t stage_budget_mb = 256;
};

/// A census matrix split into fixed-size target-range shards. Target t
/// lives in shard t / shard_targets at local index t % shard_targets
/// (the last shard may be ragged). Each shard is a complete CensusMatrix
/// over its local range, so every row algorithm (analysis, diffing,
/// hijack scans) runs per shard unchanged; `measurements()` routes
/// global indices in O(1). Reads work on spilled shards — the kernel
/// faults the pages back from the spill file — while mutation
/// (combine_min) restores them to anonymous memory first.
class ShardedCensusMatrix {
 public:
  ShardedCensusMatrix() = default;
  ShardedCensusMatrix(std::size_t target_count, const DataPlaneConfig& plane);

  [[nodiscard]] std::size_t target_count() const { return target_count_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_targets() const { return shard_targets_; }
  [[nodiscard]] const DataPlaneConfig& plane() const { return plane_; }

  /// First global target index of shard `s`.
  [[nodiscard]] std::size_t shard_base(std::size_t s) const {
    return s * shard_targets_;
  }
  [[nodiscard]] const CensusMatrix& shard(std::size_t s) const {
    return shards_[s];
  }
  [[nodiscard]] CensusMatrix& shard(std::size_t s) { return shards_[s]; }

  /// Row of global target `t` (O(1) shard routing).
  [[nodiscard]] std::span<const VpRtt> measurements(
      std::uint32_t target_index) const {
    const std::size_t s = target_index / shard_targets_;
    return shards_[s].measurements(
        static_cast<std::uint32_t>(target_index - s * shard_targets_));
  }

  [[nodiscard]] std::size_t observation_count() const;
  [[nodiscard]] std::size_t responsive_targets(std::size_t min_vps = 1) const;

  /// Same-layout check: equal target counts and shard size, so per-shard
  /// algorithms can walk two matrices in lockstep.
  [[nodiscard]] bool same_layout(const ShardedCensusMatrix& other) const {
    return target_count_ == other.target_count_ &&
           shard_targets_ == other.shard_targets_;
  }

  /// Point-wise minimum with `other` (same shard size required; target
  /// counts may differ). Spilled shards are restored before merging and
  /// re-spilled afterwards if the budget demands it.
  void combine_min(const ShardedCensusMatrix& other);

  // -- Spill tier -----------------------------------------------------------

  /// Spills shard `s` to `<spill_dir>/shard<s>.ancs` and drops its
  /// resident pages. Returns bytes dropped (0 on failure or no-op).
  std::size_t spill_shard(std::size_t s);
  /// Restores shard `s` to anonymous memory.
  void restore_shard(std::size_t s);
  [[nodiscard]] bool shard_spilled(std::size_t s) const {
    return shards_[s].values_spilled();
  }
  /// Spills shards (index order) until resident value bytes fit the
  /// configured budget; no-op when rss_budget_mb == 0. Returns bytes
  /// resident after enforcement.
  std::size_t enforce_rss_budget();
  /// Value bytes currently backed by anonymous (non-droppable) memory.
  [[nodiscard]] std::size_t resident_value_bytes() const;
  /// Total value bytes across all shards, resident or spilled.
  [[nodiscard]] std::size_t total_value_bytes() const;

  /// Flattens into one monolithic CensusMatrix (cross-check scale only —
  /// this materializes everything resident).
  [[nodiscard]] CensusMatrix to_monolithic() const;

 private:
  friend class ShardedCensusMatrixBuilder;
  [[nodiscard]] std::string spill_path(std::size_t s) const;

  std::size_t target_count_ = 0;
  std::size_t shard_targets_ = 1;  // never 0: routing divides by it
  DataPlaneConfig plane_;
  std::vector<CensusMatrix> shards_;
};

/// Streams per-VP row fragments into a ShardedCensusMatrix under a
/// bounded memory envelope. Fragments are split by target range and
/// staged per shard; when the staged bytes exceed the stage budget the
/// heaviest-staged shard is frozen (CensusMatrixBuilder::build_uncounted)
/// and combined (combine_min) into its accumulator — an associative
/// fold, so the flush schedule cannot change the result. `build()`
/// freezes the remainder in shard order, counts ONE logical matrix
/// build, and enforces the RSS budget by spilling frozen shards.
class ShardedCensusMatrixBuilder {
 public:
  explicit ShardedCensusMatrixBuilder(std::size_t target_count,
                                      const DataPlaneConfig& plane = {});

  /// Adds one observation (parity with CensusMatrixBuilder::add).
  void add(std::uint32_t target_index, std::uint16_t vp, float rtt_ms);

  /// Adds one VP's whole row fragment (sorted by global target index, as
  /// vp_row_fragment produces), splitting it across shards.
  void add_fragment(std::uint16_t vp, std::vector<TargetRtt> fragment);

  [[nodiscard]] std::size_t target_count() const { return target_count_; }
  [[nodiscard]] std::size_t shard_count() const { return shard_count_; }
  /// Bytes of fragment entries currently staged (pre-freeze).
  [[nodiscard]] std::size_t staged_bytes() const { return staged_bytes_; }

  /// Freezes everything into the final matrix and resets the builder.
  [[nodiscard]] ShardedCensusMatrix build();

 private:
  void flush_shard(std::size_t s);
  void flush_heaviest();

  std::size_t target_count_ = 0;
  std::size_t shard_targets_ = 1;
  std::size_t shard_count_ = 0;
  DataPlaneConfig plane_;
  std::vector<CensusMatrixBuilder> stage_;   // per-shard staged fragments
  std::vector<std::size_t> stage_entry_bytes_;
  std::size_t staged_bytes_ = 0;
  ShardedCensusMatrix result_;               // frozen accumulators
  std::vector<bool> has_frozen_;
};

/// run_census with the sharded data plane: identical map/reduce flow,
/// summary, greylist, journal stream, and semantic metrics — only the
/// matrix layout (and its kTiming shard/spill telemetry) differs.
struct ShardedCensusOutput {
  ShardedCensusMatrix data;
  CensusSummary summary;
};

ShardedCensusOutput run_census_sharded(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, const Hitlist& hitlist,
    Greylist& blacklist, const FastPingConfig& config,
    const DataPlaneConfig& plane = {}, const net::FaultPlan* faults = nullptr,
    concurrency::ThreadPool* pool = nullptr);

/// A spill file read back strictly (magic + count + CRC must all check
/// out) or salvaged (`salvage = true`): a truncated or bit-flipped file
/// recovers its whole-record prefix with `salvaged` set, journaled as a
/// kTiming warning. Returns nullopt only when nothing is recoverable.
struct SpillFileContents {
  std::vector<VpRtt> values;
  bool salvaged = false;
};

std::optional<SpillFileContents> read_spill_file(const std::string& path,
                                                 bool salvage = false);

}  // namespace anycast::census
