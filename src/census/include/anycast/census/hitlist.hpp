// The census hitlist: one representative /32 per routed /24.
//
// Sec. 3.1: /24 is the census granularity (BGP ignores longer prefixes),
// and any alive address in a /24 is equivalent for anycast detection, so
// the hitlist carries one representative IP per /24 plus a liveness score
// (after the USC/LANDER hitlist the paper uses). Entries with score <= -2
// had no alive address observed and hold an arbitrary address from the
// /24; the paper drops them after the first census confirms
// unreachability.
#pragma once

#include <cstdint>
#include <vector>

#include "anycast/ipaddr/ipv4.hpp"

namespace anycast::net {
class SimulatedInternet;
}

namespace anycast::census {

struct HitlistEntry {
  ipaddr::IPv4Address representative;
  std::int8_t score = 0;  // >0: repeatedly alive; <= -2: never seen alive
};

/// An ordered target list; the dense index into it is the census-wide
/// target id used by probers, record files, and the analysis.
class Hitlist {
 public:
  Hitlist() = default;
  explicit Hitlist(std::vector<HitlistEntry> entries)
      : entries_(std::move(entries)) {}

  /// Builds the full hitlist from the simulated world's routed /24s:
  /// alive targets get positive scores, dead space gets score -2 (as the
  /// provider's list does for never-responding /24s).
  static Hitlist from_world(const net::SimulatedInternet& internet);

  /// Drops entries with score <= -2 — the reduction from ~10^7 routed to
  /// 6.6M probed targets per VP described in Sec. 3.1.
  [[nodiscard]] Hitlist without_dead() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const HitlistEntry& operator[](std::size_t i) const {
    return entries_[i];
  }
  [[nodiscard]] const std::vector<HitlistEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<HitlistEntry> entries_;
};

}  // namespace anycast::census
