// Grey/blacklisting of administratively prohibited targets.
//
// Sec. 3.3: fastping honours requests to stop probing — addresses whose
// routers answer with ICMP destination-unreachable codes 13 (administrati-
// vely filtered), 10 (host prohibited) or 9 (network prohibited) are added
// to a per-census greylist that is merged into a persistent blacklist
// between censuses; ~O(10^5) hosts accumulate there (98.5% code 13).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "anycast/net/types.hpp"

namespace anycast::census {

/// A set of /24 indices that must not be probed again. Used both as the
/// per-census greylist (collecting new offenders) and the cross-census
/// blacklist (their merge).
class Greylist {
 public:
  /// Records a prohibited reply for a /24; returns true when new. Counts
  /// per ICMP code are kept for the Sec. 3.3 breakdown.
  bool add(std::uint32_t slash24_index, net::ReplyKind kind);

  [[nodiscard]] bool contains(std::uint32_t slash24_index) const {
    return members_.contains(slash24_index);
  }
  [[nodiscard]] std::size_t size() const { return members_.size(); }

  /// Merges `other` into this list (greylist -> blacklist step). Only
  /// newly inserted members bump the per-code counters, so repeated
  /// merges of overlapping greylists keep the Sec. 3.3 breakdown honest.
  void merge(const Greylist& other);

  [[nodiscard]] std::uint64_t admin_filtered_count() const {
    return admin_filtered_;
  }
  [[nodiscard]] std::uint64_t host_prohibited_count() const {
    return host_prohibited_;
  }
  [[nodiscard]] std::uint64_t net_prohibited_count() const {
    return net_prohibited_;
  }

  /// All members with the ICMP code each was first greylisted with, sorted
  /// by /24 index — the deterministic order the watch daemon persists the
  /// blacklist in across restarts.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, net::ReplyKind>>
  entries() const;

 private:
  void count(net::ReplyKind kind);

  // The ICMP code each member was first greylisted with is kept so that
  // merge() can attribute only newly inserted members to the counters.
  std::unordered_map<std::uint32_t, net::ReplyKind> members_;
  std::uint64_t admin_filtered_ = 0;
  std::uint64_t host_prohibited_ = 0;
  std::uint64_t net_prohibited_ = 0;
};

}  // namespace anycast::census
