// On-disk census storage and collation.
//
// Each VP uploads one binary file per census to the central repository
// (Fig. 1). Because of the LFSR probing order, "the order of the target
// IPs in all files is not the same, meaning that an on-the-fly sorting of
// about 300 lists containing millions of targets is needed" (Sec. 3.5) —
// `collate_census_files` performs exactly that step, producing the
// per-target RTT rows the analyzer consumes.
//
// Files double as checkpoints for crash recovery (see resume.hpp): they
// are written atomically (tmp + rename), carry a CRC32 trailer (format
// v2), and a truncated upload can be salvaged down to its valid record
// prefix instead of being discarded — a killed census keeps everything
// already paid for.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "anycast/census/census.hpp"
#include "anycast/census/record.hpp"
#include "anycast/census/sharded.hpp"

namespace anycast::census {

/// Header flag: the VP finished its walk before this file was written.
/// Absent on the checkpoint of a crashed or cut-off VP, which tells
/// `resume_census` to re-run it.
inline constexpr std::uint32_t kCensusFileComplete = 1u;

/// Identity of one VP's census upload.
struct CensusFileHeader {
  std::uint32_t vp_id = 0;
  std::uint32_t census_id = 0;
  std::uint32_t flags = 0;  // kCensusFileComplete when the walk finished

  [[nodiscard]] bool complete() const {
    return (flags & kCensusFileComplete) != 0;
  }
};

/// Writes one VP's observation stream as a binary census file (format v2:
/// header, payload, CRC32 trailer). The write is atomic — the bytes land
/// in `path + ".tmp"` and are renamed over `path` — so a reader never
/// sees a half-written checkpoint, and a crash leaves at worst a stale
/// tmp file. Throws std::runtime_error on I/O failure.
void write_census_file(const std::filesystem::path& path,
                       const CensusFileHeader& header,
                       std::span<const Observation> observations);

/// Reads a census file back. Returns nullopt on a missing, truncated, or
/// corrupted file (the analysis must survive partial uploads). Both v2
/// (CRC-trailed) and legacy v1 (no trailer) files are accepted; a v2 file
/// whose CRC does not match its contents is rejected.
struct CensusFile {
  CensusFileHeader header;
  std::vector<Observation> observations;
  bool salvaged = false;  // set by salvage_census_file on partial recovery
};
std::optional<CensusFile> read_census_file(
    const std::filesystem::path& path);

/// Salvage reader: when the strict read fails because the file is
/// truncated or fails its CRC, recovers the valid record prefix instead
/// (marking the result `salvaged`, and never `complete`). Returns nullopt
/// only when not even the headers survive.
std::optional<CensusFile> salvage_census_file(
    const std::filesystem::path& path);

/// What collation did with each input file.
struct CollateStats {
  std::size_t files_ok = 0;        // read back intact
  std::size_t files_salvaged = 0;  // damaged; valid prefix used
  std::size_t files_skipped = 0;   // unreadable beyond salvage
  std::uint64_t observations = 0;  // echo-reply rows recorded
};

/// Collates per-VP census files into the per-target CSR matrix: the
/// on-the-fly sort across LFSR-ordered lists. Each file reduces to its
/// VP's row fragment, and a `CensusMatrixBuilder` assembles the frozen
/// matrix in two passes. `target_count` sizes the result (hitlist size).
/// When `salvage` is true, damaged files contribute their valid record
/// prefix; otherwise they are skipped whole.
CensusMatrix collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    CollateStats* stats, bool salvage = true);

/// Legacy strict collation: damaged files are skipped whole and counted
/// in `skipped_files` (when non-null).
CensusMatrix collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    std::size_t* skipped_files = nullptr);

/// Sharded collation: identical file walk and accounting, but the
/// fragments stream through a ShardedCensusMatrixBuilder — one file in
/// memory at a time, staged shards flushed under the plane's budgets —
/// so a paper-scale repository collates in bounded RSS. The result is
/// element-identical to the monolithic collation for any shard size.
ShardedCensusMatrix collate_census_files_sharded(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    const DataPlaneConfig& plane, CollateStats* stats, bool salvage = true);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes` — the census
/// file trailer checksum, exposed for tests and external tooling.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

}  // namespace anycast::census
