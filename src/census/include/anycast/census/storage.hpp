// On-disk census storage and collation.
//
// Each VP uploads one binary file per census to the central repository
// (Fig. 1). Because of the LFSR probing order, "the order of the target
// IPs in all files is not the same, meaning that an on-the-fly sorting of
// about 300 lists containing millions of targets is needed" (Sec. 3.5) —
// `collate_census_files` performs exactly that step, producing the
// per-target RTT rows the analyzer consumes.
#pragma once

#include <filesystem>
#include <optional>
#include <span>
#include <vector>

#include "anycast/census/census.hpp"
#include "anycast/census/record.hpp"

namespace anycast::census {

/// Identity of one VP's census upload.
struct CensusFileHeader {
  std::uint32_t vp_id = 0;
  std::uint32_t census_id = 0;
};

/// Writes one VP's observation stream as a binary census file.
/// Throws std::runtime_error on I/O failure.
void write_census_file(const std::filesystem::path& path,
                       const CensusFileHeader& header,
                       std::span<const Observation> observations);

/// Reads a census file back. Returns nullopt on a missing, truncated, or
/// corrupted file (the analysis must survive partial uploads).
struct CensusFile {
  CensusFileHeader header;
  std::vector<Observation> observations;
};
std::optional<CensusFile> read_census_file(
    const std::filesystem::path& path);

/// Collates per-VP census files into per-target RTT rows: the on-the-fly
/// sort across LFSR-ordered lists. Unreadable files are skipped and
/// counted in `skipped_files` (when non-null). `target_count` sizes the
/// result (hitlist size).
CensusData collate_census_files(
    std::span<const std::filesystem::path> paths, std::size_t target_count,
    std::size_t* skipped_files = nullptr);

}  // namespace anycast::census
