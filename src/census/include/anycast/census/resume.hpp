// Checkpoint/resume for the census runner.
//
// A census is hours of paid-for probing; a killed run must not forfeit
// it. Every VP's observation stream is a checkpoint file (storage.hpp):
// complete walks carry the kCensusFileComplete flag, crashed or cut-off
// walks do not. `resume_census` collates whatever checkpoints a directory
// holds — salvaging truncated ones down to their valid prefix — and
// re-runs only the VPs whose walks are missing or incomplete. Because
// every VP's walk is deterministic in (config.seed, vp.id) alone, the
// resumed run's files are byte-identical to an uninterrupted census on
// the same seed.
#pragma once

#include <filesystem>
#include <span>

#include "anycast/census/census.hpp"
#include "anycast/census/storage.hpp"

namespace anycast::census {

/// Accounting for one resume pass.
struct ResumeReport {
  CensusOutput output;         // collated data + reconstructed summary
  std::size_t vps_reused = 0;  // complete checkpoints kept as-is
  std::size_t vps_rerun = 0;   // missing/partial/corrupt, re-probed
  std::size_t vps_skipped = 0; // down for this census (availability coin)
  std::size_t files_salvaged = 0;  // damaged checkpoints partially kept
};

/// Canonical checkpoint path for one VP of one census inside `dir`.
std::filesystem::path census_checkpoint_path(const std::filesystem::path& dir,
                                             std::uint32_t census_id,
                                             std::uint32_t vp_id);

/// Runs — or resumes — census `census_id` over checkpoint files in `dir`.
/// For each available VP: a complete, CRC-valid checkpoint is reused
/// verbatim (its funnel counters are reconstructed from the recorded
/// observations; duration is coarse, from the file's quantised
/// timestamps); any other VP is re-probed with `run_fastping` (under
/// `faults`, when given) and its checkpoint rewritten. Greylist feeding,
/// blacklist merging, quarantine, and per-VP outcomes behave exactly as
/// in `run_census`. The returned data collates the final on-disk state,
/// so RTTs carry the binary format's 1/50 ms quantisation.
///
/// With a multi-lane `pool`, VPs recover concurrently (each touches only
/// its own checkpoint file) and are reduced in VP order, so the report,
/// the collated data, and the rewritten files are byte-identical to a
/// serial resume — and therefore to an uninterrupted census.
ResumeReport resume_census(const net::SimulatedInternet& internet,
                           std::span<const net::VantagePoint> vps,
                           const Hitlist& hitlist, Greylist& blacklist,
                           const FastPingConfig& config,
                           const std::filesystem::path& dir,
                           std::uint32_t census_id,
                           const net::FaultPlan* faults = nullptr,
                           concurrency::ThreadPool* pool = nullptr);

/// Accounting for one sharded resume pass (same fields, sharded data).
struct ShardedResumeReport {
  ShardedCensusOutput output;
  std::size_t vps_reused = 0;
  std::size_t vps_rerun = 0;
  std::size_t vps_skipped = 0;
  std::size_t files_salvaged = 0;
};

/// resume_census over the sharded data plane: identical recovery
/// decisions, checkpoint writes, summary, greylist, and journal/metric
/// semantics — the recovered fragments just stream through a
/// ShardedCensusMatrixBuilder under `plane`'s budgets.
ShardedResumeReport resume_census_sharded(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, const Hitlist& hitlist,
    Greylist& blacklist, const FastPingConfig& config,
    const std::filesystem::path& dir, std::uint32_t census_id,
    const DataPlaneConfig& plane = {}, const net::FaultPlan* faults = nullptr,
    concurrency::ThreadPool* pool = nullptr);

}  // namespace anycast::census
