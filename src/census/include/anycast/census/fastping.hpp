// FastPing: the census prober (simulated).
//
// Models the measurement software of Sec. 3.3/3.5: an ICMP prober that
// walks the hitlist in Galois-LFSR order (desynchronising VPs and
// defeating per-target rate limits), honours the blacklist, feeds newly
// prohibited targets to a greylist, and — crucially — suffers reply
// aggregation loss near the VP when driven too fast: requests spread over
// the Internet but replies converge on the VP at the full probing rate,
// and some hosting networks drop them. The paper's counter-intuitive fix
// was to *slow the prober down* by an order of magnitude (10^4 -> 10^3
// probes/s); the model reproduces that trade-off.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "anycast/census/greylist.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/record.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::net {
class FaultPlan;
}

namespace anycast::census {

struct FastPingConfig {
  /// Probes per second. 1,000 is the paper's safe rate; 10,000 triggers
  /// heterogeneous reply drops at many VPs.
  double probe_rate_pps = 1000.0;
  /// Per-VP reply-rate tolerance model: drops start when the reply rate
  /// exceeds the VP's threshold, drawn uniformly in
  /// [min_drop_threshold_pps, max_drop_threshold_pps] per VP.
  double min_drop_threshold_pps = 1200.0;
  double max_drop_threshold_pps = 12000.0;
  /// Fraction of replies dropped per unit of relative overdrive;
  /// drop = min(0.9, slope * (rate/threshold - 1)) when rate > threshold.
  double drop_slope = 0.45;
  /// Probability that a VP is up for a given census. PlanetLab nodes come
  /// and go: the paper's four censuses ran from 261/255/269/240 nodes, 308
  /// distinct overall — the main reason combining censuses finds ~200 more
  /// anycast /24s (Fig. 12).
  double vp_availability = 1.0;
  std::uint64_t seed = 7;

  // --- Resilience knobs (defaults preserve the classic single-pass walk,
  // so every existing census is byte-identical). ---

  /// Extra passes over timed-out targets after the main walk. Pass k waits
  /// `retry_backoff_s * 2^k` before starting (exponential backoff); every
  /// retry probe is counted in `duration_hours` and the funnel counters.
  int retry_max_attempts = 0;
  double retry_backoff_s = 1.0;
  /// Hard cap on retry probes per VP across all passes (0 = unlimited):
  /// footprint discipline — a broken VP must not hammer the hitlist.
  std::uint64_t retry_probe_budget = 0;

  /// Straggler deadline: when > 0, a VP whose wall clock exceeds this
  /// budget is cut off (outcome kCutOff), keeping its partial rows — the
  /// Fig. 8 completion-time tail is bounded instead of waited out.
  double vp_deadline_hours = 0.0;

  /// Quarantine threshold: a VP whose observed timeout fraction exceeds
  /// this is marked kQuarantined and its rows are excluded from the
  /// census data (its replies are untrustworthy). 1.0 disables.
  double quarantine_drop_rate = 1.0;
};

/// How one VP's census walk ended (Fig. 8's per-VP fates, made explicit).
enum class VpOutcome : std::uint8_t {
  kCompleted,    // walked the full hitlist (retries included)
  kCrashed,      // died mid-walk; partial observations kept
  kCutOff,       // exceeded vp_deadline_hours; partial observations kept
  kQuarantined,  // drop rate over threshold; rows excluded from the data
  kSkipped,      // down for the whole census (availability coin)
};

std::string_view to_string(VpOutcome outcome);

struct FastPingResult {
  std::vector<Observation> observations;  // one per probe (incl. retries)
  double duration_hours = 0.0;            // wall-clock for this VP
  std::uint64_t probes_sent = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t errors = 0;    // prohibited replies (greylist feed)
  std::uint64_t timeouts = 0;
  double drop_probability = 0.0;  // the reply-aggregation loss in effect
  VpOutcome outcome = VpOutcome::kCompleted;
  std::uint64_t injected_timeouts = 0;  // probes lost to injected outages
  std::uint64_t retry_probes = 0;       // probes spent in retry passes
  std::uint64_t retry_recovered = 0;    // targets a retry pass recovered
};

/// Probes every non-blacklisted hitlist entry once from `vp`, in LFSR
/// order, then (when configured) retries timed-out targets with
/// exponential backoff. Newly prohibited targets are recorded into
/// `greylist`. When `faults` is non-null the walk runs under that plan's
/// schedule for this VP: it may crash mid-walk, time out through an
/// outage window, lose replies to a storm, or stall; with no plan the
/// walk is bit-identical to the fault-free implementation.
FastPingResult run_fastping(const net::SimulatedInternet& internet,
                            const net::VantagePoint& vp,
                            const Hitlist& hitlist, const Greylist& blacklist,
                            Greylist& greylist, const FastPingConfig& config,
                            const net::FaultPlan* faults = nullptr);

/// Flushes one finished walk's funnel tally into the global metrics
/// registry (obs::metrics()): probe/reply/timeout/retry counters plus the
/// echo-RTT histogram, observed through the checkpoint codec's
/// quantisation so a live walk and its replayed checkpoint report the
/// same values. Also emits the `census.walk` semantic journal event
/// (ordered by `vp_id`, mirroring exactly the values flushed here — the
/// flight recorder inherits this chokepoint's live == replayed
/// guarantee). One call per walk — the probe loop itself touches only
/// its walk-local `FastPingResult` tally, never a shared counter. Called
/// by the census runner and the resume path (which also replays reused
/// checkpoints through it); call it yourself only when driving
/// `run_fastping` directly and wanting it metered.
void flush_walk_metrics(const FastPingResult& result, std::uint64_t vp_id);

/// The reply-aggregation drop probability a VP with the given tolerance
/// threshold suffers at a probing rate (exposed for tests and the probing
/// rate ablation).
double reply_drop_probability(double probe_rate_pps, double threshold_pps,
                              double slope);

/// The per-VP threshold drawn for `vp` under `config` (deterministic).
double vp_drop_threshold(const net::VantagePoint& vp,
                         const FastPingConfig& config);

}  // namespace anycast::census
