// FastPing: the census prober (simulated).
//
// Models the measurement software of Sec. 3.3/3.5: an ICMP prober that
// walks the hitlist in Galois-LFSR order (desynchronising VPs and
// defeating per-target rate limits), honours the blacklist, feeds newly
// prohibited targets to a greylist, and — crucially — suffers reply
// aggregation loss near the VP when driven too fast: requests spread over
// the Internet but replies converge on the VP at the full probing rate,
// and some hosting networks drop them. The paper's counter-intuitive fix
// was to *slow the prober down* by an order of magnitude (10^4 -> 10^3
// probes/s); the model reproduces that trade-off.
#pragma once

#include <cstdint>
#include <vector>

#include "anycast/census/greylist.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/record.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::census {

struct FastPingConfig {
  /// Probes per second. 1,000 is the paper's safe rate; 10,000 triggers
  /// heterogeneous reply drops at many VPs.
  double probe_rate_pps = 1000.0;
  /// Per-VP reply-rate tolerance model: drops start when the reply rate
  /// exceeds the VP's threshold, drawn uniformly in
  /// [min_drop_threshold_pps, max_drop_threshold_pps] per VP.
  double min_drop_threshold_pps = 1200.0;
  double max_drop_threshold_pps = 12000.0;
  /// Fraction of replies dropped per unit of relative overdrive;
  /// drop = min(0.9, slope * (rate/threshold - 1)) when rate > threshold.
  double drop_slope = 0.45;
  /// Probability that a VP is up for a given census. PlanetLab nodes come
  /// and go: the paper's four censuses ran from 261/255/269/240 nodes, 308
  /// distinct overall — the main reason combining censuses finds ~200 more
  /// anycast /24s (Fig. 12).
  double vp_availability = 1.0;
  std::uint64_t seed = 7;
};

struct FastPingResult {
  std::vector<Observation> observations;  // one per probed target
  double duration_hours = 0.0;            // wall-clock for this VP
  std::uint64_t probes_sent = 0;
  std::uint64_t echo_replies = 0;
  std::uint64_t errors = 0;    // prohibited replies (greylist feed)
  std::uint64_t timeouts = 0;
  double drop_probability = 0.0;  // the reply-aggregation loss in effect
};

/// Probes every non-blacklisted hitlist entry once from `vp`, in LFSR
/// order. Newly prohibited targets are recorded into `greylist`.
FastPingResult run_fastping(const net::SimulatedInternet& internet,
                            const net::VantagePoint& vp,
                            const Hitlist& hitlist, const Greylist& blacklist,
                            Greylist& greylist, const FastPingConfig& config);

/// The reply-aggregation drop probability a VP with the given tolerance
/// threshold suffers at a probing rate (exposed for tests and the probing
/// rate ablation).
double reply_drop_probability(double probe_rate_pps, double threshold_pps,
                              double slope);

/// The per-VP threshold drawn for `vp` under `config` (deterministic).
double vp_drop_threshold(const net::VantagePoint& vp,
                         const FastPingConfig& config);

}  // namespace anycast::census
