#include "anycast/census/census.hpp"

#include <algorithm>

#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::census {

void CensusData::record(std::uint32_t target_index, std::uint16_t vp,
                        float rtt_ms) {
  auto& row = rows_[target_index];
  // Fast path: VP results are reduced in ascending id order, so nearly
  // every record appends past the current maximum.
  if (row.empty() || row.back().vp < vp) {
    row.push_back(VpRtt{vp, rtt_ms});
    return;
  }
  if (row.back().vp == vp) {
    row.back().rtt_ms = std::min(row.back().rtt_ms, rtt_ms);
    return;
  }
  const auto it = std::lower_bound(
      row.begin(), row.end(), vp,
      [](const VpRtt& entry, std::uint16_t v) { return entry.vp < v; });
  if (it != row.end() && it->vp == vp) {
    it->rtt_ms = std::min(it->rtt_ms, rtt_ms);
  } else {
    row.insert(it, VpRtt{vp, rtt_ms});
  }
}

void CensusData::record_fragment(std::uint16_t vp,
                                 std::span<const TargetRtt> fragment) {
  for (const TargetRtt& entry : fragment) {
    record(entry.target_index, vp, entry.rtt_ms);
  }
}

std::vector<TargetRtt> vp_row_fragment(const FastPingResult& result,
                                       std::size_t target_limit) {
  std::vector<TargetRtt> fragment;
  fragment.reserve(static_cast<std::size_t>(result.echo_replies));
  for (const Observation& obs : result.observations) {
    if (obs.kind != net::ReplyKind::kEchoReply) continue;
    if (obs.target_index >= target_limit) continue;  // damaged record
    fragment.push_back(
        TargetRtt{obs.target_index, static_cast<float>(obs.rtt_ms)});
  }
  // Retry passes revisit targets: sort by target and keep the minimum per
  // group (ties by RTT make the sort order — hence the result — unique).
  std::sort(fragment.begin(), fragment.end(),
            [](const TargetRtt& a, const TargetRtt& b) {
              if (a.target_index != b.target_index) {
                return a.target_index < b.target_index;
              }
              return a.rtt_ms < b.rtt_ms;
            });
  fragment.erase(std::unique(fragment.begin(), fragment.end(),
                             [](const TargetRtt& a, const TargetRtt& b) {
                               return a.target_index == b.target_index;
                             }),
                 fragment.end());
  return fragment;
}

std::size_t CensusData::responsive_targets(std::size_t min_vps) const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (row.size() >= min_vps) ++count;
  }
  return count;
}

void CensusData::combine_min(const CensusData& other) {
  if (rows_.size() < other.rows_.size()) rows_.resize(other.rows_.size());
  std::vector<VpRtt>& merged = merge_scratch_;  // reused across rows
  for (std::size_t t = 0; t < other.rows_.size(); ++t) {
    const auto& theirs = other.rows_[t];
    auto& ours = rows_[t];
    if (theirs.empty()) continue;
    if (ours.empty()) {
      ours = theirs;
      continue;
    }
    // Merge two vp-sorted rows, taking minima on common VPs.
    merged.clear();
    merged.reserve(ours.size() + theirs.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ours.size() && j < theirs.size()) {
      if (ours[i].vp < theirs[j].vp) {
        merged.push_back(ours[i++]);
      } else if (theirs[j].vp < ours[i].vp) {
        merged.push_back(theirs[j++]);
      } else {
        merged.push_back(
            VpRtt{ours[i].vp, std::min(ours[i].rtt_ms, theirs[j].rtt_ms)});
        ++i;
        ++j;
      }
    }
    for (; i < ours.size(); ++i) merged.push_back(ours[i]);
    for (; j < theirs.size(); ++j) merged.push_back(theirs[j]);
    ours.assign(merged.begin(), merged.end());
  }
}

std::size_t CensusSummary::outcome_count(VpOutcome outcome) const {
  std::size_t count = 0;
  for (const VpStatus& status : vp_outcomes) {
    if (status.outcome == outcome) ++count;
  }
  return count;
}

bool vp_available(const net::VantagePoint& vp, const FastPingConfig& config) {
  // Per-census node churn (deterministic in the census seed).
  if (config.vp_availability >= 1.0) return true;
  const double u = rng::hash_uniform01(config.seed ^
                                       (0xA5A5A5A5ull * (vp.id + 0x9E37ull)));
  return u < config.vp_availability;
}

VpOutcome census_vp_outcome(const FastPingResult& result,
                            const FastPingConfig& config) {
  // Quarantine trumps everything but a crash: a lossy VP's rows are
  // misleading whether or not it also finished late.
  if (result.outcome != VpOutcome::kCrashed &&
      config.quarantine_drop_rate < 1.0 && result.probes_sent > 0) {
    const double drop_rate = static_cast<double>(result.timeouts) /
                             static_cast<double>(result.probes_sent);
    if (drop_rate > config.quarantine_drop_rate) {
      return VpOutcome::kQuarantined;
    }
  }
  return result.outcome;
}

namespace {

/// One VP's finished walk, produced by its (possibly concurrent) task and
/// consumed by the in-order reduction on the calling thread.
struct VpWork {
  bool ran = false;  // false: the availability coin skipped this VP
  FastPingResult result;
  Greylist greylist;               // private; merged in VP order
  std::vector<TargetRtt> fragment; // per-target minima, merged in VP order
};

}  // namespace

CensusOutput run_census(const net::SimulatedInternet& internet,
                        std::span<const net::VantagePoint> vps,
                        const Hitlist& hitlist, Greylist& blacklist,
                        const FastPingConfig& config,
                        const net::FaultPlan* faults,
                        concurrency::ThreadPool* pool) {
  CensusOutput out;
  out.data = CensusData(hitlist.size());
  out.summary.vp_duration_hours.reserve(vps.size());
  out.summary.vp_outcomes.reserve(vps.size());

  // Map: each available VP walks the hitlist with a *private* greylist
  // and reduces its own observations to a row fragment. Walks only read
  // shared state (`internet`, `hitlist`, `blacklist`), so they are
  // independent — the pool just runs them on every lane.
  const auto walk_vp = [&](std::size_t i) -> VpWork {
    VpWork work;
    if (!vp_available(vps[i], config)) return work;
    work.ran = true;
    work.result = run_fastping(internet, vps[i], hitlist, blacklist,
                               work.greylist, config, faults);
    work.fragment = vp_row_fragment(work.result, hitlist.size());
    // The reduction reads only the counters, the outcome, and the
    // fragment; drop the raw stream so the retained state per VP is the
    // compact fragment, not O(hitlist) observations held for every VP.
    work.result.observations = {};
    return work;
  };
  std::vector<VpWork> done;
  if (pool != nullptr && pool->thread_count() > 1) {
    done = pool->parallel_map(vps.size(), walk_vp);
  } else {
    done.reserve(vps.size());
    for (std::size_t i = 0; i < vps.size(); ++i) done.push_back(walk_vp(i));
  }

  // Reduce in VP order on this thread: the summary, quarantine decisions,
  // data rows, and greylist merge all see VPs in exactly the order the
  // serial loop did, so the output is byte-identical for any thread count.
  Greylist census_greylist;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const net::VantagePoint& vp = vps[i];
    VpWork& work = done[i];
    if (!work.ran) {
      out.summary.vp_outcomes.push_back({vp.id, VpOutcome::kSkipped});
      continue;
    }
    ++out.summary.active_vps;
    const FastPingResult& vp_result = work.result;
    out.summary.probes_sent += vp_result.probes_sent;
    out.summary.echo_replies += vp_result.echo_replies;
    out.summary.errors += vp_result.errors;
    out.summary.timeouts += vp_result.timeouts;
    out.summary.injected_timeouts += vp_result.injected_timeouts;
    out.summary.retry_probes += vp_result.retry_probes;
    out.summary.retry_recovered += vp_result.retry_recovered;
    out.summary.vp_duration_hours.push_back(vp_result.duration_hours);
    const VpOutcome outcome = census_vp_outcome(vp_result, config);
    out.summary.vp_outcomes.push_back({vp.id, outcome});
    census_greylist.merge(work.greylist);
    if (outcome == VpOutcome::kQuarantined) continue;
    out.data.record_fragment(static_cast<std::uint16_t>(vp.id),
                             work.fragment);
  }
  out.summary.greylist_new = census_greylist.size();
  blacklist.merge(census_greylist);
  return out;
}

}  // namespace anycast::census
