#include "anycast/census/census.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>

#if defined(__linux__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "anycast/census/sharded.hpp"
#include "anycast/census/storage.hpp"
#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/latency.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace.hpp"
#include "anycast/rng/distributions.hpp"

namespace anycast::census {
namespace {

/// Census-level instruments, fed on the reduction thread (run_census and
/// resume_census) — see flush_census_summary_metrics.
struct CensusInstruments {
  obs::Counter runs = obs::metrics().counter(
      "census_runs", obs::MetricClass::kSemantic,
      "census reductions completed (live or resumed)");
  obs::Counter vps_active = obs::metrics().counter(
      "census_vps_active", obs::MetricClass::kSemantic,
      "VPs up for their census (availability coin heads)");
  obs::Counter vps_skipped = obs::metrics().counter(
      "census_vps_skipped", obs::MetricClass::kSemantic,
      "VPs down for their whole census");
  obs::Counter vps_completed = obs::metrics().counter(
      "census_vps_completed", obs::MetricClass::kSemantic,
      "VPs that walked the full hitlist");
  obs::Counter vps_crashed = obs::metrics().counter(
      "census_vps_crashed", obs::MetricClass::kSemantic,
      "VPs that died mid-walk");
  obs::Counter vps_cut_off = obs::metrics().counter(
      "census_vps_cut_off", obs::MetricClass::kSemantic,
      "VPs cut off by the straggler deadline");
  obs::Counter vps_quarantined = obs::metrics().counter(
      "census_vps_quarantined", obs::MetricClass::kSemantic,
      "VPs whose rows were excluded for excess drops");
  obs::Counter greylist_new = obs::metrics().counter(
      "census_greylist_new", obs::MetricClass::kSemantic,
      "/24s newly greylisted, summed over censuses");
};

const CensusInstruments& census_instruments() {
  static const CensusInstruments instruments;
  return instruments;
}

/// Matrix instruments, fed by CensusMatrixBuilder::build and the arena.
/// The build/value counters are kSemantic — one logical build per census
/// whatever the shard size (see note_matrix_build). The arena counters
/// are kTiming: how many mappings it takes to assemble the same matrix
/// is a data-plane layout detail that legitimately varies with the shard
/// size and spill schedule.
struct MatrixInstruments {
  obs::Counter builds = obs::metrics().counter(
      "census_matrix_builds", obs::MetricClass::kSemantic,
      "logical census matrix builds (one per assembled matrix)");
  obs::Counter values = obs::metrics().counter(
      "census_matrix_values", obs::MetricClass::kSemantic,
      "canonical (vp, target) samples across built matrices");
  obs::Counter arena_remaps = obs::metrics().counter(
      "census_arena_remaps", obs::MetricClass::kTiming,
      "in-place arena regrowths (mremap/realloc, beyond the first map)");
  obs::Counter arena_maps = obs::metrics().counter(
      "census_arena_maps", obs::MetricClass::kTiming,
      "fresh arena mappings (first allocation of a buffer)");
};

const MatrixInstruments& matrix_instruments() {
  static const MatrixInstruments instruments;
  return instruments;
}

}  // namespace

namespace detail {

void note_arena_remap(bool fresh_mapping) {
  const MatrixInstruments& in = matrix_instruments();
  if (fresh_mapping) {
    in.arena_maps.inc();
  } else {
    in.arena_remaps.inc();
  }
}

void note_matrix_build(std::size_t value_count) {
  matrix_instruments().builds.inc();
  matrix_instruments().values.add(value_count);
}

bool VpRttArena::spill(const std::string& path) {
#if defined(__linux__)
  if (spilled_) return true;
  if (size_ == 0 || data_ == nullptr) return false;
  const std::size_t payload_bytes = size_ * sizeof(VpRtt);

  // Serialize into a zeroed staging buffer so struct padding bytes land
  // in the file as zeros — spill files must be byte-deterministic. The
  // staging copy is transient and per-shard-sized, well under the RSS
  // headroom the spill exists to protect.
  std::vector<std::uint8_t> payload(payload_bytes, 0);
  VpRtt* recs = reinterpret_cast<VpRtt*>(payload.data());
  for (std::size_t i = 0; i < size_; ++i) {
    recs[i].vp = data_[i].vp;
    recs[i].rtt_ms = data_[i].rtt_ms;
  }
  std::uint8_t header[kSpillHeaderBytes] = {};
  const std::uint32_t crc = crc32(payload);
  const std::uint64_t count = size_;
  std::memcpy(header, &kSpillMagic, 4);
  std::memcpy(header + 4, &crc, 4);
  std::memcpy(header + 8, &count, 8);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(header, 1, kSpillHeaderBytes, f) == kSpillHeaderBytes &&
      std::fwrite(payload.data(), 1, payload.size(), f) == payload.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }

  // Swap the anonymous mapping for a read-only file-backed one: same
  // contents, but the pages are now reclaimable (drop_resident) and the
  // kernel faults them back from the file on demand.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const std::size_t len = kSpillHeaderBytes + payload_bytes;
  void* mapped = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mapped == MAP_FAILED) return false;
  ::munmap(data_, payload_bytes);
  map_base_ = mapped;
  map_len_ = len;
  data_ = reinterpret_cast<VpRtt*>(static_cast<std::uint8_t*>(mapped) +
                                   kSpillHeaderBytes);
  spilled_ = true;
  return true;
#else
  (void)path;
  return false;
#endif
}

std::size_t VpRttArena::drop_resident() {
#if defined(__linux__)
  if (!spilled_ || map_base_ == nullptr) return 0;
  if (::madvise(map_base_, map_len_, MADV_DONTNEED) != 0) return 0;
  return size_ * sizeof(VpRtt);
#else
  return 0;
#endif
}

void VpRttArena::restore() {
#if defined(__linux__)
  if (!spilled_) return;
  const std::size_t payload_bytes = size_ * sizeof(VpRtt);
  void* fresh = ::mmap(nullptr, payload_bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (fresh == MAP_FAILED) throw std::bad_alloc();
  std::memcpy(fresh, data_, payload_bytes);
  ::munmap(map_base_, map_len_);
  data_ = static_cast<VpRtt*>(fresh);
  map_base_ = nullptr;
  map_len_ = 0;
  spilled_ = false;
  note_arena_remap(/*fresh_mapping=*/true);
#endif
}

}  // namespace detail

void flush_census_summary_metrics(const CensusSummary& summary) {
  const CensusInstruments& in = census_instruments();
  in.runs.inc();
  in.vps_active.add(summary.active_vps);
  in.vps_skipped.add(summary.outcome_count(VpOutcome::kSkipped));
  in.vps_completed.add(summary.outcome_count(VpOutcome::kCompleted));
  in.vps_crashed.add(summary.outcome_count(VpOutcome::kCrashed));
  in.vps_cut_off.add(summary.outcome_count(VpOutcome::kCutOff));
  in.vps_quarantined.add(summary.outcome_count(VpOutcome::kQuarantined));
  in.greylist_new.add(summary.greylist_new);

  obs::Journal& j = obs::journal();
  j.emit(obs::MetricClass::kSemantic, obs::Severity::kInfo, "census.summary",
         j.next_order(),
         {{"active_vps", summary.active_vps},
          {"skipped", summary.outcome_count(VpOutcome::kSkipped)},
          {"completed", summary.outcome_count(VpOutcome::kCompleted)},
          {"crashed", summary.outcome_count(VpOutcome::kCrashed)},
          {"cut_off", summary.outcome_count(VpOutcome::kCutOff)},
          {"quarantined", summary.outcome_count(VpOutcome::kQuarantined)},
          {"probes", summary.probes_sent},
          {"echo", summary.echo_replies},
          {"prohibited", summary.errors},
          {"timeouts", summary.timeouts},
          {"timeouts_injected", summary.injected_timeouts},
          {"retry_probes", summary.retry_probes},
          {"retry_recovered", summary.retry_recovered},
          {"greylist_new", summary.greylist_new}});
  // This is the deterministic boundary both run_census and resume_census
  // end their reduction on: cut the semantic batch here and fsync, so the
  // journal becomes durable alongside this census's checkpoints.
  j.commit();
}

std::size_t CensusMatrix::responsive_targets(std::size_t min_vps) const {
  std::size_t count = 0;
  for (std::size_t t = 0; t + 1 < offsets_.size(); ++t) {
    if (offsets_[t + 1] - offsets_[t] >= min_vps) ++count;
  }
  return count;
}

void CensusMatrix::combine_min(const CensusMatrix& other) {
  if (&other == this) return;  // the union with itself changes nothing
  const std::size_t targets = std::max(target_count(), other.target_count());
  const auto row = [](const CensusMatrix& m, std::size_t t) {
    return t < m.target_count()
               ? m.measurements(static_cast<std::uint32_t>(t))
               : std::span<const VpRtt>{};
  };

  // Pass 1 — count each row's vp-union size, so the arena grows exactly
  // once to its exact final size: no per-row buffer, no reallocation
  // mid-merge, and no disjoint-VP worst-case (2x) padding. Censuses from
  // the same platform overlap almost entirely in VPs, so the union is
  // near max(|ours|, |theirs|), not the sum.
  std::vector<std::uint64_t> offsets(targets + 1, 0);
  for (std::size_t t = 0; t < targets; ++t) {
    const std::span<const VpRtt> ours = row(*this, t);
    const std::span<const VpRtt> theirs = row(other, t);
    std::size_t i = 0;
    std::size_t j = 0;
    std::uint64_t unique = 0;
    while (i < ours.size() && j < theirs.size()) {
      const std::uint16_t a = ours[i].vp;
      const std::uint16_t b = theirs[j].vp;
      i += static_cast<std::size_t>(a <= b);
      j += static_cast<std::size_t>(b <= a);
      ++unique;
    }
    offsets[t + 1] =
        offsets[t] + unique + (ours.size() - i) + (theirs.size() - j);
  }

  // Grow the value arena once, in place, to the exact final size
  // (realloc: no transient second buffer). Every row can only grow, so
  // old rows keep their positions in the front of the buffer.
  const std::vector<std::uint64_t> old_offsets = std::move(offsets_);
  values_.resize(offsets[targets]);

  // Pass 2 — merge rows last-to-first, each written back-to-front into
  // its final slot, taking minima on common VPs. Writes never clobber
  // unread input: within row t the write cursor w and our read cursor i
  // keep w - i >= offsets[t] - old_offsets[t] >= 0 (outputs remaining
  // can never be fewer than our elements remaining), w == i only arises
  // when the rest of `theirs` duplicates the rest of ours (so the
  // theirs-only branch cannot fire there), and row t's writes stay at or
  // above offsets[t] >= old_offsets[t], past every earlier row's data.
  VpRtt* const v = values_.data();
  for (std::size_t t = targets; t-- > 0;) {
    const std::span<const VpRtt> theirs = row(other, t);
    std::uint64_t ours_begin = 0;
    std::uint64_t i = 0;
    if (t + 1 < old_offsets.size()) {
      ours_begin = old_offsets[t];
      i = old_offsets[t + 1];
    }
    std::uint64_t w = offsets[t + 1];
    std::size_t j = theirs.size();
    while (i > ours_begin && j > 0) {
      const VpRtt a = v[i - 1];
      const VpRtt b = theirs[j - 1];
      if (a.vp > b.vp) {
        v[--w] = a;
        --i;
      } else if (b.vp > a.vp) {
        v[--w] = b;
        --j;
      } else {
        v[--w] = VpRtt{a.vp, std::min(a.rtt_ms, b.rtt_ms)};
        --i;
        --j;
      }
    }
    while (i > ours_begin) {
      --w;
      --i;
      v[w] = v[i];
    }
    while (j > 0) v[--w] = theirs[--j];
  }
  offsets_ = std::move(offsets);
}

void CensusMatrixBuilder::add(std::uint32_t target_index, std::uint16_t vp,
                              float rtt_ms) {
  loose_.push_back(TargetRtt{target_index, rtt_ms});
  loose_vps_.push_back(vp);
}

void CensusMatrixBuilder::add_fragment(std::uint16_t vp,
                                       std::vector<TargetRtt> fragment) {
  fragments_.push_back(Fragment{vp, std::move(fragment)});
}

CensusMatrix CensusMatrixBuilder::build() {
  CensusMatrix matrix = build_uncounted();
  detail::note_matrix_build(matrix.observation_count());
  return matrix;
}

CensusMatrix CensusMatrixBuilder::build_uncounted() {
  CensusMatrix matrix(target_count_);

  // Pass 1 — count: cursor[t + 1] accumulates target t's raw row size.
  std::vector<std::uint64_t> cursor(target_count_ + 1, 0);
  const auto count_entry = [&](const TargetRtt& entry) {
    if (entry.target_index < target_count_) ++cursor[entry.target_index + 1];
  };
  for (const Fragment& fragment : fragments_) {
    for (const TargetRtt& entry : fragment.entries) count_entry(entry);
  }
  for (const TargetRtt& entry : loose_) count_entry(entry);
  // Prefix sum: cursor[t] = where target t's row starts.
  for (std::size_t t = 1; t <= target_count_; ++t) cursor[t] += cursor[t - 1];
  matrix.offsets_ = cursor;  // raw (pre-dedup) row boundaries
  matrix.values_.resize(cursor[target_count_]);

  // Pass 2 — place: every entry lands directly in its row's next slot.
  const auto place_entry = [&](const TargetRtt& entry, std::uint16_t vp) {
    if (entry.target_index >= target_count_) return;
    matrix.values_[cursor[entry.target_index]++] =
        VpRtt{vp, entry.rtt_ms};
  };
  for (const Fragment& fragment : fragments_) {
    for (const TargetRtt& entry : fragment.entries) {
      place_entry(entry, fragment.vp);
    }
  }
  for (std::size_t i = 0; i < loose_.size(); ++i) {
    place_entry(loose_[i], loose_vps_[i]);
  }

  // Canonicalise each row in place: vp-sorted, one entry per VP keeping
  // the minimum RTT. Fragments arriving in ascending VP order (the
  // census reduction) produce already-sorted, duplicate-free rows, so the
  // common path is a pure linear validation sweep; only rows fed out of
  // order or with duplicates pay a sort. The compaction cursor `write`
  // never passes a row's original start, so shifting left is safe.
  detail::VpRttArena& values = matrix.values_;
  const auto vp_before = [](const VpRtt& a, const VpRtt& b) {
    if (a.vp != b.vp) return a.vp < b.vp;
    return a.rtt_ms < b.rtt_ms;
  };
  std::uint64_t write = 0;
  for (std::size_t t = 0; t < target_count_; ++t) {
    const std::uint64_t begin = matrix.offsets_[t];
    const std::uint64_t end = matrix.offsets_[t + 1];
    bool sorted = true;
    for (std::uint64_t i = begin + 1; i < end; ++i) {
      if (values[i - 1].vp >= values[i].vp) {
        sorted = false;
        break;
      }
    }
    if (!sorted) {
      std::sort(values.data() + begin, values.data() + end, vp_before);
    }
    const std::uint64_t row_start = write;
    matrix.offsets_[t] = write;
    for (std::uint64_t i = begin; i < end; ++i) {
      if (write > row_start && values[write - 1].vp == values[i].vp) {
        values[write - 1].rtt_ms =
            std::min(values[write - 1].rtt_ms, values[i].rtt_ms);
      } else {
        values[write++] = values[i];
      }
    }
  }
  matrix.offsets_[target_count_] = write;
  values.resize(write);

  fragments_.clear();
  loose_.clear();
  loose_vps_.clear();
  return matrix;
}

std::vector<TargetRtt> vp_row_fragment(std::span<const Observation>
                                           observations,
                                       std::size_t target_limit,
                                       std::size_t* echo_in_range) {
  std::size_t usable = 0;
  for (const Observation& obs : observations) {
    if (obs.kind == net::ReplyKind::kEchoReply &&
        obs.target_index < target_limit) {
      ++usable;
    }
  }
  if (echo_in_range != nullptr) *echo_in_range = usable;
  std::vector<TargetRtt> fragment;
  fragment.reserve(usable);
  for (const Observation& obs : observations) {
    if (obs.kind != net::ReplyKind::kEchoReply) continue;
    if (obs.target_index >= target_limit) continue;  // damaged record
    fragment.push_back(
        TargetRtt{obs.target_index, static_cast<float>(obs.rtt_ms)});
  }
  // Retry passes revisit targets: sort by target and keep the minimum per
  // group (ties by RTT make the sort order — hence the result — unique).
  std::sort(fragment.begin(), fragment.end(),
            [](const TargetRtt& a, const TargetRtt& b) {
              if (a.target_index != b.target_index) {
                return a.target_index < b.target_index;
              }
              return a.rtt_ms < b.rtt_ms;
            });
  fragment.erase(std::unique(fragment.begin(), fragment.end(),
                             [](const TargetRtt& a, const TargetRtt& b) {
                               return a.target_index == b.target_index;
                             }),
                 fragment.end());
  return fragment;
}

std::vector<TargetRtt> vp_row_fragment(const FastPingResult& result,
                                       std::size_t target_limit) {
  return vp_row_fragment(std::span<const Observation>(result.observations),
                         target_limit);
}

std::size_t CensusSummary::outcome_count(VpOutcome outcome) const {
  std::size_t count = 0;
  for (const VpStatus& status : vp_outcomes) {
    if (status.outcome == outcome) ++count;
  }
  return count;
}

bool vp_available(const net::VantagePoint& vp, const FastPingConfig& config) {
  // Per-census node churn (deterministic in the census seed).
  if (config.vp_availability >= 1.0) return true;
  const double u = rng::hash_uniform01(config.seed ^
                                       (0xA5A5A5A5ull * (vp.id + 0x9E37ull)));
  return u < config.vp_availability;
}

VpOutcome census_vp_outcome(const FastPingResult& result,
                            const FastPingConfig& config) {
  // Quarantine trumps everything but a crash: a lossy VP's rows are
  // misleading whether or not it also finished late.
  if (result.outcome != VpOutcome::kCrashed &&
      config.quarantine_drop_rate < 1.0 && result.probes_sent > 0) {
    const double drop_rate = static_cast<double>(result.timeouts) /
                             static_cast<double>(result.probes_sent);
    if (drop_rate > config.quarantine_drop_rate) {
      return VpOutcome::kQuarantined;
    }
  }
  return result.outcome;
}

namespace {

/// One VP's finished walk, produced by its (possibly concurrent) task and
/// consumed by the in-order reduction on the calling thread.
struct VpWork {
  bool ran = false;  // false: the availability coin skipped this VP
  FastPingResult result;
  Greylist greylist;               // private; merged in VP order
  std::vector<TargetRtt> fragment; // per-target minima, merged in VP order
};

/// The whole census flow, parameterized over the matrix builder so the
/// monolithic and sharded data planes share one code path: map VPs
/// (possibly on the pool), reduce in VP order, build, merge greylists,
/// flush metrics. Every step runs in exactly the same sequence for both
/// builders, so the summary, greylist, journal stream, and semantic
/// metrics are identical whatever the data plane.
template <typename Builder>
auto run_census_reduce(const net::SimulatedInternet& internet,
                       std::span<const net::VantagePoint> vps,
                       const Hitlist& hitlist, Greylist& blacklist,
                       const FastPingConfig& config,
                       const net::FaultPlan* faults,
                       concurrency::ThreadPool* pool, Builder& builder,
                       CensusSummary& summary) {
  // Adoption point: per-VP walk spans on worker threads attach here.
  const obs::Span census_span(obs::Span::Root::kAdoptionPoint, "census");
  summary.vp_duration_hours.reserve(vps.size());
  summary.vp_outcomes.reserve(vps.size());

  // Map: each available VP walks the hitlist with a *private* greylist
  // and reduces its own observations to a row fragment. Walks only read
  // shared state (`internet`, `hitlist`, `blacklist`), so they are
  // independent — the pool just runs them on every lane.
  const auto walk_vp = [&](std::size_t i) -> VpWork {
    VpWork work;
    if (!vp_available(vps[i], config)) return work;
    work.ran = true;
    const obs::Span walk_span("vp_walk", vps[i].id);
    const auto walk_start = std::chrono::steady_clock::now();
    work.result = run_fastping(internet, vps[i], hitlist, blacklist,
                               work.greylist, config, faults);
    // Wall-clock walk latency for the telemetry plane (kTiming by
    // construction — never part of the semantic contract, unlike the
    // simulated duration_hours flushed below).
    obs::LatencyHisto::get("census_walk_us", "us",
                           "wall-clock per-VP census walk latency")
        .record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - walk_start)
                .count()));
    flush_walk_metrics(work.result, vps[i].id);
    work.fragment = vp_row_fragment(work.result, hitlist.size());
    // The reduction reads only the counters, the outcome, and the
    // fragment; drop the raw stream so the retained state per VP is the
    // compact fragment, not O(hitlist) observations held for every VP.
    work.result.observations = {};
    return work;
  };
  std::vector<VpWork> done;
  if (pool != nullptr && pool->thread_count() > 1) {
    done = pool->parallel_map(vps.size(), walk_vp);
  } else {
    done.reserve(vps.size());
    for (std::size_t i = 0; i < vps.size(); ++i) done.push_back(walk_vp(i));
  }

  // Reduce in VP order on this thread: the summary, quarantine decisions,
  // matrix fragments, and greylist merge all see VPs in exactly the order
  // the serial loop did, so the output is byte-identical for any thread
  // count.
  Greylist census_greylist;
  for (std::size_t i = 0; i < vps.size(); ++i) {
    const net::VantagePoint& vp = vps[i];
    VpWork& work = done[i];
    if (!work.ran) {
      summary.vp_outcomes.push_back({vp.id, VpOutcome::kSkipped});
      continue;
    }
    ++summary.active_vps;
    const FastPingResult& vp_result = work.result;
    summary.probes_sent += vp_result.probes_sent;
    summary.echo_replies += vp_result.echo_replies;
    summary.errors += vp_result.errors;
    summary.timeouts += vp_result.timeouts;
    summary.injected_timeouts += vp_result.injected_timeouts;
    summary.retry_probes += vp_result.retry_probes;
    summary.retry_recovered += vp_result.retry_recovered;
    summary.vp_duration_hours.push_back(vp_result.duration_hours);
    const VpOutcome outcome = census_vp_outcome(vp_result, config);
    summary.vp_outcomes.push_back({vp.id, outcome});
    census_greylist.merge(work.greylist);
    if (outcome == VpOutcome::kQuarantined) continue;
    builder.add_fragment(static_cast<std::uint16_t>(vp.id),
                         std::move(work.fragment));
  }
  auto data = builder.build();
  summary.greylist_new = census_greylist.size();
  blacklist.merge(census_greylist);
  flush_census_summary_metrics(summary);
  return data;
}

}  // namespace

CensusOutput run_census(const net::SimulatedInternet& internet,
                        std::span<const net::VantagePoint> vps,
                        const Hitlist& hitlist, Greylist& blacklist,
                        const FastPingConfig& config,
                        const net::FaultPlan* faults,
                        concurrency::ThreadPool* pool) {
  CensusOutput out;
  CensusMatrixBuilder builder(hitlist.size());
  out.data = run_census_reduce(internet, vps, hitlist, blacklist, config,
                               faults, pool, builder, out.summary);
  return out;
}

ShardedCensusOutput run_census_sharded(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, const Hitlist& hitlist,
    Greylist& blacklist, const FastPingConfig& config,
    const DataPlaneConfig& plane, const net::FaultPlan* faults,
    concurrency::ThreadPool* pool) {
  ShardedCensusOutput out;
  ShardedCensusMatrixBuilder builder(hitlist.size(), plane);
  out.data = run_census_reduce(internet, vps, hitlist, blacklist, config,
                               faults, pool, builder, out.summary);
  return out;
}

}  // namespace anycast::census
