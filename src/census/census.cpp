#include "anycast/census/census.hpp"

#include <algorithm>

#include "anycast/rng/distributions.hpp"

namespace anycast::census {

void CensusData::record(std::uint32_t target_index, std::uint16_t vp,
                        float rtt_ms) {
  auto& row = rows_[target_index];
  const auto it = std::lower_bound(
      row.begin(), row.end(), vp,
      [](const VpRtt& entry, std::uint16_t v) { return entry.vp < v; });
  if (it != row.end() && it->vp == vp) {
    it->rtt_ms = std::min(it->rtt_ms, rtt_ms);
  } else {
    row.insert(it, VpRtt{vp, rtt_ms});
  }
}

std::size_t CensusData::responsive_targets(std::size_t min_vps) const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (row.size() >= min_vps) ++count;
  }
  return count;
}

void CensusData::combine_min(const CensusData& other) {
  if (rows_.size() < other.rows_.size()) rows_.resize(other.rows_.size());
  for (std::size_t t = 0; t < other.rows_.size(); ++t) {
    const auto& theirs = other.rows_[t];
    auto& ours = rows_[t];
    if (theirs.empty()) continue;
    if (ours.empty()) {
      ours = theirs;
      continue;
    }
    // Merge two vp-sorted rows, taking minima on common VPs.
    std::vector<VpRtt> merged;
    merged.reserve(ours.size() + theirs.size());
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ours.size() && j < theirs.size()) {
      if (ours[i].vp < theirs[j].vp) {
        merged.push_back(ours[i++]);
      } else if (theirs[j].vp < ours[i].vp) {
        merged.push_back(theirs[j++]);
      } else {
        merged.push_back(
            VpRtt{ours[i].vp, std::min(ours[i].rtt_ms, theirs[j].rtt_ms)});
        ++i;
        ++j;
      }
    }
    for (; i < ours.size(); ++i) merged.push_back(ours[i]);
    for (; j < theirs.size(); ++j) merged.push_back(theirs[j]);
    ours = std::move(merged);
  }
}

std::size_t CensusSummary::outcome_count(VpOutcome outcome) const {
  std::size_t count = 0;
  for (const VpStatus& status : vp_outcomes) {
    if (status.outcome == outcome) ++count;
  }
  return count;
}

bool vp_available(const net::VantagePoint& vp, const FastPingConfig& config) {
  // Per-census node churn (deterministic in the census seed).
  if (config.vp_availability >= 1.0) return true;
  const double u = rng::hash_uniform01(config.seed ^
                                       (0xA5A5A5A5ull * (vp.id + 0x9E37ull)));
  return u < config.vp_availability;
}

VpOutcome census_vp_outcome(const FastPingResult& result,
                            const FastPingConfig& config) {
  // Quarantine trumps everything but a crash: a lossy VP's rows are
  // misleading whether or not it also finished late.
  if (result.outcome != VpOutcome::kCrashed &&
      config.quarantine_drop_rate < 1.0 && result.probes_sent > 0) {
    const double drop_rate = static_cast<double>(result.timeouts) /
                             static_cast<double>(result.probes_sent);
    if (drop_rate > config.quarantine_drop_rate) {
      return VpOutcome::kQuarantined;
    }
  }
  return result.outcome;
}

CensusOutput run_census(const net::SimulatedInternet& internet,
                        std::span<const net::VantagePoint> vps,
                        const Hitlist& hitlist, Greylist& blacklist,
                        const FastPingConfig& config,
                        const net::FaultPlan* faults) {
  CensusOutput out;
  out.data = CensusData(hitlist.size());
  out.summary.vp_duration_hours.reserve(vps.size());
  out.summary.vp_outcomes.reserve(vps.size());

  Greylist census_greylist;
  for (const net::VantagePoint& vp : vps) {
    if (!vp_available(vp, config)) {
      out.summary.vp_outcomes.push_back({vp.id, VpOutcome::kSkipped});
      continue;
    }
    ++out.summary.active_vps;
    FastPingResult vp_result = run_fastping(internet, vp, hitlist, blacklist,
                                            census_greylist, config, faults);
    out.summary.probes_sent += vp_result.probes_sent;
    out.summary.echo_replies += vp_result.echo_replies;
    out.summary.errors += vp_result.errors;
    out.summary.timeouts += vp_result.timeouts;
    out.summary.injected_timeouts += vp_result.injected_timeouts;
    out.summary.retry_probes += vp_result.retry_probes;
    out.summary.retry_recovered += vp_result.retry_recovered;
    out.summary.vp_duration_hours.push_back(vp_result.duration_hours);
    const VpOutcome outcome = census_vp_outcome(vp_result, config);
    out.summary.vp_outcomes.push_back({vp.id, outcome});
    if (outcome == VpOutcome::kQuarantined) continue;
    for (const Observation& obs : vp_result.observations) {
      if (obs.kind == net::ReplyKind::kEchoReply) {
        out.data.record(obs.target_index, static_cast<std::uint16_t>(vp.id),
                        static_cast<float>(obs.rtt_ms));
      }
    }
  }
  out.summary.greylist_new = census_greylist.size();
  blacklist.merge(census_greylist);
  return out;
}

}  // namespace anycast::census
