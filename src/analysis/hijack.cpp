#include "anycast/analysis/hijack.hpp"

namespace anycast::analysis {

HijackMonitor::HijackMonitor(std::span<const net::VantagePoint> vps,
                             const geo::CityIndex& cities,
                             core::Options options)
    : analyzer_(vps, cities, options) {}

void HijackMonitor::set_reference(const census::CensusMatrix& reference,
                                  const census::Hitlist& hitlist,
                                  std::size_t min_vps) {
  unicast_reference_.clear();
  const std::size_t targets =
      std::min(reference.target_count(), hitlist.size());
  for (std::uint32_t t = 0; t < targets; ++t) {
    const auto row = reference.measurements(t);
    if (row.size() < min_vps) continue;
    if (!analyzer_.detect(row)) {
      unicast_reference_.insert(
          hitlist[t].representative.slash24_index());
    }
  }
}

std::vector<HijackAlarm> HijackMonitor::scan(
    const census::CensusMatrix& data, const census::Hitlist& hitlist,
    std::size_t min_vps) const {
  std::vector<HijackAlarm> alarms;
  const std::size_t targets = std::min(data.target_count(), hitlist.size());
  for (std::uint32_t t = 0; t < targets; ++t) {
    const std::uint32_t slash24 =
        hitlist[t].representative.slash24_index();
    if (!unicast_reference_.contains(slash24)) continue;
    const auto row = data.measurements(t);
    if (row.size() < min_vps) continue;
    if (!analyzer_.detect(row)) continue;
    HijackAlarm alarm;
    alarm.slash24_index = slash24;
    alarm.target_index = t;
    alarm.result = analyzer_.analyze_row(row);
    alarms.push_back(std::move(alarm));
  }
  return alarms;
}

}  // namespace anycast::analysis
