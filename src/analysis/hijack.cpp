#include "anycast/analysis/hijack.hpp"

namespace anycast::analysis {

HijackMonitor::HijackMonitor(std::span<const net::VantagePoint> vps,
                             const geo::CityIndex& cities,
                             core::Options options)
    : analyzer_(vps, cities, options) {}

namespace {

/// Baseline classification, parameterized over the matrix type: both data
/// planes answer measurements(global index) in O(1), so the learned set
/// is identical whatever the physical layout of `reference`.
template <typename MatrixT>
void learn_reference(const CensusAnalyzer& analyzer, const MatrixT& reference,
                     const census::Hitlist& hitlist, std::size_t min_vps,
                     std::unordered_set<std::uint32_t>& unicast) {
  unicast.clear();
  const std::size_t targets =
      std::min(reference.target_count(), hitlist.size());
  for (std::uint32_t t = 0; t < targets; ++t) {
    const auto row = reference.measurements(t);
    if (row.size() < min_vps) continue;
    if (!analyzer.detect(row)) {
      unicast.insert(hitlist[t].representative.slash24_index());
    }
  }
}

}  // namespace

void HijackMonitor::set_reference(const census::CensusMatrix& reference,
                                  const census::Hitlist& hitlist,
                                  std::size_t min_vps) {
  learn_reference(analyzer_, reference, hitlist, min_vps, unicast_reference_);
}

void HijackMonitor::set_reference(const census::ShardedCensusMatrix& reference,
                                  const census::Hitlist& hitlist,
                                  std::size_t min_vps) {
  learn_reference(analyzer_, reference, hitlist, min_vps, unicast_reference_);
}

template <typename MatrixT>
std::optional<HijackAlarm> HijackMonitor::scan_one(
    const MatrixT& data, const census::Hitlist& hitlist,
    std::uint32_t target_index, std::size_t min_vps) const {
  const std::uint32_t slash24 =
      hitlist[target_index].representative.slash24_index();
  if (!unicast_reference_.contains(slash24)) return std::nullopt;
  const auto row = data.measurements(target_index);
  if (row.size() < min_vps) return std::nullopt;
  if (!analyzer_.detect(row)) return std::nullopt;
  HijackAlarm alarm;
  alarm.slash24_index = slash24;
  alarm.target_index = target_index;
  alarm.result = analyzer_.analyze_row(row);
  return alarm;
}

std::vector<HijackAlarm> HijackMonitor::scan(
    const census::CensusMatrix& data, const census::Hitlist& hitlist,
    std::size_t min_vps) const {
  std::vector<HijackAlarm> alarms;
  const std::size_t targets = std::min(data.target_count(), hitlist.size());
  for (std::uint32_t t = 0; t < targets; ++t) {
    if (auto alarm = scan_one(data, hitlist, t, min_vps)) {
      alarms.push_back(std::move(*alarm));
    }
  }
  return alarms;
}

std::vector<HijackAlarm> HijackMonitor::scan(
    const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
    std::size_t min_vps) const {
  std::vector<HijackAlarm> alarms;
  const std::size_t targets = std::min(data.target_count(), hitlist.size());
  for (std::uint32_t t = 0; t < targets; ++t) {
    if (auto alarm = scan_one(data, hitlist, t, min_vps)) {
      alarms.push_back(std::move(*alarm));
    }
  }
  return alarms;
}

std::vector<HijackAlarm> HijackMonitor::scan_targets(
    const census::CensusMatrix& data, const census::Hitlist& hitlist,
    std::span<const std::uint32_t> targets, std::size_t min_vps) const {
  std::vector<HijackAlarm> alarms;
  const std::size_t limit = std::min(data.target_count(), hitlist.size());
  for (const std::uint32_t t : targets) {
    if (t >= limit) continue;
    if (auto alarm = scan_one(data, hitlist, t, min_vps)) {
      alarms.push_back(std::move(*alarm));
    }
  }
  return alarms;
}

std::vector<HijackAlarm> HijackMonitor::scan_targets(
    const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
    std::span<const std::uint32_t> targets, std::size_t min_vps) const {
  std::vector<HijackAlarm> alarms;
  const std::size_t limit = std::min(data.target_count(), hitlist.size());
  for (const std::uint32_t t : targets) {
    if (t >= limit) continue;
    if (auto alarm = scan_one(data, hitlist, t, min_vps)) {
      alarms.push_back(std::move(*alarm));
    }
  }
  return alarms;
}

}  // namespace anycast::analysis
