#include "anycast/analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace anycast::analysis {

Empirical::Empirical(std::vector<double> values)
    : values_(std::move(values)) {
  if (values_.empty()) {
    throw std::invalid_argument("Empirical: empty sample");
  }
  std::sort(values_.begin(), values_.end());
}

double Empirical::cdf(double x) const {
  const auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double Empirical::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (values_.size() == 1) return values_.front();
  // Linear interpolation between order statistics.
  const double position = q * static_cast<double>(values_.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= values_.size()) return values_.back();
  return values_[lower] * (1.0 - fraction) + values_[lower + 1] * fraction;
}

double Empirical::min() const { return values_.front(); }
double Empirical::max() const { return values_.back(); }

double Empirical::mean() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Empirical::stddev() const {
  const double mu = mean();
  double sum = 0.0;
  for (const double v : values_) sum += (v - mu) * (v - mu);
  return std::sqrt(sum / static_cast<double>(values_.size()));
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double covariance = 0.0;
  double vx = 0.0;
  double vy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    covariance += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return covariance / std::sqrt(vx * vy);
}

std::vector<double> average_ranks(std::span<const double> values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double average =
        (static_cast<double>(i + 1) + static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = average;
    i = j + 1;
  }
  return ranks;
}

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = average_ranks(xs);
  const auto ry = average_ranks(ys);
  return pearson(rx, ry);
}

}  // namespace anycast::analysis
