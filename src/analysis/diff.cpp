#include "anycast/analysis/diff.hpp"

#include <algorithm>

namespace anycast::analysis {

CensusSnapshot::CensusSnapshot(std::span<const TargetOutcome> outcomes) {
  prefixes_.reserve(outcomes.size());
  for (const TargetOutcome& outcome : outcomes) {
    PrefixSnapshot snapshot;
    snapshot.slash24_index = outcome.slash24_index;
    snapshot.replica_count = outcome.result.replicas.size();
    for (const core::Replica& replica : outcome.result.replicas) {
      if (replica.city != nullptr) snapshot.cities.insert(replica.city);
    }
    prefixes_.push_back(std::move(snapshot));
  }
  std::sort(prefixes_.begin(), prefixes_.end(),
            [](const PrefixSnapshot& a, const PrefixSnapshot& b) {
              return a.slash24_index < b.slash24_index;
            });
}

const PrefixSnapshot* CensusSnapshot::find(std::uint32_t slash24) const {
  const auto it = std::lower_bound(
      prefixes_.begin(), prefixes_.end(), slash24,
      [](const PrefixSnapshot& snapshot, std::uint32_t index) {
        return snapshot.slash24_index < index;
      });
  if (it != prefixes_.end() && it->slash24_index == slash24) return &*it;
  return nullptr;
}

std::string_view to_string(PrefixChange::Kind kind) {
  switch (kind) {
    case PrefixChange::Kind::kAppeared: return "appeared";
    case PrefixChange::Kind::kDisappeared: return "disappeared";
    case PrefixChange::Kind::kGrew: return "grew";
    case PrefixChange::Kind::kShrank: return "shrank";
    case PrefixChange::Kind::kMoved: return "moved";
  }
  return "?";
}

std::size_t CensusDiff::count(PrefixChange::Kind kind) const {
  return static_cast<std::size_t>(
      std::count_if(changes.begin(), changes.end(),
                    [kind](const PrefixChange& change) {
                      return change.kind == kind;
                    }));
}

namespace {

void city_delta(const PrefixSnapshot& before, const PrefixSnapshot& after,
                PrefixChange& change) {
  for (const geo::City* city : after.cities) {
    if (!before.cities.contains(city)) change.cities_gained.push_back(city);
  }
  for (const geo::City* city : before.cities) {
    if (!after.cities.contains(city)) change.cities_lost.push_back(city);
  }
}

}  // namespace

CensusDiff diff_censuses(const CensusSnapshot& before,
                         const CensusSnapshot& after,
                         std::size_t min_replica_delta) {
  CensusDiff diff;
  // Walk the union of both sorted prefix lists.
  std::size_t i = 0;
  std::size_t j = 0;
  const auto& a = before.prefixes();
  const auto& b = after.prefixes();
  while (i < a.size() || j < b.size()) {
    if (j == b.size() ||
        (i < a.size() && a[i].slash24_index < b[j].slash24_index)) {
      PrefixChange change;
      change.kind = PrefixChange::Kind::kDisappeared;
      change.slash24_index = a[i].slash24_index;
      change.replicas_before = a[i].replica_count;
      diff.changes.push_back(std::move(change));
      ++i;
    } else if (i == a.size() || b[j].slash24_index < a[i].slash24_index) {
      PrefixChange change;
      change.kind = PrefixChange::Kind::kAppeared;
      change.slash24_index = b[j].slash24_index;
      change.replicas_after = b[j].replica_count;
      diff.changes.push_back(std::move(change));
      ++j;
    } else {
      const PrefixSnapshot& old_snapshot = a[i];
      const PrefixSnapshot& new_snapshot = b[j];
      const std::size_t delta =
          old_snapshot.replica_count > new_snapshot.replica_count
              ? old_snapshot.replica_count - new_snapshot.replica_count
              : new_snapshot.replica_count - old_snapshot.replica_count;
      if (delta >= min_replica_delta ||
          old_snapshot.cities != new_snapshot.cities) {
        PrefixChange change;
        change.slash24_index = old_snapshot.slash24_index;
        change.replicas_before = old_snapshot.replica_count;
        change.replicas_after = new_snapshot.replica_count;
        if (delta >= min_replica_delta) {
          change.kind = new_snapshot.replica_count >
                                old_snapshot.replica_count
                            ? PrefixChange::Kind::kGrew
                            : PrefixChange::Kind::kShrank;
        } else {
          change.kind = PrefixChange::Kind::kMoved;
        }
        city_delta(old_snapshot, new_snapshot, change);
        diff.changes.push_back(std::move(change));
      }
      ++i;
      ++j;
    }
  }
  return diff;
}

}  // namespace anycast::analysis
