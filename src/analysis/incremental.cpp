#include "anycast/analysis/incremental.hpp"

#include <algorithm>
#include <numeric>

#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/obs/journal.hpp"

namespace anycast::analysis {
namespace {

/// Element-wise row equality. VpRtt has padding between `vp` and `rtt_ms`,
/// so memcmp over rows would compare garbage bytes.
bool rows_equal(std::span<const census::VpRtt> a,
                std::span<const census::VpRtt> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].vp != b[i].vp || a[i].rtt_ms != b[i].rtt_ms) return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint32_t> dirty_rows(const census::CensusMatrix& prev,
                                      const census::CensusMatrix& next,
                                      concurrency::ThreadPool* pool) {
  const std::size_t targets = next.target_count();
  if (prev.target_count() != targets) {
    std::vector<std::uint32_t> all(targets);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }

  const auto scan = [&](std::size_t begin, std::size_t end) {
    std::vector<std::uint32_t> out;
    for (std::size_t t = begin; t < end; ++t) {
      const auto index = static_cast<std::uint32_t>(t);
      if (!rows_equal(prev.measurements(index), next.measurements(index))) {
        out.push_back(index);
      }
    }
    return out;
  };

  if (pool == nullptr || pool->thread_count() <= 1) {
    return scan(0, targets);
  }
  // Contiguous ranges weighted by stored measurements (the compare cost),
  // concatenated in index order: identical to the serial scan.
  const auto ranges = concurrency::shard_ranges_weighted(
      next.row_offsets().subspan(0, targets + 1), pool->thread_count() * 8);
  auto shards = pool->parallel_map(ranges.size(), [&](std::size_t s) {
    return scan(ranges[s].first, ranges[s].second);
  });
  std::vector<std::uint32_t> out;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.reserve(total);
  for (const auto& shard : shards) {
    out.insert(out.end(), shard.begin(), shard.end());
  }
  return out;
}

std::vector<std::uint32_t> dirty_rows(const census::ShardedCensusMatrix& prev,
                                      const census::ShardedCensusMatrix& next,
                                      concurrency::ThreadPool* pool) {
  const std::size_t targets = next.target_count();
  if (!prev.same_layout(next)) {
    std::vector<std::uint32_t> all(targets);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
  // Shard pairs in index order, local diffs lifted to global indices:
  // exactly the rows (and order) the monolithic diff would produce.
  std::vector<std::uint32_t> out;
  for (std::size_t s = 0; s < next.shard_count(); ++s) {
    const auto base = static_cast<std::uint32_t>(next.shard_base(s));
    for (const std::uint32_t local :
         dirty_rows(prev.shard(s), next.shard(s), pool)) {
      out.push_back(base + local);
    }
  }
  return out;
}

namespace {

/// The incremental pass, parameterized over the matrix type: both data
/// planes expose target_count() and O(1) measurements(global index), and
/// dirty_rows overloads handle the layout-specific diff.
template <typename MatrixT>
IncrementalResult incremental_analyze_impl(
    const CensusAnalyzer& analyzer,
    std::span<const TargetOutcome> prev_outcomes, const MatrixT& prev,
    const MatrixT& next, const census::Hitlist& hitlist, std::size_t min_vps,
    concurrency::ThreadPool* pool) {
  IncrementalResult result;
  const std::size_t targets = std::min(next.target_count(), hitlist.size());
  result.dirty = dirty_rows(prev, next, pool);
  while (!result.dirty.empty() && result.dirty.back() >= targets) {
    result.dirty.pop_back();
  }

  // Re-run the full sweep's per-row contract on the dirty rows only:
  // min-VP gate, detection pre-filter, iGreedy, keep anycast verdicts.
  const auto analyze_some = [&](std::size_t begin, std::size_t end) {
    std::vector<TargetOutcome> out;
    for (std::size_t i = begin; i < end; ++i) {
      const std::uint32_t t = result.dirty[i];
      const auto row = next.measurements(t);
      if (row.size() < min_vps) continue;
      if (!analyzer.detect(row)) continue;
      TargetOutcome outcome;
      outcome.target_index = t;
      outcome.slash24_index = hitlist[t].representative.slash24_index();
      outcome.result = analyzer.analyze_row(row);
      if (outcome.result.anycast) out.push_back(std::move(outcome));
    }
    return out;
  };

  std::vector<TargetOutcome> fresh;
  if (pool == nullptr || pool->thread_count() <= 1 ||
      result.dirty.size() < 32) {
    fresh = analyze_some(0, result.dirty.size());
  } else {
    // Even chunks over the dirty list; concatenation in chunk order is
    // invariant to the chunk boundaries, so any lane count agrees.
    const std::size_t chunks =
        std::min(result.dirty.size(), pool->thread_count() * std::size_t{8});
    auto shards = pool->parallel_map(chunks, [&](std::size_t c) {
      const std::size_t begin = c * result.dirty.size() / chunks;
      const std::size_t end = (c + 1) * result.dirty.size() / chunks;
      return analyze_some(begin, end);
    });
    std::size_t total = 0;
    for (const auto& shard : shards) total += shard.size();
    fresh.reserve(total);
    for (auto& shard : shards) {
      for (auto& outcome : shard) fresh.push_back(std::move(outcome));
    }
  }

  // Splice: carry the previous epoch's outcome for every clean row, take
  // the fresh outcome for every dirty one. Both sequences are sorted by
  // target_index and disjoint, so this is a plain merge.
  result.outcomes.reserve(prev_outcomes.size() + fresh.size());
  std::size_t f = 0;
  for (const TargetOutcome& outcome : prev_outcomes) {
    if (outcome.target_index >= targets) continue;
    if (std::binary_search(result.dirty.begin(), result.dirty.end(),
                           outcome.target_index)) {
      continue;  // superseded (or dropped) by the fresh pass
    }
    while (f < fresh.size() &&
           fresh[f].target_index < outcome.target_index) {
      result.outcomes.push_back(std::move(fresh[f++]));
    }
    result.outcomes.push_back(outcome);
  }
  while (f < fresh.size()) result.outcomes.push_back(std::move(fresh[f++]));

  obs::Journal& j = obs::journal();
  j.emit(obs::MetricClass::kSemantic, obs::Severity::kInfo,
         "analysis.incremental", j.next_order(),
         {{"targets", targets},
          {"dirty", result.dirty.size()},
          {"reused", result.outcomes.size() - fresh.size()},
          {"anycast", result.outcomes.size()}});
  j.commit();
  return result;
}

}  // namespace

IncrementalResult incremental_analyze(
    const CensusAnalyzer& analyzer,
    std::span<const TargetOutcome> prev_outcomes,
    const census::CensusMatrix& prev, const census::CensusMatrix& next,
    const census::Hitlist& hitlist, std::size_t min_vps,
    concurrency::ThreadPool* pool) {
  return incremental_analyze_impl(analyzer, prev_outcomes, prev, next,
                                  hitlist, min_vps, pool);
}

IncrementalResult incremental_analyze(
    const CensusAnalyzer& analyzer,
    std::span<const TargetOutcome> prev_outcomes,
    const census::ShardedCensusMatrix& prev,
    const census::ShardedCensusMatrix& next, const census::Hitlist& hitlist,
    std::size_t min_vps, concurrency::ThreadPool* pool) {
  return incremental_analyze_impl(analyzer, prev_outcomes, prev, next,
                                  hitlist, min_vps, pool);
}

}  // namespace anycast::analysis
