// Small statistics toolkit for the evaluation figures.
//
// Everything the paper's plots need: empirical CDF/CCDF evaluation,
// percentiles, means/medians, and the Pearson / Spearman correlations used
// in Sec. 4.2 ("no correlation appears between any two metrics",
// Pearson 0.35 between geographic and /24 footprints; Spearman 0.38
// between anycast and unicast web-server popularity ranks).
#pragma once

#include <span>
#include <vector>

namespace anycast::analysis {

/// Empirical distribution over a sample (copies and sorts once).
class Empirical {
 public:
  explicit Empirical(std::vector<double> values);

  /// P(X <= x).
  [[nodiscard]] double cdf(double x) const;
  /// P(X > x).
  [[nodiscard]] double ccdf(double x) const { return 1.0 - cdf(x); }
  /// Inverse CDF; q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_values() const {
    return values_;
  }

 private:
  std::vector<double> values_;  // ascending
};

/// Pearson linear correlation; 0 when either side is constant or sizes
/// mismatch.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation (Pearson over average ranks, handling ties).
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Average ranks (1-based, ties averaged) — exposed for tests.
std::vector<double> average_ranks(std::span<const double> values);

}  // namespace anycast::analysis
