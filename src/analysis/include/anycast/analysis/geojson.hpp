// GeoJSON export of census results.
//
// The paper publishes its census as a browsable map with per-deployment
// and aggregated visualisations (ref [21], Figs. 5/10). This module
// serialises analysis output into standard GeoJSON FeatureCollections that
// any web map renders directly: one Feature per geolocated replica, with
// deployment metadata in `properties`.
#pragma once

#include <string>

#include "anycast/analysis/report.hpp"

namespace anycast::analysis {

/// One deployment's replicas as a FeatureCollection (the Fig. 5-style
/// per-deployment view). Replicas lacking a city classification export
/// their disk centre with "classified": false.
std::string deployment_geojson(const CensusReport& report,
                               const AsReport& as_report);

/// The whole census as a FeatureCollection of replica points, each tagged
/// with its AS and /24 (the Fig. 10-style aggregated density view).
std::string census_geojson(const CensusReport& report);

/// Escapes a string for inclusion in a JSON string literal (exposed for
/// tests; handles quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

}  // namespace anycast::analysis
