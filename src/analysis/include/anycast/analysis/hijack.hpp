// BGP-hijack monitoring (Sec. 5).
//
// "Detecting geo-inconsistencies for knowingly unicast prefixes is
// symptomatic of BGP hijacking attacks: being able to periodically and
// quickly scan the network to raise alarms ... is a relevant extension of
// this work." HijackMonitor turns that paragraph into an API: a reference
// census classifies prefixes as unicast; subsequent scans raise an alarm
// for any reference-unicast prefix that starts violating the speed of
// light, and geolocate the apparent impostor regions.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/census/census.hpp"
#include "anycast/census/hitlist.hpp"

namespace anycast::analysis {

struct HijackAlarm {
  std::uint32_t slash24_index = 0;
  std::uint32_t target_index = 0;
  core::Result result;  // enumeration/geolocation of the apparent origins
};

class HijackMonitor {
 public:
  /// `vps` must outlive the monitor (same contract as CensusAnalyzer).
  HijackMonitor(std::span<const net::VantagePoint> vps,
                const geo::CityIndex& cities, core::Options options = {});

  /// Learns the baseline: every responsive target that shows NO
  /// geo-inconsistency in `reference` is recorded as knowingly unicast.
  /// Targets already anycast in the reference are ignored by later scans
  /// (they are expected to violate the speed of light).
  void set_reference(const census::CensusMatrix& reference,
                     const census::Hitlist& hitlist, std::size_t min_vps = 2);

  /// Sharded reference: identical classification (global-index row reads
  /// are O(1) through the shard directory), so the learned unicast set
  /// matches the monolithic overload for any shard size.
  void set_reference(const census::ShardedCensusMatrix& reference,
                     const census::Hitlist& hitlist, std::size_t min_vps = 2);

  /// Scans a later census: raises one alarm per reference-unicast prefix
  /// that now violates the speed of light.
  [[nodiscard]] std::vector<HijackAlarm> scan(
      const census::CensusMatrix& data, const census::Hitlist& hitlist,
      std::size_t min_vps = 2) const;

  /// The same scan over the sharded data plane.
  [[nodiscard]] std::vector<HijackAlarm> scan(
      const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
      std::size_t min_vps = 2) const;

  /// Like `scan`, restricted to the given target indices (sorted
  /// ascending). The watch daemon passes the round's dirty rows: the
  /// reference is fixed and detection is row-pure, so a row that did not
  /// change cannot change its verdict — scanning only dirty rows raises
  /// exactly the alarms a full scan would raise minus those already
  /// standing in the previous round (edge-triggered reporting).
  [[nodiscard]] std::vector<HijackAlarm> scan_targets(
      const census::CensusMatrix& data, const census::Hitlist& hitlist,
      std::span<const std::uint32_t> targets, std::size_t min_vps = 2) const;

  /// Dirty-row scan over the sharded data plane (same edge-triggered
  /// contract; target indices are global).
  [[nodiscard]] std::vector<HijackAlarm> scan_targets(
      const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
      std::span<const std::uint32_t> targets, std::size_t min_vps = 2) const;

  [[nodiscard]] std::size_t monitored_prefixes() const {
    return unicast_reference_.size();
  }

 private:
  template <typename MatrixT>
  [[nodiscard]] std::optional<HijackAlarm> scan_one(
      const MatrixT& data, const census::Hitlist& hitlist,
      std::uint32_t target_index, std::size_t min_vps) const;

  CensusAnalyzer analyzer_;
  std::unordered_set<std::uint32_t> unicast_reference_;  // /24 indices
};

}  // namespace anycast::analysis
