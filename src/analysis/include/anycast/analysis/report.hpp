// Census characterisation: joining analysis outcomes with the AS world.
//
// Implements the Sec. 4 aggregation: each detected anycast /24 is mapped
// a-posteriori to its announcing AS, then per-AS statistics (geographic
// footprint, /24 footprint, cities, countries) and the cross-checks against
// the CAIDA top-100 and Alexa-100k ranks produce the "at a glance" table of
// Fig. 10, the category breakdown of Fig. 11, and the per-AS footprint
// distributions of Figs. 12-13.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "anycast/analysis/analyzer.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::analysis {

/// One detected anycast /24 joined with ground truth.
struct PrefixReport {
  std::uint32_t slash24_index = 0;
  const net::Deployment* deployment = nullptr;  // nullptr: detected on a
                                                // /24 we cannot attribute
  std::int32_t prefix_index = -1;
  core::Result result;
};

/// Per-AS aggregation across its detected /24s.
struct AsReport {
  const net::Deployment* deployment = nullptr;
  std::size_t detected_ip24 = 0;
  double mean_replicas = 0.0;
  double stddev_replicas = 0.0;
  std::size_t max_replicas = 0;
  std::uint64_t total_replicas = 0;
  std::set<const geo::City*> cities;          // classified replica cities
  std::set<std::string_view> countries;
};

/// One row of the Fig. 10 summary table.
struct GlanceRow {
  std::string label;
  std::size_t ip24 = 0;
  std::size_t ases = 0;
  std::size_t cities = 0;
  std::size_t countries = 0;
  std::uint64_t replicas = 0;
};

class CensusReport {
 public:
  /// Joins outcomes with the world's route table / deployments.
  CensusReport(const net::SimulatedInternet& internet,
               std::vector<TargetOutcome> outcomes);

  [[nodiscard]] std::span<const PrefixReport> prefixes() const {
    return prefixes_;
  }
  /// Per-AS reports, sorted by decreasing mean geographic footprint (the
  /// x-axis order of Fig. 9).
  [[nodiscard]] std::span<const AsReport> ases() const { return ases_; }

  /// Fig. 10 rows.
  [[nodiscard]] GlanceRow glance_all() const;
  [[nodiscard]] GlanceRow glance_min_replicas(std::size_t min_mean) const;
  [[nodiscard]] GlanceRow glance_caida_top100() const;
  [[nodiscard]] GlanceRow glance_alexa() const;

  /// Fig. 11: share of ASes per category, over ASes whose mean footprint
  /// is at least `min_mean_replicas`.
  [[nodiscard]] std::map<net::Category, std::size_t> category_breakdown(
      double min_mean_replicas = 0.0) const;

  /// Fig. 12 input: detected replica count per anycast /24.
  [[nodiscard]] std::vector<double> replicas_per_prefix() const;

  /// Fig. 13 input: detected anycast /24 count per AS.
  [[nodiscard]] std::vector<double> ip24_per_as() const;

  [[nodiscard]] const AsReport* by_name(std::string_view whois) const;

 private:
  GlanceRow glance_filtered(
      std::string label,
      const std::vector<const AsReport*>& selected) const;

  std::vector<PrefixReport> prefixes_;
  std::vector<AsReport> ases_;
  std::map<const net::Deployment*, std::vector<std::size_t>> by_deployment_;
};

}  // namespace anycast::analysis
