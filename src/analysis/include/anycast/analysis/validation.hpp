// Geolocation validation against ground truth (Sec. 3.4, Fig. 7).
//
// The paper validates the census against HTTP-header ground truth for
// CloudFlare (CF-RAY) and EdgeCast (Server): per-/24 true-positive rate of
// the city classification, the median error of misclassifications, and the
// fraction of the publicly advertised infrastructure (PAI) that the
// platform-measured ground truth (GT) covers. In the simulator the GT is
// the set of sites actually reachable from the platform's catchments, and
// the PAI is the deployment's full site list.
#pragma once

#include <span>
#include <vector>

#include "anycast/analysis/report.hpp"
#include "anycast/net/internet.hpp"

namespace anycast::analysis {

struct ValidationMetrics {
  /// Fraction of /24s whose classification agrees with GT at city level
  /// (a /24 counts as agreeing when the majority of its enumerated
  /// replicas match a GT site's city).
  double tpr = 0.0;
  double tpr_stddev = 0.0;         // across the AS's /24s
  /// Median distance (km) from a misclassified replica to the nearest
  /// true site of its /24.
  double median_error_km = 0.0;
  /// |GT| / |PAI|: how much of the advertised footprint the platform can
  /// see at all (upper bound on any latency method's recall).
  double gt_over_pai = 0.0;
  double gt_over_pai_stddev = 0.0;
  std::size_t evaluated_prefixes = 0;
  std::size_t evaluated_replicas = 0;
  std::size_t misclassified_replicas = 0;
};

/// Validates all detected /24s of one deployment.
ValidationMetrics validate_deployment(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps, const net::Deployment& deployment,
    std::span<const PrefixReport> prefixes);

}  // namespace anycast::analysis
