// Baseline anycast-detection techniques the paper compares against
// (Sec. 2.2):
//
// - CHAOS-query enumeration (Fan et al. [25]): ask the target a DNS
//   CHAOS-class TXT query from every VP and count distinct server ids.
//   Enumerates well for DNS, but is neither capable of geolocation nor
//   applicable beyond DNS.
// - Speed-of-light detection (Madory et al. [35]): the disjoint-disk test
//   alone — detection without enumeration or geolocation. Exposed via
//   core::IGreedy::detect; wrapped here for symmetric benchmarking.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <string>

#include "anycast/net/internet.hpp"

namespace anycast::analysis {

struct ChaosResult {
  bool applicable = false;            // did anything answer CHAOS at all?
  std::set<std::string> server_ids;   // distinct replica identifiers
  std::size_t queries_sent = 0;
  std::size_t answers = 0;

  /// The technique's replica-count estimate (0 when not applicable).
  [[nodiscard]] std::size_t replica_count() const {
    return server_ids.size();
  }
  /// CHAOS "detection": more than one distinct id.
  [[nodiscard]] bool anycast() const { return server_ids.size() >= 2; }
};

/// Runs the CHAOS enumeration from every VP (`probes_per_vp` retries to
/// ride out loss). Deterministic in `seed`.
ChaosResult chaos_enumerate(const net::SimulatedInternet& internet,
                            std::span<const net::VantagePoint> vps,
                            ipaddr::IPv4Address target, std::uint64_t seed,
                            int probes_per_vp = 2);

/// ECS-based L7 footprint mapping (Calder et al. [15], Streibelt et al.
/// [45]): from a single vantage point, sweep client subnets spread over
/// the globe and collect the PoPs the operator's ECS-aware DNS maps them
/// to. Superb recall for adopters; nothing at all otherwise.
struct EcsResult {
  bool applicable = false;
  std::set<const net::ReplicaSite*> pops;
  std::size_t queries_sent = 0;

  [[nodiscard]] std::size_t replica_count() const { return pops.size(); }
};

/// Sweeps `client_subnets` synthetic client locations drawn from the
/// population-weighted world (what sweeping real /24s achieves).
/// Deterministic in `seed`.
EcsResult ecs_enumerate(const net::SimulatedInternet& internet,
                        std::size_t deployment_index,
                        std::size_t client_subnets, std::uint64_t seed);

}  // namespace anycast::analysis
