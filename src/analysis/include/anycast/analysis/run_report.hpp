// Run reports: joining the flight recorder with the characterisation.
//
// `anycastd report` renders one document out of three sources — the
// journal (what happened), the metrics registry (how much), and the
// re-analyzed checkpoint directory (what it means, via
// analysis/report.hpp) — plus a drift-diff mode that compares the
// semantic event streams of two runs line by line. Because semantic
// journal lines are byte-identical for identical pipeline inputs
// (src/obs/journal.hpp), the first diverging line *is* the first place
// two runs disagreed, which turns "these two censuses differ" from a
// forensic project into one diff.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "anycast/analysis/report.hpp"
#include "anycast/obs/metrics.hpp"

namespace anycast::analysis {

/// Aggregate view of one journal file (JSONL, as written by
/// obs::Journal). Lines that do not parse as journal events are counted
/// as malformed and otherwise ignored — a salvaged journal may end in
/// noise the consistent-prefix trim already removed.
struct JournalSummary {
  std::size_t total_events = 0;
  std::size_t semantic_events = 0;
  std::size_t timing_events = 0;
  std::size_t malformed_lines = 0;
  std::map<std::string, std::size_t> by_key;
  std::map<std::string, std::size_t> by_severity;
  /// The last `census.summary` event line: the run's final funnel.
  std::string last_census_summary;
};

JournalSummary summarize_journal(std::string_view journal_text);

/// The journal's semantic lines, in file order — the comparable stream.
std::vector<std::string> semantic_journal_lines(std::string_view text);

/// First point where two semantic streams disagree.
struct Divergence {
  bool diverged = false;
  std::size_t index = 0;      // 0-based line index of first divergence
  std::string left;           // diverging line from A ("" = A ended)
  std::string right;          // diverging line from B ("" = B ended)
  std::size_t left_count = 0;   // semantic lines in A
  std::size_t right_count = 0;  // semantic lines in B
};

/// Compares the semantic event streams of two journals (raw file text;
/// timing lines are filtered out here). `diverged == false` means zero
/// drift: every semantic line byte-identical.
Divergence journal_drift(std::string_view journal_a,
                         std::string_view journal_b);

/// Extracts one field's raw token from a journal event line (the
/// serialised field order is stable, but this searches by name). Returns
/// "" when absent. Exposed for tests and report rendering.
std::string journal_field(std::string_view line, std::string_view name);

/// Inputs for a rendered run report; optional parts render as absent.
struct RunReportInputs {
  const CensusReport* census = nullptr;
  const JournalSummary* journal = nullptr;
  const obs::MetricsRegistry* registry = nullptr;  // semantic snapshot
  std::size_t top_ases = 10;
};

/// Markdown run report: characterisation, flight-recorder digest, and
/// semantic metrics snapshot.
std::string render_run_report_markdown(const RunReportInputs& inputs);

/// Same content as a JSON object.
std::string render_run_report_json(const RunReportInputs& inputs);

}  // namespace anycast::analysis
