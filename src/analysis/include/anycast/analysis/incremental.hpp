// Incremental re-analysis for recurring censuses (watch mode).
//
// Between two rounds of a steady deployment most /24 RTT vectors are
// bit-identical — the census seed is fixed, so a static world replays the
// same rows. Re-running detection + iGreedy over every row would make each
// watch round cost a full census analysis; instead the daemon diffs the
// frozen CSR snapshot row-by-row and re-analyzes only the dirty rows,
// splicing fresh outcomes over the previous epoch's. The merged result is
// element-identical to a full re-analyze of the new matrix — the invariant
// `daemon_test` pins — because analysis is per-row pure: a row that did not
// change cannot change its verdict.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/analysis/analyzer.hpp"

namespace anycast::analysis {

/// Target indices (dense hitlist rows) whose RTT vectors differ between
/// two CSR snapshots, ascending. Rows are compared element-wise (vp and
/// rtt) — never by memcmp, which would read struct padding. Matrices with
/// different target counts are incomparable: every row of `next` is dirty.
[[nodiscard]] std::vector<std::uint32_t> dirty_rows(
    const census::CensusMatrix& prev, const census::CensusMatrix& next,
    concurrency::ThreadPool* pool = nullptr);

/// Sharded snapshots: shard pairs are diffed in index order (global
/// indices out), so the result equals the monolithic diff of the same
/// data. Snapshots with different layouts (target count or shard size)
/// are incomparable: every row of `next` is dirty.
[[nodiscard]] std::vector<std::uint32_t> dirty_rows(
    const census::ShardedCensusMatrix& prev,
    const census::ShardedCensusMatrix& next,
    concurrency::ThreadPool* pool = nullptr);

/// Outcome of an incremental pass.
struct IncrementalResult {
  /// Element-identical to `analyzer.analyze(next, hitlist, min_vps, pool)`
  /// when `prev_outcomes` is the analysis of `prev` under the same
  /// analyzer and `min_vps`.
  std::vector<TargetOutcome> outcomes;
  /// The rows that were re-analyzed (ascending) — also the only rows whose
  /// hijack verdict can have changed, so the daemon scans exactly these.
  std::vector<std::uint32_t> dirty;
};

/// Re-analyzes only the rows of `next` that differ from `prev`, reusing
/// `prev_outcomes` (the full analysis of `prev`, sorted by target_index)
/// for every clean row. Emits one `analysis.incremental` semantic event
/// and commits the journal, mirroring the full sweep's boundary.
[[nodiscard]] IncrementalResult incremental_analyze(
    const CensusAnalyzer& analyzer, std::span<const TargetOutcome> prev_outcomes,
    const census::CensusMatrix& prev, const census::CensusMatrix& next,
    const census::Hitlist& hitlist, std::size_t min_vps = 2,
    concurrency::ThreadPool* pool = nullptr);

/// The same incremental pass over sharded snapshots: global-index row
/// routing is O(1), dirty detection diffs shard pairs, and the spliced
/// result is element-identical to the monolithic pass on the same data.
[[nodiscard]] IncrementalResult incremental_analyze(
    const CensusAnalyzer& analyzer, std::span<const TargetOutcome> prev_outcomes,
    const census::ShardedCensusMatrix& prev,
    const census::ShardedCensusMatrix& next,
    const census::Hitlist& hitlist, std::size_t min_vps = 2,
    concurrency::ThreadPool* pool = nullptr);

}  // namespace anycast::analysis
