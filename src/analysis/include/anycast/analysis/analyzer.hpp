// Census analysis driver: from collected RTTs to anycast verdicts.
//
// Processing a census means running detection over O(10^6) responsive
// targets and full iGreedy only on the few that violate the speed of
// light. Detection here is exact pairwise disjointness but runs on a
// precomputed VP-to-VP distance matrix, so the per-target cost is pure
// arithmetic — this is the optimisation that brought the paper's analysis
// from days (Census 0) to under three hours (Sec. 3.5).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "anycast/census/census.hpp"
#include "anycast/census/hitlist.hpp"
#include "anycast/census/sharded.hpp"
#include "anycast/core/igreedy.hpp"
#include "anycast/net/types.hpp"

namespace anycast::concurrency {
class ThreadPool;
}

namespace anycast::analysis {

/// Analysis outcome for one target that was detected as anycast.
struct TargetOutcome {
  std::uint32_t target_index = 0;   // dense hitlist index
  std::uint32_t slash24_index = 0;  // the /24 it represents
  core::Result result;
};

class CensusAnalyzer {
 public:
  /// `vps` must outlive the analyzer; believed VP locations are used (the
  /// analysis can only know what the platform metadata claims).
  CensusAnalyzer(std::span<const net::VantagePoint> vps,
                 const geo::CityIndex& cities, core::Options options = {});

  /// Detection sweep + full iGreedy on detected targets. Only targets with
  /// at least `min_vps` echo replies are considered (a single disk can
  /// never violate the speed of light). With a multi-lane `pool`, targets
  /// are sharded into contiguous row ranges over the matrix's CSR offset
  /// array — balanced by stored measurements, not row count — analysed
  /// concurrently, and the per-shard outcomes are concatenated in index
  /// order: the result is element-identical to the serial sweep for any
  /// thread count.
  [[nodiscard]] std::vector<TargetOutcome> analyze(
      const census::CensusMatrix& data, const census::Hitlist& hitlist,
      std::size_t min_vps = 2, concurrency::ThreadPool* pool = nullptr) const;

  /// The same sweep over the sharded data plane: shards are analysed in
  /// index order (each sharded internally exactly like the monolithic
  /// sweep) and outcomes carry global target indices, so the result —
  /// and the single semantic analysis.summary event — is
  /// element-identical to analyzing the equivalent monolithic matrix,
  /// for any shard size and thread count. Reads work on spilled shards;
  /// their pages fault back from the spill files as the sweep touches
  /// them.
  [[nodiscard]] std::vector<TargetOutcome> analyze(
      const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
      std::size_t min_vps = 2, concurrency::ThreadPool* pool = nullptr) const;

  /// The cheap detection predicate on one target row. Runs a witness-point
  /// prefilter (O(n log n) for the typical unicast row) in front of the
  /// exact pairwise test; the verdict is identical to the full O(n^2)
  /// sweep, which `detect_scan` retains as the oracle.
  [[nodiscard]] bool detect(std::span<const census::VpRtt> row) const;

  /// Pre-kernel full pairwise detection sweep (oracle for property tests
  /// and the scalar side of the bench_analysis_kernel duel).
  [[nodiscard]] bool detect_scan(std::span<const census::VpRtt> row) const;

  /// Full iGreedy on one target row (used for detected targets and for
  /// focused studies like the Fig. 5 platform comparison).
  [[nodiscard]] core::Result analyze_row(
      std::span<const census::VpRtt> row) const;

  [[nodiscard]] std::size_t vp_count() const { return vps_.size(); }

 private:
  /// One contiguous block of rows starting at global target `base`:
  /// min-VP gate, detection, iGreedy, semantic tallies — no summary
  /// event (callers emit exactly one per sweep).
  [[nodiscard]] std::vector<TargetOutcome> analyze_block(
      const census::CensusMatrix& data, std::size_t base, std::size_t targets,
      const census::Hitlist& hitlist, std::size_t min_vps,
      concurrency::ThreadPool* pool) const;

  std::span<const net::VantagePoint> vps_;
  const geo::CityIndex* cities_;
  core::Options options_;
  core::IGreedy igreedy_;
  std::vector<double> vp_distance_km_;  // dense vp x vp matrix
};

}  // namespace anycast::analysis
