// Longitudinal census comparison (Sec. 5, "Longitudinal view").
//
// "With later censuses, we observed small but interesting changes in the
// anycast landscape. Taking periodic censuses and analyzing the time
// evolution over longer timescales would allow to track evolution of IP
// anycast deployments." CensusDiff compares two analysis snapshots and
// itemises the landscape changes: prefixes that became anycast, prefixes
// that stopped being anycast, and deployments whose geographic footprint
// grew or shrank.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "anycast/analysis/analyzer.hpp"

namespace anycast::analysis {

/// Footprint snapshot of one anycast /24 at one census epoch.
struct PrefixSnapshot {
  std::uint32_t slash24_index = 0;
  std::size_t replica_count = 0;
  std::set<const geo::City*> cities;
};

/// A comparable snapshot of one census's analysis output.
class CensusSnapshot {
 public:
  CensusSnapshot() = default;
  explicit CensusSnapshot(std::span<const TargetOutcome> outcomes);

  [[nodiscard]] const std::vector<PrefixSnapshot>& prefixes() const {
    return prefixes_;
  }
  [[nodiscard]] const PrefixSnapshot* find(std::uint32_t slash24) const;
  [[nodiscard]] std::size_t size() const { return prefixes_.size(); }

 private:
  std::vector<PrefixSnapshot> prefixes_;  // sorted by slash24_index
};

/// One changed prefix in a diff.
struct PrefixChange {
  enum class Kind {
    kAppeared,     // newly anycast (or newly detected)
    kDisappeared,  // no longer detected as anycast
    kGrew,         // more replicas than before
    kShrank,       // fewer replicas than before
    kMoved,        // same count, different city set
  };
  Kind kind = Kind::kAppeared;
  std::uint32_t slash24_index = 0;
  std::size_t replicas_before = 0;
  std::size_t replicas_after = 0;
  /// Cities gained/lost (empty for pure appear/disappear records).
  std::vector<const geo::City*> cities_gained;
  std::vector<const geo::City*> cities_lost;
};

std::string_view to_string(PrefixChange::Kind kind);

/// The landscape delta between two census epochs.
struct CensusDiff {
  std::vector<PrefixChange> changes;  // sorted by slash24_index

  [[nodiscard]] std::size_t count(PrefixChange::Kind kind) const;
  [[nodiscard]] bool stable() const { return changes.empty(); }
};

/// Computes before -> after. Footprint changes below `min_replica_delta`
/// are treated as measurement noise and reported as kMoved only when the
/// city sets differ, or suppressed entirely when they match.
CensusDiff diff_censuses(const CensusSnapshot& before,
                         const CensusSnapshot& after,
                         std::size_t min_replica_delta = 1);

}  // namespace anycast::analysis
