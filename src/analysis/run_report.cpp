#include "anycast/analysis/run_report.hpp"

#include <cstdio>

#include "anycast/net/internet.hpp"

namespace anycast::analysis {
namespace {

/// Splits `text` into lines, dropping the trailing empty piece.
std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t at = 0;
  while (at < text.size()) {
    std::size_t end = text.find('\n', at);
    if (end == std::string_view::npos) end = text.size();
    lines.push_back(text.substr(at, end - at));
    at = end + 1;
  }
  return lines;
}

bool looks_like_event(std::string_view line) {
  return line.size() > 2 && line.front() == '{' && line.back() == '}' &&
         line.find("\"class\":\"") != std::string_view::npos &&
         line.find("\"key\":\"") != std::string_view::npos;
}

void append_json_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

}  // namespace

std::string journal_field(std::string_view line, std::string_view name) {
  const std::string needle = "\"" + std::string(name) + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return "";
  std::size_t begin = at + needle.size();
  if (begin >= line.size()) return "";
  if (line[begin] == '"') {
    ++begin;
    std::size_t end = begin;
    while (end < line.size() && line[end] != '"') {
      if (line[end] == '\\') ++end;
      ++end;
    }
    return std::string(line.substr(begin, end - begin));
  }
  std::size_t end = begin;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return std::string(line.substr(begin, end - begin));
}

JournalSummary summarize_journal(std::string_view journal_text) {
  JournalSummary summary;
  for (const std::string_view line : split_lines(journal_text)) {
    if (line.empty()) continue;
    if (!looks_like_event(line)) {
      ++summary.malformed_lines;
      continue;
    }
    ++summary.total_events;
    const std::string cls = journal_field(line, "class");
    if (cls == "semantic") {
      ++summary.semantic_events;
    } else {
      ++summary.timing_events;
    }
    const std::string key = journal_field(line, "key");
    ++summary.by_key[key];
    ++summary.by_severity[journal_field(line, "sev")];
    if (key == "census.summary") {
      summary.last_census_summary = std::string(line);
    }
  }
  return summary;
}

std::vector<std::string> semantic_journal_lines(std::string_view text) {
  std::vector<std::string> out;
  for (const std::string_view line : split_lines(text)) {
    if (line.empty() || !looks_like_event(line)) continue;
    if (journal_field(line, "class") == "semantic") {
      out.emplace_back(line);
    }
  }
  return out;
}

Divergence journal_drift(std::string_view journal_a,
                         std::string_view journal_b) {
  const std::vector<std::string> a = semantic_journal_lines(journal_a);
  const std::vector<std::string> b = semantic_journal_lines(journal_b);
  Divergence result;
  result.left_count = a.size();
  result.right_count = b.size();
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) {
      result.diverged = true;
      result.index = i;
      result.left = a[i];
      result.right = b[i];
      return result;
    }
  }
  if (a.size() != b.size()) {
    result.diverged = true;
    result.index = common;
    if (common < a.size()) result.left = a[common];
    if (common < b.size()) result.right = b[common];
  }
  return result;
}

std::string render_run_report_markdown(const RunReportInputs& inputs) {
  std::string out = "# anycastd run report\n";
  char line[256];

  if (inputs.census != nullptr) {
    const GlanceRow all = inputs.census->glance_all();
    out += "\n## Census characterisation\n\n";
    std::snprintf(line, sizeof line,
                  "- anycast /24: **%zu** in **%zu** ASes\n"
                  "- replicas: %llu across %zu cities, %zu countries\n",
                  all.ip24, all.ases,
                  static_cast<unsigned long long>(all.replicas), all.cities,
                  all.countries);
    out += line;
    out += "\n| AS | category | IP/24 | mean replicas |\n";
    out += "|---|---|---|---|\n";
    const auto ases = inputs.census->ases();
    for (std::size_t i = 0; i < inputs.top_ases && i < ases.size(); ++i) {
      const AsReport& as_report = ases[i];
      std::snprintf(line, sizeof line, "| %s | %s | %zu | %.1f |\n",
                    as_report.deployment->whois_name.c_str(),
                    std::string(net::to_string(as_report.deployment->category))
                        .c_str(),
                    as_report.detected_ip24, as_report.mean_replicas);
      out += line;
    }
  }

  if (inputs.journal != nullptr) {
    const JournalSummary& j = *inputs.journal;
    out += "\n## Flight recorder\n\n";
    std::snprintf(line, sizeof line,
                  "- events: %zu (%zu semantic, %zu timing, %zu malformed "
                  "lines)\n",
                  j.total_events, j.semantic_events, j.timing_events,
                  j.malformed_lines);
    out += line;
    out += "- by severity:";
    for (const auto& [severity, count] : j.by_severity) {
      std::snprintf(line, sizeof line, " %s=%zu", severity.c_str(), count);
      out += line;
    }
    out += "\n\n| event key | count |\n|---|---|\n";
    for (const auto& [key, count] : j.by_key) {
      std::snprintf(line, sizeof line, "| %s | %zu |\n", key.c_str(), count);
      out += line;
    }
    if (!j.last_census_summary.empty()) {
      out += "\nlast census.summary:\n\n```json\n";
      out += j.last_census_summary;
      out += "\n```\n";
    }
  }

  if (inputs.registry != nullptr) {
    out += "\n## Semantic metrics snapshot\n\n```\n";
    out += inputs.registry->semantic_snapshot();
    out += "```\n";
  }
  return out;
}

std::string render_run_report_json(const RunReportInputs& inputs) {
  std::string out = "{";
  bool first = true;
  const auto section = [&out, &first](std::string_view name) {
    if (!first) out += ",";
    first = false;
    out += "\n\"";
    out += name;
    out += "\":";
  };
  char buffer[256];

  if (inputs.census != nullptr) {
    const GlanceRow all = inputs.census->glance_all();
    section("census");
    std::snprintf(buffer, sizeof buffer,
                  "{\"anycast_ip24\":%zu,\"ases\":%zu,\"replicas\":%llu,"
                  "\"cities\":%zu,\"countries\":%zu}",
                  all.ip24, all.ases,
                  static_cast<unsigned long long>(all.replicas), all.cities,
                  all.countries);
    out += buffer;
  }
  if (inputs.journal != nullptr) {
    const JournalSummary& j = *inputs.journal;
    section("journal");
    std::snprintf(buffer, sizeof buffer,
                  "{\"events\":%zu,\"semantic\":%zu,\"timing\":%zu,"
                  "\"malformed\":%zu,\"by_key\":{",
                  j.total_events, j.semantic_events, j.timing_events,
                  j.malformed_lines);
    out += buffer;
    bool first_key = true;
    for (const auto& [key, count] : j.by_key) {
      if (!first_key) out += ",";
      first_key = false;
      out += "\"";
      append_json_escaped(out, key);
      std::snprintf(buffer, sizeof buffer, "\":%zu", count);
      out += buffer;
    }
    out += "}}";
  }
  if (inputs.registry != nullptr) {
    section("semantic_snapshot");
    out += "\"";
    append_json_escaped(out, inputs.registry->semantic_snapshot());
    out += "\"";
  }
  out += "\n}\n";
  return out;
}

}  // namespace anycast::analysis
