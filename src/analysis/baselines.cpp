#include "anycast/analysis/baselines.hpp"

#include "anycast/geo/city_data.hpp"
#include "anycast/rng/distributions.hpp"
#include "anycast/rng/random.hpp"

namespace anycast::analysis {

ChaosResult chaos_enumerate(const net::SimulatedInternet& internet,
                            std::span<const net::VantagePoint> vps,
                            ipaddr::IPv4Address target, std::uint64_t seed,
                            int probes_per_vp) {
  ChaosResult result;
  rng::Xoshiro256 gen(seed);
  for (const net::VantagePoint& vp : vps) {
    for (int k = 0; k < probes_per_vp; ++k) {
      ++result.queries_sent;
      if (const auto id = internet.chaos_query(vp, target, gen)) {
        ++result.answers;
        result.applicable = true;
        result.server_ids.insert(*id);
      }
    }
  }
  return result;
}

EcsResult ecs_enumerate(const net::SimulatedInternet& internet,
                        std::size_t deployment_index,
                        std::size_t client_subnets, std::uint64_t seed) {
  EcsResult result;
  rng::Xoshiro256 gen(seed);
  const auto cities = geo::world_cities();
  std::vector<double> weights;
  weights.reserve(cities.size());
  for (const geo::City& city : cities) {
    weights.push_back(static_cast<double>(city.population));
  }
  for (std::size_t i = 0; i < client_subnets; ++i) {
    ++result.queries_sent;
    // A client subnet somewhere in the populated world.
    const geo::City& city = cities[rng::weighted_index(gen, weights)];
    const geodesy::GeoPoint client = geodesy::destination(
        city.location(), rng::uniform(gen, 0.0, 360.0),
        rng::exponential(gen, 50.0));
    const net::ReplicaSite* pop =
        internet.ecs_query(deployment_index, client);
    if (pop != nullptr) {
      result.applicable = true;
      result.pops.insert(pop);
    }
  }
  return result;
}

}  // namespace anycast::analysis
