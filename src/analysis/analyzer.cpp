#include "anycast/analysis/analyzer.hpp"

#include <algorithm>
#include <limits>

#include "anycast/concurrency/thread_pool.hpp"
#include "anycast/geodesy/disk.hpp"
#include "anycast/obs/journal.hpp"
#include "anycast/obs/metrics.hpp"
#include "anycast/obs/trace.hpp"

namespace anycast::analysis {
namespace {

/// Sweep instruments, flushed once per analyzed range from a range-local
/// tally (integer sums commute, so the totals are identical however the
/// sweep is sharded).
struct AnalysisInstruments {
  obs::Counter targets_considered = obs::metrics().counter(
      "analysis_targets_considered", obs::MetricClass::kSemantic,
      "targets with enough VPs to enter detection");
  obs::Counter targets_detected = obs::metrics().counter(
      "analysis_targets_detected", obs::MetricClass::kSemantic,
      "targets passing the speed-of-light disjointness pre-filter");
  obs::Counter targets_anycast = obs::metrics().counter(
      "analysis_targets_anycast", obs::MetricClass::kSemantic,
      "targets iGreedy confirmed as anycast");
};

const AnalysisInstruments& analysis_instruments() {
  static const AnalysisInstruments instruments;
  return instruments;
}

}  // namespace

CensusAnalyzer::CensusAnalyzer(std::span<const net::VantagePoint> vps,
                               const geo::CityIndex& cities,
                               core::Options options)
    : vps_(vps),
      cities_(&cities),
      options_(options),
      igreedy_(cities, options) {
  vp_distance_km_.resize(vps.size() * vps.size());
  for (std::size_t i = 0; i < vps.size(); ++i) {
    for (std::size_t j = i + 1; j < vps.size(); ++j) {
      const double km = geodesy::distance_km(vps[i].believed_location,
                                             vps[j].believed_location);
      vp_distance_km_[i * vps.size() + j] = km;
      vp_distance_km_[j * vps.size() + i] = km;
    }
  }
}

bool CensusAnalyzer::detect_scan(std::span<const census::VpRtt> row) const {
  // Radii from the per-VP minimum RTTs; a pair of VPs whose mutual
  // distance exceeds the radius sum cannot both contain the target.
  // Row entries are vp-sorted and unique; all arithmetic is precomputed
  // distances, no trigonometry on the hot path.
  thread_local std::vector<double> radii;
  radii.clear();
  radii.reserve(row.size());
  for (const census::VpRtt& sample : row) {
    radii.push_back(sample.rtt_ms <= options_.max_rtt_ms
                        ? geodesy::rtt_to_radius_km(sample.rtt_ms)
                        : -1.0);
  }
  const std::size_t n = row.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (radii[i] < 0.0) continue;
    const std::size_t vi = row[i].vp;
    const double* distance_row = &vp_distance_km_[vi * vps_.size()];
    for (std::size_t j = i + 1; j < n; ++j) {
      if (radii[j] < 0.0) continue;
      if (distance_row[row[j].vp] > radii[i] + radii[j]) return true;
    }
  }
  return false;
}

namespace {

/// Slack for the witness-point bound, far above the floating-point error
/// of any chain of precomputed haversine distances (<~1e-6 km even near
/// the antipode), so the prefilter never skips a pair the exact strict
/// `>` comparison would call disjoint.
constexpr double kWitnessSlackKm = 1e-3;

}  // namespace

bool CensusAnalyzer::detect(std::span<const census::VpRtt> row) const {
  if (options_.reference_kernel) return detect_scan(row);
  // Witness-point prefilter in front of the exact test. Pick the witness
  // P = centre of the smallest valid disk and define each disk's excess
  //     e_i = d(vp_i, P) - r_i.
  // If disks i and j are disjoint, d(i,j) > r_i + r_j, and the triangle
  // inequality d(i,j) <= d(i,P) + d(j,P) forces e_i + e_j > 0. The
  // contrapositive prunes: a pair with e_i + e_j <= -slack provably
  // intersects and needs no distance lookup. Scanning pairs in descending
  // excess order makes the prune monotone — once the sum dips below the
  // slack for the best remaining partner, every later pair is bounded
  // too. A unicast target's disks all roughly contain its one location,
  // so nearly all excesses are <= 0 and the typical row costs one sort
  // and no pair tests, instead of the full O(n^2) sweep. Only provably
  // intersecting pairs are skipped and the surviving pairs run the exact
  // comparison, so the verdict is identical to detect_scan for every row.
  thread_local std::vector<double> radii;
  thread_local std::vector<double> excess;
  thread_local std::vector<std::uint32_t> order;
  const std::size_t n = row.size();
  radii.clear();
  radii.reserve(n);
  order.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const double rtt = row[i].rtt_ms;
    radii.push_back(rtt <= options_.max_rtt_ms
                        ? geodesy::rtt_to_radius_km(rtt)
                        : -1.0);
    if (radii[i] >= 0.0) order.push_back(static_cast<std::uint32_t>(i));
  }
  if (order.size() < 2) return false;

  std::uint32_t witness = order[0];
  for (const std::uint32_t i : order) {
    if (radii[i] < radii[witness]) witness = i;
  }
  const double* witness_row = &vp_distance_km_[row[witness].vp * vps_.size()];
  excess.assign(n, 0.0);
  for (const std::uint32_t i : order) {
    excess[i] = witness_row[row[i].vp] - radii[i];
  }
  // Top-2 shortcut: every pair sum is bounded by the two largest excesses,
  // so the typical unicast row exits here in O(n) without sorting.
  double top1 = -std::numeric_limits<double>::infinity();
  double top2 = top1;
  for (const std::uint32_t i : order) {
    if (excess[i] > top1) {
      top2 = top1;
      top1 = excess[i];
    } else if (excess[i] > top2) {
      top2 = excess[i];
    }
  }
  if (top1 + top2 <= -kWitnessSlackKm) return false;
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (excess[a] != excess[b]) return excess[a] > excess[b];
              return a < b;
            });

  for (std::size_t a = 0; a + 1 < order.size(); ++a) {
    const std::uint32_t i = order[a];
    const double* distance_row = &vp_distance_km_[row[i].vp * vps_.size()];
    for (std::size_t b = a + 1; b < order.size(); ++b) {
      const std::uint32_t j = order[b];
      if (excess[i] + excess[j] <= -kWitnessSlackKm) {
        if (b == a + 1) return false;  // all later pairs are bounded too
        break;
      }
      if (distance_row[row[j].vp] > radii[i] + radii[j]) return true;
    }
  }
  return false;
}

core::Result CensusAnalyzer::analyze_row(
    std::span<const census::VpRtt> row) const {
  std::vector<core::Measurement> measurements;
  measurements.reserve(row.size());
  for (const census::VpRtt& sample : row) {
    core::Measurement m;
    m.vp_id = sample.vp;
    m.vp_location = vps_[sample.vp].believed_location;
    m.rtt_ms = sample.rtt_ms;
    measurements.push_back(m);
  }
  return igreedy_.analyze(measurements);
}

std::vector<TargetOutcome> CensusAnalyzer::analyze_block(
    const census::CensusMatrix& data, std::size_t base, std::size_t targets,
    const census::Hitlist& hitlist, std::size_t min_vps,
    concurrency::ThreadPool* pool) const {
  if (targets == 0) return {};

  // The per-target work (detection pre-filter, then iGreedy on the few
  // detected rows) only reads `this`, `data`, and `hitlist`, so a range
  // of targets is an independent task. Indices are local to `data`;
  // outcomes carry the global index `base + t`.
  const auto analyze_range = [&](std::size_t begin, std::size_t end) {
    const obs::Span range_span("analysis_range", base + begin);
    std::uint64_t considered = 0;
    std::uint64_t detected = 0;
    std::vector<TargetOutcome> out;
    for (std::size_t t = begin; t < end; ++t) {
      const auto row = data.measurements(static_cast<std::uint32_t>(t));
      if (row.size() < min_vps) continue;
      ++considered;
      if (!detect(row)) continue;
      ++detected;
      TargetOutcome outcome;
      outcome.target_index = static_cast<std::uint32_t>(base + t);
      outcome.slash24_index =
          hitlist[base + t].representative.slash24_index();
      outcome.result = analyze_row(row);
      if (outcome.result.anycast) out.push_back(std::move(outcome));
    }
    const AnalysisInstruments& in = analysis_instruments();
    in.targets_considered.add(considered);
    in.targets_detected.add(detected);
    in.targets_anycast.add(out.size());
    return out;
  };

  std::vector<TargetOutcome> out;
  if (pool == nullptr || pool->thread_count() <= 1) {
    out = analyze_range(0, targets);
  } else {
    // Shard into contiguous row ranges balanced by stored-measurement
    // weight via the CSR offset array (several per lane, so a dense range
    // cannot straggle the whole sweep) and concatenate the per-shard
    // outcomes in index order: element-identical to the serial sweep.
    const auto ranges = concurrency::shard_ranges_weighted(
        data.row_offsets().subspan(0, targets + 1),
        pool->thread_count() * 8);
    auto shards = pool->parallel_map(ranges.size(), [&](std::size_t s) {
      return analyze_range(ranges[s].first, ranges[s].second);
    });
    std::size_t total = 0;
    for (const auto& shard : shards) total += shard.size();
    out.reserve(total);
    for (auto& shard : shards) {
      for (auto& outcome : shard) out.push_back(std::move(outcome));
    }
  }
  return out;
}

namespace {

void emit_analysis_summary(std::size_t targets, std::size_t min_vps,
                           std::size_t anycast) {
  obs::Journal& j = obs::journal();
  j.emit(obs::MetricClass::kSemantic, obs::Severity::kInfo,
         "analysis.summary", j.next_order(),
         {{"targets", targets},
          {"min_vps", min_vps},
          {"anycast", anycast}});
  j.commit();  // the sweep's end is a deterministic boundary, like a
               // census reduction's
}

}  // namespace

std::vector<TargetOutcome> CensusAnalyzer::analyze(
    const census::CensusMatrix& data, const census::Hitlist& hitlist,
    std::size_t min_vps, concurrency::ThreadPool* pool) const {
  const std::size_t targets = std::min(data.target_count(), hitlist.size());
  if (targets == 0) return {};
  // Adoption point: range spans on worker threads attach here.
  const obs::Span sweep_span(obs::Span::Root::kAdoptionPoint, "analysis",
                             targets);
  std::vector<TargetOutcome> out =
      analyze_block(data, 0, targets, hitlist, min_vps, pool);
  emit_analysis_summary(targets, min_vps, out.size());
  return out;
}

std::vector<TargetOutcome> CensusAnalyzer::analyze(
    const census::ShardedCensusMatrix& data, const census::Hitlist& hitlist,
    std::size_t min_vps, concurrency::ThreadPool* pool) const {
  const std::size_t targets = std::min(data.target_count(), hitlist.size());
  if (targets == 0) return {};
  const obs::Span sweep_span(obs::Span::Root::kAdoptionPoint, "analysis",
                             targets);
  // Shards in index order, each swept exactly like a monolithic matrix
  // over its local range; the semantic tallies are integer sums that
  // commute across blocks, and exactly one summary event closes the
  // sweep — so shard size cannot leak into the semantic stream.
  std::vector<TargetOutcome> out;
  for (std::size_t s = 0; s < data.shard_count(); ++s) {
    const std::size_t base = data.shard_base(s);
    if (base >= targets) break;
    const std::size_t local =
        std::min(data.shard(s).target_count(), targets - base);
    auto block =
        analyze_block(data.shard(s), base, local, hitlist, min_vps, pool);
    out.insert(out.end(), std::make_move_iterator(block.begin()),
               std::make_move_iterator(block.end()));
  }
  emit_analysis_summary(targets, min_vps, out.size());
  return out;
}

}  // namespace anycast::analysis
