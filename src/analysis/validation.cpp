#include "anycast/analysis/validation.hpp"

#include <algorithm>
#include <cmath>

#include "anycast/analysis/stats.hpp"
#include "anycast/geodesy/geopoint.hpp"

namespace anycast::analysis {

ValidationMetrics validate_deployment(
    const net::SimulatedInternet& internet,
    std::span<const net::VantagePoint> vps,
    const net::Deployment& deployment,
    std::span<const PrefixReport> prefixes) {
  ValidationMetrics metrics;
  std::vector<double> per_prefix_tpr;
  std::vector<double> per_prefix_gt_pai;
  std::vector<double> errors_km;

  // Deployment index for catchment queries.
  std::size_t deployment_index = 0;
  for (std::size_t d = 0; d < internet.deployments().size(); ++d) {
    if (&internet.deployments()[d] == &deployment) {
      deployment_index = d;
      break;
    }
  }

  for (const PrefixReport& prefix : prefixes) {
    if (prefix.deployment != &deployment || prefix.prefix_index < 0) {
      continue;
    }
    // GT: sites actually reachable from the platform (what per-replica
    // HTTP headers measured from the same VPs would reveal).
    const auto gt_sites = internet.reachable_sites(
        vps, deployment_index,
        static_cast<std::size_t>(prefix.prefix_index));
    if (gt_sites.empty()) continue;
    per_prefix_gt_pai.push_back(static_cast<double>(gt_sites.size()) /
                                static_cast<double>(deployment.sites.size()));

    std::size_t matched = 0;
    std::size_t classified = 0;
    for (const core::Replica& replica : prefix.result.replicas) {
      if (replica.city == nullptr) continue;
      ++classified;
      ++metrics.evaluated_replicas;
      const bool match = std::any_of(
          gt_sites.begin(), gt_sites.end(),
          [&](const net::ReplicaSite* site) {
            return site->city == replica.city;
          });
      if (match) {
        ++matched;
      } else {
        ++metrics.misclassified_replicas;
        double nearest_km = geodesy::kMaxDistanceKm;
        for (const net::ReplicaSite* site : gt_sites) {
          nearest_km = std::min(
              nearest_km,
              geodesy::distance_km(replica.location, site->location));
        }
        errors_km.push_back(nearest_km);
      }
    }
    if (classified > 0) {
      per_prefix_tpr.push_back(static_cast<double>(matched) /
                               static_cast<double>(classified));
      ++metrics.evaluated_prefixes;
    }
  }

  if (!per_prefix_tpr.empty()) {
    const Empirical tpr(per_prefix_tpr);
    metrics.tpr = tpr.mean();
    metrics.tpr_stddev = tpr.stddev();
  }
  if (!per_prefix_gt_pai.empty()) {
    const Empirical gt_pai(per_prefix_gt_pai);
    metrics.gt_over_pai = gt_pai.mean();
    metrics.gt_over_pai_stddev = gt_pai.stddev();
  }
  if (!errors_km.empty()) {
    metrics.median_error_km = Empirical(errors_km).median();
  }
  return metrics;
}

}  // namespace anycast::analysis
