#include "anycast/analysis/geojson.hpp"

#include <cstdio>

#include "anycast/ipaddr/ipv4.hpp"

namespace anycast::analysis {
namespace {

void append_number(std::string& out, double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  out += buffer;
}

void append_replica_feature(std::string& out, const core::Replica& replica,
                            std::string_view whois,
                            std::uint32_t slash24_index, bool& first) {
  if (!first) out += ",";
  first = false;
  out += "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
         "\"coordinates\":[";
  append_number(out, replica.location.longitude());
  out += ",";
  append_number(out, replica.location.latitude());
  out += "]},\"properties\":{";
  out += "\"as\":\"" + json_escape(whois) + "\",";
  out += "\"prefix\":\"" +
         ipaddr::IPv4Address::from_slash24_index(slash24_index, 0)
             .to_string() +
         "/24\",";
  if (replica.city != nullptr) {
    out += "\"classified\":true,\"city\":\"" +
           json_escape(replica.city->name) + "\",\"country\":\"" +
           json_escape(replica.city->country) + "\",";
  } else {
    out += "\"classified\":false,";
  }
  out += "\"disk_radius_km\":";
  append_number(out, replica.disk.radius_km());
  out += "}}";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string deployment_geojson(const CensusReport& report,
                               const AsReport& as_report) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const PrefixReport& prefix : report.prefixes()) {
    if (prefix.deployment != as_report.deployment) continue;
    for (const core::Replica& replica : prefix.result.replicas) {
      append_replica_feature(out, replica,
                             as_report.deployment->whois_name,
                             prefix.slash24_index, first);
    }
  }
  out += "]}";
  return out;
}

std::string census_geojson(const CensusReport& report) {
  std::string out = "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (const PrefixReport& prefix : report.prefixes()) {
    const std::string_view whois = prefix.deployment != nullptr
                                       ? prefix.deployment->whois_name
                                       : std::string_view("unknown");
    for (const core::Replica& replica : prefix.result.replicas) {
      append_replica_feature(out, replica, whois, prefix.slash24_index,
                             first);
    }
  }
  out += "]}";
  return out;
}

}  // namespace anycast::analysis
