#include "anycast/analysis/report.hpp"

#include <algorithm>
#include <cmath>

namespace anycast::analysis {

CensusReport::CensusReport(const net::SimulatedInternet& internet,
                           std::vector<TargetOutcome> outcomes) {
  prefixes_.reserve(outcomes.size());
  for (TargetOutcome& outcome : outcomes) {
    PrefixReport report;
    report.slash24_index = outcome.slash24_index;
    report.result = std::move(outcome.result);
    const net::TargetInfo* info = internet.target_for(
        ipaddr::IPv4Address::from_slash24_index(outcome.slash24_index));
    if (info != nullptr && info->kind == net::TargetInfo::Kind::kAnycast) {
      report.deployment =
          &internet.deployments()[static_cast<std::size_t>(
              info->deployment_index)];
      report.prefix_index = info->prefix_index;
    }
    prefixes_.push_back(std::move(report));
  }

  for (std::size_t i = 0; i < prefixes_.size(); ++i) {
    by_deployment_[prefixes_[i].deployment].push_back(i);
  }

  for (const auto& [deployment, indices] : by_deployment_) {
    if (deployment == nullptr) continue;  // unattributed detections
    AsReport as_report;
    as_report.deployment = deployment;
    as_report.detected_ip24 = indices.size();
    double sum = 0.0;
    double sum_squares = 0.0;
    for (const std::size_t idx : indices) {
      const auto& replicas = prefixes_[idx].result.replicas;
      const auto count = static_cast<double>(replicas.size());
      sum += count;
      sum_squares += count * count;
      as_report.total_replicas += replicas.size();
      as_report.max_replicas = std::max(as_report.max_replicas,
                                        replicas.size());
      for (const core::Replica& replica : replicas) {
        if (replica.city != nullptr) {
          as_report.cities.insert(replica.city);
          as_report.countries.insert(replica.city->country);
        }
      }
    }
    const auto n = static_cast<double>(indices.size());
    as_report.mean_replicas = sum / n;
    const double variance =
        std::max(0.0, sum_squares / n -
                          as_report.mean_replicas * as_report.mean_replicas);
    as_report.stddev_replicas = std::sqrt(variance);
    ases_.push_back(std::move(as_report));
  }
  std::sort(ases_.begin(), ases_.end(),
            [](const AsReport& a, const AsReport& b) {
              if (a.mean_replicas != b.mean_replicas) {
                return a.mean_replicas > b.mean_replicas;
              }
              return a.deployment->whois_name < b.deployment->whois_name;
            });
}

GlanceRow CensusReport::glance_filtered(
    std::string label, const std::vector<const AsReport*>& selected) const {
  GlanceRow row;
  row.label = std::move(label);
  std::set<const geo::City*> cities;
  std::set<std::string_view> countries;
  for (const AsReport* as_report : selected) {
    ++row.ases;
    row.ip24 += as_report->detected_ip24;
    row.replicas += as_report->total_replicas;
    cities.insert(as_report->cities.begin(), as_report->cities.end());
    countries.insert(as_report->countries.begin(),
                     as_report->countries.end());
  }
  row.cities = cities.size();
  row.countries = countries.size();
  return row;
}

GlanceRow CensusReport::glance_all() const {
  std::vector<const AsReport*> all;
  all.reserve(ases_.size());
  for (const AsReport& as_report : ases_) all.push_back(&as_report);
  return glance_filtered("All", all);
}

GlanceRow CensusReport::glance_min_replicas(std::size_t min_mean) const {
  std::vector<const AsReport*> selected;
  for (const AsReport& as_report : ases_) {
    if (as_report.max_replicas >= min_mean) selected.push_back(&as_report);
  }
  return glance_filtered(">=" + std::to_string(min_mean) + " Replicas",
                         selected);
}

GlanceRow CensusReport::glance_caida_top100() const {
  std::vector<const AsReport*> selected;
  for (const AsReport& as_report : ases_) {
    if (as_report.deployment->caida_rank > 0) selected.push_back(&as_report);
  }
  return glance_filtered("∩ CAIDA-100", selected);
}

GlanceRow CensusReport::glance_alexa() const {
  // Prefix-level: only the /24s that actually host an Alexa-100k front
  // page count (Fig. 10's 242 /24s across 15 ASes — roughly one site per
  // /24), not the full footprint of the hosting ASes.
  GlanceRow row;
  row.label = "∩ Alexa-100k";
  std::set<const net::Deployment*> ases;
  std::set<const geo::City*> cities;
  std::set<std::string_view> countries;
  for (const PrefixReport& prefix : prefixes_) {
    if (prefix.deployment == nullptr || prefix.prefix_index < 0 ||
        !prefix.deployment->prefix_hosts_alexa(
            static_cast<std::size_t>(prefix.prefix_index))) {
      continue;
    }
    ++row.ip24;
    ases.insert(prefix.deployment);
    row.replicas += prefix.result.replicas.size();
    for (const core::Replica& replica : prefix.result.replicas) {
      if (replica.city != nullptr) {
        cities.insert(replica.city);
        countries.insert(replica.city->country);
      }
    }
  }
  row.ases = ases.size();
  row.cities = cities.size();
  row.countries = countries.size();
  return row;
}

std::map<net::Category, std::size_t> CensusReport::category_breakdown(
    double min_mean_replicas) const {
  std::map<net::Category, std::size_t> breakdown;
  for (const AsReport& as_report : ases_) {
    if (as_report.mean_replicas >= min_mean_replicas) {
      ++breakdown[as_report.deployment->category];
    }
  }
  return breakdown;
}

std::vector<double> CensusReport::replicas_per_prefix() const {
  std::vector<double> out;
  out.reserve(prefixes_.size());
  for (const PrefixReport& prefix : prefixes_) {
    out.push_back(static_cast<double>(prefix.result.replicas.size()));
  }
  return out;
}

std::vector<double> CensusReport::ip24_per_as() const {
  std::vector<double> out;
  out.reserve(ases_.size());
  for (const AsReport& as_report : ases_) {
    out.push_back(static_cast<double>(as_report.detected_ip24));
  }
  return out;
}

const AsReport* CensusReport::by_name(std::string_view whois) const {
  for (const AsReport& as_report : ases_) {
    if (as_report.deployment->whois_name == whois) return &as_report;
  }
  return nullptr;
}

}  // namespace anycast::analysis
