#include "anycast/obs/progress.hpp"

#include <chrono>
#include <vector>

#include "anycast/obs/trace.hpp"

namespace anycast::obs {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint64_t counter_value(const std::vector<MetricValue>& values,
                            std::string_view name) {
  for (const MetricValue& v : values) {
    if (v.name == name) {
      return v.kind == MetricKind::kHistogram ? v.count : v.value;
    }
  }
  return 0;
}

double rate_of(std::uint64_t part, std::uint64_t whole) {
  return whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(part) /
                          static_cast<double>(whole);
}

}  // namespace

ProgressTracker::ProgressTracker(ProgressConfig config)
    : config_(std::move(config)), start_ns_(steady_ns()) {}

std::string ProgressTracker::tick(std::size_t done, std::size_t total) {
  return tick(done, total,
              static_cast<double>(steady_ns() - start_ns_) / 1e9);
}

std::string ProgressTracker::tick(std::size_t done, std::size_t total,
                                  double elapsed_seconds) {
  ++ticks_;
  const MetricsRegistry& registry =
      config_.registry != nullptr ? *config_.registry : metrics();
  const std::vector<MetricValue> values = registry.scrape();
  const std::uint64_t sent = counter_value(values, "census_probes_sent");
  const std::uint64_t echo = counter_value(values, "census_replies_echo");
  const std::uint64_t timeouts =
      counter_value(values, "census_timeouts_organic") +
      counter_value(values, "census_timeouts_injected");
  const std::uint64_t greylist =
      counter_value(values, "census_greylist_new");

  char line[256];
  int n = std::snprintf(
      line, sizeof line,
      "[%s] %zu/%zu VPs (%.1f%%) | probes %llu | echo %.1f%% | "
      "timeout %.1f%% | greylist +%llu",
      config_.phase.c_str(), done, total,
      total == 0 ? 0.0
                 : 100.0 * static_cast<double>(done) /
                       static_cast<double>(total),
      static_cast<unsigned long long>(sent), rate_of(echo, sent),
      rate_of(timeouts, sent), static_cast<unsigned long long>(greylist));
  std::string out(line, n > 0 ? static_cast<std::size_t>(n) : 0);
  if (done > 0 && done < total && elapsed_seconds > 0.0) {
    const double eta = elapsed_seconds *
                       static_cast<double>(total - done) /
                       static_cast<double>(done);
    n = std::snprintf(line, sizeof line, " | ETA %.1fs", eta);
  } else {
    n = std::snprintf(line, sizeof line, " | elapsed %.1fs",
                      elapsed_seconds);
  }
  if (n > 0) out.append(line, static_cast<std::size_t>(n));

  if (config_.sink != nullptr) {
    std::fprintf(config_.sink, "%s\n", out.c_str());
    std::fflush(config_.sink);
  }
  if (config_.journal != nullptr) {
    config_.journal->emit(
        MetricClass::kTiming, Severity::kInfo, "progress.heartbeat",
        static_cast<std::uint64_t>(ticks_),
        {{"phase", config_.phase},
         {"done", static_cast<std::uint64_t>(done)},
         {"total", static_cast<std::uint64_t>(total)},
         {"probes_sent", sent},
         {"echo_rate_pct", rate_of(echo, sent)},
         {"timeout_rate_pct", rate_of(timeouts, sent)},
         {"greylist_new", greylist},
         {"elapsed_s", elapsed_seconds}});
    // Stream accumulated timing events mid-run; never commit here —
    // tick timing is wall-clock, commit points must stay deterministic.
    config_.journal->flush();
  }
  if (config_.sampler != nullptr) {
    config_.sampler->sample(registry, steady_ns() - trace().epoch_ns());
  }
  return out;
}

}  // namespace anycast::obs
