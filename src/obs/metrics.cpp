#include "anycast/obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace anycast::obs {
namespace {

/// Slot budget per shard. Counters take one slot; a histogram takes
/// |bounds| + 2 (buckets, overflow, fixed-point sum). The whole pipeline
/// uses well under 200; the fixed bound keeps a shard one flat allocation
/// a thread touches only at its own cache lines.
constexpr std::size_t kMaxSlots = 4096;

struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxSlots> slots;
  // Zero explicitly: atomic value-initialization (P0883) is not reliable
  // on every libstdc++ this builds against, and a shard recycled from the
  // heap must never leak a previous allocation's bytes into a counter.
  Shard() {
    for (auto& slot : slots) slot.store(0, std::memory_order_relaxed);
  }
};

std::string_view validate_name(std::string_view name) {
  if (name.empty()) throw std::logic_error("metric name must not be empty");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || (c >= 'A' && c <= 'Z');
    if (!ok) {
      throw std::logic_error("metric name must be [A-Za-z0-9_]: " +
                             std::string(name));
    }
  }
  return name;
}

}  // namespace

std::string_view to_string(MetricClass cls) {
  return cls == MetricClass::kSemantic ? "semantic" : "timing";
}

std::string_view to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

struct MetricsRegistry::Impl {
  struct Metric {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    MetricClass cls = MetricClass::kSemantic;
    std::uint32_t slot = 0;         // first shard slot (counter/histogram)
    std::uint32_t gauge_index = 0;  // gauges live outside the shards
    std::vector<double> bounds;     // histogram bucket upper bounds
  };

  std::uint64_t id = 0;  // process-unique, for thread-local shard keying
  std::atomic<bool> enabled{true};

  mutable std::mutex mutex;
  std::vector<Metric> registered;
  std::unordered_map<std::string, std::uint32_t> by_name;
  std::uint32_t next_slot = 0;
  std::vector<std::unique_ptr<Shard>> live;  // one per reporting thread
  std::array<std::uint64_t, kMaxSlots> retired{};  // from exited threads
  std::size_t shards_ever = 0;
  // Gauges: set/read whole, never summed, so they live centrally. A deque
  // never relocates existing elements on push_back, so handles may read
  // their slot without the mutex.
  std::deque<std::atomic<std::uint64_t>> gauges;

  std::uint64_t merged(std::uint32_t slot) const {
    // Caller holds `mutex`. Relaxed loads: integer sums commute, and the
    // scrape contract is "quiescent values are exact, in-flight ones are
    // eventually counted".
    std::uint64_t total = retired[slot];
    for (const auto& shard : live) {
      total += shard->slots[slot].load(std::memory_order_relaxed);
    }
    return total;
  }
};

namespace {

/// Live-registry table: thread-exit shard retirement must not touch a
/// registry that was already destroyed (unit tests create short-lived
/// ones), so retirement resolves the registry id through this table.
std::mutex& live_registries_mutex() {
  static std::mutex m;
  return m;
}
std::unordered_map<std::uint64_t, MetricsRegistry::Impl*>& live_registries() {
  static auto* map =
      new std::unordered_map<std::uint64_t, MetricsRegistry::Impl*>();
  return *map;
}

struct TlsEntry {
  std::uint64_t registry_id = 0;
  Shard* shard = nullptr;
};

struct TlsShards {
  std::vector<TlsEntry> entries;
  ~TlsShards() {
    // Fold this thread's shards into their registries' retired totals (if
    // the registry is still alive) so counts survive pool teardown.
    const std::lock_guard live_lock(live_registries_mutex());
    for (const TlsEntry& entry : entries) {
      const auto it = live_registries().find(entry.registry_id);
      if (it == live_registries().end()) continue;
      MetricsRegistry::Impl* impl = it->second;
      const std::lock_guard lock(impl->mutex);
      for (std::size_t s = 0; s < kMaxSlots; ++s) {
        impl->retired[s] +=
            entry.shard->slots[s].load(std::memory_order_relaxed);
      }
      std::erase_if(impl->live, [&](const std::unique_ptr<Shard>& shard) {
        return shard.get() == entry.shard;
      });
    }
  }
};

thread_local TlsShards g_tls;

Shard* tls_shard_slow(MetricsRegistry::Impl* impl) {
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    const std::lock_guard lock(impl->mutex);
    impl->live.push_back(std::move(shard));
    ++impl->shards_ever;
  }
  g_tls.entries.push_back(TlsEntry{impl->id, raw});
  return raw;
}

/// The calling thread's shard for `impl`: a short linear scan (a thread
/// talks to one or two registries), no locks on the repeat path.
inline Shard* tls_shard(MetricsRegistry::Impl* impl) {
  for (const TlsEntry& entry : g_tls.entries) {
    if (entry.registry_id == impl->id) return entry.shard;
  }
  return tls_shard_slow(impl);
}

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1);
}

void json_escape_into(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl()) {
  impl_->id = next_registry_id();
  const std::lock_guard lock(live_registries_mutex());
  live_registries().emplace(impl_->id, impl_);
}

MetricsRegistry::~MetricsRegistry() {
  {
    const std::lock_guard lock(live_registries_mutex());
    live_registries().erase(impl_->id);
  }
  delete impl_;
}

void MetricsRegistry::set_enabled(bool enabled) {
  impl_->enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsRegistry::enabled() const {
  return impl_->enabled.load(std::memory_order_relaxed);
}

std::size_t MetricsRegistry::shard_count() const {
  const std::lock_guard lock(impl_->mutex);
  return impl_->shards_ever;
}

Counter MetricsRegistry::counter(std::string_view name, MetricClass cls,
                                 std::string_view help) {
  validate_name(name);
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) {
    const Impl::Metric& existing = impl_->registered[it->second];
    if (existing.kind != MetricKind::kCounter || existing.cls != cls) {
      throw std::logic_error("metric re-registered differently: " +
                             std::string(name));
    }
    return Counter(this, existing.slot);
  }
  if (impl_->next_slot + 1 > kMaxSlots) {
    throw std::logic_error("metric slot budget exhausted");
  }
  Impl::Metric metric;
  metric.name = std::string(name);
  metric.help = std::string(help);
  metric.kind = MetricKind::kCounter;
  metric.cls = cls;
  metric.slot = impl_->next_slot++;
  impl_->by_name.emplace(metric.name,
                         static_cast<std::uint32_t>(impl_->registered.size()));
  impl_->registered.push_back(std::move(metric));
  return Counter(this, impl_->registered.back().slot);
}

Gauge MetricsRegistry::gauge(std::string_view name, MetricClass cls,
                             std::string_view help) {
  validate_name(name);
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) {
    const Impl::Metric& existing = impl_->registered[it->second];
    if (existing.kind != MetricKind::kGauge || existing.cls != cls) {
      throw std::logic_error("metric re-registered differently: " +
                             std::string(name));
    }
    return Gauge(this, existing.gauge_index);
  }
  Impl::Metric metric;
  metric.name = std::string(name);
  metric.help = std::string(help);
  metric.kind = MetricKind::kGauge;
  metric.cls = cls;
  metric.gauge_index = static_cast<std::uint32_t>(impl_->gauges.size());
  impl_->gauges.emplace_back(std::bit_cast<std::uint64_t>(0.0));
  impl_->by_name.emplace(metric.name,
                         static_cast<std::uint32_t>(impl_->registered.size()));
  impl_->registered.push_back(std::move(metric));
  return Gauge(this, impl_->registered.back().gauge_index);
}

Histogram MetricsRegistry::histogram(std::string_view name, MetricClass cls,
                                     std::vector<double> bucket_bounds,
                                     std::string_view help) {
  validate_name(name);
  if (bucket_bounds.empty() ||
      !std::is_sorted(bucket_bounds.begin(), bucket_bounds.end())) {
    throw std::logic_error("histogram bounds must be non-empty and sorted: " +
                           std::string(name));
  }
  const std::lock_guard lock(impl_->mutex);
  const auto it = impl_->by_name.find(std::string(name));
  if (it != impl_->by_name.end()) {
    const Impl::Metric& existing = impl_->registered[it->second];
    if (existing.kind != MetricKind::kHistogram || existing.cls != cls ||
        existing.bounds != bucket_bounds) {
      throw std::logic_error("metric re-registered differently: " +
                             std::string(name));
    }
    return Histogram(this, it->second);
  }
  // Slots: one per bucket, one overflow, one fixed-point sum.
  const std::size_t needed = bucket_bounds.size() + 2;
  if (impl_->next_slot + needed > kMaxSlots) {
    throw std::logic_error("metric slot budget exhausted");
  }
  Impl::Metric metric;
  metric.name = std::string(name);
  metric.help = std::string(help);
  metric.kind = MetricKind::kHistogram;
  metric.cls = cls;
  metric.slot = impl_->next_slot;
  metric.bounds = std::move(bucket_bounds);
  impl_->next_slot += static_cast<std::uint32_t>(needed);
  const auto index = static_cast<std::uint32_t>(impl_->registered.size());
  impl_->by_name.emplace(metric.name, index);
  impl_->registered.push_back(std::move(metric));
  return Histogram(this, index);
}

void Counter::add(std::uint64_t n) const {
  if (registry_ == nullptr || n == 0) return;
  MetricsRegistry::Impl* impl = registry_->impl_;
  if (!impl->enabled.load(std::memory_order_relaxed)) return;
  tls_shard(impl)->slots[slot_].fetch_add(n, std::memory_order_relaxed);
}

void Gauge::set(double value) const {
  if (registry_ == nullptr) return;
  MetricsRegistry::Impl* impl = registry_->impl_;
  if (!impl->enabled.load(std::memory_order_relaxed)) return;
  impl->gauges[index_].store(std::bit_cast<std::uint64_t>(value),
                             std::memory_order_relaxed);
}

void Histogram::observe(double value) const {
  if (registry_ == nullptr) return;
  MetricsRegistry::Impl* impl = registry_->impl_;
  if (!impl->enabled.load(std::memory_order_relaxed)) return;
  std::uint32_t slot;
  std::size_t bucket_count;
  {
    // Metric layout is append-only, so reading it needs no lock once the
    // handle exists; copy what the fast path needs.
    const MetricsRegistry::Impl::Metric& metric =
        impl->registered[metric_index_];
    const auto at = std::lower_bound(metric.bounds.begin(),
                                     metric.bounds.end(), value);
    slot = metric.slot +
           static_cast<std::uint32_t>(at - metric.bounds.begin());
    bucket_count = metric.bounds.size();
  }
  Shard* shard = tls_shard(impl);
  shard->slots[slot].fetch_add(1, std::memory_order_relaxed);
  // Fixed-point sum: integer additions commute across shards, so the
  // scraped sum is deterministic where a double sum would depend on
  // merge order.
  const auto milli =
      static_cast<std::int64_t>(std::llround(value * 1000.0));
  const MetricsRegistry::Impl::Metric& metric =
      impl->registered[metric_index_];
  shard->slots[metric.slot + bucket_count + 1].fetch_add(
      static_cast<std::uint64_t>(milli), std::memory_order_relaxed);
}

void MetricsRegistry::reset() {
  const std::lock_guard lock(impl_->mutex);
  impl_->retired.fill(0);
  for (const auto& shard : impl_->live) {
    for (auto& slot : shard->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : impl_->gauges) {
    gauge.store(std::bit_cast<std::uint64_t>(0.0),
                std::memory_order_relaxed);
  }
}

std::vector<MetricValue> MetricsRegistry::scrape() const {
  const std::lock_guard lock(impl_->mutex);
  std::vector<MetricValue> out;
  out.reserve(impl_->registered.size());
  for (const Impl::Metric& metric : impl_->registered) {
    MetricValue value;
    value.name = metric.name;
    value.help = metric.help;
    value.kind = metric.kind;
    value.cls = metric.cls;
    switch (metric.kind) {
      case MetricKind::kCounter:
        value.value = impl_->merged(metric.slot);
        break;
      case MetricKind::kGauge:
        value.gauge = std::bit_cast<double>(
            impl_->gauges[metric.gauge_index].load(
                std::memory_order_relaxed));
        break;
      case MetricKind::kHistogram: {
        value.bucket_bounds = metric.bounds;
        value.bucket_counts.resize(metric.bounds.size() + 1);
        for (std::size_t b = 0; b <= metric.bounds.size(); ++b) {
          value.bucket_counts[b] =
              impl_->merged(metric.slot + static_cast<std::uint32_t>(b));
          value.count += value.bucket_counts[b];
        }
        value.sum_milli = static_cast<std::int64_t>(impl_->merged(
            metric.slot + static_cast<std::uint32_t>(metric.bounds.size()) +
            1));
        break;
      }
    }
    out.push_back(std::move(value));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

std::string MetricsRegistry::scrape_json() const {
  const std::vector<MetricValue> values = scrape();
  std::string out = "{\n  \"metrics\": [\n";
  for (std::size_t i = 0; i < values.size(); ++i) {
    const MetricValue& v = values[i];
    out += "    {\"name\": \"";
    json_escape_into(out, v.name);
    out += "\", \"kind\": \"";
    out += to_string(v.kind);
    out += "\", \"class\": \"";
    out += to_string(v.cls);
    out += "\"";
    switch (v.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": " + std::to_string(v.value);
        break;
      case MetricKind::kGauge:
        out += ", \"value\": " + format_double(v.gauge);
        break;
      case MetricKind::kHistogram: {
        out += ", \"count\": " + std::to_string(v.count);
        out += ", \"sum_milli\": " + std::to_string(v.sum_milli);
        out += ", \"buckets\": [";
        for (std::size_t b = 0; b < v.bucket_counts.size(); ++b) {
          if (b != 0) out += ", ";
          out += "{\"le\": ";
          out += b < v.bucket_bounds.size()
                     ? format_double(v.bucket_bounds[b])
                     : std::string("\"+Inf\"");
          out += ", \"count\": " + std::to_string(v.bucket_counts[b]) + "}";
        }
        out += "]";
        break;
      }
    }
    if (!v.help.empty()) {
      out += ", \"help\": \"";
      json_escape_into(out, v.help);
      out += "\"";
    }
    out += "}";
    if (i + 1 < values.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_escape_label(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

namespace {

void prometheus_lines(std::string& out, const MetricValue& v) {
  // Counters expose samples named `<family>_total`, and promtool requires
  // the HELP/TYPE family name to match the sample family — so the family
  // is `name_total`, not `name`.
  const std::string family =
      v.kind == MetricKind::kCounter ? v.name + "_total" : v.name;
  if (!v.help.empty()) {
    out += "# HELP " + family + " " + prometheus_escape_help(v.help) + "\n";
  }
  switch (v.kind) {
    case MetricKind::kCounter:
      out += "# TYPE " + family + " counter\n";
      out += family + " " + std::to_string(v.value) + "\n";
      break;
    case MetricKind::kGauge:
      out += "# TYPE " + family + " gauge\n";
      out += family + " " + format_double(v.gauge) + "\n";
      break;
    case MetricKind::kHistogram: {
      out += "# TYPE " + family + " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < v.bucket_counts.size(); ++b) {
        cumulative += v.bucket_counts[b];
        out += family + "_bucket{le=\"";
        out += prometheus_escape_label(
            b < v.bucket_bounds.size() ? format_double(v.bucket_bounds[b])
                                       : std::string("+Inf"));
        out += "\"} " + std::to_string(cumulative) + "\n";
      }
      char sum[64];
      std::snprintf(sum, sizeof sum, "%.3f",
                    static_cast<double>(v.sum_milli) / 1000.0);
      out += family + "_sum " + sum + "\n";
      out += family + "_count " + std::to_string(v.count) + "\n";
      break;
    }
  }
}

}  // namespace

std::string MetricsRegistry::scrape_prometheus() const {
  std::string out;
  for (const MetricValue& v : scrape()) prometheus_lines(out, v);
  return out;
}

std::string MetricsRegistry::semantic_snapshot() const {
  std::string out;
  for (const MetricValue& v : scrape()) {
    if (v.cls != MetricClass::kSemantic) continue;
    switch (v.kind) {
      case MetricKind::kCounter:
        out += v.name + " " + std::to_string(v.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += v.name + " " + format_double(v.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        for (std::size_t b = 0; b < v.bucket_counts.size(); ++b) {
          out += v.name + "{le=";
          out += b < v.bucket_bounds.size()
                     ? format_double(v.bucket_bounds[b])
                     : std::string("+Inf");
          out += "} " + std::to_string(v.bucket_counts[b]) + "\n";
        }
        out += v.name + "_sum_milli " + std::to_string(v.sum_milli) + "\n";
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& metrics() {
  // Leaked on purpose: worker threads retire shards at thread exit, which
  // may happen after static destruction began; a never-destroyed registry
  // (paired with the live-registry table) makes that ordering safe.
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

}  // namespace anycast::obs
